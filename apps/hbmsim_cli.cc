// hbmsim — the command-line driver for the HBM+DRAM model simulator.
//
// Subcommands:
//   run      simulate one (workload, policy) configuration
//   compare  run the paper's policy suite on one workload
//   bounds   offline lower bounds and empirical competitive ratios
//   analyze  stack-distance profile of workloads or trace files
//   serve    open-system serving: streamed arrivals against an SLO
//
// Workload selection (all subcommands):
//   --workload sort|quicksort|spgemm|dense|cyclic|uniform|zipf|stream
//              (or --trace FILE to replay a captured trace on every core)
//   --threads P --elements N --n N --density D --pages N --length N
//   --zipf-s S --reps R --seed S --distinct D
//   --streaming               generate references on the fly (O(1) memory
//                             per thread) instead of materializing traces;
//                             cyclic/uniform/zipf/stream only — identical
//                             reference sequences either way
//
// Policy selection (run):
//   --policy fifo|fr-fcfs|priority|dynamic|cycle|cycle-reverse|interleave|
//            random|adaptive
//   --k SLOTS --q CHANNELS --t-mult M --replacement lru|fifo|clock
//   --binding any|hashed --row-pages N --shared-pages --fetch-ticks N
//   --adaptive-high N --adaptive-low N
//                             adaptive arbitration: switch FIFO -> Priority
//                             when the queue depth reaches N at an epoch
//                             boundary, back once it drains to the low
//                             mark (defaults 4q / q; epoch = the --t-mult
//                             remap period)
//   --engine tick|fast|event|auto
//                             execution engine (default $HBMSIM_ENGINE or
//                             auto; engines are bit-identical — see
//                             DESIGN.md §3c/§3e; serve rejects fast).
//                             `--engine list` prints the capability table
//                             and exits.
//
// Serving (serve; also takes the policy flags above):
//   --tenants N --workers W   N tenant classes (priority class = index),
//                             W closed-loop workers each
//   --arrival poisson|onoff|trace --rate R --on-ticks N --off-ticks N
//   --arrival-trace FILE      explicit arrival schedule (implies
//                             --arrival trace): one non-negative arrival
//                             tick per line, non-decreasing; blank lines
//                             and '#' comments are ignored
//   --duration T --max-ticks T --slo T --max-pending N
//   --request-pages N --request-refs N --request-zipf S
//   --starvation-mult M       starved = completion later than M x SLO
//
// Output / execution (run, compare):
//   --format text|csv|json   json streams one PointResult JSONL line per
//                            simulation (headers move to stderr)
//   --jobs N                 worker threads for compare (0 = all cores;
//                            default $HBMSIM_JOBS or 1)
//   --progress               live progress line on stderr
//
// Examples:
//   hbmsim_cli run --workload sort --elements 100000 --threads 32
//       --k 500 --policy dynamic --t-mult 10
//   hbmsim_cli compare --workload cyclic --pages 256 --reps 100
//       --threads 64 --k 4096
//   hbmsim_cli bounds --workload spgemm --n 200 --threads 16 --k 660
//   hbmsim_cli analyze --workload zipf --pages 4096 --length 200000
//   hbmsim_cli serve --tenants 2 --workers 4 --arrival poisson --rate 0.05
//       --duration 50000 --slo 64 --policy priority --k 256 --q 2
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/simulator.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "exp/table.h"
#include "opt/lower_bound.h"
#include "serve/serving.h"
#include "trace/analysis.h"
#include "trace/trace_io.h"
#include "util/args.h"
#include "util/env.h"
#include "util/error.h"
#include "workloads/adversarial.h"
#include "workloads/dense_mm.h"
#include "workloads/sort_trace.h"
#include "workloads/spgemm.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

enum class Format { kText, kCsv, kJson };

/// Shared --format/--jobs/--progress surface of run and compare.
struct OutputOptions {
  Format format = Format::kText;
  std::size_t jobs = 1;
  bool progress = false;

  [[nodiscard]] exp::RunnerOptions runner() {
    exp::RunnerOptions opts;
    opts.jobs = jobs;
    opts.progress = progress;
    opts.jsonl = format == Format::kJson ? &std::cout : nullptr;
    return opts;
  }

  void print(const exp::Table& t) const {
    if (format == Format::kCsv) {
      t.print_csv(std::cout);
    } else if (format == Format::kText) {
      t.print_text(std::cout);
    }
  }
};

OutputOptions parse_output_options(const ArgParser& args) {
  OutputOptions opts;
  const std::int64_t jobs = args.get_int("jobs", env_int("HBMSIM_JOBS", 1));
  if (jobs < 0) {
    throw ConfigError("--jobs must be >= 0 (0 = all cores), got " +
                      std::to_string(jobs));
  }
  opts.jobs = static_cast<std::size_t>(jobs);
  opts.progress = args.get_flag("progress");
  const std::string format = args.get("format", "text");
  if (format == "text") {
    opts.format = Format::kText;
  } else if (format == "csv") {
    opts.format = Format::kCsv;
  } else if (format == "json" || format == "jsonl") {
    opts.format = Format::kJson;
  } else {
    throw ConfigError("unknown --format '" + format + "' (text|csv|json)");
  }
  return opts;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: hbmsim_cli <run|compare|bounds|analyze|serve> [options]\n"
      "       see the header of apps/hbmsim_cli.cc or README.md for the\n"
      "       full option list\n");
  return 2;
}

Workload build_workload(const ArgParser& args) {
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto distinct = static_cast<std::size_t>(args.get_int("distinct", 4));
  const bool streaming = args.get_flag("streaming");
  const auto reject_streaming = [&](const std::string& kind) {
    if (streaming) {
      throw ConfigError("--streaming supports cyclic|uniform|zipf|stream, not '" +
                        kind + "' (those workloads are inherently materialized)");
    }
  };

  if (args.has("trace")) {
    reject_streaming("trace file");
    auto trace = std::make_shared<Trace>(load_trace(args.get("trace", "")));
    return Workload::replicate(std::move(trace), threads, "file");
  }

  const std::string kind = args.get("workload", "sort");
  if (kind == "sort" || kind == "quicksort") {
    reject_streaming(kind);
    workloads::SortTraceOptions opts;
    opts.num_elements = static_cast<std::size_t>(args.get_int("elements", 20'000));
    opts.algo = kind == "quicksort" ? workloads::SortAlgo::kQuickSort
                                    : workloads::SortAlgo::kMergeSort;
    opts.seed = seed;
    return workloads::make_sort_workload(threads, opts, distinct);
  }
  if (kind == "spgemm") {
    reject_streaming(kind);
    workloads::SpgemmOptions opts;
    opts.rows = opts.cols = static_cast<std::uint32_t>(args.get_int("n", 200));
    opts.density = args.get_double("density", 0.10);
    opts.seed = seed;
    return workloads::make_spgemm_workload(threads, opts, distinct);
  }
  if (kind == "dense") {
    reject_streaming(kind);
    workloads::DenseMmOptions opts;
    opts.n = static_cast<std::uint32_t>(args.get_int("n", 96));
    opts.seed = seed;
    return workloads::make_dense_mm_workload(threads, opts, distinct);
  }
  if (kind == "cyclic") {
    const workloads::AdversarialOptions opts{
        static_cast<std::uint32_t>(args.get_int("pages", 256)),
        static_cast<std::uint32_t>(args.get_int("reps", 100))};
    return streaming ? workloads::make_adversarial_streaming_workload(threads, opts)
                     : workloads::make_adversarial_workload(threads, opts);
  }
  workloads::SyntheticOptions opts;
  opts.num_pages = static_cast<std::uint32_t>(args.get_int("pages", 1024));
  opts.length = static_cast<std::size_t>(args.get_int("length", 100'000));
  opts.zipf_s = args.get_double("zipf-s", 0.99);
  opts.seed = seed;
  if (kind == "uniform") {
    opts.kind = workloads::SyntheticKind::kUniform;
  } else if (kind == "zipf") {
    opts.kind = workloads::SyntheticKind::kZipf;
  } else if (kind == "stream") {
    opts.kind = workloads::SyntheticKind::kStream;
    opts.stream_passes = static_cast<std::uint32_t>(args.get_int("reps", 4));
  } else {
    throw ConfigError("unknown workload '" + kind + "'");
  }
  return streaming ? workloads::make_streaming_workload(threads, opts)
                   : workloads::make_synthetic_workload(threads, opts);
}

/// The machine-side flags (--k/--q/--policy/...), shared by every
/// subcommand; workload-dependent validation happens in build_config.
SimConfig build_machine_config(const ArgParser& args,
                               std::uint64_t default_k) {
  SimConfig c;
  c.hbm_slots = static_cast<std::uint64_t>(args.get_int("k", static_cast<std::int64_t>(default_k)));
  c.num_channels = static_cast<std::uint32_t>(args.get_int("q", 1));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  c.row_pages = static_cast<std::uint32_t>(args.get_int("row-pages", 4));
  c.shared_pages = args.get_flag("shared-pages");
  c.fetch_ticks = static_cast<std::uint32_t>(
      args.get_int("fetch-ticks", static_cast<std::int64_t>(c.fetch_ticks)));
  // Default: HBMSIM_ENGINE, else auto (the engines are bit-identical, so
  // the choice only affects wall-clock; see DESIGN.md §3c).
  c.engine = parse_engine(args.get("engine", to_string(c.engine)));

  const std::string policy = args.get("policy", "fifo");
  const double t_mult = args.get_double("t-mult", 10.0);
  if (policy == "fifo") {
    c.arbitration = ArbitrationKind::kFifo;
  } else if (policy == "fr-fcfs") {
    c.arbitration = ArbitrationKind::kFrFcfs;
  } else if (policy == "random") {
    c.arbitration = ArbitrationKind::kRandom;
  } else if (policy == "priority") {
    c.arbitration = ArbitrationKind::kPriority;
  } else if (policy == "adaptive") {
    c.arbitration = ArbitrationKind::kAdaptive;
    // The remap period doubles as the epoch length (DESIGN.md §3g); the
    // hysteresis marks default to SimConfig::adaptive()'s 4q / q band.
    c.remap_period = SimConfig::period_from_multiplier(c.hbm_slots, t_mult);
    c.adaptive_high_depth = static_cast<std::uint32_t>(
        args.get_int("adaptive-high", 4 * c.num_channels));
    c.adaptive_low_depth = static_cast<std::uint32_t>(
        args.get_int("adaptive-low", c.num_channels));
  } else if (policy == "dynamic" || policy == "cycle" ||
             policy == "cycle-reverse" || policy == "interleave") {
    c.arbitration = ArbitrationKind::kPriority;
    c.remap_period = SimConfig::period_from_multiplier(c.hbm_slots, t_mult);
    c.remap_scheme = policy == "dynamic"         ? RemapScheme::kDynamic
                     : policy == "cycle"         ? RemapScheme::kCycle
                     : policy == "cycle-reverse" ? RemapScheme::kCycleReverse
                                                 : RemapScheme::kInterleave;
  } else {
    throw ConfigError("unknown policy '" + policy + "'");
  }

  const std::string repl = args.get("replacement", "lru");
  c.replacement = repl == "lru"     ? ReplacementKind::kLru
                  : repl == "fifo"  ? ReplacementKind::kFifo
                  : repl == "clock" ? ReplacementKind::kClock
                                    : throw ConfigError("unknown replacement '" +
                                                        repl + "'");
  const std::string binding = args.get("binding", "any");
  c.channel_binding = binding == "any"      ? ChannelBinding::kAny
                      : binding == "hashed" ? ChannelBinding::kHashed
                                            : throw ConfigError(
                                                  "unknown binding '" + binding +
                                                  "'");
  return c;
}

SimConfig build_config(const ArgParser& args, const Workload& workload) {
  // Streaming sources have no materialized trace to profile; their page-id
  // bound is the equivalent default (identical for the synthetic kinds).
  const std::uint64_t default_k = std::max<std::uint64_t>(
      8, workload.streaming() ? workload.source(0)->num_pages()
                              : workload.trace(0).unique_pages());
  SimConfig c = build_machine_config(args, default_k);
  // Reject inconsistent configurations here, with the CLI's own error
  // reporting, instead of deep inside the simulator.
  c.validate(static_cast<std::uint32_t>(workload.num_threads()));
  return c;
}

void print_workload_header(const Workload& w, const SimConfig& c,
                           const OutputOptions& out = {}) {
  std::FILE* dst = out.format == Format::kJson ? stderr : stdout;
  std::fprintf(dst, "workload: %s | threads %zu | refs %llu | k %llu | q %u\n",
               w.name().empty() ? "(unnamed)" : w.name().c_str(),
               w.num_threads(),
               static_cast<unsigned long long>(w.total_refs()),
               static_cast<unsigned long long>(c.hbm_slots), c.num_channels);
}

int cmd_run(const ArgParser& args) {
  const Workload w = build_workload(args);
  const SimConfig c = build_config(args, w);
  const bool per_thread = args.get_flag("per-thread");
  const bool csv = args.get_flag("csv");
  OutputOptions out = parse_output_options(args);
  args.reject_unknown();

  if (out.format == Format::kJson) {
    // One point, one JSONL line: the same PointResult record the
    // experiment runner streams, so downstream tooling needs one schema.
    print_workload_header(w, c, out);
    const auto results =
        exp::run_points({exp::ExpPoint(c.policy_name(), w, c)}, out.runner());
    return results.front().ok ? 0 : 1;
  }

  print_workload_header(w, c);
  std::printf("policy:   %s\n\n", c.policy_name().c_str());

  const RunMetrics m = simulate(w, c);
  std::printf("%s", m.summary().c_str());
  std::printf("response p50/p99/p99.9: %.1f / %.1f / %.1f ticks\n",
              m.response_quantile(0.50), m.response_quantile(0.99),
              m.response_quantile(0.999));

  if (per_thread) {
    exp::Table t({"thread", "refs", "hits", "misses", "completion",
                  "mean_response", "max_response"});
    for (std::size_t i = 0; i < m.per_thread.size(); ++i) {
      const ThreadMetrics& tm = m.per_thread[i];
      t.row() << static_cast<std::uint64_t>(i) << tm.refs << tm.hits
              << tm.misses << tm.completion_tick << tm.response.mean()
              << tm.response.max();
    }
    std::printf("\n");
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print_text(std::cout);
    }
  }
  return 0;
}

int cmd_compare(const ArgParser& args) {
  const Workload w = build_workload(args);
  SimConfig base = build_config(args, w);
  const bool legacy_csv = args.get_flag("csv");
  OutputOptions out = parse_output_options(args);
  if (legacy_csv && out.format == Format::kText) {
    out.format = Format::kCsv;  // back-compat alias for --format csv
  }
  args.reject_unknown();
  print_workload_header(w, base, out);
  if (out.format == Format::kText) {
    std::printf("\n");
  }

  std::vector<SimConfig> configs;
  {
    SimConfig c = base;
    c.arbitration = ArbitrationKind::kFifo;
    c.remap_scheme = RemapScheme::kNone;
    c.remap_period = 0;
    c.adaptive_high_depth = 0;
    c.adaptive_low_depth = 0;
    configs.push_back(c);
    c.arbitration = ArbitrationKind::kFrFcfs;
    configs.push_back(c);
    c.arbitration = ArbitrationKind::kPriority;
    configs.push_back(c);
    c.remap_scheme = RemapScheme::kDynamic;
    c.remap_period = SimConfig::period_from_multiplier(
        base.hbm_slots, args.get_double("t-mult", 10.0));
    configs.push_back(c);
    c.remap_scheme = RemapScheme::kCycle;
    configs.push_back(c);
    // The hybrid policy rides along; keep any user-tuned thresholds from
    // --policy adaptive, else the 4q / q defaults.
    c.arbitration = ArbitrationKind::kAdaptive;
    c.remap_scheme = RemapScheme::kNone;
    if (base.arbitration == ArbitrationKind::kAdaptive) {
      c.adaptive_high_depth = base.adaptive_high_depth;
      c.adaptive_low_depth = base.adaptive_low_depth;
    } else {
      c.adaptive_high_depth = 4 * base.num_channels;
      c.adaptive_low_depth = base.num_channels;
    }
    configs.push_back(c);
  }

  const auto results = exp::run_policies(w, configs, out.runner());
  exp::Table t({"policy", "makespan", "hit%", "mean_resp", "p99_resp",
                "inconsistency", "max_resp"});
  for (const auto& r : results) {
    const RunMetrics& m = r.metrics;
    t.row() << r.policy << m.makespan << m.hit_rate() * 100.0
            << m.mean_response() << m.response_quantile(0.99)
            << m.inconsistency() << m.max_response();
  }
  out.print(t);
  return 0;
}

int cmd_bounds(const ArgParser& args) {
  const Workload w = build_workload(args);
  const SimConfig base = build_config(args, w);
  args.reject_unknown();
  print_workload_header(w, base);

  const opt::MakespanBounds lb =
      opt::makespan_lower_bounds(w, base.hbm_slots, base.num_channels);
  std::printf("\nlower bounds: critical path %llu | channel congestion %llu\n",
              static_cast<unsigned long long>(lb.critical_path),
              static_cast<unsigned long long>(lb.channel_congestion));

  exp::Table t({"policy", "makespan", "ratio_to_bound"});
  for (const ArbitrationKind arb :
       {ArbitrationKind::kFifo, ArbitrationKind::kFrFcfs,
        ArbitrationKind::kPriority}) {
    SimConfig c = base;
    c.arbitration = arb;
    c.remap_scheme = RemapScheme::kNone;
    c.remap_period = 0;
    const RunMetrics m = simulate(w, c);
    t.row() << c.policy_name() << m.makespan
            << static_cast<double>(m.makespan) /
                   static_cast<double>(lb.lower());
  }
  t.print_text(std::cout);
  return 0;
}

int cmd_analyze(const ArgParser& args) {
  const Workload w = build_workload(args);
  args.reject_unknown();

  exp::Table t({"thread", "refs", "pages", "mean_dist", "k_50%", "k_10%", "k_1%"});
  // Distinct trace objects only (replicated workloads share them).
  std::set<const Trace*> seen;
  for (std::size_t i = 0; i < w.num_threads(); ++i) {
    const Trace* trace = &w.trace(i);
    if (!seen.insert(trace).second) {
      continue;
    }
    const TraceProfile p = profile_trace(*trace);
    t.row() << static_cast<std::uint64_t>(i) << p.refs << p.unique_pages
            << p.mean_stack_distance << p.k_for_half << p.k_for_tenth
            << p.k_for_hundredth;
  }
  t.print_text(std::cout);
  std::printf(
      "\n(distinct traces only; replicated threads share the same profile)\n");
  return 0;
}

/// `--engine list`: the capability registry, one row per engine.
int cmd_engine_list() {
  std::printf("%-6s  %-11s  %-8s  %-13s  %-8s  %s\n", "engine", "open-system",
              "paranoid", "fetch-ticks>1", "adaptive", "summary");
  for (const EngineCaps& e : engine_registry()) {
    std::printf("%-6s  %-11s  %-8s  %-13s  %-8s  %s  [%s]\n", e.name,
                e.supports_open_system ? "yes" : "no",
                e.supports_paranoid ? "yes" : "no",
                e.supports_fetch_ticks ? "yes" : "no",
                e.supports_adaptive ? "yes" : "no", e.summary, e.reference);
  }
  return 0;
}

/// Load an explicit arrival schedule: one non-negative tick per line,
/// non-decreasing; blank lines and '#' comments are ignored. Errors name
/// the offending line.
std::vector<Tick> load_arrival_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("serve: cannot open arrival trace '" + path + "'");
  }
  std::vector<Tick> schedule;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;
    }
    const std::size_t last = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(first, last - first + 1);
    const std::string where =
        "serve: arrival trace '" + path + "' line " + std::to_string(lineno);
    Tick tick = 0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), tick);
    if (ec != std::errc{} || end != token.data() + token.size()) {
      throw ConfigError(where + ": expected a non-negative arrival tick, got '" +
                        token + "'");
    }
    if (!schedule.empty() && tick < schedule.back()) {
      throw ConfigError(where + ": arrival tick " + std::to_string(tick) +
                        " is before the previous arrival at " +
                        std::to_string(schedule.back()) +
                        " (the schedule must be non-decreasing)");
    }
    schedule.push_back(tick);
  }
  if (schedule.empty()) {
    throw ConfigError("serve: arrival trace '" + path +
                      "' contains no arrivals");
  }
  return schedule;
}

int cmd_serve(const ArgParser& args) {
  // Reject negatives before the unsigned casts below can wrap them into
  // huge (and validation-passing) values.
  for (const char* flag : {"tenants", "workers", "duration", "slo",
                           "max-pending", "request-pages", "request-refs",
                           "on-ticks", "off-ticks", "max-ticks",
                           "starvation-mult"}) {
    if (args.has(flag) && args.get_int(flag, 0) < 0) {
      throw ConfigError("serve: --" + std::string(flag) +
                        " must be non-negative");
    }
  }
  const auto tenants = static_cast<std::size_t>(args.get_int("tenants", 2));
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 4));
  const Tick duration = static_cast<Tick>(args.get_int("duration", 50'000));

  serve::ArrivalSpec arrival;
  arrival.kind = serve::parse_arrival(
      args.get("arrival", args.has("arrival-trace") ? "trace" : "poisson"));
  if (arrival.kind == serve::ArrivalKind::kTrace) {
    const std::string path = args.get("arrival-trace", "");
    if (path.empty()) {
      throw ConfigError(
          "serve: --arrival trace needs a schedule file: --arrival-trace "
          "<file> (one non-decreasing arrival tick per line)");
    }
    arrival.schedule = load_arrival_trace(path);
  } else if (args.has("arrival-trace")) {
    throw ConfigError("serve: --arrival-trace requires --arrival trace (got '" +
                      args.get("arrival", "") + "')");
  }
  arrival.rate = args.get_double("rate", 0.05);
  arrival.on_ticks = static_cast<Tick>(args.get_int("on-ticks", 1000));
  arrival.off_ticks = static_cast<Tick>(args.get_int("off-ticks", 1000));

  serve::RequestShape shape;
  shape.pages = static_cast<LocalPage>(args.get_int("request-pages", 256));
  shape.refs = static_cast<std::uint32_t>(args.get_int("request-refs", 16));
  shape.zipf_s = args.get_double("request-zipf", 0.0);

  serve::ServingConfig cfg;
  for (std::size_t i = 0; i < tenants; ++i) {
    serve::TenantSpec t;
    t.name = "tenant" + std::to_string(i);
    t.workers = workers;
    t.priority_class = static_cast<std::uint32_t>(i);
    t.arrival = arrival;
    t.shape = shape;
    t.slo_ticks = static_cast<Tick>(args.get_int("slo", 64));
    t.max_pending = static_cast<std::uint32_t>(args.get_int("max-pending", 64));
    t.starvation_multiplier = static_cast<std::uint32_t>(
        args.get_int("starvation-mult",
                     static_cast<std::int64_t>(t.starvation_multiplier)));
    cfg.tenants.push_back(std::move(t));
  }
  cfg.duration = duration;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Default machine: contended at half the per-worker footprints, and
  // a generous drain window before truncation kicks in.
  const std::uint64_t default_k = std::max<std::uint64_t>(
      8, static_cast<std::uint64_t>(tenants) * workers * shape.pages / 2);
  cfg.sim = build_machine_config(args, default_k);
  cfg.sim.max_ticks =
      static_cast<Tick>(args.get_int("max-ticks", static_cast<std::int64_t>(duration * 4)));
  cfg.sim.open_system = true;
  cfg.validate();

  const OutputOptions out = parse_output_options(args);
  if (out.format == Format::kCsv) {
    throw ConfigError("serve: --format csv is not supported (text|json)");
  }
  args.reject_unknown();

  const serve::ServingMetrics m = serve::serve(cfg);
  if (out.format == Format::kJson) {
    std::cout << serve::to_json(m) << "\n";
  } else {
    std::printf("policy:   %s | tenants %zu x %u workers | duration %llu\n\n",
                cfg.sim.policy_name().c_str(), tenants, workers,
                static_cast<unsigned long long>(duration));
    std::printf("%s", m.summary().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.get("engine", "") == "list") {
      return cmd_engine_list();
    }
    if (args.positional().empty()) {
      return usage();
    }
    const std::string& cmd = args.positional().front();
    if (cmd == "run") {
      return cmd_run(args);
    }
    if (cmd == "compare") {
      return cmd_compare(args);
    }
    if (cmd == "bounds") {
      return cmd_bounds(args);
    }
    if (cmd == "analyze") {
      return cmd_analyze(args);
    }
    if (cmd == "serve") {
      return cmd_serve(args);
    }
    return usage();
  } catch (const hbmsim::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
