// Quickstart: capture a memory trace from instrumented code, run it
// through the HBM+DRAM simulator under three far-channel arbitration
// policies, and compare the outcomes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/simulator.h"
#include "trace/logging_iterator.h"
#include "trace/page_mapper.h"
#include "util/rng.h"

int main() {
  using namespace hbmsim;

  // 1. Capture a trace the way the paper instruments GNU sort (§3.2):
  //    wrap the data in logging iterators and hand them to std::sort.
  //    Every dereference is recorded and mapped to a 4 KiB page.
  PageMapper mapper(/*page_bytes=*/4096);
  Xoshiro256StarStar rng(42);
  std::vector<std::int32_t> data(20'000);
  for (auto& x : data) {
    x = static_cast<std::int32_t>(rng() >> 40);
  }
  TracedBuffer<std::int32_t> buffer(std::move(data), /*virtual_base=*/0x10000,
                                    &mapper);
  std::sort(buffer.begin(), buffer.end());

  auto trace = std::make_shared<Trace>(mapper.take_trace());
  std::printf("captured %zu page references over %u distinct pages\n\n",
              trace->size(), trace->num_pages());

  // 2. Replay the trace on 16 cores sharing one simulated HBM. Pages are
  //    namespaced per core (the model's disjointness property), so one
  //    trace object serves all cores.
  const std::size_t cores = 16;
  const Workload workload = Workload::replicate(trace, cores, "quickstart");

  // A scarce HBM — about 2.5 page slots per core — so the far channel
  // actually gets contended; one channel to DRAM.
  const std::uint64_t k = cores * trace->unique_pages() / 16;

  // 3. Compare the paper's three policies.
  for (const SimConfig& config :
       {SimConfig::fifo(k), SimConfig::priority(k),
        SimConfig::dynamic_priority(k, /*t_mult=*/10.0)}) {
    const RunMetrics m = simulate(workload, config);
    std::printf("policy: %s\n%s\n", config.policy_name().c_str(),
                m.summary().c_str());
  }

  std::printf(
      "reading the numbers: FIFO spreads HBM thinly (low inconsistency, "
      "poor makespan under contention); static Priority wins makespan but "
      "starves low-priority cores (huge inconsistency); Dynamic Priority "
      "keeps the makespan and removes most of the starvation.\n");
  return 0;
}
