// SpGEMM campaign: the paper's Dataset 2 end to end — generate random
// sparse matrices, run the instrumented TACO-style Gustavson kernel to
// capture traces, and sweep policies across thread counts.
//
// Usage: spgemm_campaign [n] [density] [max_threads]
//   n           matrix dimension        (default 200)
//   density     fraction of nonzeros    (default 0.10)
//   max_threads largest core count      (default 32)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/simulator.h"
#include "exp/table.h"
#include "workloads/spgemm.h"

int main(int argc, char** argv) {
  using namespace hbmsim;

  workloads::SpgemmOptions opts;
  opts.rows = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 200;
  opts.cols = opts.rows;
  opts.density = argc > 2 ? std::atof(argv[2]) : 0.10;
  const std::size_t max_threads = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;

  std::printf("SpGEMM campaign: %u x %u at %.0f%% density, up to %zu cores\n",
              opts.rows, opts.cols, opts.density * 100.0, max_threads);

  // Show what one traced run looks like (and that the kernel is right).
  const workloads::SpgemmRun one = workloads::run_traced_spgemm(opts);
  std::printf("one traced multiply: %zu page references, %llu output nnz\n\n",
              one.trace.size(),
              static_cast<unsigned long long>(one.product.nnz()));

  exp::Table table({"threads", "policy", "makespan", "hit%", "mean_response",
                    "inconsistency"});
  for (std::size_t p = 2; p <= max_threads; p *= 2) {
    const Workload w = workloads::make_spgemm_workload(p, opts, 4);
    // Contended HBM: one per-thread working set shared by p cores.
    const std::uint64_t k =
        std::max<std::uint64_t>(8, w.trace(0).unique_pages());
    for (const SimConfig& config :
         {SimConfig::fifo(k), SimConfig::priority(k),
          SimConfig::dynamic_priority(k, 10.0), SimConfig::cycle_priority(k, 10.0)}) {
      const RunMetrics m = simulate(w, config);
      table.row() << static_cast<std::uint64_t>(p) << config.policy_name()
                  << m.makespan << m.hit_rate() * 100.0 << m.mean_response()
                  << m.inconsistency();
    }
  }
  table.print_text(std::cout);

  std::printf(
      "\nexpected shape (paper Figures 2a/4a): FIFO competitive at low "
      "thread counts, Priority ahead at high thread counts, Dynamic "
      "Priority matching the winner everywhere with far lower "
      "inconsistency than static Priority.\n");
  return 0;
}
