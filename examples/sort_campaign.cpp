// Sort campaign: the paper's Dataset 1 — trace sorting kernels through
// logging iterators and study how the remap period T trades makespan
// against fairness (the Figure 5 / Table 1 story).
//
// Usage: sort_campaign [elements] [threads]
//   elements  integers per sort   (default 20000)
//   threads   core count          (default 16)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/simulator.h"
#include "exp/table.h"
#include "workloads/sort_trace.h"

int main(int argc, char** argv) {
  using namespace hbmsim;

  workloads::SortTraceOptions opts;
  opts.num_elements = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::size_t threads = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;

  std::printf("Sort campaign: %zu integers per core, %zu cores\n\n",
              opts.num_elements, threads);

  // Compare the access patterns of the available sort kernels.
  exp::Table algos({"algorithm", "trace_refs", "distinct_pages"});
  for (const auto algo :
       {workloads::SortAlgo::kMergeSort, workloads::SortAlgo::kQuickSort,
        workloads::SortAlgo::kStdSort, workloads::SortAlgo::kStdStableSort}) {
    workloads::SortTraceOptions o = opts;
    o.algo = algo;
    const Trace t = workloads::make_sort_trace(o);
    algos.row() << to_string(algo) << static_cast<std::uint64_t>(t.size())
                << static_cast<std::uint64_t>(t.num_pages());
  }
  algos.print_text(std::cout);

  // Remap-period sweep on the mergesort workload (paper Figure 5b).
  const Workload w = workloads::make_sort_workload(threads, opts, 4);
  // About one per-thread working set shared by all cores: contended.
  const std::uint64_t k = std::max<std::uint64_t>(8, w.trace(0).unique_pages());
  std::printf("\nremap-period sweep (k=%llu slots):\n",
              static_cast<unsigned long long>(k));

  exp::Table sweep({"policy", "makespan", "inconsistency", "mean_response"});
  const auto report = [&](const SimConfig& config) {
    const RunMetrics m = simulate(w, config);
    sweep.row() << config.policy_name() << m.makespan << m.inconsistency()
                << m.mean_response();
  };
  report(SimConfig::fifo(k));
  for (const double t_mult : {1.0, 5.0, 10.0, 50.0, 100.0}) {
    report(SimConfig::dynamic_priority(k, t_mult));
  }
  report(SimConfig::priority(k));
  sweep.print_text(std::cout);

  std::printf(
      "\nexpected shape (paper §4): inconsistency grows with T toward "
      "static Priority's; makespan is flat for T ≳ 10k — that plateau is "
      "the recommended operating range.\n");
  return 0;
}
