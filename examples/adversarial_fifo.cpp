// Adversarial demo: why FIFO far-channel arbitration is Ω(p)-competitive.
//
// Walks through the paper's Dataset 3 story (§3.2, §4, Figure 3) with a
// tick-by-tick peek at the simulator: all p cores cycle through U unique
// pages while HBM holds only a quarter of the aggregate working set.
// FIFO shares the channel fairly, so every core's page dies before reuse
// and nobody ever hits; Priority starves the low cores so the top cores'
// working sets survive.
//
// Usage: adversarial_fifo [threads] [unique_pages] [repetitions]
#include <cstdio>
#include <cstdlib>

#include "core/simulator.h"
#include "workloads/adversarial.h"

int main(int argc, char** argv) {
  using namespace hbmsim;

  const std::size_t p = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  workloads::AdversarialOptions opts;
  opts.unique_pages = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 256;
  opts.repetitions = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 100;

  const Workload w = workloads::make_adversarial_workload(p, opts);
  const std::uint64_t k = workloads::adversarial_hbm_slots(p, opts, 0.25);
  std::printf(
      "adversarial cyclic workload: %zu cores x (1..%u repeated %u times), "
      "HBM k=%llu slots (1/4 of the %llu unique pages)\n\n",
      p, opts.unique_pages, opts.repetitions,
      static_cast<unsigned long long>(k),
      static_cast<unsigned long long>(w.total_unique_pages()));

  // Step the FIFO simulation a little to show the thrash in motion.
  Simulator sim(w, SimConfig::fifo(k));
  for (int i = 0; i < 2000 && !sim.finished(); ++i) {
    sim.step();
  }
  std::printf("FIFO after %llu ticks: %llu served, hit rate %.1f%% — the "
              "cache is 'stretched, like butter scraped over too much "
              "bread'\n",
              static_cast<unsigned long long>(sim.now()),
              static_cast<unsigned long long>(sim.metrics().response.count()),
              sim.metrics().hit_rate() * 100.0);

  const RunMetrics fifo = simulate(w, SimConfig::fifo(k));
  const RunMetrics prio = simulate(w, SimConfig::priority(k));
  const RunMetrics dyn = simulate(w, SimConfig::dynamic_priority(k, 10.0));

  std::printf("\nfull runs:\n");
  std::printf("  fifo:             makespan %12llu  hit rate %5.1f%%\n",
              static_cast<unsigned long long>(fifo.makespan),
              fifo.hit_rate() * 100.0);
  std::printf("  priority:         makespan %12llu  hit rate %5.1f%%  (%.1fx faster)\n",
              static_cast<unsigned long long>(prio.makespan),
              prio.hit_rate() * 100.0,
              static_cast<double>(fifo.makespan) /
                  static_cast<double>(prio.makespan));
  std::printf("  dynamic-priority: makespan %12llu  hit rate %5.1f%%  (%.1fx faster)\n",
              static_cast<unsigned long long>(dyn.makespan),
              dyn.hit_rate() * 100.0,
              static_cast<double>(fifo.makespan) /
                  static_cast<double>(dyn.makespan));

  std::printf(
      "\nat the paper's largest thread counts this gap reaches 40x; because "
      "Priority is O(1)-competitive (Das et al., Theorem 1) no trace can "
      "invert it asymptotically.\n");
  return 0;
}
