// miss_curve: stack-distance analysis of the paper's workloads — prints
// each trace's miss-ratio curve and the cache sizes needed to reach 50%,
// 10% and 1% miss ratios. This is the tool for siting the HBM sizes of a
// Figure 2 style sweep: contention starts where k falls below
// p × (the k_50 column).
//
// Usage: miss_curve [file.trace|file.btrace]
//   With no argument, profiles the built-in generators (sort, SpGEMM,
//   dense MM, cyclic adversary, Zipf).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/table.h"
#include "trace/analysis.h"
#include "trace/trace_io.h"
#include "workloads/adversarial.h"
#include "workloads/dense_mm.h"
#include "workloads/sort_trace.h"
#include "workloads/spgemm.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

void profile(exp::Table& table, const std::string& name, const Trace& trace) {
  const TraceProfile p = profile_trace(trace);
  const MissCurve curve = compute_miss_curve(trace);
  table.row() << name << p.refs << p.unique_pages
              << p.mean_stack_distance << p.k_for_half << p.k_for_tenth
              << p.k_for_hundredth
              << curve.miss_ratio_at(p.unique_pages) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Table table({"trace", "refs", "pages", "mean_dist", "k_50%", "k_10%",
                    "k_1%", "full-cache miss%"});
  table.set_precision(2);

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      profile(table, argv[i], load_trace(argv[i]));
    }
  } else {
    workloads::SortTraceOptions sort_opts;
    sort_opts.num_elements = 20'000;
    profile(table, "mergesort-20k", workloads::make_sort_trace(sort_opts));
    sort_opts.algo = workloads::SortAlgo::kQuickSort;
    profile(table, "quicksort-20k", workloads::make_sort_trace(sort_opts));

    workloads::SpgemmOptions spgemm_opts;
    spgemm_opts.rows = spgemm_opts.cols = 200;
    profile(table, "spgemm-200", workloads::make_spgemm_trace(spgemm_opts));

    workloads::DenseMmOptions mm_opts;
    mm_opts.n = 64;
    profile(table, "dense-mm-64", workloads::make_dense_mm_trace(mm_opts));

    profile(table, "cyclic-256x100",
            workloads::make_cyclic_trace({.unique_pages = 256, .repetitions = 100}));
    profile(table, "zipf-1.0",
            workloads::make_zipf_trace(1024, 100'000, 1.0, 1));
  }
  table.print_text(std::cout);

  std::printf(
      "\nhow to read this: the cyclic adversary needs its *entire*\n"
      "footprint cached before the miss ratio moves at all — the cliff\n"
      "that makes FIFO Ω(p)-competitive. The instrumented kernels have\n"
      "gentle curves, which is why Figure 2's crossover is soft.\n");
  return 0;
}
