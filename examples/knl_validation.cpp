// KNL validation (paper §5) on the simulated machine: run the two
// microbenchmarks — pointer chasing for latency and GLUPS for bandwidth —
// across flat-DDR / flat-HBM / cache-mode configurations and check the
// four model properties.
//
// Usage: knl_validation [capacity_shift]
//   capacity_shift  divide all machine capacities by 2^shift (default 6;
//                   pass 0 for the full 16 GiB MCDRAM machine — slower).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "exp/table.h"
#include "knl/glups.h"
#include "knl/pointer_chase.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using knl::MemoryMode;

  const std::uint32_t shift =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  const std::uint64_t min_bytes = (16ull << 20) >> shift;
  const std::uint64_t max_bytes = (64ull << 30) >> shift;

  std::printf("simulated KNL (capacities / 2^%u): MCDRAM %s\n\n", shift,
              format_bytes((16ull << 30) >> shift).c_str());

  std::printf("pointer-chase latency (ns per dereference):\n");
  exp::Table lat({"array", "flat-ddr", "flat-hbm", "cache-mode", "hybrid"});
  for (std::uint64_t bytes = min_bytes; bytes <= max_bytes; bytes *= 4) {
    std::vector<std::string> row{format_bytes(bytes << shift)};
    for (const MemoryMode mode :
         {MemoryMode::kFlatDdr, MemoryMode::kFlatHbm, MemoryMode::kCacheMode,
          MemoryMode::kHybrid}) {
      const auto machine = shift == 0 ? knl::MachineConfig::knl(mode)
                                      : knl::MachineConfig::knl_scaled(mode, shift);
      if (mode == MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        row.push_back("-");
        continue;
      }
      row.push_back(format_fixed(
          knl::run_pointer_chase(machine, bytes, 200'000).avg_ns, 1));
    }
    lat.add_row(std::move(row));
  }
  lat.print_text(std::cout);

  std::printf("\nGLUPS bandwidth (MiB/s, full-capacity machine):\n");
  exp::Table bw({"array", "flat-ddr", "flat-hbm", "cache-mode", "hybrid"});
  for (std::uint64_t bytes = 2ull << 30; bytes <= 64ull << 30; bytes *= 2) {
    std::vector<std::string> row{format_bytes(bytes)};
    for (const MemoryMode mode :
         {MemoryMode::kFlatDdr, MemoryMode::kFlatHbm, MemoryMode::kCacheMode,
          MemoryMode::kHybrid}) {
      const auto machine = knl::MachineConfig::knl(mode);
      if (mode == MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        row.push_back("-");
        continue;
      }
      row.push_back(format_count(static_cast<std::uint64_t>(
          knl::run_glups(machine, bytes).bandwidth_mibs)));
    }
    bw.add_row(std::move(row));
  }
  bw.print_text(std::cout);

  std::printf(
      "\nthe four §5 properties, visible above:\n"
      "  1. flat HBM latency ≈ flat DRAM + ~24 ns (similar latency)\n"
      "  2. HBM bandwidth ≈ 4.7x DRAM bandwidth\n"
      "  3. cache-mode misses beyond MCDRAM pay roughly double latency\n"
      "  4. cache-mode bandwidth collapses once the array exceeds MCDRAM\n"
      "(hybrid mode, an extension, behaves like cache mode with half the\n"
      " MCDRAM: its knees sit one column of array sizes earlier)\n");
  return 0;
}
