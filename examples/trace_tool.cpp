// trace_tool: generate, inspect, convert, and simulate trace files — the
// command-line face of the trace substrate.
//
// Usage:
//   trace_tool gen <kind> <out.trace|out.btrace> [args...]
//       kinds: sort <n>, spgemm <n> <density>, cyclic <unique> <reps>,
//              uniform <pages> <len>, zipf <pages> <len> <s>
//   trace_tool info <file>
//   trace_tool convert <in> <out>        (text <-> binary by extension)
//   trace_tool sim <file> <threads> <k> <policy>
//       policies: fifo | priority | dynamic | cycle
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/simulator.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "workloads/adversarial.h"
#include "workloads/sort_trace.h"
#include "workloads/spgemm.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen sort <n> <out>\n"
               "  trace_tool gen spgemm <n> <density> <out>\n"
               "  trace_tool gen cyclic <unique> <reps> <out>\n"
               "  trace_tool gen uniform <pages> <len> <out>\n"
               "  trace_tool gen zipf <pages> <len> <s> <out>\n"
               "  trace_tool info <file>\n"
               "  trace_tool convert <in> <out>\n"
               "  trace_tool sim <file> <threads> <k> "
               "<fifo|priority|dynamic|cycle>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string kind = argv[0];
  Trace trace;
  if (kind == "sort" && argc == 3) {
    workloads::SortTraceOptions opts;
    opts.num_elements = std::strtoull(argv[1], nullptr, 10);
    trace = workloads::make_sort_trace(opts);
  } else if (kind == "spgemm" && argc == 4) {
    workloads::SpgemmOptions opts;
    opts.rows = opts.cols = static_cast<std::uint32_t>(std::atoi(argv[1]));
    opts.density = std::atof(argv[2]);
    trace = workloads::make_spgemm_trace(opts);
  } else if (kind == "cyclic" && argc == 4) {
    trace = workloads::make_cyclic_trace(
        {static_cast<std::uint32_t>(std::atoi(argv[1])),
         static_cast<std::uint32_t>(std::atoi(argv[2]))});
  } else if (kind == "uniform" && argc == 4) {
    trace = workloads::make_uniform_trace(
        static_cast<std::uint32_t>(std::atoi(argv[1])),
        std::strtoull(argv[2], nullptr, 10), 1);
  } else if (kind == "zipf" && argc == 5) {
    trace = workloads::make_zipf_trace(
        static_cast<std::uint32_t>(std::atoi(argv[1])),
        std::strtoull(argv[2], nullptr, 10), std::atof(argv[3]), 1);
  } else {
    return usage();
  }
  const char* out = argv[argc - 1];
  save_trace(trace, out);
  std::printf("wrote %zu refs / %u pages to %s\n", trace.size(),
              trace.num_pages(), out);
  return 0;
}

int cmd_info(const char* path) {
  const Trace t = load_trace(path);
  std::printf("file:          %s\n", path);
  std::printf("references:    %zu\n", t.size());
  std::printf("page space:    %u\n", t.num_pages());
  std::printf("unique pages:  %zu\n", t.unique_pages());
  std::printf("coalesced len: %zu\n", t.coalesced().size());
  return 0;
}

int cmd_convert(const char* in, const char* out) {
  save_trace(load_trace(in), out);
  std::printf("converted %s -> %s\n", in, out);
  return 0;
}

int cmd_sim(const char* path, const char* threads_s, const char* k_s,
            const char* policy) {
  auto trace = std::make_shared<Trace>(load_trace(path));
  const std::size_t threads = std::strtoull(threads_s, nullptr, 10);
  const std::uint64_t k = std::strtoull(k_s, nullptr, 10);
  const Workload w = Workload::replicate(std::move(trace), threads);

  SimConfig config;
  if (std::strcmp(policy, "fifo") == 0) {
    config = SimConfig::fifo(k);
  } else if (std::strcmp(policy, "priority") == 0) {
    config = SimConfig::priority(k);
  } else if (std::strcmp(policy, "dynamic") == 0) {
    config = SimConfig::dynamic_priority(k, 10.0);
  } else if (std::strcmp(policy, "cycle") == 0) {
    config = SimConfig::cycle_priority(k, 10.0);
  } else {
    return usage();
  }
  const RunMetrics m = simulate(w, config);
  std::printf("policy: %s\n%s", config.policy_name().c_str(),
              m.summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      return usage();
    }
    const std::string cmd = argv[1];
    if (cmd == "gen") {
      return cmd_gen(argc - 2, argv + 2);
    }
    if (cmd == "info" && argc == 3) {
      return cmd_info(argv[2]);
    }
    if (cmd == "convert" && argc == 4) {
      return cmd_convert(argv[2], argv[3]);
    }
    if (cmd == "sim" && argc == 6) {
      return cmd_sim(argv[2], argv[3], argv[4], argv[5]);
    }
    return usage();
  } catch (const hbmsim::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
