// Extension ablation: non-disjoint access sequences (§6.1 future work).
//
// The model's Property 1 assumes each core's pages are disjoint. Real
// parallel programs share data; with SimConfig::shared_pages the cores
// share one page namespace and a single DRAM fetch satisfies every core
// waiting on that page. This harness quantifies what sharing changes:
// as the overlap between cores' reference streams grows, shared mode
// deduplicates fetches (fetches << misses) and the FIFO-vs-Priority gap
// compresses, because the far channel stops being the bottleneck.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common.h"
#include "core/simulator.h"
#include "util/format.h"
#include "exp/sweep.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

/// Workload in which a fraction of each core's references fall in a
/// common shared region and the rest in a private region (realised as
/// page-id ranges: [0, shared_pages) common, the rest per-core distinct
/// in shared mode because ids are offset per core).
Workload overlap_workload(std::size_t p, std::uint32_t pages_per_core,
                          double overlap, std::size_t length,
                          std::uint64_t seed) {
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  const auto shared_count = static_cast<std::uint32_t>(
      static_cast<double>(pages_per_core) * overlap);
  Xoshiro256StarStar rng(seed);
  for (std::size_t t = 0; t < p; ++t) {
    std::vector<LocalPage> refs(length);
    for (auto& r : refs) {
      const auto page = static_cast<LocalPage>(rng.uniform(pages_per_core));
      // Pages below the overlap threshold are common to all cores; the
      // rest are remapped into a per-core range.
      r = page < shared_count
              ? page
              : static_cast<LocalPage>(shared_count +
                                       t * (pages_per_core - shared_count) +
                                       (page - shared_count));
    }
    traces.push_back(std::make_shared<Trace>(Trace(std::move(refs))));
  }
  return Workload(std::move(traces), "overlap");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation: shared (non-disjoint) page namespaces", scales, bo);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const std::size_t p = paper ? 64 : 16;
  const std::uint32_t pages_per_core = paper ? 2048 : 256;
  const std::size_t length = paper ? 500'000 : 40'000;
  const std::uint64_t k = pages_per_core * 2;  // two working sets of HBM

  std::vector<exp::ExpPoint> points;
  const std::vector<double> overlaps = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (const double overlap : overlaps) {
    // Generation is deterministic in (p, pages, overlap, length, seed), so
    // each worker can regenerate its own copy via the factory.
    const auto factory = [p, pages_per_core, overlap, length] {
      return overlap_workload(p, pages_per_core, overlap, length, 7);
    };
    for (const ArbitrationKind arb :
         {ArbitrationKind::kFifo, ArbitrationKind::kPriority}) {
      SimConfig c;
      c.hbm_slots = k;
      c.arbitration = arb;
      c.shared_pages = true;
      points.emplace_back("shared overlap=" + format_fixed(overlap, 2) + " " +
                              to_string(arb),
                          factory, c);
    }
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"overlap", "policy", "makespan", "misses", "fetches",
                    "piggyback%", "hit%"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunMetrics& m = results[i].metrics;
    const double piggyback =
        m.misses == 0 ? 0.0
                      : 100.0 * static_cast<double>(m.misses - m.fetches) /
                            static_cast<double>(m.misses);
    table.row() << format_fixed(overlaps[i / 2], 2)
                << to_string(results[i].config.arbitration) << m.makespan
                << m.misses << m.fetches << piggyback << m.hit_rate() * 100.0;
  }
  bo.print(table);

  note(bo,
       "\nreading guide: at overlap 0 the run degenerates to the disjoint "
       "model (fetches == misses); growing overlap turns misses into "
       "piggybacks and shrinks every makespan.\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
