// Figure 5 (a, b): the inconsistency–makespan trade-off across permutation
// intervals T for FIFO, Priority, Dynamic Priority and Cycle Priority.
//
// Paper result: FIFO has the highest makespan (at the plotted thread
// count) and the lowest inconsistency; Priority has the best makespan and
// by far the highest inconsistency; for T in roughly 10k..100k (Dynamic)
// and 5k..100k (Cycle), "most of the inconsistency can be removed with
// minimal loss in performance".
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const Workload& w, std::uint64_t k,
                 const BenchOptions& bo) {
  note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, w.num_threads(),
       static_cast<unsigned long long>(k));

  std::vector<SimConfig> configs;
  configs.push_back(SimConfig::fifo(k));
  for (const double t_mult : {1.0, 5.0, 10.0, 100.0}) {
    configs.push_back(SimConfig::dynamic_priority(k, t_mult));
  }
  for (const double t_mult : {1.0, 5.0, 10.0, 100.0}) {
    configs.push_back(SimConfig::cycle_priority(k, t_mult));
  }
  configs.push_back(SimConfig::priority(k));

  exp::Table table(
      {"policy", "makespan", "inconsistency", "mean_response", "max_response"});
  const auto results = exp::run_policies(w, configs, bo.runner());
  for (const auto& r : results) {
    table.row() << r.policy << r.metrics.makespan << r.metrics.inconsistency()
                << r.metrics.mean_response()
                << static_cast<std::uint64_t>(r.metrics.max_response());
  }
  bo.print(table);

  const RunMetrics& fifo = results.front().metrics;
  const RunMetrics& prio = results.back().metrics;
  const RunMetrics& dyn10k = results[3].metrics;  // Dynamic T = 10k
  note(bo,
       "summary: Priority inconsistency %.3f vs FIFO %.3f; Dynamic(T=10k) "
       "inconsistency %.3f at makespan %.2fx of Priority's\n",
       prio.inconsistency(), fifo.inconsistency(), dyn10k.inconsistency(),
       static_cast<double>(dyn10k.makespan) /
           static_cast<double>(prio.makespan));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Figure 5: inconsistency vs makespan across permutation intervals",
         scales, bo);
  Stopwatch watch;

  // One contended operating point per dataset (the paper plots a fixed
  // configuration per subfigure).
  const std::size_t p =
      scales.scale == BenchScale::kPaper ? 50 : 24;
  const Workload spgemm = spgemm_workload(scales, p);
  const Workload sort = sort_workload(scales, p);

  run_dataset("Figure 5a: SpGEMM", spgemm, contended_k(scales, spgemm), bo);
  run_dataset("Figure 5b: GNU sort", sort, contended_k(scales, sort), bo);

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
