// Empirical competitive ratios: policy makespan / offline lower bound.
//
// Theorems 1 and 3 say Priority is O(1)- (resp. O(q)-) competitive;
// Theorem 2 says FCFS is Θ(p/ds) in the worst case. The offline bound is
// max(critical path, channel congestion) computed from per-thread Belady
// MIN (see src/opt/lower_bound.h) — every policy's makespan provably
// exceeds it, so the printed ratio upper-bounds the true competitive
// ratio. On the adversarial trace FIFO's ratio grows ~linearly with p
// while Priority's stays flat; FR-FCFS (the shipped hardware policy)
// tracks FIFO.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "opt/lower_bound.h"
#include "workloads/adversarial.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const exp::WorkloadFactory& factory,
                 const std::vector<std::size_t>& thread_counts,
                 const std::function<std::uint64_t(const Workload&)>& pick_k,
                 const BenchOptions& bo) {
  note(bo, "\n--- %s ---\n", title);

  // Lower bounds are computed serially per thread count (Belady MIN over
  // the whole workload); the 4 policy simulations per p go on the runner.
  std::vector<exp::ExpPoint> points;
  std::vector<opt::MakespanBounds> bounds;
  std::vector<std::uint64_t> ks;
  for (const std::size_t p : thread_counts) {
    const Workload w = factory(p);
    const std::uint64_t k = pick_k(w);
    ks.push_back(k);
    bounds.push_back(opt::makespan_lower_bounds(w, k, 1));

    SimConfig frfcfs = SimConfig::fifo(k);
    frfcfs.arbitration = ArbitrationKind::kFrFcfs;
    const std::string tag = "cr p=" + std::to_string(p) + " ";
    points.emplace_back(tag + "fifo", w, SimConfig::fifo(k));
    points.emplace_back(tag + "fr-fcfs", w, frfcfs);
    points.emplace_back(tag + "priority", w, SimConfig::priority(k));
    points.emplace_back(tag + "dynamic", w, SimConfig::dynamic_priority(k, 10.0));
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"threads", "k", "lower_bound", "fifo", "fr-fcfs", "priority",
                    "dynamic(T=10k)"});
  table.set_precision(2);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const auto ratio = [&](std::size_t j) {
      return static_cast<double>(results[4 * i + j].metrics.makespan) /
             static_cast<double>(bounds[i].lower());
    };
    table.row() << static_cast<std::uint64_t>(thread_counts[i]) << ks[i]
                << bounds[i].lower() << ratio(0) << ratio(1) << ratio(2)
                << ratio(3);
  }
  bo.print(table);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Competitive ratios vs offline lower bound (Theorems 1-3)", scales,
         bo);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const workloads::AdversarialOptions adv{.unique_pages = 64,
                                          .repetitions = 25};
  run_dataset(
      "adversarial cyclic trace (Theorem 2's bad case)",
      [&](std::size_t p) { return workloads::make_adversarial_workload(p, adv); },
      paper ? std::vector<std::size_t>{8, 16, 32, 64, 128, 256}
            : std::vector<std::size_t>{8, 16, 32, 64},
      [&](const Workload& w) {
        return workloads::adversarial_hbm_slots(w.num_threads(), adv, 0.25);
      },
      bo);

  run_dataset(
      "GNU sort (a benign workload: all ratios stay small)",
      [&](std::size_t p) { return sort_workload(scales, p); },
      paper ? std::vector<std::size_t>{8, 32, 100}
            : std::vector<std::size_t>{4, 8, 16},
      [&](const Workload& w) { return contended_k(scales, w); }, bo);

  note(bo,
       "\nreading guide: Priority's column stays O(1) as p grows; FIFO and "
       "FR-FCFS climb ~linearly on the adversarial trace — Theorem 2 in "
       "action.\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
