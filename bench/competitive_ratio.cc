// Empirical competitive ratios: policy makespan / offline lower bound.
//
// Theorems 1 and 3 say Priority is O(1)- (resp. O(q)-) competitive;
// Theorem 2 says FCFS is Θ(p/ds) in the worst case. The offline bound is
// max(critical path, channel congestion) computed from per-thread Belady
// MIN (see src/opt/lower_bound.h) — every policy's makespan provably
// exceeds it, so the printed ratio upper-bounds the true competitive
// ratio. On the adversarial trace FIFO's ratio grows ~linearly with p
// while Priority's stays flat; FR-FCFS (the shipped hardware policy)
// tracks FIFO.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "opt/lower_bound.h"
#include "workloads/adversarial.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const exp::WorkloadFactory& factory,
                 const std::vector<std::size_t>& thread_counts,
                 const std::function<std::uint64_t(const Workload&)>& pick_k) {
  std::printf("\n--- %s ---\n", title);
  exp::Table table({"threads", "k", "lower_bound", "fifo", "fr-fcfs", "priority",
                    "dynamic(T=10k)"});
  table.set_precision(2);
  for (const std::size_t p : thread_counts) {
    const Workload w = factory(p);
    const std::uint64_t k = pick_k(w);
    const opt::MakespanBounds lb = opt::makespan_lower_bounds(w, k, 1);

    const auto ratio = [&](const SimConfig& cfg) {
      const RunMetrics m = simulate(w, cfg);
      return static_cast<double>(m.makespan) /
             static_cast<double>(lb.lower());
    };
    SimConfig frfcfs = SimConfig::fifo(k);
    frfcfs.arbitration = ArbitrationKind::kFrFcfs;

    table.row() << static_cast<std::uint64_t>(p) << k << lb.lower()
                << ratio(SimConfig::fifo(k)) << ratio(frfcfs)
                << ratio(SimConfig::priority(k))
                << ratio(SimConfig::dynamic_priority(k, 10.0));
  }
  table.print_text(std::cout);
}

}  // namespace

int main() {
  const Scales scales = current_scales();
  banner("Competitive ratios vs offline lower bound (Theorems 1-3)", scales);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const workloads::AdversarialOptions adv{.unique_pages = 64,
                                          .repetitions = 25};
  run_dataset(
      "adversarial cyclic trace (Theorem 2's bad case)",
      [&](std::size_t p) { return workloads::make_adversarial_workload(p, adv); },
      paper ? std::vector<std::size_t>{8, 16, 32, 64, 128, 256}
            : std::vector<std::size_t>{8, 16, 32, 64},
      [&](const Workload& w) {
        return workloads::adversarial_hbm_slots(w.num_threads(), adv, 0.25);
      });

  run_dataset(
      "GNU sort (a benign workload: all ratios stay small)",
      [&](std::size_t p) { return sort_workload(scales, p); },
      paper ? std::vector<std::size_t>{8, 32, 100}
            : std::vector<std::size_t>{4, 8, 16},
      [&](const Workload& w) { return contended_k(scales, w); });

  std::printf(
      "\nreading guide: Priority's column stays O(1) as p grows; FIFO and "
      "FR-FCFS climb ~linearly on the adversarial trace — Theorem 2 in "
      "action.\n");
  std::printf("total wall time: %.1fs\n", watch.seconds());
  return 0;
}
