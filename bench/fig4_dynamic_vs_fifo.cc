// Figure 4 (a, b): Dynamic Priority (random re-permutation every 10·k
// ticks) vs FIFO makespan ratio.
//
// Paper result: "Randomized remapping has mitigated any advantages that
// FIFO held in Figure 2" — at low thread counts Dynamic Priority performs
// as well as FIFO or better, and at high thread counts as well as or
// better than both FIFO and Priority.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const Scales& scales,
                 const exp::WorkloadFactory& factory, const BenchOptions& bo) {
  note(bo, "\n--- %s ---\n", title);
  exp::Table table({"threads", "hbm_slots", "fifo_makespan", "dynamic_makespan",
                    "fifo/dynamic"});
  const auto points = exp::ratio_sweep(
      factory, scales.thread_counts, hbm_sizes_for(scales, factory(1)),
      [](std::uint64_t k) { return SimConfig::fifo(k); },
      [](std::uint64_t k) {
        return SimConfig::dynamic_priority(k, /*t_mult=*/10.0);  // T = 10k
      },
      bo.runner());
  double min_ratio = 1e18;
  std::size_t fifo_wins = 0;
  for (const auto& pt : points) {
    table.row() << static_cast<std::uint64_t>(pt.num_threads) << pt.hbm_slots
                << pt.makespan_a << pt.makespan_b << pt.ratio();
    if (!std::isnan(pt.ratio())) {
      min_ratio = std::min(min_ratio, pt.ratio());
      // A "FIFO win" only counts when it is more than noise (> 5%).
      fifo_wins += pt.ratio() < 0.95 ? 1 : 0;
    }
  }
  bo.print(table);
  note(bo,
       "summary: min FIFO/Dynamic ratio %.3f; FIFO wins >5%% at %zu of %zu "
       "points (paper: none)\n",
       min_ratio, fifo_wins, points.size());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Figure 4: Dynamic Priority (T = 10k) vs FIFO", scales, bo);
  Stopwatch watch;

  run_dataset("Figure 4a: SpGEMM", scales,
              [&](std::size_t p) { return spgemm_workload(scales, p); }, bo);
  run_dataset("Figure 4b: GNU sort", scales,
              [&](std::size_t p) { return sort_workload(scales, p); }, bo);

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
