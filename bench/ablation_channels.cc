// Ablation A1: number of far channels q between HBM and DRAM (1..10) —
// the paper's multi-channel extension (§2, Theorem 3: Priority is
// O(q)-competitive) and part of its parameter sweep ("the number of
// channels to DRAM (1-10)").
//
// Expectation: more channels shrink every policy's makespan until the
// workload stops being channel-bound; the FIFO-vs-Priority gap narrows as
// q grows because queue order matters less when almost everything fits in
// flight.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation A1: channel count q = 1..10", scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 100 : 24;

  for (const auto& [title, workload] :
       {std::pair<const char*, Workload>{"SpGEMM", spgemm_workload(scales, p)},
        std::pair<const char*, Workload>{"GNU sort", sort_workload(scales, p)}}) {
    const std::uint64_t k = contended_k(scales, workload);
    note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, p,
         static_cast<unsigned long long>(k));

    std::vector<exp::ExpPoint> points;
    for (std::uint32_t q = 1; q <= 10; ++q) {
      const std::string tag = std::string("a1_") + title + " q=" +
                              std::to_string(q) + " ";
      points.emplace_back(tag + "fifo", workload, SimConfig::fifo(k, q));
      points.emplace_back(tag + "priority", workload, SimConfig::priority(k, q));
    }
    const auto results = exp::run_points(points, bo.runner());

    exp::Table table({"q", "fifo_makespan", "priority_makespan", "fifo/priority",
                      "priority_speedup_vs_q1"});
    Tick prio_q1 = 0;
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
      const RunMetrics& fifo = results[i].metrics;
      const RunMetrics& prio = results[i + 1].metrics;
      const std::uint32_t q = static_cast<std::uint32_t>(i / 2 + 1);
      if (q == 1) {
        prio_q1 = prio.makespan;
      }
      table.row() << q << fifo.makespan << prio.makespan
                  << static_cast<double>(fifo.makespan) /
                         static_cast<double>(prio.makespan)
                  << static_cast<double>(prio_q1) /
                         static_cast<double>(prio.makespan);
    }
    bo.print(table);
  }

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
