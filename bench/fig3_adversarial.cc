// Figure 3: FIFO vs Priority on the trace designed to be bad for FIFO —
// the cyclic sequence 1..256 repeated 100 times, with HBM sized to hold
// only 1/4 of the unique pages across all threads.
//
// Paper result: "FIFO yields a higher makespan by as much as 40×", the
// gap scaling linearly with thread count, because FIFO never hits while
// Priority lets the top k/U threads keep their working sets resident.
// The asymptotic ratio is p·R / (4R + p): reaching the paper's 40× needs
// p ≈ 256 at R = 100 repetitions, which the paper-scale sweep includes.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/adversarial.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Figure 3: adversarial cyclic trace (FIFO-killer)", scales, bo);
  Stopwatch watch;

  // The paper's exact trace: 256 unique pages, repeated 100 times.
  const workloads::AdversarialOptions opts{.unique_pages = 256,
                                           .repetitions = 100};
  const std::vector<std::size_t> threads =
      scales.scale == BenchScale::kPaper
          ? std::vector<std::size_t>{4, 8, 16, 32, 64, 128, 192, 256}
          : std::vector<std::size_t>{4, 8, 16, 32, 64};

  // "only 1/4 of the memory required to fit every page in HBM": k depends
  // on p, so the k axis is folded into the per-p config factories.
  std::vector<exp::ExpPoint> points;
  for (const std::size_t p : threads) {
    const std::uint64_t k = workloads::adversarial_hbm_slots(p, opts, 0.25);
    const std::string tag = "fig3 p=" + std::to_string(p) +
                            " k=" + std::to_string(k) + " ";
    const auto factory = [p, opts] {
      return workloads::make_adversarial_workload(p, opts);
    };
    points.emplace_back(tag + "fifo", factory, SimConfig::fifo(k));
    points.emplace_back(tag + "priority", factory, SimConfig::priority(k));
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"threads", "hbm_slots", "fifo_makespan", "priority_makespan",
                    "fifo/priority", "fifo_hit%", "priority_hit%"});
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunMetrics& fifo = results[i].metrics;
    const RunMetrics& prio = results[i + 1].metrics;
    const double ratio = static_cast<double>(fifo.makespan) /
                         static_cast<double>(prio.makespan);
    worst = std::max(worst, ratio);
    table.row() << static_cast<std::uint64_t>(threads[i / 2])
                << results[i].config.hbm_slots << fifo.makespan << prio.makespan
                << ratio << fifo.hit_rate() * 100.0 << prio.hit_rate() * 100.0;
  }
  bo.print(table);
  note(bo,
       "\nsummary: worst FIFO/Priority ratio %.1fx; the gap grows ~linearly in p"
       " (paper: up to 40x at its largest thread counts)\n",
       worst);
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
