// Table 2b: GLUPS bandwidth (272 threads, 1024-byte blocks) on the
// simulated KNL for flat-DDR, flat-HBM, and cache mode.
//
// Paper result (measured, our calibration target): HBM and cache mode
// sustain ~300,000-324,000 MiB/s vs DRAM's ~67,000-70,000 MiB/s (a
// 4.3-4.8× gap, Property 2); cache-mode bandwidth "drops off sharply once
// the working set exceeds HBM" (Property 4): 16 GiB → 272,787, 32 GiB →
// 148,989, 64 GiB → 146,600 MiB/s.
#include <array>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.h"
#include "knl/glups.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Table 2b: GLUPS bandwidth on simulated KNL (272 threads)", scales,
         bo);
  Stopwatch watch;

  // The bandwidth model is cheap even at the full 16 GiB MCDRAM, so both
  // scales run the paper's true sizes: 512 MiB .. 64 GiB. Same enumeration
  // as knl::glups_sweep, parallelized over (mode, size) points.
  struct Item {
    knl::MachineConfig machine;
    std::uint64_t bytes;
  };
  std::vector<Item> items;
  for (const knl::MemoryMode mode :
       {knl::MemoryMode::kFlatDdr, knl::MemoryMode::kFlatHbm,
        knl::MemoryMode::kCacheMode}) {
    const knl::MachineConfig machine = knl::MachineConfig::knl(mode);
    for (std::uint64_t bytes = 512ull << 20; bytes <= 64ull << 30; bytes *= 2) {
      if (mode == knl::MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        continue;
      }
      items.push_back({machine, bytes});
    }
  }

  std::vector<knl::GlupsResult> results(items.size());
  exp::parallel_for(items.size(), bo.jobs, [&](std::size_t i) {
    results[i] = knl::run_glups(items[i].machine, items[i].bytes);
  });

  if (bo.format == Format::kJson) {
    for (const auto& r : results) {
      exp::JsonObject obj;
      obj.field("bench", "glups");
      obj.field("mode", knl::to_string(r.mode));
      obj.field("array_bytes", r.array_bytes);
      obj.field("bandwidth_mibs", r.bandwidth_mibs);
      obj.field("mcdram_hit_rate", r.mcdram_hit_rate);
      std::cout << obj.str() << '\n';
    }
  }

  std::map<std::uint64_t, std::array<double, 3>> rows;
  std::map<std::uint64_t, double> hit_rates;
  for (const auto& r : results) {
    rows[r.array_bytes][static_cast<int>(r.mode)] = r.bandwidth_mibs;
    if (r.mode == knl::MemoryMode::kCacheMode) {
      hit_rates[r.array_bytes] = r.mcdram_hit_rate;
    }
  }

  exp::Table table({"Array Size", "DRAM (MiB/s)", "HBM (MiB/s)", "Cache (MiB/s)",
                    "MCDRAM hit%"});
  for (const auto& [bytes, bw] : rows) {
    const double hbm = bw[static_cast<int>(knl::MemoryMode::kFlatHbm)];
    table.row() << format_bytes(bytes)
                << format_count(static_cast<std::uint64_t>(
                       bw[static_cast<int>(knl::MemoryMode::kFlatDdr)]))
                << (hbm == 0.0 ? std::string("-")
                               : format_count(static_cast<std::uint64_t>(hbm)))
                << format_count(static_cast<std::uint64_t>(
                       bw[static_cast<int>(knl::MemoryMode::kCacheMode)]))
                << format_fixed(hit_rates[bytes] * 100.0, 1);
  }
  bo.print(table);

  constexpr int kHbm = static_cast<int>(knl::MemoryMode::kFlatHbm);
  constexpr int kDdr = static_cast<int>(knl::MemoryMode::kFlatDdr);
  constexpr int kCache = static_cast<int>(knl::MemoryMode::kCacheMode);
  const auto& at8g = rows[8ull << 30];
  const auto& at32g = rows[32ull << 30];
  note(bo, "\nchecks: HBM/DRAM bandwidth ratio at 8GiB: %.1fx (paper 4.8x)\n",
       at8g[kHbm] / at8g[kDdr]);
  note(bo, "        cache-mode drop 8GiB->32GiB: %.2fx (paper ~0.48x)\n",
       at32g[kCache] / at8g[kCache]);
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
