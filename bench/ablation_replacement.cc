// Ablation A2: HBM block-replacement policy (LRU vs FIFO vs CLOCK) under
// both arbitration schemes.
//
// The paper (and Das et al.) use LRU throughout and note that FIFO
// replacement preserves the competitive bounds (Corollary 1 machinery);
// CLOCK is the hardware-friendly LRU approximation. Expectation: LRU and
// CLOCK track each other closely; FIFO replacement loses a little on
// reuse-heavy workloads; the FIFO-vs-Priority arbitration story is
// unchanged by the replacement choice.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation A2: replacement policy (LRU / FIFO / CLOCK)", scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 100 : 16;

  for (const auto& [title, workload] :
       {std::pair<const char*, Workload>{"SpGEMM", spgemm_workload(scales, p)},
        std::pair<const char*, Workload>{"GNU sort", sort_workload(scales, p)}}) {
    const std::uint64_t k = contended_k(scales, workload);
    note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, p,
         static_cast<unsigned long long>(k));

    std::vector<exp::ExpPoint> points;
    for (const ReplacementKind repl :
         {ReplacementKind::kLru, ReplacementKind::kClock, ReplacementKind::kFifo}) {
      for (const ArbitrationKind arb :
           {ArbitrationKind::kFifo, ArbitrationKind::kPriority}) {
        SimConfig c;
        c.hbm_slots = k;
        c.arbitration = arb;
        c.replacement = repl;
        points.emplace_back(std::string("a2_") + title + " " + to_string(repl) +
                                "/" + to_string(arb),
                            workload, c);
      }
    }
    const auto results = exp::run_points(points, bo.runner());

    exp::Table table({"replacement", "arbitration", "makespan", "hit%",
                      "inconsistency"});
    for (const auto& r : results) {
      table.row() << to_string(r.config.replacement)
                  << to_string(r.config.arbitration) << r.metrics.makespan
                  << r.metrics.hit_rate() * 100.0 << r.metrics.inconsistency();
    }
    bo.print(table);
  }

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
