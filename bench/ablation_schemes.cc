// Ablation A3: the full family of priority permutation schemes (none /
// dynamic / cycle / cycle-reverse / interleave — the paper's sweep
// dimension "the method by which we permute priorities"), on balanced and
// imbalanced work distributions.
//
// Paper discussion (§4): on balanced workloads Cycle Priority tracks
// Dynamic Priority; "when the work is asymmetric, Cycle Priority
// continuously places the same thread behind the most demanding thread,
// causing small amounts of starvation", which Dynamic Priority avoids.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_workload(const char* title, const Workload& w, std::uint64_t k) {
  std::printf("\n--- %s (p=%zu, k=%llu) ---\n", title, w.num_threads(),
              static_cast<unsigned long long>(k));
  exp::Table table({"scheme", "T", "makespan", "inconsistency", "max_response",
                    "completion_spread"});

  const auto run_one = [&](const char* label, SimConfig c) {
    const RunMetrics m = simulate(w, c);
    table.row() << label << c.remap_period << m.makespan << m.inconsistency()
                << static_cast<std::uint64_t>(m.max_response())
                << m.completion_spread();
  };

  run_one("fifo", SimConfig::fifo(k));
  run_one("priority(static)", SimConfig::priority(k));
  for (const double t_mult : {1.0, 10.0}) {
    for (const RemapScheme scheme :
         {RemapScheme::kDynamic, RemapScheme::kCycle, RemapScheme::kCycleReverse,
          RemapScheme::kInterleave}) {
      SimConfig c = SimConfig::priority(k);
      c.remap_scheme = scheme;
      c.remap_period = SimConfig::period_from_multiplier(k, t_mult);
      run_one(to_string(scheme), c);
    }
  }
  table.print_text(std::cout);
}

}  // namespace

int main() {
  const Scales scales = current_scales();
  banner("Ablation A3: permutation schemes on balanced vs imbalanced work",
         scales);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 16;
  const bool paper = scales.scale == BenchScale::kPaper;

  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = paper ? 4096 : 512;
  opts.length = paper ? 2'000'000 : 100'000;
  opts.zipf_s = 0.8;
  const std::uint64_t k = opts.num_pages * p / 8;  // contended

  run_workload("balanced (equal-length Zipf streams)",
               workloads::make_synthetic_workload(p, opts), k);
  run_workload("imbalanced (lengths ramp 10%..100% across threads)",
               workloads::make_imbalanced_workload(p, opts, 0.1), k);

  std::printf(
      "\nreading guide: compare cycle vs dynamic max_response on the "
      "imbalanced workload — cycle pins the same victim behind the heavy "
      "threads.\n");
  std::printf("total wall time: %.1fs\n", watch.seconds());
  return 0;
}
