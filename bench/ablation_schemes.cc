// Ablation A3: the full family of priority permutation schemes (none /
// dynamic / cycle / cycle-reverse / interleave — the paper's sweep
// dimension "the method by which we permute priorities"), on balanced and
// imbalanced work distributions.
//
// Paper discussion (§4): on balanced workloads Cycle Priority tracks
// Dynamic Priority; "when the work is asymmetric, Cycle Priority
// continuously places the same thread behind the most demanding thread,
// causing small amounts of starvation", which Dynamic Priority avoids.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_workload(const char* title, const Workload& w, std::uint64_t k,
                  const BenchOptions& bo) {
  note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, w.num_threads(),
       static_cast<unsigned long long>(k));

  std::vector<exp::ExpPoint> points;
  const auto add = [&](const std::string& label, SimConfig c) {
    points.emplace_back("a3 " + std::string(title) + " " + label, w,
                        std::move(c));
  };
  add("fifo", SimConfig::fifo(k));
  add("priority(static)", SimConfig::priority(k));
  std::vector<std::string> labels = {"fifo", "priority(static)"};
  for (const double t_mult : {1.0, 10.0}) {
    for (const RemapScheme scheme :
         {RemapScheme::kDynamic, RemapScheme::kCycle, RemapScheme::kCycleReverse,
          RemapScheme::kInterleave}) {
      SimConfig c = SimConfig::priority(k);
      c.remap_scheme = scheme;
      c.remap_period = SimConfig::period_from_multiplier(k, t_mult);
      labels.emplace_back(to_string(scheme));
      add(to_string(scheme), c);
    }
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"scheme", "T", "makespan", "inconsistency", "max_response",
                    "completion_spread"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunMetrics& m = results[i].metrics;
    table.row() << labels[i] << results[i].config.remap_period << m.makespan
                << m.inconsistency()
                << static_cast<std::uint64_t>(m.max_response())
                << m.completion_spread();
  }
  bo.print(table);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation A3: permutation schemes on balanced vs imbalanced work",
         scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 16;
  const bool paper = scales.scale == BenchScale::kPaper;

  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = paper ? 4096 : 512;
  opts.length = paper ? 2'000'000 : 100'000;
  opts.zipf_s = 0.8;
  const std::uint64_t k = opts.num_pages * p / 8;  // contended

  run_workload("balanced (equal-length Zipf streams)",
               workloads::make_synthetic_workload(p, opts), k, bo);
  run_workload("imbalanced (lengths ramp 10%..100% across threads)",
               workloads::make_imbalanced_workload(p, opts, 0.1), k, bo);

  note(bo,
       "\nreading guide: compare cycle vs dynamic max_response on the "
       "imbalanced workload — cycle pins the same victim behind the heavy "
       "threads.\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
