// Shared infrastructure for the experiment harnesses in bench/.
//
// Every binary reproduces one table or figure from the paper. Binaries
// default to "quick" scale (seconds on one core, same qualitative
// shapes); set HBMSIM_SCALE=paper to run the published parameters —
// fig2/fig4 at paper scale simulate billions of page references and take
// hours.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "exp/table.h"
#include "trace/trace.h"
#include "util/args.h"
#include "util/env.h"
#include "workloads/sort_trace.h"
#include "workloads/spgemm.h"

namespace hbmsim::bench {

/// Output format of a bench binary. Text keeps the bespoke per-figure
/// tables; csv renders those same tables as CSV; json switches the binary
/// to a machine-readable JSONL stream of raw PointResults on stdout (one
/// line per experiment point, banners and progress diverted to stderr).
enum class Format { kText, kCsv, kJson };

/// Shared command-line surface of every bench binary:
///   --jobs N      worker threads (default $HBMSIM_JOBS or 1; 0 = all cores)
///   --format F    text | csv | json   (default text)
///   --progress    live [i/n] progress line on stderr
///   --engine E    tick | fast | auto — execution engine for every
///                 simulation this binary runs (exported as HBMSIM_ENGINE,
///                 the SimConfig default; engines are bit-identical, see
///                 DESIGN.md §3c)
struct BenchOptions {
  std::size_t jobs = 1;
  Format format = Format::kText;
  bool progress = false;

  /// RunnerOptions wired to this binary's output contract: in json mode
  /// the runner streams JSONL to stdout as points finish (input order).
  [[nodiscard]] exp::RunnerOptions runner() const {
    exp::RunnerOptions opts;
    opts.jobs = jobs;
    opts.progress = progress;
    opts.jsonl = format == Format::kJson ? &std::cout : nullptr;
    return opts;
  }

  /// Render a bespoke table in text or CSV; no-op in json mode (the
  /// JSONL stream already carried the raw results).
  void print(const exp::Table& table) const {
    if (format == Format::kCsv) {
      table.print_csv(std::cout);
    } else if (format == Format::kText) {
      table.print_text(std::cout);
    }
  }

  [[nodiscard]] bool text() const { return format == Format::kText; }
};

// Parses the shared bench flags. Flag errors print a one-line
// diagnostic and exit(1) here so the sixteen bench mains don't each
// need a try/catch.
inline BenchOptions parse_bench_options(int argc, char** argv) try {
  const ArgParser args(argc, argv);
  BenchOptions opts;
  const std::int64_t jobs = args.get_int("jobs", env_int("HBMSIM_JOBS", 1));
  if (jobs < 0) {
    throw ConfigError("--jobs must be >= 0 (0 = all cores), got " +
                      std::to_string(jobs));
  }
  opts.jobs = static_cast<std::size_t>(jobs);
  opts.progress = args.get_flag("progress");
  const std::string format = args.get("format", "text");
  if (format == "text") {
    opts.format = Format::kText;
  } else if (format == "csv") {
    opts.format = Format::kCsv;
  } else if (format == "json" || format == "jsonl") {
    opts.format = Format::kJson;
  } else {
    throw ConfigError("unknown --format '" + format + "' (text|csv|json)");
  }
  if (args.has("engine")) {
    const std::string engine = args.get("engine", "auto");
    (void)parse_engine(engine);  // reject typos before exporting
    // Export rather than plumb: every SimConfig built after this point
    // (all of them — benches parse flags first) defaults its engine from
    // HBMSIM_ENGINE, which reaches the sixteen bench mains without
    // threading a parameter through each experiment definition. Safe:
    // bench processes are single-threaded until the runner spawns its
    // pool, long after flag parsing.
    setenv("HBMSIM_ENGINE", engine.c_str(), /*overwrite=*/1);
  }
  args.reject_unknown();
  return opts;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  std::exit(1);
}

struct Scales {
  BenchScale scale;
  // Dataset 1 (sort) and Dataset 2 (SpGEMM) generation parameters.
  std::size_t sort_elements;
  std::uint32_t spgemm_n;
  std::size_t distinct_traces;
  // Sweep axes.
  std::vector<std::size_t> thread_counts;
  std::vector<std::uint64_t> hbm_sizes;
  std::uint64_t ops;  // microbenchmark op counts (knl)
};

inline Scales current_scales() {
  if (bench_scale() == BenchScale::kPaper) {
    return Scales{
        BenchScale::kPaper,
        /*sort_elements=*/500'000,        // paper §3.2
        /*spgemm_n=*/600,                 // paper §3.2
        /*distinct_traces=*/8,
        /*thread_counts=*/{1, 10, 25, 50, 100, 150, 200},
        /*hbm_sizes=*/{1000, 2000, 3000, 4000, 5000},  // paper: 1000–5000
        /*ops=*/std::uint64_t{1} << 24,
    };
  }
  return Scales{
      BenchScale::kQuick,
      /*sort_elements=*/8'000,
      /*spgemm_n=*/160,
      /*distinct_traces=*/4,
      /*thread_counts=*/{1, 2, 4, 8, 16, 24, 32},
      /*hbm_sizes=*/{250, 500, 1000},
      /*ops=*/300'000,
  };
}

inline const char* scale_name(const Scales& s) {
  return s.scale == BenchScale::kPaper ? "paper" : "quick";
}

/// Announce an experiment with its provenance line. In json mode stdout
/// carries pure JSONL, so the banner moves to stderr.
inline void banner(const std::string& experiment, const Scales& s,
                   const BenchOptions& opts = {}) {
  std::FILE* out = opts.format == Format::kJson ? stderr : stdout;
  std::fprintf(out, "==========================================================\n");
  std::fprintf(out, "%s   [scale: %s]\n", experiment.c_str(), scale_name(s));
  std::fprintf(out, "  (HBMSIM_SCALE=paper reproduces the published parameters)\n");
  std::fprintf(out, "==========================================================\n");
}

/// printf-style narration that respects the output contract: stdout in
/// text/csv mode, stderr in json mode (stdout must stay pure JSONL).
template <typename... Args>
inline void note(const BenchOptions& opts, const char* fmt, Args... args) {
  std::fprintf(opts.format == Format::kJson ? stderr : stdout, fmt, args...);
}

/// HBM sizes for a sweep. The paper uses 1000–5000 slots against ~1000
/// unique pages per thread — i.e. one to five per-thread working sets.
/// At quick scale the working sets are smaller, so express k the same
/// way: multiples of one thread's unique page count. This keeps the
/// contention regime (p·W >> k) identical across scales.
inline std::vector<std::uint64_t> hbm_sizes_for(const Scales& s,
                                                const Workload& probe) {
  if (s.scale == BenchScale::kPaper) {
    return s.hbm_sizes;
  }
  const std::uint64_t w =
      std::max<std::uint64_t>(4, probe.trace(0).unique_pages());
  return {w, 2 * w, 3 * w, 5 * w};
}

/// A single contended operating point: one per-thread working set of HBM
/// (the scarce end of the sweep, where the paper's fairness effects are
/// visible).
inline std::uint64_t contended_k(const Scales& s, const Workload& probe) {
  return hbm_sizes_for(s, probe).front();
}

/// Dataset 1: the paper's GNU-sort workload at the current scale.
inline Workload sort_workload(const Scales& s, std::size_t threads,
                              std::uint64_t seed = 1) {
  workloads::SortTraceOptions opts;
  opts.num_elements = s.sort_elements;
  opts.algo = workloads::SortAlgo::kMergeSort;
  opts.seed = seed;
  return workloads::make_sort_workload(threads, opts, s.distinct_traces);
}

/// Dataset 2: the paper's TACO SpGEMM workload at the current scale.
inline Workload spgemm_workload(const Scales& s, std::size_t threads,
                                std::uint64_t seed = 1) {
  workloads::SpgemmOptions opts;
  opts.rows = s.spgemm_n;
  opts.cols = s.spgemm_n;
  opts.density = 0.10;
  opts.seed = seed;
  return workloads::make_spgemm_workload(threads, opts, s.distinct_traces);
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hbmsim::bench

// ---- Countable allocator hook (perf_simulator --arbiter/scale-compare) ---
//
// Define HBMSIM_BENCH_COUNT_ALLOCS before including this header to
// replace the global allocation functions with the counting shim in
// util/alloc_shim.h. The arbiter micro-benchmarks read the counter
// before and after the measured phase to prove the tick hot path is
// steady-state allocation-free, and the p = 1M scale cases assert a
// peak-heap-bytes budget on top (ISSUE: the counter must read 0 after
// warm-up; the streaming run must fit the budget).
//
// Replacements are program-wide, so exactly one translation unit per
// binary may define the macro (perf_simulator.cc does).
#ifdef HBMSIM_BENCH_COUNT_ALLOCS

#define HBMSIM_ALLOC_SHIM
#include "util/alloc_shim.h"

namespace hbmsim::bench {

/// Allocations observed process-wide since start.
inline std::uint64_t allocation_count() noexcept {
  return util::alloc_count();
}

}  // namespace hbmsim::bench

#endif  // HBMSIM_BENCH_COUNT_ALLOCS
