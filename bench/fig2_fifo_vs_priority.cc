// Figure 2 (a, b): FIFO vs (static) Priority makespan ratio as a function
// of thread count, for HBM sizes in a sweep.
//
// Paper result: "FIFO can dominate at low processor counts but priority
// always dominates at high processor counts" — Priority loses by up to
// 1.33× (SpGEMM) / 1.37× (sort) when HBM is plentiful, and wins by up to
// 3.3× (SpGEMM) / 1.2× (sort) when threads contend.
//
// The y-value printed is FIFO makespan / Priority makespan (> 1 means
// Priority wins), exactly the paper's axis.
//
// Runs on the parallel experiment engine: --jobs N distributes the sweep
// points across worker threads (results are bit-identical to --jobs 1);
// --format json streams one JSONL PointResult per simulation point.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const char* tag, const Scales& scales,
                 const exp::WorkloadFactory& factory, const BenchOptions& bo) {
  note(bo, "\n--- %s ---\n", title);
  const auto results =
      exp::SweepSpec(tag)
          .workload(factory)
          .threads(scales.thread_counts)
          .hbm_sizes(hbm_sizes_for(scales, factory(1)))
          .config("fifo", [](std::uint64_t k) { return SimConfig::fifo(k); })
          .config("priority",
                  [](std::uint64_t k) { return SimConfig::priority(k); })
          .run(bo.runner());

  exp::Table table({"threads", "hbm_slots", "fifo_makespan", "priority_makespan",
                    "fifo/priority"});
  double min_ratio = 1e18;
  double max_ratio = 0.0;
  // build() nests configs innermost: results pair up as (fifo, priority).
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const exp::PointResult& fifo = results[i];
    const exp::PointResult& prio = results[i + 1];
    exp::RatioPoint pt;
    pt.makespan_a = fifo.metrics.makespan;
    pt.makespan_b = prio.metrics.makespan;
    const std::size_t grid = i / 2;
    const std::size_t num_k = hbm_sizes_for(scales, factory(1)).size();
    table.row() << static_cast<std::uint64_t>(
                       scales.thread_counts[grid / num_k])
                << fifo.config.hbm_slots << pt.makespan_a << pt.makespan_b
                << pt.ratio();
    if (!std::isnan(pt.ratio())) {
      min_ratio = std::min(min_ratio, pt.ratio());
      max_ratio = std::max(max_ratio, pt.ratio());
    }
  }
  bo.print(table);
  note(bo,
       "summary: FIFO/Priority ratio spans %.3f .. %.3f "
       "(paper: FIFO ahead at low p, Priority ahead by up to 3.3x at high p)\n",
       min_ratio, max_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Figure 2: FIFO vs Priority makespan ratio", scales, bo);
  Stopwatch watch;

  run_dataset("Figure 2a: SpGEMM (TACO-style, 10% density)", "fig2a", scales,
              [&](std::size_t p) { return spgemm_workload(scales, p); }, bo);
  run_dataset("Figure 2b: GNU sort (mergesort over logging iterators)", "fig2b",
              scales, [&](std::size_t p) { return sort_workload(scales, p); },
              bo);

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
