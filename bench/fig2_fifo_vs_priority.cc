// Figure 2 (a, b): FIFO vs (static) Priority makespan ratio as a function
// of thread count, for HBM sizes in a sweep.
//
// Paper result: "FIFO can dominate at low processor counts but priority
// always dominates at high processor counts" — Priority loses by up to
// 1.33× (SpGEMM) / 1.37× (sort) when HBM is plentiful, and wins by up to
// 3.3× (SpGEMM) / 1.2× (sort) when threads contend.
//
// The y-value printed is FIFO makespan / Priority makespan (> 1 means
// Priority wins), exactly the paper's axis.
#include <cstdio>
#include <functional>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const Scales& scales,
                 const exp::WorkloadFactory& factory) {
  std::printf("\n--- %s ---\n", title);
  exp::Table table({"threads", "hbm_slots", "fifo_makespan", "priority_makespan",
                    "fifo/priority"});
  const auto points = exp::ratio_sweep(
      factory, scales.thread_counts, hbm_sizes_for(scales, factory(1)),
      [](std::uint64_t k) { return SimConfig::fifo(k); },
      [](std::uint64_t k) { return SimConfig::priority(k); });
  double min_ratio = 1e18;
  double max_ratio = 0.0;
  for (const auto& pt : points) {
    table.row() << static_cast<std::uint64_t>(pt.num_threads) << pt.hbm_slots
                << pt.makespan_a << pt.makespan_b << pt.ratio();
    min_ratio = std::min(min_ratio, pt.ratio());
    max_ratio = std::max(max_ratio, pt.ratio());
  }
  table.print_text(std::cout);
  std::printf(
      "summary: FIFO/Priority ratio spans %.3f .. %.3f "
      "(paper: FIFO ahead at low p, Priority ahead by up to 3.3x at high p)\n",
      min_ratio, max_ratio);
}

}  // namespace

int main() {
  const Scales scales = current_scales();
  banner("Figure 2: FIFO vs Priority makespan ratio", scales);
  Stopwatch watch;

  run_dataset("Figure 2a: SpGEMM (TACO-style, 10% density)", scales,
              [&](std::size_t p) { return spgemm_workload(scales, p); });
  run_dataset("Figure 2b: GNU sort (mergesort over logging iterators)", scales,
              [&](std::size_t p) { return sort_workload(scales, p); });

  std::printf("\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
