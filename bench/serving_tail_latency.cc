// Open-system serving: throughput–latency curves per arbitration policy
// (ROADMAP item 3 — the production question behind the paper's §4
// fairness results: which far-channel policy holds p99 under heavy mixed
// traffic?).
//
// Two tenants share the machine: a latency-critical "interactive" tenant
// (small cacheable working set, tight SLO, priority class 0) and a
// throughput-oriented "batch" tenant (large thrashy working set, loose
// SLO, priority class 1). The sweep crosses arbitration policy ×
// arrival process (Poisson vs on-off bursty) × offered load ρ, where
// ρ = 1 matches the machine's worst-case service capacity of q/refs
// requests per tick. Each point reports aggregate p50/p99/p999 request
// latency, the SLO-violation rate, and achieved throughput — the
// throughput–latency curve, one row per operating point.
//
// Runs on the parallel experiment engine: --jobs N distributes points
// across worker threads (results are bit-identical to --jobs 1, as every
// serving run is a pure function of its ServingConfig); --format json
// streams one JSONL PointResult per point, with the per-tenant serving
// metrics spliced in as the "extra" field. The serving harness requires
// the reference tick engine, so this binary pins it explicitly and the
// --engine flag has no effect here.
#include <cstdint>
#include <string>
#include <vector>

#include "common.h"
#include "core/config.h"
#include "exp/runner.h"
#include "exp/table.h"
#include "serve/serving.h"
#include "stats/histogram.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

struct ServingScales {
  Tick duration;
  std::uint64_t hbm_slots;
  std::uint32_t num_channels;
  std::uint32_t fetch_ticks;
  std::uint32_t refs_per_request;
};

ServingScales serving_scales(const Scales& s) {
  if (s.scale == BenchScale::kPaper) {
    return ServingScales{/*duration=*/200'000, /*hbm_slots=*/1024,
                         /*num_channels=*/2, /*fetch_ticks=*/2,
                         /*refs_per_request=*/8};
  }
  return ServingScales{/*duration=*/30'000, /*hbm_slots=*/256,
                       /*num_channels=*/2, /*fetch_ticks=*/2,
                       /*refs_per_request=*/8};
}

SimConfig machine_for(const std::string& policy, const ServingScales& ss) {
  SimConfig c = SimConfig::fifo(ss.hbm_slots, ss.num_channels);
  if (policy == "priority") {
    c = SimConfig::priority(ss.hbm_slots, ss.num_channels);
  } else if (policy == "dynamic") {
    c = SimConfig::dynamic_priority(ss.hbm_slots, 10.0, ss.num_channels);
  } else if (policy == "fr-fcfs") {
    c.arbitration = ArbitrationKind::kFrFcfs;
  }
  c.fetch_ticks = ss.fetch_ticks;
  // The serving harness needs the reference tick engine (arrivals are
  // events the fast engine cannot prove idle spans against); pin it so
  // an inherited HBMSIM_ENGINE=fast cannot invalidate the sweep.
  c.engine = EngineKind::kTick;
  return c;
}

serve::ArrivalSpec arrival_for(serve::ArrivalKind kind, double mean_rate) {
  serve::ArrivalSpec a;
  a.kind = kind;
  if (kind == serve::ArrivalKind::kOnOff) {
    // Same mean load as the Poisson stream, delivered in bursts: on for
    // 500 ticks at twice the rate, then silent for 500.
    a.on_ticks = 500;
    a.off_ticks = 500;
    a.rate = mean_rate * 2.0;
  } else {
    a.rate = mean_rate;
  }
  return a;
}

/// The full experiment configuration for one operating point — a pure
/// function of (policy, arrival kind, ρ), so every run is reproducible
/// from the label alone.
serve::ServingConfig serving_point(const std::string& policy,
                                   serve::ArrivalKind kind, double rho,
                                   const ServingScales& ss) {
  // Worst-case capacity: q fetch slots per tick, refs fetches per
  // request; ρ scales the total offered load against it, split evenly
  // between the tenants.
  const double capacity =
      static_cast<double>(ss.num_channels) / ss.refs_per_request;
  const double per_tenant_rate = rho * capacity / 2.0;

  serve::TenantSpec interactive;
  interactive.name = "interactive";
  interactive.workers = 4;
  interactive.priority_class = 0;
  interactive.arrival = arrival_for(kind, per_tenant_rate);
  interactive.shape = serve::RequestShape{/*pages=*/64,
                                          /*refs=*/ss.refs_per_request,
                                          /*zipf_s=*/0.9};
  interactive.slo_ticks = 64;
  interactive.max_pending = 32;

  serve::TenantSpec batch;
  batch.name = "batch";
  batch.workers = 4;
  batch.priority_class = 1;
  batch.arrival = arrival_for(kind, per_tenant_rate);
  batch.shape = serve::RequestShape{/*pages=*/512,
                                    /*refs=*/ss.refs_per_request,
                                    /*zipf_s=*/0.0};
  batch.slo_ticks = 512;
  batch.max_pending = 32;

  serve::ServingConfig cfg;
  cfg.tenants = {interactive, batch};
  cfg.sim = machine_for(policy, ss);
  cfg.sim.open_system = true;  // honest config echo; the harness forces it
  cfg.sim.max_ticks = ss.duration * 2;  // bounded drain, then truncate
  cfg.duration = ss.duration;
  cfg.seed = 1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  const ServingScales ss = serving_scales(scales);
  banner("Serving: open-system tail latency per arbitration policy", scales,
         bo);

  const std::vector<std::string> policies = {"fifo", "fr-fcfs", "priority",
                                             "dynamic"};
  const std::vector<serve::ArrivalKind> arrivals = {
      serve::ArrivalKind::kPoisson, serve::ArrivalKind::kOnOff};
  const std::vector<double> loads = {0.25, 0.5, 0.75, 1.0, 1.3};

  std::vector<exp::ExpPoint> points;
  std::vector<serve::ServingMetrics> outcomes;
  for (const std::string& policy : policies) {
    for (const serve::ArrivalKind kind : arrivals) {
      for (const double rho : loads) {
        const serve::ServingConfig cfg = serving_point(policy, kind, rho, ss);
        exp::ExpPoint p;
        p.label = "serve " + std::string(serve::to_string(kind)) +
                  " rho=" + exp::json_double(rho) + " " + policy;
        p.config = cfg.sim;
        const std::size_t slot = outcomes.size();
        // Worker threads write disjoint slots; run_points joins before
        // the table below reads them.
        p.execute = [cfg, slot, &outcomes](std::string& extra) {
          serve::ServingSimulator sim(cfg);
          const serve::ServingMetrics m = sim.run();
          outcomes[slot] = m;
          extra = serve::to_json(m);
          return m.sim;
        };
        points.push_back(std::move(p));
        outcomes.emplace_back();
      }
    }
  }

  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"policy", "arrival", "rho", "offered_rpk", "tput_rpk",
                    "p50", "p99", "p999", "slo_viol%", "rejected",
                    "truncated"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::PointResult& r = results[i];
    if (!r.ok) {
      continue;  // already reported in the JSONL stream
    }
    const serve::ServingMetrics& m = outcomes[i];
    const std::size_t per_policy = arrivals.size() * loads.size();
    const std::string& policy = policies[i / per_policy];
    const serve::ArrivalKind kind = arrivals[(i / loads.size()) % arrivals.size()];
    const double rho = loads[i % loads.size()];

    LogHistogram latency;
    std::uint64_t violations = 0;
    std::uint64_t completed = 0;
    for (const serve::TenantMetrics& t : m.per_tenant) {
      latency.merge(t.latency_hist);
      violations += t.slo_violations;
      completed += t.completed;
    }
    const double capacity =
        static_cast<double>(ss.num_channels) / ss.refs_per_request;
    table.row() << policy << serve::to_string(kind) << rho
                << rho * capacity * 1000.0 << m.throughput() * 1000.0
                << latency.quantile(0.50) << latency.quantile(0.99)
                << latency.quantile(0.999)
                << (completed == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(violations) /
                              static_cast<double>(completed))
                << m.total_rejected()
                << std::uint64_t{m.sim.truncated ? 1 : 0};
  }
  bo.print(table);
  note(bo,
       "\nsummary: %zu operating points; under overload (rho > 1) priority "
       "arbitration should hold the interactive tenant's p99 where FIFO "
       "lets both tenants' tails grow together\n",
       results.size());
  return 0;
}
