// Extension ablation: non-unit block-transfer time. The model (§2) sets
// all block-transfer times to 1; SimConfig::fetch_ticks makes DRAM
// latency a parameter (channels stay pipelined, so bandwidth is
// unchanged). The question: does the FIFO-vs-Priority verdict depend on
// the unit-latency idealisation?
//
// Finding (see EXPERIMENTS.md): FIFO's makespan is pure bandwidth —
// pipelining hides latency entirely, so it barely moves with L. Priority
// wins by converting misses into hits, and every remaining miss sits on
// its critical path, so its makespan grows with L and the FIFO/Priority
// ratio *erodes* as transfers slow (on the cyclic workload, from ~5× at
// L=1 to ~1.2× at L=8). The paper's conclusions hold at DRAM-like
// latencies (a transfer is about one scheduling quantum) but the
// unit-transfer idealisation is load-bearing for the magnitude.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/adversarial.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation: DRAM transfer latency L = 1..8 (model fixes L = 1)",
         scales, bo);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const std::size_t p = paper ? 64 : 24;

  // The adversarial workload (channel-bound: latency should matter most).
  const workloads::AdversarialOptions adv{.unique_pages = paper ? 256u : 64u,
                                          .repetitions = paper ? 100u : 25u};
  const Workload cyc = workloads::make_adversarial_workload(p, adv);
  const std::uint64_t cyc_k = workloads::adversarial_hbm_slots(p, adv, 0.25);

  // And the sort workload (mixed hits/misses).
  const Workload sort = sort_workload(scales, p);
  const std::uint64_t sort_k = contended_k(scales, sort);

  for (const auto& [title, w, k] :
       {std::tuple<const char*, const Workload&, std::uint64_t>{"adversarial cyclic", cyc, cyc_k},
        std::tuple<const char*, const Workload&, std::uint64_t>{"GNU sort", sort, sort_k}}) {
    note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, p,
         static_cast<unsigned long long>(k));

    std::vector<exp::ExpPoint> points;
    for (const std::uint32_t latency : {1u, 2u, 4u, 8u}) {
      const std::string tag =
          std::string("L ") + title + " L=" + std::to_string(latency) + " ";
      SimConfig fifo = SimConfig::fifo(k);
      fifo.fetch_ticks = latency;
      SimConfig prio = SimConfig::priority(k);
      prio.fetch_ticks = latency;
      points.emplace_back(tag + "fifo", w, fifo);
      points.emplace_back(tag + "priority", w, prio);
    }
    const auto results = exp::run_points(points, bo.runner());

    exp::Table table({"L", "fifo_makespan", "priority_makespan", "fifo/priority",
                      "fifo_mean_resp", "priority_mean_resp"});
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
      const RunMetrics& mf = results[i].metrics;
      const RunMetrics& mp = results[i + 1].metrics;
      table.row() << results[i].config.fetch_ticks << mf.makespan << mp.makespan
                  << static_cast<double>(mf.makespan) /
                         static_cast<double>(mp.makespan)
                  << mf.mean_response() << mp.mean_response();
    }
    bo.print(table);
  }

  note(bo,
       "\nreading guide: FIFO's column is flat (bandwidth-bound, latency "
       "pipelined away); Priority's grows with L because its residual "
       "misses are on the critical path — slower transfers erode, but do "
       "not invert, the Priority advantage.\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
