// Ablation A4: the paper's trace-source sweep dimension — "we varied ...
// the source of the access traces (GNU sort, quicksort, Sparse and Dense
// Matrix Multiplication)" (§1.2). Figures 2-5 present sort and SpGEMM in
// depth; this harness runs the same FIFO/Priority/Dynamic comparison on
// all four sources plus the std::sort instrumentation variant.
#include <cstdio>
#include <functional>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/dense_mm.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

Workload sort_variant(const Scales& s, std::size_t p, workloads::SortAlgo algo) {
  workloads::SortTraceOptions opts;
  opts.num_elements = s.sort_elements;
  opts.algo = algo;
  return workloads::make_sort_workload(p, opts, s.distinct_traces);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation A4: trace sources (sort variants, SpGEMM, dense MM)",
         scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 100 : 24;

  const std::vector<std::pair<const char*, std::function<Workload()>>> sources =
      {
          {"mergesort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kMergeSort); }},
          {"quicksort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kQuickSort); }},
          {"std::sort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kStdSort); }},
          {"spgemm", [&] { return spgemm_workload(scales, p); }},
          {"dense-mm",
           [&] {
             workloads::DenseMmOptions opts;
             opts.n = scales.scale == BenchScale::kPaper ? 256 : 64;
             return workloads::make_dense_mm_workload(p, opts,
                                                      scales.distinct_traces);
           }},
      };

  // Trace generation stays serial (k depends on each source's working
  // set); the 3 policies per source simulate on the runner.
  std::vector<exp::ExpPoint> points;
  std::vector<std::uint64_t> ks;
  for (const auto& [name, make] : sources) {
    const Workload w = make();
    const std::uint64_t k = contended_k(scales, w);
    ks.push_back(k);
    const std::string tag = std::string("a4 ") + name + " ";
    points.emplace_back(tag + "fifo", w, SimConfig::fifo(k));
    points.emplace_back(tag + "priority", w, SimConfig::priority(k));
    points.emplace_back(tag + "dynamic", w, SimConfig::dynamic_priority(k, 10.0));
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"source", "k", "fifo", "priority", "dynamic(T=10k)",
                    "fifo/priority", "fifo/dynamic"});
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const Tick fifo = results[3 * s].metrics.makespan;
    const Tick prio = results[3 * s + 1].metrics.makespan;
    const Tick dyn = results[3 * s + 2].metrics.makespan;
    table.row() << sources[s].first << ks[s] << fifo << prio << dyn
                << static_cast<double>(fifo) / static_cast<double>(prio)
                << static_cast<double>(fifo) / static_cast<double>(dyn);
  }
  bo.print(table);

  note(bo,
       "\nreading guide: every bandwidth-bound source shows the same story "
       "— Dynamic Priority at least matches FIFO, usually beats it; the "
       "magnitude depends on each source's reuse profile (see "
       "examples/miss_curve).\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
