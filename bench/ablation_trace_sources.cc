// Ablation A4: the paper's trace-source sweep dimension — "we varied ...
// the source of the access traces (GNU sort, quicksort, Sparse and Dense
// Matrix Multiplication)" (§1.2). Figures 2-5 present sort and SpGEMM in
// depth; this harness runs the same FIFO/Priority/Dynamic comparison on
// all four sources plus the std::sort instrumentation variant.
#include <cstdio>
#include <functional>
#include <iostream>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/dense_mm.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

Workload sort_variant(const Scales& s, std::size_t p, workloads::SortAlgo algo) {
  workloads::SortTraceOptions opts;
  opts.num_elements = s.sort_elements;
  opts.algo = algo;
  return workloads::make_sort_workload(p, opts, s.distinct_traces);
}

}  // namespace

int main() {
  const Scales scales = current_scales();
  banner("Ablation A4: trace sources (sort variants, SpGEMM, dense MM)",
         scales);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 100 : 24;

  const std::vector<std::pair<const char*, std::function<Workload()>>> sources =
      {
          {"mergesort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kMergeSort); }},
          {"quicksort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kQuickSort); }},
          {"std::sort", [&] { return sort_variant(scales, p, workloads::SortAlgo::kStdSort); }},
          {"spgemm", [&] { return spgemm_workload(scales, p); }},
          {"dense-mm",
           [&] {
             workloads::DenseMmOptions opts;
             opts.n = scales.scale == BenchScale::kPaper ? 256 : 64;
             return workloads::make_dense_mm_workload(p, opts,
                                                      scales.distinct_traces);
           }},
      };

  exp::Table table({"source", "k", "fifo", "priority", "dynamic(T=10k)",
                    "fifo/priority", "fifo/dynamic"});
  for (const auto& [name, make] : sources) {
    const Workload w = make();
    const std::uint64_t k = contended_k(scales, w);
    const Tick fifo = simulate(w, SimConfig::fifo(k)).makespan;
    const Tick prio = simulate(w, SimConfig::priority(k)).makespan;
    const Tick dyn = simulate(w, SimConfig::dynamic_priority(k, 10.0)).makespan;
    table.row() << name << k << fifo << prio << dyn
                << static_cast<double>(fifo) / static_cast<double>(prio)
                << static_cast<double>(fifo) / static_cast<double>(dyn);
  }
  table.print_text(std::cout);

  std::printf(
      "\nreading guide: every bandwidth-bound source shows the same story "
      "— Dynamic Priority at least matches FIFO, usually beats it; the "
      "magnitude depends on each source's reuse profile (see "
      "examples/miss_curve).\n");
  std::printf("total wall time: %.1fs\n", watch.seconds());
  return 0;
}
