// Table 2a / Figure 6: pointer-chasing latency on the simulated KNL for
// flat-DDR, flat-HBM, and cache mode, across array sizes.
//
// Paper result (measured on real KNL, our calibration target):
//   * latencies plateau after each capacity boundary (Figure 6a),
//   * flat HBM ≈ flat DRAM + ~24 ns (Property 1),
//   * cache mode tracks flat HBM while the array fits MCDRAM, then climbs
//     toward the doubled miss latency (Property 3) — e.g. 8 GiB:
//     DRAM 318.3 / HBM 343.1 / Cache 378.3 ns; 64 GiB: DRAM 364.7 /
//     Cache 489.6 ns.
//
// At quick scale the machine capacities are divided by 2^6 (ratios, and
// therefore every crossover, preserved); paper scale uses the full 16 GiB
// MCDRAM and 1 KiB .. 64 GiB arrays.
#include <array>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.h"
#include "knl/pointer_chase.h"
#include "util/format.h"

int main() {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const Scales scales = current_scales();
  banner("Table 2a / Figure 6: pointer-chase latency on simulated KNL", scales);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const std::uint32_t shift = paper ? 0 : 6;
  const std::uint64_t min_bytes = paper ? (16ull << 20) : (16ull << 20) >> 6;
  const std::uint64_t max_bytes = paper ? (64ull << 30) : (64ull << 30) >> 6;

  const auto results = knl::pointer_chase_sweep(
      {knl::MemoryMode::kFlatDdr, knl::MemoryMode::kFlatHbm,
       knl::MemoryMode::kCacheMode},
      min_bytes, max_bytes, scales.ops, shift);

  // Pivot into the paper's table layout: one row per array size.
  std::map<std::uint64_t, std::array<double, 3>> rows;
  for (const auto& r : results) {
    rows[r.array_bytes][static_cast<int>(r.mode)] = r.avg_ns;
  }
  exp::Table table({"Array Size", "DRAM (ns)", "HBM (ns)", "Cache (ns)"});
  for (const auto& [bytes, ns] : rows) {
    const double hbm = ns[static_cast<int>(knl::MemoryMode::kFlatHbm)];
    table.row() << format_bytes(paper ? bytes : bytes << 6)  // label at KNL scale
                << format_fixed(ns[static_cast<int>(knl::MemoryMode::kFlatDdr)], 1)
                << (hbm == 0.0 ? std::string("-") : format_fixed(hbm, 1))
                << format_fixed(ns[static_cast<int>(knl::MemoryMode::kCacheMode)], 1);
  }
  table.print_text(std::cout);

  // Headline checks against the paper's properties.
  constexpr int kDdr = static_cast<int>(knl::MemoryMode::kFlatDdr);
  constexpr int kCache = static_cast<int>(knl::MemoryMode::kCacheMode);
  const auto& largest = rows.rbegin()->second;
  const auto& smallest = rows.begin()->second;
  std::printf(
      "\nchecks: cache-mode beyond-HBM latency exceeds flat DRAM at the "
      "largest array: %s (%.1f vs %.1f ns)\n",
      largest[kCache] > largest[kDdr] ? "yes" : "NO", largest[kCache],
      largest[kDdr]);
  std::printf("        latency climbs from smallest to largest array: %s\n",
              largest[kDdr] > smallest[kDdr] ? "yes" : "NO");
  std::printf("total wall time: %.1fs\n", watch.seconds());
  return 0;
}
