// Table 2a / Figure 6: pointer-chasing latency on the simulated KNL for
// flat-DDR, flat-HBM, and cache mode, across array sizes.
//
// Paper result (measured on real KNL, our calibration target):
//   * latencies plateau after each capacity boundary (Figure 6a),
//   * flat HBM ≈ flat DRAM + ~24 ns (Property 1),
//   * cache mode tracks flat HBM while the array fits MCDRAM, then climbs
//     toward the doubled miss latency (Property 3) — e.g. 8 GiB:
//     DRAM 318.3 / HBM 343.1 / Cache 378.3 ns; 64 GiB: DRAM 364.7 /
//     Cache 489.6 ns.
//
// At quick scale the machine capacities are divided by 2^6 (ratios, and
// therefore every crossover, preserved); paper scale uses the full 16 GiB
// MCDRAM and 1 KiB .. 64 GiB arrays.
#include <array>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.h"
#include "knl/pointer_chase.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Table 2a / Figure 6: pointer-chase latency on simulated KNL", scales,
         bo);
  Stopwatch watch;

  const bool paper = scales.scale == BenchScale::kPaper;
  const std::uint32_t shift = paper ? 0 : 6;
  const std::uint64_t min_bytes = paper ? (16ull << 20) : (16ull << 20) >> 6;
  const std::uint64_t max_bytes = paper ? (64ull << 30) : (64ull << 30) >> 6;

  // Same enumeration as knl::pointer_chase_sweep, but as an explicit work
  // list so the points run on the parallel engine (each point is a pure
  // function of (machine, bytes, ops, seed)).
  struct Item {
    knl::MachineConfig machine;
    std::uint64_t bytes;
  };
  std::vector<Item> items;
  for (const knl::MemoryMode mode :
       {knl::MemoryMode::kFlatDdr, knl::MemoryMode::kFlatHbm,
        knl::MemoryMode::kCacheMode}) {
    const knl::MachineConfig machine =
        shift == 0 ? knl::MachineConfig::knl(mode)
                   : knl::MachineConfig::knl_scaled(mode, shift);
    for (std::uint64_t bytes = min_bytes; bytes <= max_bytes; bytes *= 2) {
      if (mode == knl::MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        continue;  // the paper stops the HBM series at 8 GiB for the same reason
      }
      items.push_back({machine, bytes});
    }
  }

  std::vector<knl::PointerChaseResult> results(items.size());
  exp::parallel_for(items.size(), bo.jobs, [&](std::size_t i) {
    results[i] = knl::run_pointer_chase(items[i].machine, items[i].bytes,
                                        scales.ops);
  });

  if (bo.format == Format::kJson) {
    for (const auto& r : results) {
      exp::JsonObject obj;
      obj.field("bench", "pointer_chase");
      obj.field("mode", knl::to_string(r.mode));
      obj.field("array_bytes", r.array_bytes);
      obj.field("avg_ns", r.avg_ns);
      obj.field("mcdram_hit_rate", r.mcdram_hit_rate);
      std::cout << obj.str() << '\n';
    }
  }

  // Pivot into the paper's table layout: one row per array size.
  std::map<std::uint64_t, std::array<double, 3>> rows;
  for (const auto& r : results) {
    rows[r.array_bytes][static_cast<int>(r.mode)] = r.avg_ns;
  }
  exp::Table table({"Array Size", "DRAM (ns)", "HBM (ns)", "Cache (ns)"});
  for (const auto& [bytes, ns] : rows) {
    const double hbm = ns[static_cast<int>(knl::MemoryMode::kFlatHbm)];
    table.row() << format_bytes(paper ? bytes : bytes << 6)  // label at KNL scale
                << format_fixed(ns[static_cast<int>(knl::MemoryMode::kFlatDdr)], 1)
                << (hbm == 0.0 ? std::string("-") : format_fixed(hbm, 1))
                << format_fixed(ns[static_cast<int>(knl::MemoryMode::kCacheMode)], 1);
  }
  bo.print(table);

  // Headline checks against the paper's properties.
  constexpr int kDdr = static_cast<int>(knl::MemoryMode::kFlatDdr);
  constexpr int kCache = static_cast<int>(knl::MemoryMode::kCacheMode);
  const auto& largest = rows.rbegin()->second;
  const auto& smallest = rows.begin()->second;
  note(bo,
       "\nchecks: cache-mode beyond-HBM latency exceeds flat DRAM at the "
       "largest array: %s (%.1f vs %.1f ns)\n",
       largest[kCache] > largest[kDdr] ? "yes" : "NO", largest[kCache],
       largest[kDdr]);
  note(bo, "        latency climbs from smallest to largest array: %s\n",
       largest[kDdr] > smallest[kDdr] ? "yes" : "NO");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
