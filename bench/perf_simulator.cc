// Google-benchmark microbenchmarks of the simulator core: end-to-end
// simulation throughput per policy, cache-structure operation costs, and
// trace generation. These guard the performance contract in DESIGN.md §3
// (work ∝ refs + misses, not makespan·p).
#include <benchmark/benchmark.h>

#include <memory>

#include "assoc/direct_mapped.h"
#include "core/hbm_cache.h"
#include "core/simulator.h"
#include "workloads/adversarial.h"
#include "workloads/sort_trace.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

Workload zipf_workload(std::size_t threads, std::size_t length) {
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 2048;
  opts.length = length;
  opts.zipf_s = 0.9;
  return workloads::make_synthetic_workload(threads, opts);
}

void BM_SimulateFifo(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::fifo(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateFifo)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulatePriority(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::priority(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulatePriority)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulateDynamicPriority(benchmark::State& state) {
  const Workload w = zipf_workload(16, 100'000);
  SimConfig c = SimConfig::dynamic_priority(4096, 10.0);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateDynamicPriority)->Unit(benchmark::kMillisecond);

// Channel-bound case: most threads blocked; ticks must stay cheap.
void BM_SimulateChannelBound(benchmark::State& state) {
  const Workload w = workloads::make_adversarial_workload(
      64, {.unique_pages = 256, .repetitions = 20});
  SimConfig c = SimConfig::fifo(
      workloads::adversarial_hbm_slots(64, {.unique_pages = 256, .repetitions = 20},
                                       0.25));
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateChannelBound)->Unit(benchmark::kMillisecond);

void BM_LruCacheChurn(benchmark::State& state) {
  HbmCache cache(static_cast<std::uint64_t>(state.range(0)), ReplacementKind::kLru);
  std::uint64_t page = 0;
  for (auto _ : state) {
    cache.insert(page++);
    if (cache.contains(page / 2)) {
      cache.touch(page / 2);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheChurn)->Arg(1024)->Arg(65536);

void BM_DirectMappedChurn(benchmark::State& state) {
  assoc::DirectMappedCache cache(65536);
  std::uint64_t page = 0;
  for (auto _ : state) {
    if (!cache.contains(page)) {
      cache.insert(page);
    }
    page += 7;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectMappedChurn);

void BM_SortTraceGeneration(benchmark::State& state) {
  workloads::SortTraceOptions opts;
  opts.num_elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(workloads::make_sort_trace(opts));
  }
}
BENCHMARK(BM_SortTraceGeneration)->Arg(10'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
