// Google-benchmark microbenchmarks of the simulator core: end-to-end
// simulation throughput per policy, cache-structure operation costs, and
// trace generation. These guard the performance contract in DESIGN.md §3
// (work ∝ refs + misses, not makespan·p).
//
// Engine differential mode (no google-benchmark involved):
//   perf_simulator --engine-compare [--smoke] [--out=PATH]
// times the reference tick engine against the fast-forward engine
// (DESIGN.md §3c) and the calendar-queue event engine (DESIGN.md §3e)
// on configurations where either the idle_ticks term or the per-tick
// backlog scan dominates, verifies their RunMetrics are bit-identical
// (everything except the skipped_ticks diagnostic), and writes a JSON
// report — BENCH_perf.json at the repo root by default, the repo's perf
// trajectory. --smoke shrinks the inputs for a seconds-long CI check.
//
// Arbiter differential mode (DESIGN.md §3d):
//   perf_simulator --arbiter-compare [--smoke] [--out=PATH]
// times the bucketed/pooled arbitration structures against the
// map/scan reference implementations (src/check/shadow_arbiter.cc) on
// backlog-heavy configurations, verifies bit-identical RunMetrics, and
// additionally proves the tick loop steady-state allocation-free: the
// binary replaces global operator new with a counting shim
// (bench/common.h, HBMSIM_BENCH_COUNT_ALLOCS) and requires the count
// delta after warm-up to be exactly zero. Results are *appended* to the
// --out file, so BENCH_perf.json accumulates one JSONL row per bench
// family.
//
// Predictor screening mode (DESIGN.md §9):
//   perf_simulator --predictor-compare [--smoke] [--out=PATH]
// runs a >= 1k-point design-space grid (policies × q × F × k × p) twice:
// full simulation, then hybrid fidelity (closed-form predictor screens
// the grid, only the predicted frontier plus a seeded audit sample is
// simulated). Verifies the hybrid's simulated points are bit-identical
// to the full run's, gates the audited model-vs-sim error on pinned
// per-policy-family tolerances, and requires a >= 20x wall-clock win for
// the hybrid pass (full mode only). Appended to the --out file.
//
// Streaming scale mode (DESIGN.md §3f):
//   perf_simulator --scale-compare [--smoke] [--out=PATH]
// verifies streaming (TraceCursor) workloads produce bit-identical
// RunMetrics to their materialized twins under all three engines at
// overlapping scales, then runs the p = 1M streaming case under the
// event engine and asserts its peak live-heap bytes (tracked by the same
// shim) fit an O(p) budget. Appended to the --out file like the arbiter
// rows.
#define HBMSIM_BENCH_COUNT_ALLOCS
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "assoc/direct_mapped.h"
#include "common.h"
#include "core/hbm_cache.h"
#include "core/simulator.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "opt/predictor/predictor.h"
#include "workloads/adversarial.h"
#include "workloads/sort_trace.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

Workload zipf_workload(std::size_t threads, std::size_t length) {
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 2048;
  opts.length = length;
  opts.zipf_s = 0.9;
  return workloads::make_synthetic_workload(threads, opts);
}

void BM_SimulateFifo(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::fifo(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateFifo)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulatePriority(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::priority(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulatePriority)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulateDynamicPriority(benchmark::State& state) {
  const Workload w = zipf_workload(16, 100'000);
  SimConfig c = SimConfig::dynamic_priority(4096, 10.0);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateDynamicPriority)->Unit(benchmark::kMillisecond);

// Channel-bound case: most threads blocked; ticks must stay cheap.
void BM_SimulateChannelBound(benchmark::State& state) {
  const Workload w = workloads::make_adversarial_workload(
      64, {.unique_pages = 256, .repetitions = 20});
  SimConfig c = SimConfig::fifo(
      workloads::adversarial_hbm_slots(64, {.unique_pages = 256, .repetitions = 20},
                                       0.25));
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateChannelBound)->Unit(benchmark::kMillisecond);

void BM_LruCacheChurn(benchmark::State& state) {
  HbmCache cache(static_cast<std::uint64_t>(state.range(0)), ReplacementKind::kLru);
  std::uint64_t page = 0;
  for (auto _ : state) {
    cache.insert(page++);
    if (cache.contains(page / 2)) {
      cache.touch(page / 2);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheChurn)->Arg(1024)->Arg(65536);

void BM_DirectMappedChurn(benchmark::State& state) {
  assoc::DirectMappedCache cache(65536);
  std::uint64_t page = 0;
  for (auto _ : state) {
    if (!cache.contains(page)) {
      cache.insert(page);
    }
    page += 7;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectMappedChurn);

void BM_SortTraceGeneration(benchmark::State& state) {
  workloads::SortTraceOptions opts;
  opts.num_elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(workloads::make_sort_trace(opts));
  }
}
BENCHMARK(BM_SortTraceGeneration)->Arg(10'000)->Unit(benchmark::kMillisecond);

// ---- Engine differential comparison (--engine-compare) -------------------

// SplitMix64 finaliser — the same mixing tests/determinism_test.cc uses
// for its pinned goldens, so "identical" here means identical there too.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Order-sensitive fingerprint of every RunMetrics field that
/// participates in cross-engine equivalence — i.e. everything except
/// skipped_ticks (0 under the reference engine by definition).
std::uint64_t metrics_fingerprint(const RunMetrics& m) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  const auto add = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  add(m.makespan);
  add(m.total_refs);
  add(m.hits);
  add(m.misses);
  add(m.evictions);
  add(m.remaps);
  add(m.fetches);
  add(m.requeues);
  add(m.idle_ticks);
  add(m.response.count());
  add(std::bit_cast<std::uint64_t>(m.response.mean()));
  add(std::bit_cast<std::uint64_t>(m.response.stddev()));
  add(std::bit_cast<std::uint64_t>(m.response.max()));
  for (const ThreadMetrics& t : m.per_thread) {
    add(t.refs);
    add(t.hits);
    add(t.misses);
    add(t.completion_tick);
    add(std::bit_cast<std::uint64_t>(t.response.mean()));
  }
  return h;
}

struct EngineRun {
  double wall_seconds = 0.0;
  RunMetrics metrics;
};

/// Run (workload, config) under `engine` `repeats` times; keep the
/// fastest wall time (noise floor) and the metrics (identical each time —
/// the simulator is deterministic).
EngineRun time_engine(const Workload& w, SimConfig config, EngineKind engine,
                      int repeats) {
  config.engine = engine;
  EngineRun result;
  result.wall_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(w, config);
    RunMetrics m = sim.run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.wall_seconds = std::min(result.wall_seconds, s);
    result.metrics = std::move(m);
  }
  return result;
}

struct CompareCase {
  std::string name;
  std::string note;
  Workload workload;
  SimConfig config;
};

/// The acceptance configuration: p = 64 cores, q = 2 channels, long
/// transfers (fetch_ticks >> 1). 63 cores run short mostly-resident
/// traces and finish in the opening ticks; core 0 then chases a cyclic
/// all-miss sequence alone, so each of its references costs 2 executed
/// ticks plus fetch_ticks - 1 provably idle ones — the regime where the
/// reference engine burns almost all of its time spinning idle ticks.
CompareCase idle_heavy_case(bool smoke) {
  CompareCase c;
  c.name = "idle_heavy";
  c.note = "p=64 q=2: one long all-miss chase behind a long far channel; "
           "idle ticks dominate";
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.push_back(std::make_shared<Trace>(workloads::make_cyclic_trace(
      {.unique_pages = 512, .repetitions = smoke ? 2U : 32U})));
  for (std::size_t t = 1; t < 64; ++t) {
    traces.push_back(std::make_shared<Trace>(workloads::make_uniform_trace(
        /*num_pages=*/16, /*length=*/32, /*seed=*/1000 + t)));
  }
  c.workload = Workload(std::move(traces), "idle-heavy");
  c.config = SimConfig::fifo(/*k=*/256, /*q=*/2);
  c.config.fetch_ticks = smoke ? 8 : 256;
  return c;
}

/// Honest counterpoint: a backlogged queue (q << p, every core missing)
/// has no idle ticks to skip, so the fast engine must simply not regress.
CompareCase backlog_case(bool smoke) {
  CompareCase c;
  c.name = "channel_backlog";
  c.note = "p=64 q=2 all-miss backlog: queue never drains, nothing to skip";
  c.workload = workloads::make_adversarial_workload(
      64, {.unique_pages = 128, .repetitions = smoke ? 2U : 8U});
  c.config = SimConfig::fifo(/*k=*/64, /*q=*/2);
  c.config.fetch_ticks = 4;
  return c;
}

/// The event engine's acceptance case (ISSUE 7): a saturated q=2 backlog
/// with p = 64k cores. Idle skipping is worthless here — every tick
/// fetches — but the dense calendar-queue layer (DESIGN.md §3e) executes
/// each tick in O(arrivals + issuers + q) instead of the tick loop's
/// per-tick scan, so the win scales with p. Aggregate metrics only: the
/// point is the engine, not a 64k-row per-thread report.
CompareCase backlog_large_case(bool smoke) {
  CompareCase c;
  c.name = "channel_backlog_large";
  c.note = "p=64k q=2 all-miss backlog: O(events) dense layer vs the "
           "tick loop";
  const std::size_t p = smoke ? 8192 : 65536;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = 16, .repetitions = smoke ? 2U : 4U});
  c.config = SimConfig::fifo(/*k=*/smoke ? 32768 : 262144, /*q=*/2);
  c.config.fetch_ticks = 4;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// Hit-run batching: a single core whose working set is resident serves
/// one hit per tick; the fast engine replays the run without the
/// per-tick step machinery.
CompareCase hit_run_case(bool smoke) {
  CompareCase c;
  c.name = "single_thread_hits";
  c.note = "p=1 resident working set: batched hit runs";
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 2048;
  opts.length = smoke ? 50'000 : 2'000'000;
  opts.zipf_s = 0.9;
  c.workload = workloads::make_synthetic_workload(1, opts);
  c.config = SimConfig::fifo(/*k=*/4096, /*q=*/1);
  return c;
}

int run_engine_compare(bool smoke, const std::string& out_path) {
  const int repeats = smoke ? 1 : 5;
  std::vector<CompareCase> cases;
  cases.push_back(idle_heavy_case(smoke));
  cases.push_back(backlog_case(smoke));
  cases.push_back(backlog_large_case(smoke));
  cases.push_back(hit_run_case(smoke));

  bool all_identical = true;
  std::string rows;
  for (const CompareCase& cc : cases) {
    // Interleave the repeats (tick, fast, event, tick, ...) so load noise
    // on a shared machine hits every engine alike and the reported ratios
    // stay honest; each engine keeps its fastest wall time.
    EngineRun ref;
    EngineRun fast;
    EngineRun event;
    ref.wall_seconds = std::numeric_limits<double>::infinity();
    fast.wall_seconds = std::numeric_limits<double>::infinity();
    event.wall_seconds = std::numeric_limits<double>::infinity();
    const auto keep = [](EngineRun& acc, EngineRun run) {
      acc.wall_seconds = std::min(acc.wall_seconds, run.wall_seconds);
      acc.metrics = std::move(run.metrics);
    };
    for (int i = 0; i < repeats; ++i) {
      keep(ref, time_engine(cc.workload, cc.config, EngineKind::kTick, 1));
      keep(fast, time_engine(cc.workload, cc.config, EngineKind::kFast, 1));
      keep(event, time_engine(cc.workload, cc.config, EngineKind::kEvent, 1));
    }
    const bool identical =
        metrics_fingerprint(ref.metrics) == metrics_fingerprint(fast.metrics) &&
        metrics_fingerprint(ref.metrics) == metrics_fingerprint(event.metrics);
    all_identical = all_identical && identical;

    const auto ticks = static_cast<double>(ref.metrics.makespan);
    const auto refs = static_cast<double>(ref.metrics.total_refs);
    const auto engine_json = [&](const EngineRun& run) {
      exp::JsonObject e;
      e.field("wall_seconds", run.wall_seconds)
          .field("ticks_per_sec", ticks / run.wall_seconds)
          .field("refs_per_sec", refs / run.wall_seconds)
          .field("idle_ticks", run.metrics.idle_ticks)
          .field("skipped_ticks", run.metrics.skipped_ticks);
      return e.str();
    };
    const double speedup = ref.wall_seconds / fast.wall_seconds;
    const double speedup_event = ref.wall_seconds / event.wall_seconds;

    exp::JsonObject row;
    row.field("name", cc.name)
        .field("note", cc.note)
        .raw_field("config", exp::to_json(cc.config))
        .field("threads", static_cast<std::uint64_t>(cc.workload.num_threads()))
        .field("total_refs", ref.metrics.total_refs)
        .field("makespan_ticks", ref.metrics.makespan)
        .raw_field("reference", engine_json(ref))
        .raw_field("fast", engine_json(fast))
        .raw_field("event", engine_json(event))
        .field("speedup_ticks_per_sec", speedup)
        .field("speedup_event_ticks_per_sec", speedup_event)
        .field("metrics_identical", identical);
    if (!rows.empty()) {
      rows += ',';
    }
    rows += row.str();

    std::fprintf(stderr,
                 "%-22s ref %8.4fs  fast %8.4fs (%6.2fx)  event %8.4fs "
                 "(%6.2fx)  metrics %s\n",
                 cc.name.c_str(), ref.wall_seconds, fast.wall_seconds, speedup,
                 event.wall_seconds, speedup_event,
                 identical ? "identical" : "DIFFER");
  }

  exp::JsonObject report;
  report.field("bench", "engine_compare")
      .field("scale", smoke ? "smoke" : "full")
      .field("repeats_per_engine", repeats)
      .raw_field("cases", "[" + rows + "]")
      .field("all_metrics_identical", all_identical);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: engines disagree on RunMetrics — the fast engine "
                 "broke the equivalence contract\n");
    return 1;
  }
  return 0;
}

// ---- Arbiter differential comparison (--arbiter-compare) -----------------

/// Run (workload, config) under `impl` `repeats` times on the reference
/// tick engine; keep the fastest wall time and the (deterministic)
/// metrics.
EngineRun time_arbiter(const Workload& w, SimConfig config, ArbiterImpl impl,
                       int repeats) {
  config.engine = EngineKind::kTick;  // measure the tick loop itself
  config.arbiter_impl = impl;
  EngineRun result;
  result.wall_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(w, config);
    RunMetrics m = sim.run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.wall_seconds = std::min(result.wall_seconds, s);
    result.metrics = std::move(m);
  }
  return result;
}

/// Steady-state allocation probe: step the simulator through `warmup`
/// ticks (pool growth to the high-water mark is legal there), snapshot
/// the process-wide allocation counter, then run to completion. The
/// delta is the number of heap allocations the steady-state tick loop
/// performed — the contract is exactly zero.
std::uint64_t steady_state_allocs(const Workload& w, SimConfig config,
                                  Tick warmup) {
  config.engine = EngineKind::kTick;
  config.arbiter_impl = ArbiterImpl::kFast;
  Simulator sim(w, config);
  for (Tick t = 0; t < warmup && sim.step(); ++t) {
  }
  const std::uint64_t before = hbmsim::bench::allocation_count();
  while (sim.step()) {
  }
  return hbmsim::bench::allocation_count() - before;
}

/// Deep-backlog static Priority: q << p and every reference missing, so
/// the DRAM queue sits ~p deep for the whole run. Every tick performs q
/// pops + q enqueues against the full queue — the regime where the old
/// std::map paid an allocation plus O(log p) per operation.
CompareCase priority_backlog_case(bool smoke) {
  CompareCase c;
  c.name = "deep_backlog_priority";
  c.note = "p=65536 q=2 one-shot misses: the whole population blocks at "
           "tick 0 and the static Priority queue drains from depth p";
  const std::size_t p = smoke ? 64 : 65536;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = smoke ? 64U : 1U, .repetitions = smoke ? 2U : 1U});
  c.config = SimConfig::priority(/*k=*/smoke ? p : 256, /*q=*/2);
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// Dynamic Priority with an aggressive remap period: every T = 4 ticks
/// the permutation changes and the whole ~p-deep queue re-ranks. The old
/// arbiter drained and rebuilt its tree — O(p log p) with p allocations
/// per remap; the bucket queue relinks in one arrival-order walk.
CompareCase dynamic_remap_case(bool smoke) {
  CompareCase c;
  c.name = "dynamic_remap";
  c.note = "p=512 q=2 backlog, Dynamic Priority remapping every 4 ticks";
  const std::size_t p = smoke ? 64 : 512;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = 64, .repetitions = smoke ? 2U : 16U});
  c.config = SimConfig::priority(/*k=*/p, /*q=*/2);
  c.config.remap_scheme = RemapScheme::kDynamic;
  c.config.remap_period = 4;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// FR-FCFS under per-thread streaming: each core walks its own
/// sequential region, so the channel's open row almost never has a
/// queued request left in it and the old row-hit scan walks the whole
/// ~p-deep queue before falling back to the oldest. The row index makes
/// both the hit probe and the fallback O(1).
CompareCase frfcfs_rows_case(bool smoke) {
  CompareCase c;
  c.name = "frfcfs_row_heavy";
  c.note = "p=256 q=2 streaming: open-row probes miss, scan was O(p) per pop";
  const std::size_t p = smoke ? 64 : 256;
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  for (std::size_t t = 0; t < p; ++t) {
    traces.push_back(std::make_shared<Trace>(workloads::make_cyclic_trace(
        {.unique_pages = 256, .repetitions = smoke ? 2U : 8U})));
  }
  c.workload = Workload(std::move(traces), "frfcfs-streams");
  c.config = SimConfig::fifo(/*k=*/p, /*q=*/2);
  c.config.arbitration = ArbitrationKind::kFrFcfs;
  c.config.row_pages = 8;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

int run_arbiter_compare(bool smoke, const std::string& out_path) {
  const int repeats = smoke ? 1 : 5;
  std::vector<CompareCase> cases;
  cases.push_back(priority_backlog_case(smoke));
  cases.push_back(dynamic_remap_case(smoke));
  cases.push_back(frfcfs_rows_case(smoke));

  bool all_identical = true;
  bool all_alloc_free = true;
  std::string rows;
  for (const CompareCase& cc : cases) {
    const EngineRun ref =
        time_arbiter(cc.workload, cc.config, ArbiterImpl::kReference, repeats);
    const EngineRun fast =
        time_arbiter(cc.workload, cc.config, ArbiterImpl::kFast, repeats);
    const bool identical = metrics_fingerprint(ref.metrics) ==
                           metrics_fingerprint(fast.metrics);
    all_identical = all_identical && identical;

    // Warm-up: the backlog reaches its high-water mark within the first
    // few ticks; 64 gives the pools generous room to finish growing.
    const Tick warmup = 64;
    const std::uint64_t allocs = steady_state_allocs(cc.workload, cc.config,
                                                     warmup);
    all_alloc_free = all_alloc_free && allocs == 0;

    const auto ticks = static_cast<double>(ref.metrics.makespan);
    const auto refs = static_cast<double>(ref.metrics.total_refs);
    const double speedup = ref.wall_seconds / fast.wall_seconds;

    exp::JsonObject ref_json;
    ref_json.field("wall_seconds", ref.wall_seconds)
        .field("ticks_per_sec", ticks / ref.wall_seconds)
        .field("refs_per_sec", refs / ref.wall_seconds);
    exp::JsonObject fast_json;
    fast_json.field("wall_seconds", fast.wall_seconds)
        .field("ticks_per_sec", ticks / fast.wall_seconds)
        .field("refs_per_sec", refs / fast.wall_seconds)
        .field("warmup_ticks", warmup)
        .field("steady_state_allocs", allocs);

    exp::JsonObject row;
    row.field("name", cc.name)
        .field("note", cc.note)
        .raw_field("config", exp::to_json(cc.config))
        .field("threads", static_cast<std::uint64_t>(cc.workload.num_threads()))
        .field("total_refs", ref.metrics.total_refs)
        .field("makespan_ticks", ref.metrics.makespan)
        .raw_field("reference", ref_json.str())
        .raw_field("bucketed", fast_json.str())
        .field("speedup_ticks_per_sec", speedup)
        .field("metrics_identical", identical);
    if (!rows.empty()) {
      rows += ',';
    }
    rows += row.str();

    std::fprintf(stderr,
                 "%-22s ref %8.4fs  bucketed %8.4fs  speedup %6.2fx  "
                 "steady allocs %llu  metrics %s\n",
                 cc.name.c_str(), ref.wall_seconds, fast.wall_seconds, speedup,
                 static_cast<unsigned long long>(allocs),
                 identical ? "identical" : "DIFFER");
  }

  exp::JsonObject report;
  report.field("bench", "arbiter_compare")
      .field("scale", smoke ? "smoke" : "full")
      .field("repeats_per_impl", repeats)
      .raw_field("cases", "[" + rows + "]")
      .field("all_metrics_identical", all_identical)
      .field("all_steady_state_allocation_free", all_alloc_free);

  // Append: BENCH_perf.json is a JSONL perf trajectory; the
  // engine_compare row written by --engine-compare must survive.
  std::ofstream out(out_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "appended to %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: arbiters disagree on RunMetrics — the bucketed "
                 "structures broke the equivalence contract\n");
    return 1;
  }
  if (!all_alloc_free) {
    std::fprintf(stderr,
                 "error: the tick loop allocated after warm-up — the "
                 "steady-state allocation-free contract is broken\n");
    return 1;
  }
  return 0;
}

// ---- Streaming scale comparison (--scale-compare) ------------------------
//
// Two claims, each checked mechanically (ISSUE 9):
//
//  1. Equivalence — a streaming workload (TraceCursor backends, no stored
//     reference vectors) produces bit-identical RunMetrics to its
//     materialized twin under every engine, at scales where both fit.
//  2. Residency — at p = 1M threads the streaming path fits a hard
//     peak-heap-bytes budget that is O(p), where the materialized twin
//     would need p · length · 4 bytes of trace data alone (256 GB for
//     the case below). The budget binds on the byte-tracking allocation
//     shim (util/alloc_shim.h) this binary links in.

/// One (streaming, materialized) workload pair plus the config both run
/// under. The builders are twins by construction: the materialized
/// makers are `materialize(Cursor(...))` over the same cursors.
struct ScalePair {
  std::string name;
  std::string note;
  Workload streaming;
  Workload materialized;
  SimConfig config;
};

/// Per-thread uniform synthetic options for the scale cases: 64 local
/// pages, 64Ki references per thread. Materializing one thread costs
/// 256 KiB of trace data; materializing the p = 1M workload would cost
/// 256 GiB. Streaming holds one ~100-byte cursor per thread instead.
workloads::SyntheticOptions scale_synth_opts() {
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kUniform;
  opts.num_pages = 64;
  opts.length = 65536;
  opts.seed = 42;
  return opts;
}

/// The shared config shape of every scale case: q = 2 channels against a
/// large population, long-ish transfers, aggregate metrics only, and a
/// max_ticks horizon so the total work is bounded by the channel count
/// rather than by p · length.
SimConfig scale_config(std::uint64_t hbm_slots, Tick max_ticks) {
  SimConfig c = SimConfig::fifo(hbm_slots, /*q=*/2);
  c.fetch_ticks = 4;
  c.per_thread_metrics = false;
  c.response_histogram = false;
  c.max_ticks = max_ticks;
  return c;
}

/// Overlap case A: the adversarial cyclic scan (one shared source /
/// one shared trace across p threads).
ScalePair adversarial_overlap_pair(bool smoke) {
  const std::size_t p = smoke ? 512 : 4096;
  const workloads::AdversarialOptions adv{.unique_pages = 64,
                                          .repetitions = 16};
  ScalePair pair;
  pair.name = "overlap_adversarial_4k";
  pair.note = "p=4096 cyclic all-miss: streaming CyclicSource vs the "
              "materialized shared trace, all engines";
  pair.streaming = workloads::make_adversarial_streaming_workload(p, adv);
  pair.materialized = workloads::make_adversarial_workload(p, adv);
  pair.config = scale_config(workloads::adversarial_hbm_slots(p, adv, 0.25),
                             smoke ? Tick{1} << 16 : Tick{1} << 20);
  return pair;
}

/// Overlap case B: per-thread seeded uniform synthetic traces — the same
/// family as the p = 1M residency case, at a scale where the materialized
/// twin still fits, truncated at the same kind of horizon.
ScalePair synthetic_overlap_pair(bool smoke) {
  const std::size_t p = smoke ? 2048 : 16384;
  workloads::SyntheticOptions opts = scale_synth_opts();
  opts.length = 1024;  // materialized twin: p traces of 4 KiB each
  ScalePair pair;
  pair.name = "overlap_synthetic_16k";
  pair.note = "p=16k per-thread uniform traces: streaming cursors vs "
              "materialized vectors, all engines";
  pair.streaming = workloads::make_streaming_workload(p, opts);
  pair.materialized = workloads::make_synthetic_workload(p, opts);
  pair.config = scale_config(/*hbm_slots=*/8 * p, /*max_ticks=*/Tick{1} << 16);
  return pair;
}

struct P1mResult {
  EngineRun run;
  std::uint64_t peak_bytes = 0;
  std::uint64_t budget_bytes = 0;
  std::size_t threads = 0;
  bool within_budget = true;
};

/// The p = 1M residency case: build the streaming workload, run it under
/// the event engine, and record the peak live-heap high-water mark of
/// the whole episode (workload + simulator + run). The budget is linear
/// in p — a fixed slack for the process plus a per-thread allowance
/// covering cursor, SoA slots, dense event-engine state, and queue
/// entries. A materialized workload cannot fit: its trace data alone is
/// length · 4 bytes per thread, ~64× the whole per-thread allowance.
P1mResult run_p1m_case(bool smoke) {
  P1mResult r;
  r.threads = smoke ? (std::size_t{1} << 16) : (std::size_t{1} << 20);
  // Measured 2026-08: ~480 B/thread (cursor + SoA slots + dense thread +
  // queue entry) plus ~19 MiB of k-proportional cache structures. The
  // allowance below gives ~40% headroom while staying ~370× under the
  // materialized twin's 256 GiB of trace data.
  constexpr std::uint64_t kFixedSlackBytes = std::uint64_t{64} << 20;
  constexpr std::uint64_t kPerThreadBudgetBytes = 640;
  r.budget_bytes = kFixedSlackBytes + kPerThreadBudgetBytes * r.threads;

  util::reset_alloc_peak();
  {
    const Workload w =
        workloads::make_streaming_workload(r.threads, scale_synth_opts());
    SimConfig config = scale_config(/*hbm_slots=*/262144,
                                    /*max_ticks=*/Tick{1} << 18);
    config.engine = EngineKind::kEvent;
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(w, config);
    r.run.metrics = sim.run();
    r.run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  r.peak_bytes = util::alloc_peak_bytes();
  r.within_budget =
      !util::alloc_bytes_tracked() || r.peak_bytes <= r.budget_bytes;
  return r;
}

int run_scale_compare(bool smoke, const std::string& out_path) {
  std::vector<ScalePair> pairs;
  pairs.push_back(adversarial_overlap_pair(smoke));
  pairs.push_back(synthetic_overlap_pair(smoke));

  bool all_identical = true;
  std::string rows;
  const EngineKind engines[] = {EngineKind::kTick, EngineKind::kFast,
                                EngineKind::kEvent};
  const char* engine_names[] = {"tick", "fast", "event"};
  for (const ScalePair& pair : pairs) {
    bool identical = true;
    std::string engine_rows;
    for (std::size_t e = 0; e < 3; ++e) {
      const EngineRun s = time_engine(pair.streaming, pair.config, engines[e],
                                      /*repeats=*/1);
      const EngineRun m = time_engine(pair.materialized, pair.config,
                                      engines[e], /*repeats=*/1);
      const bool eq =
          metrics_fingerprint(s.metrics) == metrics_fingerprint(m.metrics);
      identical = identical && eq;
      exp::JsonObject ej;
      ej.field("engine", engine_names[e])
          .field("streaming_wall_seconds", s.wall_seconds)
          .field("materialized_wall_seconds", m.wall_seconds)
          .field("metrics_identical", eq);
      if (!engine_rows.empty()) {
        engine_rows += ',';
      }
      engine_rows += ej.str();
      std::fprintf(stderr,
                   "%-24s %-5s streaming %8.4fs  materialized %8.4fs  "
                   "metrics %s\n",
                   pair.name.c_str(), engine_names[e], s.wall_seconds,
                   m.wall_seconds, eq ? "identical" : "DIFFER");
    }
    all_identical = all_identical && identical;

    exp::JsonObject row;
    row.field("name", pair.name)
        .field("note", pair.note)
        .raw_field("config", exp::to_json(pair.config))
        .field("threads",
               static_cast<std::uint64_t>(pair.streaming.num_threads()))
        .raw_field("engines", "[" + engine_rows + "]")
        .field("metrics_identical", identical);
    if (!rows.empty()) {
      rows += ',';
    }
    rows += row.str();
  }

  const P1mResult p1m = run_p1m_case(smoke);
  const double refs_per_sec =
      static_cast<double>(p1m.run.metrics.total_refs) / p1m.run.wall_seconds;
  {
    exp::JsonObject row;
    row.field("name", "p1m_scale")
        .field("note", "p=1M streaming uniform traces under the event "
                       "engine, max_ticks horizon; peak live heap must fit "
                       "an O(p) budget")
        .field("threads", static_cast<std::uint64_t>(p1m.threads))
        .field("engine", "event")
        .field("wall_seconds", p1m.run.wall_seconds)
        .field("refs_served", p1m.run.metrics.total_refs)
        .field("refs_per_sec", refs_per_sec)
        .field("makespan_ticks", p1m.run.metrics.makespan)
        .field("truncated", p1m.run.metrics.truncated)
        .field("alloc_bytes_tracked", util::alloc_bytes_tracked())
        .field("peak_heap_bytes", p1m.peak_bytes)
        .field("budget_bytes", p1m.budget_bytes)
        .field("within_budget", p1m.within_budget);
    rows += ',';
    rows += row.str();
  }
  std::fprintf(stderr,
               "p1m_scale              p=%zu  %8.4fs  %9.0f refs/s  peak "
               "%.1f MiB  budget %.1f MiB  %s\n",
               p1m.threads, p1m.run.wall_seconds, refs_per_sec,
               static_cast<double>(p1m.peak_bytes) / (1 << 20),
               static_cast<double>(p1m.budget_bytes) / (1 << 20),
               p1m.within_budget ? "within budget" : "OVER BUDGET");

  exp::JsonObject report;
  report.field("bench", "scale_compare")
      .field("scale", smoke ? "smoke" : "full")
      .raw_field("cases", "[" + rows + "]")
      .field("all_metrics_identical", all_identical)
      .field("p1m_within_budget", p1m.within_budget);

  // Append: BENCH_perf.json is a JSONL perf trajectory.
  std::ofstream out(out_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "appended to %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: streaming and materialized workloads disagree on "
                 "RunMetrics — the cursor layer broke the equivalence "
                 "contract\n");
    return 1;
  }
  if (!p1m.within_budget) {
    std::fprintf(stderr,
                 "error: the p=1M streaming run exceeded its peak-heap "
                 "budget — resident memory is no longer O(p)\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Predictor screening mode: hybrid multi-fidelity sweep vs full simulation.

/// Pinned audit tolerances (relative error vs the simulator). The model
/// is tight for order-insensitive arbitration; static Priority's staged
/// completion — finished high-rank threads free shared LRU capacity, so
/// real miss counts fall over the run — makes it a conservative upper
/// bound there (DESIGN.md §9), hence the looser family pin.
constexpr double kAuditMakespanTol = 0.35;
constexpr double kAuditMakespanTolPriority = 1.0;
constexpr double kAuditMeanResponseTol = 0.50;
constexpr double kAuditMeanResponseTolPriority = 2.0;
constexpr double kMinHybridSpeedup = 20.0;

bool priority_family(ArbitrationKind kind) {
  return kind == ArbitrationKind::kPriority ||
         kind == ArbitrationKind::kAdaptive;
}

/// The ≥1k-point design-space grid: p × k × (policy, q, F). Streaming
/// zipf workloads keep build() cheap; every config rides the auto engine.
exp::SweepSpec predictor_grid(bool smoke) {
  exp::SweepSpec spec("predictor");
  const std::size_t length = smoke ? 2'000 : 10'000;
  spec.workload([length](std::size_t p) {
    workloads::SyntheticOptions o;
    o.kind = workloads::SyntheticKind::kZipf;
    o.num_pages = 1024;
    o.length = length;
    o.zipf_s = 0.9;
    return workloads::make_streaming_workload(p, o);
  });
  spec.threads(smoke ? std::vector<std::size_t>{8}
                     : std::vector<std::size_t>{8, 16});
  std::vector<std::uint64_t> sizes;
  const std::size_t n_sizes = smoke ? 4 : 32;
  for (std::size_t i = 0; i < n_sizes; ++i) {
    sizes.push_back(64 + (4096 - 64) * i / (n_sizes - 1));
  }
  spec.hbm_sizes(sizes);
  const std::vector<std::uint32_t> qs = smoke ? std::vector<std::uint32_t>{1, 2}
                                              : std::vector<std::uint32_t>{1, 2, 4};
  const std::vector<std::uint32_t> fs = smoke ? std::vector<std::uint32_t>{1}
                                              : std::vector<std::uint32_t>{1, 4};
  const std::pair<const char*, ArbitrationKind> policies[] = {
      {"fifo", ArbitrationKind::kFifo},
      {"priority", ArbitrationKind::kPriority},
      {"random", ArbitrationKind::kRandom},
  };
  for (const std::uint32_t q : qs) {
    for (const std::uint32_t f : fs) {
      for (const auto& [pol_name, pol] : policies) {
        const std::string name = std::string(pol_name) +
                                 " q=" + std::to_string(q) +
                                 " F=" + std::to_string(f);
        spec.config(name, [pol, q, f](std::uint64_t k) {
          SimConfig c;
          c.hbm_slots = k;
          c.num_channels = q;
          c.fetch_ticks = f;
          c.arbitration = pol;
          c.per_thread_metrics = false;
          c.response_histogram = false;
          return c;
        });
      }
    }
  }
  return spec;
}

int run_predictor_compare(bool smoke, const std::string& out_path) {
  exp::SweepSpec spec = predictor_grid(smoke);
  exp::RunnerOptions ropts;
  ropts.jobs = 1;

  // Pass 1: the historical path — simulate every grid point.
  const auto full_start = std::chrono::steady_clock::now();
  const std::vector<exp::PointResult> full = spec.run(ropts);
  const double full_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    full_start)
          .count();

  // Pass 2: hybrid fidelity over the same grid.
  exp::FidelityOptions fopts;
  fopts.fidelity = exp::Fidelity::kHybrid;
  fopts.top_k = smoke ? 4 : 16;
  fopts.audit = smoke ? 4 : 16;
  spec.fidelity(fopts);
  const auto hybrid_start = std::chrono::steady_clock::now();
  const exp::SweepSpec::FidelityOutcome hybrid =
      spec.run_fidelity(fopts, ropts);
  const double hybrid_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    hybrid_start)
          .count();

  bool all_ok = true;
  for (const exp::PointResult& r : full) {
    all_ok = all_ok && r.ok;
  }

  // The hybrid's simulated points must be bit-identical to the full run's
  // — same point, same runner, same seeds (the determinism contract).
  bool identical = true;
  std::string audit_rows;
  double worst_mk_plain = 0.0, worst_mk_priority = 0.0;
  double worst_mr_plain = 0.0, worst_mr_priority = 0.0;
  for (const std::size_t i : hybrid.simulated) {
    const exp::PointResult& h = hybrid.results[i];
    const exp::PointResult& f = full[i];
    all_ok = all_ok && h.ok;
    if (!h.ok || !f.ok) {
      continue;
    }
    identical = identical && metrics_fingerprint(h.metrics) ==
                                 metrics_fingerprint(f.metrics);
    const opt::Prediction& pred = hybrid.predictions[i];
    const double sim_mk = static_cast<double>(h.metrics.makespan);
    const double sim_mr = h.metrics.mean_response();
    const double err_mk =
        sim_mk > 0.0 ? std::abs(pred.makespan - sim_mk) / sim_mk : 0.0;
    const double err_mr =
        sim_mr > 0.0 ? std::abs(pred.mean_response - sim_mr) / sim_mr : 0.0;
    const bool priority = priority_family(h.config.arbitration);
    (priority ? worst_mk_priority : worst_mk_plain) =
        std::max(priority ? worst_mk_priority : worst_mk_plain, err_mk);
    (priority ? worst_mr_priority : worst_mr_plain) =
        std::max(priority ? worst_mr_priority : worst_mr_plain, err_mr);
    exp::JsonObject row;
    row.field("label", h.label)
        .field("arbitration", to_string(h.config.arbitration))
        .field("predicted_makespan", pred.makespan)
        .field("sim_makespan", h.metrics.makespan)
        .field("makespan_rel_error", err_mk)
        .field("predicted_mean_response", pred.mean_response)
        .field("sim_mean_response", sim_mr)
        .field("mean_response_rel_error", err_mr);
    if (!audit_rows.empty()) {
      audit_rows += ',';
    }
    audit_rows += row.str();
  }

  const double speedup =
      hybrid_seconds > 0.0 ? full_seconds / hybrid_seconds : 0.0;
  const bool within_tolerance = worst_mk_plain <= kAuditMakespanTol &&
                                worst_mk_priority <= kAuditMakespanTolPriority &&
                                worst_mr_plain <= kAuditMeanResponseTol &&
                                worst_mr_priority <= kAuditMeanResponseTolPriority;
  const bool speedup_ok = smoke || speedup >= kMinHybridSpeedup;
  const bool grid_ok = smoke || full.size() >= 1000;

  std::fprintf(stderr,
               "predictor_compare      %zu points  full %8.3fs  hybrid "
               "%8.3fs (screen %.4fs, %zu simulated)  speedup %.1fx\n",
               full.size(), full_seconds, hybrid_seconds,
               hybrid.screen_seconds, hybrid.simulated.size(), speedup);
  std::fprintf(stderr,
               "  audited rel error: makespan %.3f (order-insensitive) / "
               "%.3f (priority family)  mean_response %.3f / %.3f\n",
               worst_mk_plain, worst_mk_priority, worst_mr_plain,
               worst_mr_priority);

  exp::JsonObject report;
  report.field("bench", "predictor_compare")
      .field("scale", smoke ? "smoke" : "full")
      .field("grid_points", static_cast<std::uint64_t>(full.size()))
      .field("simulated_points",
             static_cast<std::uint64_t>(hybrid.simulated.size()))
      .field("full_sim_seconds", full_seconds)
      .field("hybrid_seconds", hybrid_seconds)
      .field("screen_seconds", hybrid.screen_seconds)
      .field("speedup", speedup)
      .field("simulated_bit_identical", identical)
      .field("worst_makespan_error", worst_mk_plain)
      .field("worst_makespan_error_priority", worst_mk_priority)
      .field("worst_mean_response_error", worst_mr_plain)
      .field("worst_mean_response_error_priority", worst_mr_priority)
      .field("makespan_tolerance", kAuditMakespanTol)
      .field("makespan_tolerance_priority", kAuditMakespanTolPriority)
      .field("mean_response_tolerance", kAuditMeanResponseTol)
      .field("mean_response_tolerance_priority", kAuditMeanResponseTolPriority)
      .raw_field("audited", "[" + audit_rows + "]")
      .field("within_tolerance", within_tolerance)
      .field("pass", all_ok && identical && within_tolerance && speedup_ok &&
                         grid_ok);

  // Append: BENCH_perf.json is a JSONL perf trajectory.
  std::ofstream out(out_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "appended to %s\n", out_path.c_str());

  if (!all_ok) {
    std::fprintf(stderr, "error: a grid point failed to simulate\n");
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "error: hybrid-simulated points are not bit-identical to "
                 "the full-simulation run\n");
    return 1;
  }
  if (!within_tolerance) {
    std::fprintf(stderr,
                 "error: audited model-vs-sim error exceeds the pinned "
                 "tolerance\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "error: hybrid speedup %.1fx below the %.0fx gate\n",
                 speedup, kMinHybridSpeedup);
    return 1;
  }
  if (!grid_ok) {
    std::fprintf(stderr, "error: grid has %zu points, need >= 1000\n",
                 full.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_compare = false;
  bool arbiter_compare = false;
  bool scale_compare = false;
  bool predictor_compare = false;
  bool smoke = false;
  std::string out_path = "BENCH_perf.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--engine-compare") {
      engine_compare = true;
    } else if (arg == "--arbiter-compare") {
      arbiter_compare = true;
    } else if (arg == "--scale-compare") {
      scale_compare = true;
    } else if (arg == "--predictor-compare") {
      predictor_compare = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (engine_compare) {
    return run_engine_compare(smoke, out_path);
  }
  if (arbiter_compare) {
    return run_arbiter_compare(smoke, out_path);
  }
  if (scale_compare) {
    return run_scale_compare(smoke, out_path);
  }
  if (predictor_compare) {
    return run_predictor_compare(smoke, out_path);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
