// Google-benchmark microbenchmarks of the simulator core: end-to-end
// simulation throughput per policy, cache-structure operation costs, and
// trace generation. These guard the performance contract in DESIGN.md §3
// (work ∝ refs + misses, not makespan·p).
//
// Engine differential mode (no google-benchmark involved):
//   perf_simulator --engine-compare [--smoke] [--out=PATH]
// times the reference tick engine against the fast-forward engine
// (DESIGN.md §3c) and the calendar-queue event engine (DESIGN.md §3e)
// on configurations where either the idle_ticks term or the per-tick
// backlog scan dominates, verifies their RunMetrics are bit-identical
// (everything except the skipped_ticks diagnostic), and writes a JSON
// report — BENCH_perf.json at the repo root by default, the repo's perf
// trajectory. --smoke shrinks the inputs for a seconds-long CI check.
//
// Arbiter differential mode (DESIGN.md §3d):
//   perf_simulator --arbiter-compare [--smoke] [--out=PATH]
// times the bucketed/pooled arbitration structures against the
// map/scan reference implementations (src/check/shadow_arbiter.cc) on
// backlog-heavy configurations, verifies bit-identical RunMetrics, and
// additionally proves the tick loop steady-state allocation-free: the
// binary replaces global operator new with a counting shim
// (bench/common.h, HBMSIM_BENCH_COUNT_ALLOCS) and requires the count
// delta after warm-up to be exactly zero. Results are *appended* to the
// --out file, so BENCH_perf.json accumulates one JSONL row per bench
// family.
#define HBMSIM_BENCH_COUNT_ALLOCS
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "assoc/direct_mapped.h"
#include "common.h"
#include "core/hbm_cache.h"
#include "core/simulator.h"
#include "exp/json.h"
#include "workloads/adversarial.h"
#include "workloads/sort_trace.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;

Workload zipf_workload(std::size_t threads, std::size_t length) {
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 2048;
  opts.length = length;
  opts.zipf_s = 0.9;
  return workloads::make_synthetic_workload(threads, opts);
}

void BM_SimulateFifo(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::fifo(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateFifo)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulatePriority(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Workload w = zipf_workload(threads, 100'000);
  SimConfig c = SimConfig::priority(4096);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulatePriority)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SimulateDynamicPriority(benchmark::State& state) {
  const Workload w = zipf_workload(16, 100'000);
  SimConfig c = SimConfig::dynamic_priority(4096, 10.0);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateDynamicPriority)->Unit(benchmark::kMillisecond);

// Channel-bound case: most threads blocked; ticks must stay cheap.
void BM_SimulateChannelBound(benchmark::State& state) {
  const Workload w = workloads::make_adversarial_workload(
      64, {.unique_pages = 256, .repetitions = 20});
  SimConfig c = SimConfig::fifo(
      workloads::adversarial_hbm_slots(64, {.unique_pages = 256, .repetitions = 20},
                                       0.25));
  c.per_thread_metrics = false;
  c.response_histogram = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_refs()));
}
BENCHMARK(BM_SimulateChannelBound)->Unit(benchmark::kMillisecond);

void BM_LruCacheChurn(benchmark::State& state) {
  HbmCache cache(static_cast<std::uint64_t>(state.range(0)), ReplacementKind::kLru);
  std::uint64_t page = 0;
  for (auto _ : state) {
    cache.insert(page++);
    if (cache.contains(page / 2)) {
      cache.touch(page / 2);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheChurn)->Arg(1024)->Arg(65536);

void BM_DirectMappedChurn(benchmark::State& state) {
  assoc::DirectMappedCache cache(65536);
  std::uint64_t page = 0;
  for (auto _ : state) {
    if (!cache.contains(page)) {
      cache.insert(page);
    }
    page += 7;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectMappedChurn);

void BM_SortTraceGeneration(benchmark::State& state) {
  workloads::SortTraceOptions opts;
  opts.num_elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(workloads::make_sort_trace(opts));
  }
}
BENCHMARK(BM_SortTraceGeneration)->Arg(10'000)->Unit(benchmark::kMillisecond);

// ---- Engine differential comparison (--engine-compare) -------------------

// SplitMix64 finaliser — the same mixing tests/determinism_test.cc uses
// for its pinned goldens, so "identical" here means identical there too.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Order-sensitive fingerprint of every RunMetrics field that
/// participates in cross-engine equivalence — i.e. everything except
/// skipped_ticks (0 under the reference engine by definition).
std::uint64_t metrics_fingerprint(const RunMetrics& m) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  const auto add = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  add(m.makespan);
  add(m.total_refs);
  add(m.hits);
  add(m.misses);
  add(m.evictions);
  add(m.remaps);
  add(m.fetches);
  add(m.requeues);
  add(m.idle_ticks);
  add(m.response.count());
  add(std::bit_cast<std::uint64_t>(m.response.mean()));
  add(std::bit_cast<std::uint64_t>(m.response.stddev()));
  add(std::bit_cast<std::uint64_t>(m.response.max()));
  for (const ThreadMetrics& t : m.per_thread) {
    add(t.refs);
    add(t.hits);
    add(t.misses);
    add(t.completion_tick);
    add(std::bit_cast<std::uint64_t>(t.response.mean()));
  }
  return h;
}

struct EngineRun {
  double wall_seconds = 0.0;
  RunMetrics metrics;
};

/// Run (workload, config) under `engine` `repeats` times; keep the
/// fastest wall time (noise floor) and the metrics (identical each time —
/// the simulator is deterministic).
EngineRun time_engine(const Workload& w, SimConfig config, EngineKind engine,
                      int repeats) {
  config.engine = engine;
  EngineRun result;
  result.wall_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(w, config);
    RunMetrics m = sim.run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.wall_seconds = std::min(result.wall_seconds, s);
    result.metrics = std::move(m);
  }
  return result;
}

struct CompareCase {
  std::string name;
  std::string note;
  Workload workload;
  SimConfig config;
};

/// The acceptance configuration: p = 64 cores, q = 2 channels, long
/// transfers (fetch_ticks >> 1). 63 cores run short mostly-resident
/// traces and finish in the opening ticks; core 0 then chases a cyclic
/// all-miss sequence alone, so each of its references costs 2 executed
/// ticks plus fetch_ticks - 1 provably idle ones — the regime where the
/// reference engine burns almost all of its time spinning idle ticks.
CompareCase idle_heavy_case(bool smoke) {
  CompareCase c;
  c.name = "idle_heavy";
  c.note = "p=64 q=2: one long all-miss chase behind a long far channel; "
           "idle ticks dominate";
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.push_back(std::make_shared<Trace>(workloads::make_cyclic_trace(
      {.unique_pages = 512, .repetitions = smoke ? 2U : 32U})));
  for (std::size_t t = 1; t < 64; ++t) {
    traces.push_back(std::make_shared<Trace>(workloads::make_uniform_trace(
        /*num_pages=*/16, /*length=*/32, /*seed=*/1000 + t)));
  }
  c.workload = Workload(std::move(traces), "idle-heavy");
  c.config = SimConfig::fifo(/*k=*/256, /*q=*/2);
  c.config.fetch_ticks = smoke ? 8 : 256;
  return c;
}

/// Honest counterpoint: a backlogged queue (q << p, every core missing)
/// has no idle ticks to skip, so the fast engine must simply not regress.
CompareCase backlog_case(bool smoke) {
  CompareCase c;
  c.name = "channel_backlog";
  c.note = "p=64 q=2 all-miss backlog: queue never drains, nothing to skip";
  c.workload = workloads::make_adversarial_workload(
      64, {.unique_pages = 128, .repetitions = smoke ? 2U : 8U});
  c.config = SimConfig::fifo(/*k=*/64, /*q=*/2);
  c.config.fetch_ticks = 4;
  return c;
}

/// The event engine's acceptance case (ISSUE 7): a saturated q=2 backlog
/// with p = 64k cores. Idle skipping is worthless here — every tick
/// fetches — but the dense calendar-queue layer (DESIGN.md §3e) executes
/// each tick in O(arrivals + issuers + q) instead of the tick loop's
/// per-tick scan, so the win scales with p. Aggregate metrics only: the
/// point is the engine, not a 64k-row per-thread report.
CompareCase backlog_large_case(bool smoke) {
  CompareCase c;
  c.name = "channel_backlog_large";
  c.note = "p=64k q=2 all-miss backlog: O(events) dense layer vs the "
           "tick loop";
  const std::size_t p = smoke ? 8192 : 65536;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = 16, .repetitions = smoke ? 2U : 4U});
  c.config = SimConfig::fifo(/*k=*/smoke ? 32768 : 262144, /*q=*/2);
  c.config.fetch_ticks = 4;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// Hit-run batching: a single core whose working set is resident serves
/// one hit per tick; the fast engine replays the run without the
/// per-tick step machinery.
CompareCase hit_run_case(bool smoke) {
  CompareCase c;
  c.name = "single_thread_hits";
  c.note = "p=1 resident working set: batched hit runs";
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 2048;
  opts.length = smoke ? 50'000 : 2'000'000;
  opts.zipf_s = 0.9;
  c.workload = workloads::make_synthetic_workload(1, opts);
  c.config = SimConfig::fifo(/*k=*/4096, /*q=*/1);
  return c;
}

int run_engine_compare(bool smoke, const std::string& out_path) {
  const int repeats = smoke ? 1 : 5;
  std::vector<CompareCase> cases;
  cases.push_back(idle_heavy_case(smoke));
  cases.push_back(backlog_case(smoke));
  cases.push_back(backlog_large_case(smoke));
  cases.push_back(hit_run_case(smoke));

  bool all_identical = true;
  std::string rows;
  for (const CompareCase& cc : cases) {
    // Interleave the repeats (tick, fast, event, tick, ...) so load noise
    // on a shared machine hits every engine alike and the reported ratios
    // stay honest; each engine keeps its fastest wall time.
    EngineRun ref;
    EngineRun fast;
    EngineRun event;
    ref.wall_seconds = std::numeric_limits<double>::infinity();
    fast.wall_seconds = std::numeric_limits<double>::infinity();
    event.wall_seconds = std::numeric_limits<double>::infinity();
    const auto keep = [](EngineRun& acc, EngineRun run) {
      acc.wall_seconds = std::min(acc.wall_seconds, run.wall_seconds);
      acc.metrics = std::move(run.metrics);
    };
    for (int i = 0; i < repeats; ++i) {
      keep(ref, time_engine(cc.workload, cc.config, EngineKind::kTick, 1));
      keep(fast, time_engine(cc.workload, cc.config, EngineKind::kFast, 1));
      keep(event, time_engine(cc.workload, cc.config, EngineKind::kEvent, 1));
    }
    const bool identical =
        metrics_fingerprint(ref.metrics) == metrics_fingerprint(fast.metrics) &&
        metrics_fingerprint(ref.metrics) == metrics_fingerprint(event.metrics);
    all_identical = all_identical && identical;

    const auto ticks = static_cast<double>(ref.metrics.makespan);
    const auto refs = static_cast<double>(ref.metrics.total_refs);
    const auto engine_json = [&](const EngineRun& run) {
      exp::JsonObject e;
      e.field("wall_seconds", run.wall_seconds)
          .field("ticks_per_sec", ticks / run.wall_seconds)
          .field("refs_per_sec", refs / run.wall_seconds)
          .field("idle_ticks", run.metrics.idle_ticks)
          .field("skipped_ticks", run.metrics.skipped_ticks);
      return e.str();
    };
    const double speedup = ref.wall_seconds / fast.wall_seconds;
    const double speedup_event = ref.wall_seconds / event.wall_seconds;

    exp::JsonObject row;
    row.field("name", cc.name)
        .field("note", cc.note)
        .raw_field("config", exp::to_json(cc.config))
        .field("threads", static_cast<std::uint64_t>(cc.workload.num_threads()))
        .field("total_refs", ref.metrics.total_refs)
        .field("makespan_ticks", ref.metrics.makespan)
        .raw_field("reference", engine_json(ref))
        .raw_field("fast", engine_json(fast))
        .raw_field("event", engine_json(event))
        .field("speedup_ticks_per_sec", speedup)
        .field("speedup_event_ticks_per_sec", speedup_event)
        .field("metrics_identical", identical);
    if (!rows.empty()) {
      rows += ',';
    }
    rows += row.str();

    std::fprintf(stderr,
                 "%-22s ref %8.4fs  fast %8.4fs (%6.2fx)  event %8.4fs "
                 "(%6.2fx)  metrics %s\n",
                 cc.name.c_str(), ref.wall_seconds, fast.wall_seconds, speedup,
                 event.wall_seconds, speedup_event,
                 identical ? "identical" : "DIFFER");
  }

  exp::JsonObject report;
  report.field("bench", "engine_compare")
      .field("scale", smoke ? "smoke" : "full")
      .field("repeats_per_engine", repeats)
      .raw_field("cases", "[" + rows + "]")
      .field("all_metrics_identical", all_identical);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: engines disagree on RunMetrics — the fast engine "
                 "broke the equivalence contract\n");
    return 1;
  }
  return 0;
}

// ---- Arbiter differential comparison (--arbiter-compare) -----------------

/// Run (workload, config) under `impl` `repeats` times on the reference
/// tick engine; keep the fastest wall time and the (deterministic)
/// metrics.
EngineRun time_arbiter(const Workload& w, SimConfig config, ArbiterImpl impl,
                       int repeats) {
  config.engine = EngineKind::kTick;  // measure the tick loop itself
  config.arbiter_impl = impl;
  EngineRun result;
  result.wall_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(w, config);
    RunMetrics m = sim.run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.wall_seconds = std::min(result.wall_seconds, s);
    result.metrics = std::move(m);
  }
  return result;
}

/// Steady-state allocation probe: step the simulator through `warmup`
/// ticks (pool growth to the high-water mark is legal there), snapshot
/// the process-wide allocation counter, then run to completion. The
/// delta is the number of heap allocations the steady-state tick loop
/// performed — the contract is exactly zero.
std::uint64_t steady_state_allocs(const Workload& w, SimConfig config,
                                  Tick warmup) {
  config.engine = EngineKind::kTick;
  config.arbiter_impl = ArbiterImpl::kFast;
  Simulator sim(w, config);
  for (Tick t = 0; t < warmup && sim.step(); ++t) {
  }
  const std::uint64_t before = hbmsim::bench::allocation_count();
  while (sim.step()) {
  }
  return hbmsim::bench::allocation_count() - before;
}

/// Deep-backlog static Priority: q << p and every reference missing, so
/// the DRAM queue sits ~p deep for the whole run. Every tick performs q
/// pops + q enqueues against the full queue — the regime where the old
/// std::map paid an allocation plus O(log p) per operation.
CompareCase priority_backlog_case(bool smoke) {
  CompareCase c;
  c.name = "deep_backlog_priority";
  c.note = "p=65536 q=2 one-shot misses: the whole population blocks at "
           "tick 0 and the static Priority queue drains from depth p";
  const std::size_t p = smoke ? 64 : 65536;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = smoke ? 64U : 1U, .repetitions = smoke ? 2U : 1U});
  c.config = SimConfig::priority(/*k=*/smoke ? p : 256, /*q=*/2);
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// Dynamic Priority with an aggressive remap period: every T = 4 ticks
/// the permutation changes and the whole ~p-deep queue re-ranks. The old
/// arbiter drained and rebuilt its tree — O(p log p) with p allocations
/// per remap; the bucket queue relinks in one arrival-order walk.
CompareCase dynamic_remap_case(bool smoke) {
  CompareCase c;
  c.name = "dynamic_remap";
  c.note = "p=512 q=2 backlog, Dynamic Priority remapping every 4 ticks";
  const std::size_t p = smoke ? 64 : 512;
  c.workload = workloads::make_adversarial_workload(
      p, {.unique_pages = 64, .repetitions = smoke ? 2U : 16U});
  c.config = SimConfig::priority(/*k=*/p, /*q=*/2);
  c.config.remap_scheme = RemapScheme::kDynamic;
  c.config.remap_period = 4;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

/// FR-FCFS under per-thread streaming: each core walks its own
/// sequential region, so the channel's open row almost never has a
/// queued request left in it and the old row-hit scan walks the whole
/// ~p-deep queue before falling back to the oldest. The row index makes
/// both the hit probe and the fallback O(1).
CompareCase frfcfs_rows_case(bool smoke) {
  CompareCase c;
  c.name = "frfcfs_row_heavy";
  c.note = "p=256 q=2 streaming: open-row probes miss, scan was O(p) per pop";
  const std::size_t p = smoke ? 64 : 256;
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  for (std::size_t t = 0; t < p; ++t) {
    traces.push_back(std::make_shared<Trace>(workloads::make_cyclic_trace(
        {.unique_pages = 256, .repetitions = smoke ? 2U : 8U})));
  }
  c.workload = Workload(std::move(traces), "frfcfs-streams");
  c.config = SimConfig::fifo(/*k=*/p, /*q=*/2);
  c.config.arbitration = ArbitrationKind::kFrFcfs;
  c.config.row_pages = 8;
  c.config.per_thread_metrics = false;
  c.config.response_histogram = false;
  return c;
}

int run_arbiter_compare(bool smoke, const std::string& out_path) {
  const int repeats = smoke ? 1 : 5;
  std::vector<CompareCase> cases;
  cases.push_back(priority_backlog_case(smoke));
  cases.push_back(dynamic_remap_case(smoke));
  cases.push_back(frfcfs_rows_case(smoke));

  bool all_identical = true;
  bool all_alloc_free = true;
  std::string rows;
  for (const CompareCase& cc : cases) {
    const EngineRun ref =
        time_arbiter(cc.workload, cc.config, ArbiterImpl::kReference, repeats);
    const EngineRun fast =
        time_arbiter(cc.workload, cc.config, ArbiterImpl::kFast, repeats);
    const bool identical = metrics_fingerprint(ref.metrics) ==
                           metrics_fingerprint(fast.metrics);
    all_identical = all_identical && identical;

    // Warm-up: the backlog reaches its high-water mark within the first
    // few ticks; 64 gives the pools generous room to finish growing.
    const Tick warmup = 64;
    const std::uint64_t allocs = steady_state_allocs(cc.workload, cc.config,
                                                     warmup);
    all_alloc_free = all_alloc_free && allocs == 0;

    const auto ticks = static_cast<double>(ref.metrics.makespan);
    const auto refs = static_cast<double>(ref.metrics.total_refs);
    const double speedup = ref.wall_seconds / fast.wall_seconds;

    exp::JsonObject ref_json;
    ref_json.field("wall_seconds", ref.wall_seconds)
        .field("ticks_per_sec", ticks / ref.wall_seconds)
        .field("refs_per_sec", refs / ref.wall_seconds);
    exp::JsonObject fast_json;
    fast_json.field("wall_seconds", fast.wall_seconds)
        .field("ticks_per_sec", ticks / fast.wall_seconds)
        .field("refs_per_sec", refs / fast.wall_seconds)
        .field("warmup_ticks", warmup)
        .field("steady_state_allocs", allocs);

    exp::JsonObject row;
    row.field("name", cc.name)
        .field("note", cc.note)
        .raw_field("config", exp::to_json(cc.config))
        .field("threads", static_cast<std::uint64_t>(cc.workload.num_threads()))
        .field("total_refs", ref.metrics.total_refs)
        .field("makespan_ticks", ref.metrics.makespan)
        .raw_field("reference", ref_json.str())
        .raw_field("bucketed", fast_json.str())
        .field("speedup_ticks_per_sec", speedup)
        .field("metrics_identical", identical);
    if (!rows.empty()) {
      rows += ',';
    }
    rows += row.str();

    std::fprintf(stderr,
                 "%-22s ref %8.4fs  bucketed %8.4fs  speedup %6.2fx  "
                 "steady allocs %llu  metrics %s\n",
                 cc.name.c_str(), ref.wall_seconds, fast.wall_seconds, speedup,
                 static_cast<unsigned long long>(allocs),
                 identical ? "identical" : "DIFFER");
  }

  exp::JsonObject report;
  report.field("bench", "arbiter_compare")
      .field("scale", smoke ? "smoke" : "full")
      .field("repeats_per_impl", repeats)
      .raw_field("cases", "[" + rows + "]")
      .field("all_metrics_identical", all_identical)
      .field("all_steady_state_allocation_free", all_alloc_free);

  // Append: BENCH_perf.json is a JSONL perf trajectory; the
  // engine_compare row written by --engine-compare must survive.
  std::ofstream out(out_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.str() << '\n';
  std::fprintf(stderr, "appended to %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: arbiters disagree on RunMetrics — the bucketed "
                 "structures broke the equivalence contract\n");
    return 1;
  }
  if (!all_alloc_free) {
    std::fprintf(stderr,
                 "error: the tick loop allocated after warm-up — the "
                 "steady-state allocation-free contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_compare = false;
  bool arbiter_compare = false;
  bool smoke = false;
  std::string out_path = "BENCH_perf.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--engine-compare") {
      engine_compare = true;
    } else if (arg == "--arbiter-compare") {
      arbiter_compare = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (engine_compare) {
    return run_engine_compare(smoke, out_path);
  }
  if (arbiter_compare) {
    return run_arbiter_compare(smoke, out_path);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
