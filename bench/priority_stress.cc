// Priority stress search: the abstract's negative result — "thanks to
// Priority's provably good bounds, [we] could not manufacture similarly
// bad ratios for Priority."
//
// This harness *tries*: several adversarial trace families, each designed
// to attack a different aspect of static Priority, are run under both
// FIFO and Priority and scored against the offline lower bound of
// src/opt. Theorem 1 caps Priority's ratio at O(1); the table shows it
// staying within a small constant on every family, while FIFO blows up
// on the cyclic families.
//
// Attack families:
//   cyclic          the Figure 3 FIFO-killer (control)
//   inverted        low-priority threads carry all the work — static
//                   Priority serves the *useless* high-priority threads
//                   first
//   sliver          per-thread working sets sized just above k/p, so any
//                   "fair" split of HBM thrashes
//   stagger         high-priority threads arrive late (long hit prefixes),
//                   repeatedly preempting in-progress low threads
//   churn           random working-set jumps every epoch, defeating any
//                   static partition
#include <cstdio>
#include <iostream>
#include <memory>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "opt/lower_bound.h"
#include "util/rng.h"
#include "workloads/adversarial.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

Trace cyclic(std::uint32_t pages, std::uint32_t reps) {
  return workloads::make_cyclic_trace({pages, reps});
}

/// Working set jumps to a fresh page range every epoch.
Trace churn_trace(std::uint32_t pages_per_epoch, std::uint32_t epochs,
                  std::uint32_t passes, std::uint64_t seed) {
  std::vector<LocalPage> refs;
  Xoshiro256StarStar rng(seed);
  for (std::uint32_t e = 0; e < epochs; ++e) {
    const LocalPage base = static_cast<LocalPage>(rng.uniform(1 << 20));
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
      for (std::uint32_t p = 0; p < pages_per_epoch; ++p) {
        refs.push_back(base + p);
      }
    }
  }
  return Trace(std::move(refs));
}

struct Family {
  const char* name;
  Workload workload;
  std::uint64_t k;
};

std::vector<Family> make_families(std::size_t p, BenchScale scale) {
  const std::uint32_t u = scale == BenchScale::kPaper ? 256 : 64;
  const std::uint32_t reps = scale == BenchScale::kPaper ? 100 : 25;
  std::vector<Family> families;

  // cyclic — the control (hurts FIFO).
  families.push_back(
      {"cyclic", workloads::make_adversarial_workload(p, {u, reps}),
       static_cast<std::uint64_t>(p) * u / 4});

  // inverted — only the lowest-priority quarter of threads has real work;
  // high-priority threads replay a single hot page (all hits, no channel
  // use) so Priority's pecking order gains nothing and its victims carry
  // everything.
  {
    std::vector<std::shared_ptr<const Trace>> traces;
    auto hot = std::make_shared<Trace>(
        Trace(std::vector<LocalPage>(static_cast<std::size_t>(u) * reps, 0)));
    auto heavy = std::make_shared<Trace>(cyclic(u, reps));
    for (std::size_t t = 0; t < p; ++t) {
      traces.push_back(t < p * 3 / 4 ? hot : heavy);
    }
    families.push_back({"inverted", Workload(std::move(traces), "inverted"),
                        static_cast<std::uint64_t>(p / 4) * u / 4});
  }

  // sliver — each thread cycles a set slightly larger than its fair share
  // k/p, so an even partition thrashes everywhere.
  {
    const std::uint64_t k = static_cast<std::uint64_t>(p) * u / 4;
    const auto set =
        static_cast<std::uint32_t>(k / p + k / (8 * p) + 2);  // ~12% over fair share
    auto t = std::make_shared<Trace>(cyclic(set, reps * u / set + 1));
    families.push_back({"sliver", Workload::replicate(t, p, "sliver"), k});
  }

  // stagger — half the threads idle on a hot page for a long prefix, then
  // unleash their scans into a cache the early threads already own.
  {
    std::vector<std::shared_ptr<const Trace>> traces;
    std::vector<LocalPage> late(static_cast<std::size_t>(u) * reps / 2, u + 7);
    const Trace scan = cyclic(u, reps / 2);
    std::vector<LocalPage> late_refs = late;
    late_refs.insert(late_refs.end(), scan.refs().begin(), scan.refs().end());
    auto early = std::make_shared<Trace>(cyclic(u, reps));
    auto staggered = std::make_shared<Trace>(Trace(std::move(late_refs)));
    for (std::size_t t = 0; t < p; ++t) {
      traces.push_back(t % 2 == 0 ? early : staggered);
    }
    families.push_back({"stagger", Workload(std::move(traces), "stagger"),
                        static_cast<std::uint64_t>(p) * u / 4});
  }

  // churn — epoch jumps defeat static partitions.
  {
    std::vector<std::shared_ptr<const Trace>> traces;
    for (std::size_t t = 0; t < p; ++t) {
      traces.push_back(std::make_shared<Trace>(
          churn_trace(u / 2, 8, reps / 8 + 1, 77 + t)));
    }
    families.push_back({"churn", Workload(std::move(traces), "churn"),
                        static_cast<std::uint64_t>(p) * u / 8});
  }
  return families;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Priority stress search: can any family blow Priority up?", scales,
         bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 24;

  // Lower bounds stay serial per family; the 3 policies per family run on
  // the parallel engine.
  const std::vector<Family> families = make_families(p, scales.scale);
  std::vector<opt::MakespanBounds> bounds;
  std::vector<exp::ExpPoint> points;
  for (const Family& fam : families) {
    bounds.push_back(opt::makespan_lower_bounds(fam.workload, fam.k, 1));
    const std::string tag = std::string("stress ") + fam.name + " ";
    points.emplace_back(tag + "fifo", fam.workload, SimConfig::fifo(fam.k));
    points.emplace_back(tag + "priority", fam.workload,
                        SimConfig::priority(fam.k));
    points.emplace_back(tag + "dynamic", fam.workload,
                        SimConfig::dynamic_priority(fam.k, 10.0));
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"family", "k", "lower_bound", "fifo_ratio", "priority_ratio",
                    "dynamic_ratio"});
  table.set_precision(2);

  double worst_priority = 0.0;
  double worst_fifo = 0.0;
  for (std::size_t i = 0; i < families.size(); ++i) {
    const auto ratio = [&](std::size_t j) {
      return static_cast<double>(results[3 * i + j].metrics.makespan) /
             static_cast<double>(bounds[i].lower());
    };
    const double fifo = ratio(0);
    const double prio = ratio(1);
    const double dyn = ratio(2);
    worst_priority = std::max(worst_priority, prio);
    worst_fifo = std::max(worst_fifo, fifo);
    table.row() << families[i].name << families[i].k << bounds[i].lower()
                << fifo << prio << dyn;
  }
  bo.print(table);

  note(bo,
       "\nsummary: worst Priority ratio %.2f vs worst FIFO ratio %.2f — no "
       "family manufactured a bad ratio for Priority (Theorem 1), matching "
       "the paper's negative result.\n",
       worst_priority, worst_fifo);
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
