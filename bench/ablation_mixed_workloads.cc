// Future-work ablation: different workloads on different cores (§6.1:
// "Future work may test different workloads; it will be especially
// interesting to see how Cycle Priority behaves on different
// distributions of work").
//
// Part 1 — heterogeneous classes: half the cores replay sort traces, a
// quarter SpGEMM traces, a quarter long sequential streams. The
// quantities of interest are the makespan, the completion-time spread
// across the *classes*, and max response — Cycle Priority's
// deterministic rotation can pin an unlucky thread behind the heavy
// class, which Dynamic Priority's random shuffles avoid.
//
// Part 2 — phased bursts: every core runs a deep cyclic scan (FIFO's
// adversarial case, §3.2) followed by a moderate zipf phase. This is the
// regime the adaptive FIFO↔Priority arbiter (DESIGN.md §3g) is built
// for: engage Priority while the burst backlog is deep, return to FIFO
// as it drains. The verdict gate requires adaptive — with thresholds
// tuned by the closed-form predictor, not by hand — to beat FIFO on
// makespan and mean response AND to beat static Priority on starvation
// (max response) and inconsistency; each parent fails one half. The
// binary exits nonzero if the hybrid loses either half.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "opt/predictor/predictor.h"
#include "workloads/adversarial.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

Workload mixed_workload(const Scales& scales, std::size_t p) {
  const Workload sorts = sort_workload(scales, p, /*seed=*/1);
  const Workload spgemms = spgemm_workload(scales, p, /*seed=*/2);
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  const std::uint32_t stream_pages =
      scales.scale == BenchScale::kPaper ? 2000 : 64;
  auto stream = std::make_shared<Trace>(workloads::make_stream_trace(
      stream_pages, scales.scale == BenchScale::kPaper ? 20 : 12));
  for (std::size_t t = 0; t < p; ++t) {
    if (t % 4 < 2) {
      traces.push_back(sorts.share(t));
    } else if (t % 4 == 2) {
      traces.push_back(spgemms.share(t));
    } else {
      traces.push_back(stream);
    }
  }
  return Workload(std::move(traces), "mixed");
}

/// One phased trace: a cyclic burst (thrashes any share-sized cache)
/// followed by a zipf tail with real locality.
Trace phased_trace(std::uint32_t cyc_pages, std::uint32_t reps,
                   std::uint32_t zipf_pages, std::size_t zipf_len,
                   std::uint64_t seed) {
  const Trace cyc = workloads::make_cyclic_trace({cyc_pages, reps});
  const Trace zipf = workloads::make_zipf_trace(zipf_pages, zipf_len,
                                                /*s=*/0.8, seed);
  std::vector<LocalPage> refs(cyc.refs().begin(), cyc.refs().end());
  refs.insert(refs.end(), zipf.refs().begin(), zipf.refs().end());
  return Trace(std::move(refs));
}

struct PhasedCase {
  Workload workload;
  std::uint64_t hbm_slots = 0;
};

PhasedCase phased_workload(const Scales& scales, std::size_t p) {
  const bool paper = scales.scale == BenchScale::kPaper;
  const std::uint32_t cyc_pages = paper ? 256 : 96;
  const std::uint32_t reps = paper ? 20 : 6;
  const std::uint32_t zipf_pages = paper ? 1024 : 256;
  const std::size_t zipf_len = paper ? 20'000 : 1'500;
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  for (std::size_t t = 0; t < p; ++t) {
    traces.push_back(std::make_shared<Trace>(
        phased_trace(cyc_pages, reps, zipf_pages, zipf_len, 100 + t)));
  }
  PhasedCase c{Workload(std::move(traces), "phased-burst"), 0};
  // The paper's Figure 3 sizing: HBM holds 1/4 of the burst footprint.
  c.hbm_slots = static_cast<std::uint64_t>(p) * cyc_pages / 4;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation: heterogeneous per-core workloads", scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 16;
  const Workload w = mixed_workload(scales, p);
  const std::uint64_t k = contended_k(scales, w);
  note(bo, "mix: 1/2 sort, 1/4 SpGEMM, 1/4 stream; p=%zu, k=%llu\n\n", p,
       static_cast<unsigned long long>(k));

  std::vector<SimConfig> configs;
  configs.push_back(SimConfig::fifo(k));
  configs.push_back(SimConfig::priority(k));
  configs.push_back(SimConfig::dynamic_priority(k, 10.0));
  configs.push_back(SimConfig::cycle_priority(k, 10.0));
  {
    SimConfig c = SimConfig::priority(k);
    c.remap_scheme = RemapScheme::kCycleReverse;
    c.remap_period = SimConfig::period_from_multiplier(k, 10.0);
    configs.push_back(c);
  }

  exp::Table table({"policy", "makespan", "inconsistency", "max_response",
                    "completion_spread"});
  for (const auto& r : exp::run_policies(w, configs, bo.runner())) {
    table.row() << r.policy << r.metrics.makespan << r.metrics.inconsistency()
                << static_cast<std::uint64_t>(r.metrics.max_response())
                << r.metrics.completion_spread();
  }
  bo.print(table);

  note(bo,
       "\nreading guide: with unequal work, compare cycle vs dynamic "
       "max_response — the paper predicts mild starvation for the "
       "deterministic rotation and robustness for the random one.\n");

  // ---- Part 2: phased bursts and the adaptive arbiter -------------------
  const PhasedCase phased = phased_workload(scales, p);
  note(bo,
       "\nphased bursts: cyclic scan then zipf tail per core; p=%zu, "
       "k=%llu (1/4 of the burst footprint)\n",
       p, static_cast<unsigned long long>(phased.hbm_slots));

  // Thresholds come from the predictor, not from hand-tuning: the
  // screening model's own steady-state backlog estimate sets the
  // hysteresis band (opt/predictor).
  const opt::WorkloadSummary summary =
      opt::WorkloadSummary::summarize(phased.workload);
  const opt::AdaptiveThresholds tuned = opt::tune_adaptive_thresholds(
      summary, SimConfig::fifo(phased.hbm_slots));
  note(bo, "predictor-tuned thresholds: high=%u low=%u\n\n", tuned.high_depth,
       tuned.low_depth);

  std::vector<SimConfig> phased_configs;
  phased_configs.push_back(SimConfig::fifo(phased.hbm_slots));
  phased_configs.push_back(SimConfig::priority(phased.hbm_slots));
  phased_configs.push_back(SimConfig::adaptive(phased.hbm_slots,
                                               /*t_mult=*/0.5, /*q=*/1,
                                               tuned.high_depth,
                                               tuned.low_depth));

  const auto phased_results =
      exp::run_policies(phased.workload, phased_configs, bo.runner());
  exp::Table pt({"policy", "makespan", "mean_resp", "p99_resp", "max_resp",
                 "inconsistency"});
  for (const auto& r : phased_results) {
    pt.row() << r.policy << r.metrics.makespan << r.metrics.mean_response()
             << r.metrics.response_quantile(0.99)
             << static_cast<std::uint64_t>(r.metrics.max_response())
             << r.metrics.inconsistency();
  }
  bo.print(pt);

  const RunMetrics& fifo = phased_results[0].metrics;
  const RunMetrics& prio = phased_results[1].metrics;
  const RunMetrics& adap = phased_results[2].metrics;
  const bool beats_fifo = adap.makespan < fifo.makespan &&
                          adap.mean_response() < fifo.mean_response();
  const bool beats_priority = adap.max_response() < prio.max_response() &&
                              adap.inconsistency() < prio.inconsistency();
  note(bo,
       "\nverdict: adaptive vs fifo — makespan %.2fx, mean_resp %.2fx "
       "(%s); vs priority — max_resp %.2fx, inconsistency %.2fx (%s)\n",
       static_cast<double>(adap.makespan) / static_cast<double>(fifo.makespan),
       adap.mean_response() / fifo.mean_response(),
       beats_fifo ? "beats" : "LOSES",
       static_cast<double>(adap.max_response()) /
           static_cast<double>(prio.max_response()),
       adap.inconsistency() / prio.inconsistency(),
       beats_priority ? "beats" : "LOSES");

  note(bo, "total wall time: %.1fs\n", watch.seconds());
  if (!beats_fifo || !beats_priority) {
    note(bo, "error: the adaptive arbiter failed to beat a static parent\n");
    return 1;
  }
  return 0;
}
