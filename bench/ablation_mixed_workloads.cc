// Future-work ablation: different workloads on different cores (§6.1:
// "Future work may test different workloads; it will be especially
// interesting to see how Cycle Priority behaves on different
// distributions of work").
//
// Half the cores replay sort traces, a quarter SpGEMM traces, a quarter
// long sequential streams. The quantities of interest are the makespan,
// the completion-time spread across the *classes*, and max response —
// Cycle Priority's deterministic rotation can pin an unlucky thread
// behind the heavy class, which Dynamic Priority's random shuffles avoid.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "workloads/synthetic.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

Workload mixed_workload(const Scales& scales, std::size_t p) {
  const Workload sorts = sort_workload(scales, p, /*seed=*/1);
  const Workload spgemms = spgemm_workload(scales, p, /*seed=*/2);
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(p);
  const std::uint32_t stream_pages =
      scales.scale == BenchScale::kPaper ? 2000 : 64;
  auto stream = std::make_shared<Trace>(workloads::make_stream_trace(
      stream_pages, scales.scale == BenchScale::kPaper ? 20 : 12));
  for (std::size_t t = 0; t < p; ++t) {
    if (t % 4 < 2) {
      traces.push_back(sorts.share(t));
    } else if (t % 4 == 2) {
      traces.push_back(spgemms.share(t));
    } else {
      traces.push_back(stream);
    }
  }
  return Workload(std::move(traces), "mixed");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation: heterogeneous per-core workloads", scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 16;
  const Workload w = mixed_workload(scales, p);
  const std::uint64_t k = contended_k(scales, w);
  note(bo, "mix: 1/2 sort, 1/4 SpGEMM, 1/4 stream; p=%zu, k=%llu\n\n", p,
       static_cast<unsigned long long>(k));

  std::vector<SimConfig> configs;
  configs.push_back(SimConfig::fifo(k));
  configs.push_back(SimConfig::priority(k));
  configs.push_back(SimConfig::dynamic_priority(k, 10.0));
  configs.push_back(SimConfig::cycle_priority(k, 10.0));
  {
    SimConfig c = SimConfig::priority(k);
    c.remap_scheme = RemapScheme::kCycleReverse;
    c.remap_period = SimConfig::period_from_multiplier(k, 10.0);
    configs.push_back(c);
  }

  exp::Table table({"policy", "makespan", "inconsistency", "max_response",
                    "completion_spread"});
  for (const auto& r : exp::run_policies(w, configs, bo.runner())) {
    table.row() << r.policy << r.metrics.makespan << r.metrics.inconsistency()
                << static_cast<std::uint64_t>(r.metrics.max_response())
                << r.metrics.completion_spread();
  }
  bo.print(table);

  note(bo,
       "\nreading guide: with unequal work, compare cycle vs dynamic "
       "max_response — the paper predicts mild starvation for the "
       "deterministic rotation and robustness for the random one.\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
