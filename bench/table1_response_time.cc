// Table 1 (a, b): inconsistency and average response time per queuing
// policy, with permutation intervals T ∈ {k, 5k, 10k, 100k}.
//
// Paper result: "FIFO has lowest inconsistency and highest average
// response time. Priority has highest inconsistency and lowest average
// response time. More frequent permutation decreases Priority's
// inconsistency and increases its average response time."
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

namespace {

using namespace hbmsim;
using namespace hbmsim::bench;

void run_dataset(const char* title, const Workload& w, std::uint64_t k,
                 const BenchOptions& bo) {
  note(bo, "\n--- %s (p=%zu, k=%llu) ---\n", title, w.num_threads(),
       static_cast<unsigned long long>(k));

  std::vector<SimConfig> configs;
  configs.push_back(SimConfig::fifo(k));
  for (const double t_mult : {1.0, 5.0, 10.0, 100.0}) {
    configs.push_back(SimConfig::dynamic_priority(k, t_mult));
  }
  for (const double t_mult : {1.0, 5.0, 10.0, 100.0}) {
    configs.push_back(SimConfig::cycle_priority(k, t_mult));
  }
  configs.push_back(SimConfig::priority(k));

  // The paper labels rows by T as a multiple of k.
  const std::vector<std::string> labels = {
      "FIFO",
      "Dynamic Priority T=k",   "Dynamic Priority T=5k",
      "Dynamic Priority T=10k", "Dynamic Priority T=100k",
      "Cycle Priority T=k",     "Cycle Priority T=5k",
      "Cycle Priority T=10k",   "Cycle Priority T=100k",
      "Priority",
  };

  exp::Table table({"Queuing Policy", "Inconsistency", "Response Time"});
  const auto results = exp::run_policies(w, configs, bo.runner());
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row() << labels[i] << results[i].metrics.inconsistency()
                << results[i].metrics.mean_response();
  }
  bo.print(table);

  const auto& fifo = results.front().metrics;
  const auto& prio = results.back().metrics;
  note(bo,
       "checks: FIFO lowest inconsistency %s | Priority lowest response %s\n",
       fifo.inconsistency() <= prio.inconsistency() ? "yes" : "NO",
       prio.mean_response() <= fifo.mean_response() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Table 1: inconsistency and average response time per policy", scales,
         bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 50 : 24;
  const Workload spgemm = spgemm_workload(scales, p);
  const Workload sort = sort_workload(scales, p);

  run_dataset("Table 1a: sparse matrix multiplication", spgemm,
              contended_k(scales, spgemm), bo);
  run_dataset("Table 1b: GNU sort", sort, contended_k(scales, sort), bo);

  note(bo, "\ntotal wall time: %.1fs\n", watch.seconds());
  return 0;
}
