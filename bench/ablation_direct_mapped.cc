// Lemma 1 / Theorem 4 / Corollary 1: direct-mapped HBM vs the
// fully-associative model.
//
// Part 1 — whole-system makespan: run the same workload on (a) the
// fully-associative LRU HBM of size k and (b) hashed direct-mapped HBMs of
// size k, 2k, 4k. Corollary 1 predicts the augmented direct-mapped cache
// stays O(1)-competitive.
//
// Part 2 — the transformation's constants: execute the Frigo-style
// hash-table + linked-list construction over the same reference streams
// and report expected chain length, transformed hits per access, and
// transformed misses per original miss (Lemma 1 says all three are O(1)).
#include <cstdio>
#include <iostream>
#include <memory>

#include "assoc/direct_mapped.h"
#include "assoc/frigo_transform.h"
#include "common.h"
#include "core/simulator.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace hbmsim;
  using namespace hbmsim::bench;

  const BenchOptions bo = parse_bench_options(argc, argv);
  const Scales scales = current_scales();
  banner("Ablation: direct-mapped HBM (Lemma 1 / Corollary 1)", scales, bo);
  Stopwatch watch;

  const std::size_t p = scales.scale == BenchScale::kPaper ? 64 : 12;
  const Workload w = sort_workload(scales, p);
  const std::uint64_t k = contended_k(scales, w);

  note(bo,
       "\n--- makespan: fully-associative vs direct-mapped (p=%zu, k=%llu) ---\n",
       p, static_cast<unsigned long long>(k));

  // The direct-mapped points supply a custom cache model through the
  // ExpPoint factory (invoked in the worker, one cache per point).
  std::vector<exp::ExpPoint> points;
  points.emplace_back("dm assoc 1x", w, SimConfig::priority(k));
  for (const std::uint64_t mult : {1ull, 2ull, 4ull}) {
    exp::ExpPoint pt("dm direct " + std::to_string(mult) + "x", w,
                     SimConfig::priority(mult * k));
    pt.make_cache = [mult, k] {
      return std::make_unique<assoc::DirectMappedCache>(
          mult * k, assoc::SlotHash::kUniversal, 7);
    };
    points.push_back(std::move(pt));
  }
  const auto results = exp::run_points(points, bo.runner());

  exp::Table table({"cache", "slots", "makespan", "hit%", "vs_assoc"});
  const RunMetrics& assoc_run = results[0].metrics;
  table.row() << "fully-associative LRU" << k << assoc_run.makespan
              << assoc_run.hit_rate() * 100.0 << 1.0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const RunMetrics& m = results[i].metrics;
    const std::uint64_t slots = results[i].config.hbm_slots;
    table.row() << ("direct-mapped " + std::to_string(slots / k) + "x") << slots
                << m.makespan << m.hit_rate() * 100.0
                << static_cast<double>(m.makespan) /
                       static_cast<double>(assoc_run.makespan);
  }
  bo.print(table);

  note(bo, "\n--- Lemma 1 transformation constants (per reference stream) ---\n");
  exp::Table costs({"policy", "chain_mean", "chain_max", "transformed_hits/access",
                    "transformed_misses/original_miss"});
  for (const ReplacementKind policy :
       {ReplacementKind::kLru, ReplacementKind::kFifo}) {
    assoc::FrigoTransform transform(k, policy, /*seed=*/11);
    for (std::size_t t = 0; t < w.num_threads(); ++t) {
      for (const LocalPage page : w.trace(t).refs()) {
        transform.access(page);
      }
    }
    const assoc::TransformStats& s = transform.stats();
    costs.row() << to_string(policy) << s.chain_length.mean()
                << s.chain_length.max() << s.hits_per_access()
                << s.misses_per_original_miss();
  }
  bo.print(costs);

  note(bo,
       "\nchecks: all transformation constants are O(1) — chain mean < 3, "
       "misses/original miss <= 2 (Lemma 1).\n");
  note(bo, "total wall time: %.1fs\n", watch.seconds());
  return 0;
}
