#include "knl/glups.h"

#include <algorithm>

#include "knl/cache_model.h"
#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::knl {

GlupsResult run_glups(const MachineConfig& machine, std::uint64_t array_bytes,
                      const GlupsOptions& opts) {
  HBMSIM_CHECK(opts.block_bytes > 0, "block size must be positive");
  HBMSIM_CHECK(array_bytes >= opts.block_bytes, "array smaller than one block");
  if (machine.mode == MemoryMode::kFlatHbm) {
    HBMSIM_CHECK(array_bytes <= machine.hbm_bytes,
                 "flat-HBM cannot allocate beyond HBM capacity");
  }

  GlupsResult result;
  result.array_bytes = array_bytes;
  result.mode = machine.mode;

  switch (machine.mode) {
    case MemoryMode::kFlatHbm:
      result.bandwidth_mibs = machine.hbm_bandwidth_mibs;
      return result;
    case MemoryMode::kFlatDdr:
      result.bandwidth_mibs = machine.dram_bandwidth_mibs;
      return result;
    case MemoryMode::kCacheMode:
    case MemoryMode::kHybrid:
      break;
  }

  // Cache mode: measure the MCDRAM hit fraction over the benchmark's
  // random block-update sequence ("we perform this operation until the
  // entire array's worth of data has been updated").
  McdramCache mcdram(machine.mcdram_cache_bytes(), machine.hbm_cache_line_bytes);
  // Untimed initialisation pass: the benchmark writes the array before
  // timing, which leaves it (or the surviving conflict set) MCDRAM-resident.
  for (std::uint64_t addr = 0; addr < array_bytes;
       addr += machine.hbm_cache_line_bytes) {
    mcdram.access(addr);
  }
  mcdram.reset_stats();

  Xoshiro256StarStar rng(opts.seed);
  const std::uint64_t total_blocks = array_bytes / opts.block_bytes;
  const std::uint64_t sim_blocks = std::min(total_blocks, opts.max_blocks);
  const std::uint32_t lines_per_block =
      std::max<std::uint32_t>(1, opts.block_bytes / machine.hbm_cache_line_bytes);

  for (std::uint64_t b = 0; b < sim_blocks; ++b) {
    const std::uint64_t start =
        rng.uniform(total_blocks) * opts.block_bytes;
    for (std::uint32_t l = 0; l < lines_per_block; ++l) {
      mcdram.access(start + static_cast<std::uint64_t>(l) *
                                machine.hbm_cache_line_bytes);
    }
  }
  const double hit = mcdram.hit_rate();
  const double miss = 1.0 - hit;

  // Harmonic throughput mix: every byte is moved over the HBM channels;
  // missed bytes additionally cross the DDR fill path, which becomes the
  // binding constraint once the working set exceeds MCDRAM.
  const double time_per_byte =
      1.0 / machine.hbm_bandwidth_mibs + miss / machine.dram_fill_bandwidth_mibs;
  result.bandwidth_mibs = 1.0 / time_per_byte;
  result.mcdram_hit_rate = hit;
  return result;
}

std::vector<GlupsResult> glups_sweep(const std::vector<MemoryMode>& modes,
                                     std::uint64_t min_bytes,
                                     std::uint64_t max_bytes,
                                     std::uint32_t capacity_shift,
                                     const GlupsOptions& opts) {
  HBMSIM_CHECK(min_bytes <= max_bytes, "bad sweep range");
  std::vector<GlupsResult> results;
  for (const MemoryMode mode : modes) {
    const MachineConfig machine = capacity_shift == 0
                                      ? MachineConfig::knl(mode)
                                      : MachineConfig::knl_scaled(mode, capacity_shift);
    for (std::uint64_t bytes = min_bytes; bytes <= max_bytes; bytes *= 2) {
      if (mode == MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        continue;
      }
      results.push_back(run_glups(machine, bytes, opts));
    }
  }
  return results;
}

}  // namespace hbmsim::knl
