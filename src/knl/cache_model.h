// Byte-addressed cache machinery for the KNL machine model: an LRU
// set-associative cache (L1/L2/TLB) and a direct-mapped memory-side
// MCDRAM cache, composed into MemoryHierarchy, which charges nanoseconds
// per access the way §5's model predicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "knl/machine.h"

namespace hbmsim::knl {

/// LRU set-associative cache over 64-bit line/page numbers.
class SetAssocCache {
 public:
  /// `sets * ways` entries; `sets` is rounded up to a power of two.
  SetAssocCache(std::uint64_t sets, std::uint32_t ways);

  /// Convenience: sized from capacity/line/ways.
  [[nodiscard]] static SetAssocCache from_config(const CacheLevelConfig& cfg);

  /// Probe for `key` (a line or page number); inserts on miss, evicting
  /// the set's LRU entry. Returns true on hit.
  bool access(std::uint64_t key);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }

  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t set_mask_;
  // entries_[set*ways .. set*ways+ways) ordered most- to least-recent.
  std::vector<std::uint64_t> entries_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Direct-mapped, memory-side MCDRAM cache (tags only; 4 KiB granularity
/// keeps the tag array small at the full 16 GiB capacity).
class McdramCache {
 public:
  McdramCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes);

  bool access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = hits_ + misses_;
    return n == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(n);
  }

  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::uint32_t line_bytes_;
  int line_shift_;
  std::vector<std::uint64_t> tags_;  // ~0 = empty
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Per-access latency accounting for one hardware thread's view of the
/// machine. Drives: TLB (+ page-table walk through the data caches),
/// the on-core cache levels, the mesh, and MCDRAM/DDR per MemoryMode.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const MachineConfig& config);

  /// Charge one data access at virtual byte address `vaddr`; returns ns.
  double access_ns(std::uint64_t vaddr);

  /// Simulate the benchmark's untimed initialisation pass: touch every
  /// MCDRAM-line of [0, array_bytes) sequentially, then reset the MCDRAM
  /// hit/miss counters so subsequent measurements reflect steady state.
  void warm(std::uint64_t array_bytes);

  /// Aggregate fraction of accesses served by MCDRAM in cache mode
  /// (meaningless in flat modes).
  [[nodiscard]] double mcdram_hit_rate() const noexcept {
    return mcdram_.hit_rate();
  }

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }

 private:
  /// Memory access past all on-core caches (data or PTE), per mode.
  double memory_ns(std::uint64_t addr);
  /// TLB miss: walk the page table; the PTE load goes through the cache
  /// hierarchy itself, which is what makes big-array latency climb.
  double page_walk_ns(std::uint64_t vpage);
  double cached_access_ns(std::uint64_t addr, bool is_pte = false);

  MachineConfig config_;
  std::vector<SetAssocCache> levels_;
  SetAssocCache tlb_;
  McdramCache mcdram_;
  std::uint64_t page_table_base_;
};

}  // namespace hbmsim::knl
