// The §5.1 latency microbenchmark: "record the average time to chase a
// pointer on an array of a fixed size" — x := a[x], with a dash of
// randomness so the chain doesn't degenerate into a short loop.
//
// Run against the simulated machine: each hop is one 8-byte load at a
// random offset within the array, charged through TLB + caches + memory
// by MemoryHierarchy. Reproduces Figure 6 / Table 2a.
#pragma once

#include <cstdint>
#include <vector>

#include "knl/cache_model.h"
#include "knl/machine.h"

namespace hbmsim::knl {

struct PointerChaseResult {
  std::uint64_t array_bytes = 0;
  MemoryMode mode = MemoryMode::kFlatHbm;
  double avg_ns = 0.0;
  double mcdram_hit_rate = 0.0;  // cache mode only
};

/// Average ns per pointer dereference on an `array_bytes` array, over
/// `ops` hops (the paper uses 2^27; benches default lower).
[[nodiscard]] PointerChaseResult run_pointer_chase(const MachineConfig& machine,
                                                   std::uint64_t array_bytes,
                                                   std::uint64_t ops,
                                                   std::uint64_t seed = 1);

/// Sweep array sizes (powers of two) across the given modes — the data
/// behind Figure 6a/6b.
[[nodiscard]] std::vector<PointerChaseResult> pointer_chase_sweep(
    const std::vector<MemoryMode>& modes, std::uint64_t min_bytes,
    std::uint64_t max_bytes, std::uint64_t ops, std::uint32_t capacity_shift = 0,
    std::uint64_t seed = 1);

}  // namespace hbmsim::knl
