#include "knl/machine.h"

#include <algorithm>

#include "util/error.h"

namespace hbmsim::knl {

MachineConfig MachineConfig::knl(MemoryMode mode) {
  MachineConfig m;
  m.mode = mode;

  // Xeon Phi 7250 per-core caches. (Latencies are model calibration
  // values chosen so the simulated Table 2a plateaus land near the
  // measured ones; see EXPERIMENTS.md for the paper-vs-model deltas.)
  m.levels = {
      CacheLevelConfig{"L1D", 32ull << 10, 64, 8, 5.0},
      CacheLevelConfig{"L2", 1ull << 20, 64, 16, 16.0},
  };
  m.tlb = TlbConfig{256, 8, 4096};

  m.mesh_probe_ns = 78.0;
  m.hbm_bytes = 16ull << 30;
  m.hbm_cache_line_bytes = 4096;
  m.hbm_access_ns = 88.0;   // => flat-HBM ≈ mesh + hbm ≈ DRAM + 24 ns
  m.dram_access_ns = 64.0;
  m.cache_miss_extra_ns = 160.0;  // extra mesh crossing + DDR access

  m.hbm_bandwidth_mibs = 318'000.0;
  m.dram_bandwidth_mibs = 67'500.0;
  // Calibrated so the Table 2b 32 GiB point (50% MCDRAM hits) lands near
  // the measured 149,000 MiB/s; the fill path streams whole lines and so
  // exceeds the random-update flat-DDR figure.
  m.dram_fill_bandwidth_mibs = 140'000.0;
  m.hardware_threads = 272;
  return m;
}

MachineConfig MachineConfig::knl_scaled(MemoryMode mode, std::uint32_t shift) {
  HBMSIM_CHECK(shift <= 20, "scaling shift too large");
  MachineConfig m = knl(mode);
  for (auto& level : m.levels) {
    level.capacity_bytes =
        std::max<std::uint64_t>(level.capacity_bytes >> shift,
                                static_cast<std::uint64_t>(level.line_bytes) *
                                    level.ways);
  }
  m.tlb.entries = std::max<std::uint32_t>(m.tlb.entries >> shift, m.tlb.ways);
  m.hbm_bytes = std::max<std::uint64_t>(m.hbm_bytes >> shift,
                                        m.hbm_cache_line_bytes * 4ull);
  return m;
}

}  // namespace hbmsim::knl
