// A parameterised machine model of Knight's Landing's memory system,
// used to re-run the paper's §5 validation experiments (pointer-chase
// latency, GLUPS bandwidth) without KNL hardware.
//
// Substitution note (DESIGN.md §2): the paper measured a real Xeon Phi
// 7250; we simulate a machine with KNL-like structure — L1 / L2 / mesh
// probe / MCDRAM (16 GiB, direct-mapped, memory-side) / DDR4 — and
// latencies and bandwidths calibrated to Table 2. The *shape* of Figure 6
// and Table 2 (plateau per capacity boundary, ~24 ns HBM-vs-DDR latency
// gap, ~4.8× bandwidth gap, cache-mode double-miss penalty and bandwidth
// collapse) comes out of the simulation, not out of a lookup table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbmsim::knl {

/// KNL boot modes covered by the model (§1). HBM-only mode is flat-HBM
/// with no DDR; hybrid mode splits MCDRAM into a flat piece and a cache
/// piece (the benchmark's data lives in DDR behind the cache piece).
enum class MemoryMode { kFlatHbm, kFlatDdr, kCacheMode, kHybrid };

[[nodiscard]] constexpr const char* to_string(MemoryMode m) noexcept {
  switch (m) {
    case MemoryMode::kFlatHbm: return "flat-hbm";
    case MemoryMode::kFlatDdr: return "flat-ddr";
    case MemoryMode::kCacheMode: return "cache";
    case MemoryMode::kHybrid: return "hybrid";
  }
  return "?";
}

/// One on-core cache level (L1D, L2, ...).
struct CacheLevelConfig {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  /// Added when this level is probed (hit or miss discovers here).
  double probe_ns = 0.0;
};

struct TlbConfig {
  std::uint32_t entries = 256;
  std::uint32_t ways = 8;
  std::uint64_t page_bytes = 4096;
};

/// Full machine description.
struct MachineConfig {
  std::vector<CacheLevelConfig> levels;  // ordered L1 outwards
  TlbConfig tlb;
  MemoryMode mode = MemoryMode::kCacheMode;

  /// Mesh traversal to the distributed tag directory / other tiles' L2 —
  /// paid by every access that leaves the local L2 (the paper's ~200 ns
  /// "baseline latency that we subtract off").
  double mesh_probe_ns = 0.0;

  /// MCDRAM (HBM) as memory or memory-side cache.
  std::uint64_t hbm_bytes = 0;
  std::uint32_t hbm_cache_line_bytes = 4096;  // memory-side cache granularity
  double hbm_access_ns = 0.0;   // chip access once the request reaches MCDRAM
  double dram_access_ns = 0.0;  // chip access once the request reaches DDR
  /// Cache mode only: extra mesh re-crossing on an MCDRAM miss (the
  /// paper's "third mesh crossing adds a 50% overall latency penalty").
  double cache_miss_extra_ns = 0.0;
  /// Hybrid mode: fraction of MCDRAM booted as cache (rest is flat).
  double hybrid_cache_fraction = 0.5;

  /// Bandwidth model (GLUPS): sustained MiB/s of each path.
  double hbm_bandwidth_mibs = 0.0;
  double dram_bandwidth_mibs = 0.0;
  /// DDR streaming bandwidth seen by the MCDRAM fill path in cache mode.
  double dram_fill_bandwidth_mibs = 0.0;

  std::uint32_t hardware_threads = 272;  // paper: 272 threads

  /// Bytes of MCDRAM acting as a memory-side cache in the current mode.
  [[nodiscard]] std::uint64_t mcdram_cache_bytes() const {
    if (mode == MemoryMode::kHybrid) {
      const auto bytes = static_cast<std::uint64_t>(
          static_cast<double>(hbm_bytes) * hybrid_cache_fraction);
      return bytes < hbm_cache_line_bytes ? hbm_cache_line_bytes : bytes;
    }
    return hbm_bytes;
  }

  /// KNL-calibrated preset at full hardware capacities.
  [[nodiscard]] static MachineConfig knl(MemoryMode mode);

  /// Capacity-scaled preset: all capacities (caches, TLB reach via page
  /// count, MCDRAM) divided by 2^shift so quick benches stay small while
  /// capacity *ratios* — which determine every crossover — are unchanged.
  [[nodiscard]] static MachineConfig knl_scaled(MemoryMode mode,
                                                std::uint32_t shift);
};

}  // namespace hbmsim::knl
