#include "knl/pointer_chase.h"

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::knl {

PointerChaseResult run_pointer_chase(const MachineConfig& machine,
                                     std::uint64_t array_bytes, std::uint64_t ops,
                                     std::uint64_t seed) {
  HBMSIM_CHECK(array_bytes >= 8, "array must hold at least one pointer");
  HBMSIM_CHECK(ops > 0, "need at least one hop");
  if (machine.mode == MemoryMode::kFlatHbm) {
    HBMSIM_CHECK(array_bytes <= machine.hbm_bytes,
                 "flat-HBM cannot allocate beyond HBM capacity");
  }

  MemoryHierarchy hierarchy(machine);
  Xoshiro256StarStar rng(seed);
  const std::uint64_t elements = array_bytes / 8;

  // The paper's arrays are initialised (element i := random index) before
  // timing, which pulls the array through MCDRAM; model that untimed pass.
  hierarchy.warm(array_bytes);

  // The paper re-injects randomness every 32 hops; statistically each hop
  // is a uniformly random 8-byte load in the array, which is what we
  // charge.
  double total_ns = 0.0;
  std::uint64_t x = rng.uniform(elements);
  for (std::uint64_t i = 0; i < ops; ++i) {
    total_ns += hierarchy.access_ns(x * 8);
    x = rng.uniform(elements);
  }

  PointerChaseResult result;
  result.array_bytes = array_bytes;
  result.mode = machine.mode;
  result.avg_ns = total_ns / static_cast<double>(ops);
  result.mcdram_hit_rate = hierarchy.mcdram_hit_rate();
  return result;
}

std::vector<PointerChaseResult> pointer_chase_sweep(
    const std::vector<MemoryMode>& modes, std::uint64_t min_bytes,
    std::uint64_t max_bytes, std::uint64_t ops, std::uint32_t capacity_shift,
    std::uint64_t seed) {
  HBMSIM_CHECK(min_bytes <= max_bytes, "bad sweep range");
  std::vector<PointerChaseResult> results;
  for (const MemoryMode mode : modes) {
    const MachineConfig machine = capacity_shift == 0
                                      ? MachineConfig::knl(mode)
                                      : MachineConfig::knl_scaled(mode, capacity_shift);
    for (std::uint64_t bytes = min_bytes; bytes <= max_bytes; bytes *= 2) {
      if (mode == MemoryMode::kFlatHbm && bytes > machine.hbm_bytes) {
        continue;  // the paper stops the HBM series at 8 GiB for the same reason
      }
      results.push_back(run_pointer_chase(machine, bytes, ops, seed));
    }
  }
  return results;
}

}  // namespace hbmsim::knl
