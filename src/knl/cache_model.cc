#include "knl/cache_model.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace hbmsim::knl {

SetAssocCache::SetAssocCache(std::uint64_t sets, std::uint32_t ways)
    : sets_(std::bit_ceil(std::max<std::uint64_t>(sets, 1))),
      ways_(ways),
      set_mask_(sets_ - 1),
      entries_(sets_ * ways, 0),
      valid_(sets_ * ways, 0) {
  HBMSIM_CHECK(ways > 0, "cache needs at least one way");
}

SetAssocCache SetAssocCache::from_config(const CacheLevelConfig& cfg) {
  HBMSIM_CHECK(cfg.line_bytes > 0 && cfg.ways > 0, "bad cache level config");
  const std::uint64_t lines =
      std::max<std::uint64_t>(cfg.capacity_bytes / cfg.line_bytes, cfg.ways);
  return SetAssocCache(lines / cfg.ways, cfg.ways);
}

bool SetAssocCache::access(std::uint64_t key) {
  const std::uint64_t set = (key ^ (key >> 17)) & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  // Scan most- to least-recent; on hit rotate the entry to the front.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && entries_[base + w] == key) {
      for (std::uint32_t m = w; m > 0; --m) {
        entries_[base + m] = entries_[base + m - 1];
        valid_[base + m] = valid_[base + m - 1];
      }
      entries_[base] = key;
      valid_[base] = 1;
      ++hits_;
      return true;
    }
  }
  // Miss: insert at the front, pushing the LRU way out.
  for (std::uint32_t m = ways_ - 1; m > 0; --m) {
    entries_[base + m] = entries_[base + m - 1];
    valid_[base + m] = valid_[base + m - 1];
  }
  entries_[base] = key;
  valid_[base] = 1;
  ++misses_;
  return false;
}

McdramCache::McdramCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes)
    : line_bytes_(line_bytes) {
  HBMSIM_CHECK(line_bytes > 0 && std::has_single_bit(std::uint64_t{line_bytes}),
               "MCDRAM line size must be a power of two");
  HBMSIM_CHECK(capacity_bytes >= line_bytes, "MCDRAM smaller than one line");
  line_shift_ = std::countr_zero(std::uint64_t{line_bytes});
  tags_.assign(capacity_bytes / line_bytes, ~std::uint64_t{0});
}

bool McdramCache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t slot = line % tags_.size();
  if (tags_[slot] == line) {
    ++hits_;
    return true;
  }
  tags_[slot] = line;
  ++misses_;
  return false;
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig& config)
    : config_(config),
      tlb_(std::max<std::uint32_t>(config.tlb.entries / config.tlb.ways, 1),
           config.tlb.ways),
      mcdram_(config.mcdram_cache_bytes(), config.hbm_cache_line_bytes),
      // Page tables live far above any data we simulate accessing.
      page_table_base_(std::uint64_t{1} << 60) {
  levels_.reserve(config.levels.size());
  for (const auto& level : config.levels) {
    levels_.push_back(SetAssocCache::from_config(level));
  }
}

double MemoryHierarchy::memory_ns(std::uint64_t addr) {
  switch (config_.mode) {
    case MemoryMode::kFlatHbm:
      return config_.hbm_access_ns;
    case MemoryMode::kFlatDdr:
      return config_.dram_access_ns;
    case MemoryMode::kCacheMode:
    case MemoryMode::kHybrid:
      if (mcdram_.access(addr)) {
        return config_.hbm_access_ns;
      }
      // MCDRAM miss: access MCDRAM tags, re-cross the mesh, hit DDR.
      return config_.hbm_access_ns + config_.cache_miss_extra_ns;
  }
  return 0.0;
}

double MemoryHierarchy::cached_access_ns(std::uint64_t addr, bool is_pte) {
  double ns = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    ns += config_.levels[i].probe_ns;
    if (levels_[i].access(addr / config_.levels[i].line_bytes)) {
      return ns;
    }
  }
  // Left the core: cross the mesh to the distributed directory, then to
  // memory. Page tables are kernel allocations that sit in DDR regardless
  // of the process's membind (and we keep them out of the MCDRAM tags so
  // the reported MCDRAM hit rate is a data hit rate).
  ns += config_.mesh_probe_ns;
  ns += is_pte ? config_.dram_access_ns : memory_ns(addr);
  return ns;
}

double MemoryHierarchy::page_walk_ns(std::uint64_t vpage) {
  // One PTE load (8 bytes per page entry) through the data caches: small
  // working sets keep their page table cache-resident (cheap walk); big
  // arrays push PTE loads out to memory, which produces the measured
  // latency climb between 16 MiB and 64 GiB arrays.
  return cached_access_ns(page_table_base_ + vpage * 8, /*is_pte=*/true);
}

void MemoryHierarchy::warm(std::uint64_t array_bytes) {
  if (config_.mode == MemoryMode::kCacheMode ||
      config_.mode == MemoryMode::kHybrid) {
    for (std::uint64_t addr = 0; addr < array_bytes;
         addr += config_.hbm_cache_line_bytes) {
      mcdram_.access(addr);
    }
  }
  mcdram_.reset_stats();
}

double MemoryHierarchy::access_ns(std::uint64_t vaddr) {
  double ns = 0.0;
  const std::uint64_t vpage = vaddr / config_.tlb.page_bytes;
  if (!tlb_.access(vpage)) {
    ns += page_walk_ns(vpage);
  }
  ns += cached_access_ns(vaddr);
  return ns;
}

}  // namespace hbmsim::knl
