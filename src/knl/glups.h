// The §5.1 bandwidth microbenchmark: GLUPS ("Giga-Large Updates per
// Second") — read, xor, and write randomly chosen 1024-byte blocks until
// one array's worth of data has been updated, with all hardware threads
// driving memory simultaneously.
//
// Bandwidth is a saturation phenomenon, so the model is throughput-based:
// the MCDRAM hit fraction is *measured* by replaying the random block
// sequence against the direct-mapped MCDRAM tag simulation, then the
// achieved bandwidth follows from the harmonic mix of the HBM path and
// the DDR fill path (each missed block must cross the DRAM channel).
// Reproduces Table 2b.
#pragma once

#include <cstdint>
#include <vector>

#include "knl/machine.h"

namespace hbmsim::knl {

struct GlupsResult {
  std::uint64_t array_bytes = 0;
  MemoryMode mode = MemoryMode::kFlatHbm;
  double bandwidth_mibs = 0.0;
  double mcdram_hit_rate = 0.0;  // cache mode only
};

struct GlupsOptions {
  std::uint32_t block_bytes = 1024;  ///< paper: 1024-byte blocks (128 doubles)
  /// Cap on simulated block updates (full paper arrays would need
  /// millions; the hit fraction converges long before that).
  std::uint64_t max_blocks = 1 << 20;
  std::uint64_t seed = 1;
};

[[nodiscard]] GlupsResult run_glups(const MachineConfig& machine,
                                    std::uint64_t array_bytes,
                                    const GlupsOptions& opts = {});

/// Sweep array sizes across modes — the data behind Table 2b.
[[nodiscard]] std::vector<GlupsResult> glups_sweep(
    const std::vector<MemoryMode>& modes, std::uint64_t min_bytes,
    std::uint64_t max_bytes, std::uint32_t capacity_shift = 0,
    const GlupsOptions& opts = {});

}  // namespace hbmsim::knl
