// Error handling primitives for hbmsim.
//
// Library code throws hbmsim::Error (or a subclass) on contract violations
// and unrecoverable conditions; hot paths use HBMSIM_ASSERT, which compiles
// out in release builds, for internal invariants.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hbmsim {

/// Base exception for all hbmsim errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied configuration is invalid (e.g. q > p, k == 0).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown on malformed trace files or unparsable workload inputs.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Thrown on I/O failures (unreadable/unwritable files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(std::string_view expr,
                                             std::string_view message,
                                             std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace detail

/// Always-on runtime check. Throws hbmsim::Error when `cond` is false.
/// Use for conditions that depend on user input or external data.
#define HBMSIM_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::hbmsim::detail::throw_check_failure(#cond, (msg),             \
                                            std::source_location::current()); \
    }                                                                 \
  } while (false)

/// Are internal invariant checks compiled in? True in debug builds and in
/// checked builds (-DHBMSIM_CHECKED=ON); false in plain Release /
/// RelWithDebInfo, where HBMSIM_ASSERT and HBMSIM_DCHECK (check/check.h)
/// compile to nothing and SimConfig::paranoid is rejected.
#if defined(HBMSIM_CHECKED) || !defined(NDEBUG)
#define HBMSIM_CHECKS_ENABLED 1
#else
#define HBMSIM_CHECKS_ENABLED 0
#endif

/// Internal invariant check; active in debug and checked builds only.
#if HBMSIM_CHECKS_ENABLED
#define HBMSIM_ASSERT(cond, msg) HBMSIM_CHECK(cond, msg)
#else
#define HBMSIM_ASSERT(cond, msg) ((void)0)
#endif

}  // namespace hbmsim
