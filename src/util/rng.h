// Deterministic, seedable random number generation.
//
// All randomness in hbmsim flows through Xoshiro256StarStar so that every
// simulation, workload generation, and priority permutation is exactly
// reproducible from a 64-bit seed. std::mt19937 is avoided because its
// state is large and its distributions are not cross-platform stable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.h"

namespace hbmsim {

/// SplitMix64: used to expand a 64-bit seed into generator state and to
/// derive independent child seeds (seed sequences).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    HBMSIM_ASSERT(bound > 0, "uniform bound must be positive");
    // 128-bit multiply rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    HBMSIM_ASSERT(lo <= hi, "uniform_range requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child generator (for per-thread streams).
  [[nodiscard]] Xoshiro256StarStar fork() noexcept {
    return Xoshiro256StarStar((*this)());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle using our deterministic generator.
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Xoshiro256StarStar& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.uniform(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

/// Bounded Zipf(s) sampler over {0, ..., n-1} using rejection-inversion
/// (Hörmann & Derflinger). Used by synthetic workload generators.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
    HBMSIM_CHECK(n >= 1, "zipf support must be non-empty");
    HBMSIM_CHECK(s >= 0.0, "zipf exponent must be non-negative");
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    dist_range_ = h_x1_ - h_n_;
  }

  /// Draw a sample in [0, n).
  [[nodiscard]] std::uint64_t operator()(Xoshiro256StarStar& rng) const {
    // s == 0 degenerates to uniform.
    if (s_ == 0.0) {
      return rng.uniform(n_);
    }
    for (;;) {
      const double u = h_n_ + rng.uniform_double() * dist_range_;
      const double x = h_inv(u);
      auto k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      const double kd = static_cast<double>(k);
      if (u >= h(kd + 0.5) - pow_approx(kd)) {
        return k - 1;
      }
    }
  }

 private:
  // H(x) = integral of x^-s; closed forms for s != 1 and s == 1.
  double h(double x) const {
    if (s_ == 1.0) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }

  double h_inv(double u) const {
    if (s_ == 1.0) {
      return std::exp(u);
    }
    return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  double pow_approx(double x) const { return std::pow(x, -s_); }

  std::uint64_t n_;
  double s_;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double dist_range_ = 0.0;
};

}  // namespace hbmsim
