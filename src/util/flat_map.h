// FlatMap: open-addressing hash map from 64-bit keys to 32-bit values,
// tuned for the simulator's residency path (one lookup per page
// reference — hundreds of millions per run). Linear probing with
// power-of-two capacity and a strong multiplicative hash; tombstone-free
// deletion via backward-shift, so probe sequences never degrade.
//
// Not a general container: keys are integers, values are trivially
// copyable, and the reserved key ~0ULL must never be inserted (the
// simulator's GlobalPage values cannot reach it).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"

namespace hbmsim {

template <typename Value>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  explicit FlatMap(std::size_t capacity_hint = 16) {
    rehash(std::bit_ceil(std::max<std::size_t>(capacity_hint * 2, 16)));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Slots in the backing array (tests; growth/reuse assertions).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Ensure `n` entries fit without a rehash. clear() keeps the backing
  /// array, so reserve-once tables never allocate again in steady state.
  void reserve(std::size_t n) {
    const std::size_t needed = std::bit_ceil(std::max<std::size_t>(n * 2, 16));
    if (needed > capacity_) {
      rehash(needed);
    }
  }

  /// Pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(std::uint64_t key) const noexcept {
    std::size_t i = probe_start(key);
    for (;;) {
      if (keys_[i] == key) {
        return &values_[i];
      }
      if (keys_[i] == kEmptyKey) {
        return nullptr;
      }
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] Value* find(std::uint64_t key) noexcept {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Insert or overwrite.
  void insert(std::uint64_t key, Value value) {
    HBMSIM_ASSERT(key != kEmptyKey, "reserved key");
    if ((size_ + 1) * 8 > capacity_ * 7) {  // load factor 7/8
      rehash(capacity_ * 2);
    }
    std::size_t i = probe_start(key);
    for (;;) {
      if (keys_[i] == key) {
        values_[i] = value;
        return;
      }
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        values_[i] = value;
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Remove `key`; returns true if it was present. Backward-shift
  /// deletion keeps probe chains intact without tombstones.
  bool erase(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    for (;;) {
      if (keys_[i] == kEmptyKey) {
        return false;
      }
      if (keys_[i] == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    // Shift the following cluster back over the hole.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (keys_[j] != kEmptyKey) {
      const std::size_t home = probe_start(keys_[j]);
      // Move j into the hole if its home position does not lie in the
      // (cyclic) interval (hole, j].
      const bool movable = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (movable) {
        keys_[hole] = keys_[j];
        values_[hole] = values_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    keys_[hole] = kEmptyKey;
    --size_;
    return true;
  }

  void clear() noexcept {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  /// Visit every (key, value) pair (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (keys_[i] != kEmptyKey) {
        fn(keys_[i], values_[i]);
      }
    }
  }

 private:
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
    // Fibonacci-style multiplicative hash; high bits select the slot.
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> shift_) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    shift_ = 64 - std::countr_zero(capacity_);
    keys_.assign(capacity_, kEmptyKey);
    values_.assign(capacity_, Value{});
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) {
        insert(old_keys[i], old_values[i]);
      }
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  int shift_ = 64;
  std::size_t size_ = 0;
};

/// FlatSet: a set of 64-bit keys with FlatMap's deterministic layout and
/// probing. Used where std::unordered_set would otherwise appear on
/// simulation paths (e.g. the in-flight page set), so membership
/// structures on ordering-sensitive code carry no hash-iteration-order
/// hazard by construction (hbmlint's unordered-iteration rule enforces
/// the rest).
class FlatSet {
 public:
  explicit FlatSet(std::size_t capacity_hint = 16) : map_(capacity_hint) {}

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return map_.capacity();
  }
  void reserve(std::size_t n) { map_.reserve(n); }
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }

  void insert(std::uint64_t key) { map_.insert(key, std::uint8_t{1}); }
  bool erase(std::uint64_t key) noexcept { return map_.erase(key); }
  void clear() noexcept { map_.clear(); }

  /// Visit every key (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](std::uint64_t key, std::uint8_t) { fn(key); });
  }

 private:
  FlatMap<std::uint8_t> map_;
};

/// Bitmap: a fixed-width bit set with O(words) lowest-set-bit scan.
/// The bucketed priority queue keeps one bit per rank, so pop() finds the
/// best non-empty rank with a single countr_zero for p <= 64 threads.
class Bitmap {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  explicit Bitmap(std::size_t bits = 0) { resize(bits); }

  /// Resize to `bits` bits, all cleared.
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(std::size_t i) noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear_all() noexcept {
    std::fill(words_.begin(), words_.end(), std::uint64_t{0});
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  /// Index of the lowest set bit at or after `from`, or npos when none
  /// is set there. Callers that know a lower bound (e.g. a monotone
  /// min-rank hint) pass it to skip the guaranteed-empty prefix words.
  [[nodiscard]] std::size_t find_first(std::size_t from = 0) const noexcept {
    std::size_t w = from >> 6;
    if (w >= words_.size()) {
      return npos;
    }
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (word != 0) {
        return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      }
      if (++w == words_.size()) {
        return npos;
      }
      word = words_[w];
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// HierBitmap: a hierarchical bit set — each summary level keeps one bit
/// per 64-bit word of the level below, topped off at a single word — so
/// membership updates cost O(levels) word operations and ordered
/// traversal costs O(set bits · levels), independent of the universe
/// size. The simulator's runnable-core sets use it in place of sorted
/// ThreadId vectors: set() is an O(1) sorted insert (no per-tick sort),
/// and the per-tick "who can issue" walk (consume()) visits only
/// runnable cores — the last O(p) term in the tick loop at p = 1M.
/// Two levels cover p = 4096; four cover p = 2^24.
///
/// find_first()/find_next() are hot-path-alloc seeds in tools/hbmlint
/// (the scan runs once per served reference); like the rest of this
/// header they never allocate after resize().
class HierBitmap {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  explicit HierBitmap(std::size_t bits = 0) { resize(bits); }

  /// Resize to `bits` bits, all cleared.
  void resize(std::size_t bits) {
    bits_ = bits;
    count_ = 0;
    levels_.clear();
    std::size_t words = std::max<std::size_t>((bits + 63) / 64, 1);
    levels_.emplace_back(words, 0);
    while (levels_.back().size() > 1) {
      words = (levels_.back().size() + 63) / 64;
      levels_.emplace_back(words, 0);
    }
  }

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool any() const noexcept { return count_ != 0; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    return (levels_[0][i >> 6] >> (i & 63)) & 1;
  }

  /// Idempotent insert: O(levels), stopping at the first summary level
  /// already marked.
  void set(std::size_t i) noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    std::size_t idx = i;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      std::uint64_t& w = levels_[l][idx >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
      if ((w & bit) != 0) {
        if (l == 0) {
          return;  // already a member
        }
        break;  // summaries above are already marked
      }
      w |= bit;
      idx >>= 6;
    }
    ++count_;
  }

  /// Idempotent erase: O(levels), clearing summary bits only for words
  /// that became empty.
  void clear(std::size_t i) noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    std::size_t idx = i;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      std::uint64_t& w = levels_[l][idx >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
      if (l == 0) {
        if ((w & bit) == 0) {
          return;  // not a member
        }
        --count_;
      }
      w &= ~bit;
      if (w != 0) {
        break;  // word still populated; summaries above stay set
      }
      idx >>= 6;
    }
  }

  void clear_all() noexcept {
    for (auto& level : levels_) {
      std::fill(level.begin(), level.end(), std::uint64_t{0});
    }
    count_ = 0;
  }

  /// Lowest member, or npos when empty: one countr_zero per level.
  [[nodiscard]] std::size_t find_first() const noexcept {
    if (count_ == 0) {
      return npos;
    }
    std::size_t idx = 0;
    for (std::size_t l = levels_.size(); l-- > 0;) {
      idx = idx * 64 +
            static_cast<std::size_t>(std::countr_zero(levels_[l][idx]));
    }
    return idx;
  }

  /// Lowest member strictly greater than `i`, or npos: ascend to the
  /// first level with a set bit after `i` in its word, then descend
  /// taking the lowest set bit of each child word.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept {
    HBMSIM_ASSERT(i < bits_, "bitmap index out of range");
    std::size_t idx = i;
    std::size_t l = 0;
    for (;;) {
      const std::size_t word = idx >> 6;
      const unsigned off = idx & 63;
      const std::uint64_t above =
          off == 63 ? 0
                    : levels_[l][word] & (~std::uint64_t{0} << (off + 1));
      if (above != 0) {
        idx = word * 64 + static_cast<std::size_t>(std::countr_zero(above));
        break;
      }
      if (++l == levels_.size()) {
        return npos;
      }
      idx = word;
    }
    while (l-- > 0) {
      idx = idx * 64 +
            static_cast<std::size_t>(std::countr_zero(levels_[l][idx]));
    }
    return idx;
  }

  /// Visit every member in ascending order (const traversal).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = find_first(); i != npos; i = find_next(i)) {
      fn(i);
    }
  }

  /// Pop members in ascending order, clearing each before visiting it,
  /// until the set is empty — the tick loop's destructive scan (`fn` may
  /// re-insert into *another* set while iterating; re-inserting into
  /// this one extends the scan, which callers here never do).
  template <typename Fn>
  void consume(Fn&& fn) {
    while (count_ != 0) {
      const std::size_t i = find_first();
      clear(i);
      fn(i);
    }
  }

 private:
  std::size_t bits_ = 0;
  std::size_t count_ = 0;
  /// levels_[0] is the member bits; levels_[l][w] bit b summarizes
  /// levels_[l-1] word w*64+b. The top level is always a single word.
  std::vector<std::vector<std::uint64_t>> levels_;
};

/// IndexPool: a slab of T addressed by 32-bit handles with a LIFO
/// freelist. Intrusive linked structures (the arbitration queues, the
/// waiter chains) store handles instead of pointers: half the size, no
/// per-node allocation, and release/acquire never touch the allocator
/// once the slab has grown to the high-water mark.
template <typename T>
class IndexPool {
 public:
  /// Null handle, shared by every intrusive structure built on a pool.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  explicit IndexPool(std::size_t capacity_hint = 0) { reserve(capacity_hint); }

  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

  /// Handle to a slot whose contents are unspecified (reused or fresh).
  [[nodiscard]] std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t id = free_.back();
      free_.pop_back();
      return id;
    }
    slots_.emplace_back();
    // Keep the freelist's capacity >= the slab's so release() can never
    // allocate, even after geometric growth.
    if (free_.capacity() < slots_.size()) {
      free_.reserve(slots_.capacity());
    }
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release(std::uint32_t id) noexcept {
    HBMSIM_ASSERT(id < slots_.size(), "pool handle out of range");
    free_.push_back(id);
  }

  [[nodiscard]] T& operator[](std::uint32_t id) noexcept {
    HBMSIM_ASSERT(id < slots_.size(), "pool handle out of range");
    return slots_[id];
  }

  [[nodiscard]] const T& operator[](std::uint32_t id) const noexcept {
    HBMSIM_ASSERT(id < slots_.size(), "pool handle out of range");
    return slots_[id];
  }

  /// Slots ever allocated (the high-water mark of live handles).
  [[nodiscard]] std::size_t allocated() const noexcept {
    return slots_.size();
  }

  /// Handles currently acquired.
  [[nodiscard]] std::size_t live() const noexcept {
    return slots_.size() - free_.size();
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace hbmsim
