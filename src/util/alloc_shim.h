// Global allocation accounting: a counting replacement for the global
// allocation functions, used to *prove* memory claims instead of
// asserting them in prose.
//
//   * count — every operator new, for steady-state allocation-freedom
//     checks (the tick hot path must not allocate after warm-up);
//   * bytes/peak — live heap bytes and their high-water mark, for the
//     resident-memory budgets of the p = 1M streaming cases
//     (bench/perf_simulator --scale-compare, tests/memory_accounting_test):
//     a materialized million-thread workload blows the budget, a
//     streaming one must not.
//
// Replacing the global allocation functions is program-wide, so exactly
// one translation unit per binary defines HBMSIM_ALLOC_SHIM before
// including this header; every other TU may include it (or not) and
// still read the counters through the accessors below. The replacement
// functions are deliberately not inline — replacing operator new with an
// inline definition is ill-formed.
//
// Byte accounting needs the allocation size at free time. C++14 sized
// delete is not guaranteed for every path, so sizes come from
// malloc_usable_size (glibc; both malloc and aligned_alloc pointers).
// On other platforms the shim still counts allocations but reports zero
// bytes — bytes_tracked() tells budget asserts whether to bind.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__GLIBC__)
#include <malloc.h>
#define HBMSIM_ALLOC_SHIM_HAS_BYTES 1
#else
#define HBMSIM_ALLOC_SHIM_HAS_BYTES 0
#endif

namespace hbmsim::util {

namespace alloc_detail {
inline std::atomic<std::uint64_t> g_count{0};
inline std::atomic<std::uint64_t> g_bytes{0};
inline std::atomic<std::uint64_t> g_peak{0};
}  // namespace alloc_detail

/// Whether byte/peak accounting is live on this platform (the count is
/// always tracked when the shim TU is linked in).
[[nodiscard]] constexpr bool alloc_bytes_tracked() noexcept {
  return HBMSIM_ALLOC_SHIM_HAS_BYTES != 0;
}

/// Allocations observed process-wide since start.
[[nodiscard]] inline std::uint64_t alloc_count() noexcept {
  return alloc_detail::g_count.load(std::memory_order_relaxed);
}

/// Live heap bytes right now (usable sizes, so slightly above the
/// requested totals).
[[nodiscard]] inline std::uint64_t alloc_bytes() noexcept {
  return alloc_detail::g_bytes.load(std::memory_order_relaxed);
}

/// High-water mark of alloc_bytes() since start (or the last reset).
[[nodiscard]] inline std::uint64_t alloc_peak_bytes() noexcept {
  return alloc_detail::g_peak.load(std::memory_order_relaxed);
}

/// Restart the high-water mark from the current live total, so a
/// measured phase's peak is not masked by earlier setup spikes.
inline void reset_alloc_peak() noexcept {
  alloc_detail::g_peak.store(alloc_detail::g_bytes.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

namespace alloc_detail {

inline void on_alloc(void* p, std::size_t requested) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
#if HBMSIM_ALLOC_SHIM_HAS_BYTES
  const std::uint64_t n = malloc_usable_size(p);
#else
  (void)p;
  const std::uint64_t n = 0;
  (void)requested;
#endif
  (void)requested;
  const std::uint64_t now =
      g_bytes.fetch_add(n, std::memory_order_relaxed) + n;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

inline void on_free(void* p) noexcept {
#if HBMSIM_ALLOC_SHIM_HAS_BYTES
  if (p != nullptr) {
    g_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  }
#else
  (void)p;
#endif
}

}  // namespace alloc_detail
}  // namespace hbmsim::util

#ifdef HBMSIM_ALLOC_SHIM

#include <new>

namespace hbmsim::util::alloc_detail {

inline void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  on_alloc(p, size);
  return p;
}

inline void* counted_alloc_aligned(std::size_t size, std::align_val_t al) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto align = static_cast<std::size_t>(al);
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  on_alloc(p, size);
  return p;
}

inline void counted_free(void* p) noexcept {
  on_free(p);
  std::free(p);
}

}  // namespace hbmsim::util::alloc_detail

void* operator new(std::size_t size) {
  return hbmsim::util::alloc_detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return hbmsim::util::alloc_detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return hbmsim::util::alloc_detail::counted_alloc_aligned(size, al);
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return hbmsim::util::alloc_detail::counted_alloc_aligned(size, al);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return hbmsim::util::alloc_detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return hbmsim::util::alloc_detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { hbmsim::util::alloc_detail::counted_free(p); }
void operator delete[](void* p) noexcept { hbmsim::util::alloc_detail::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hbmsim::util::alloc_detail::counted_free(p);
}

#endif  // HBMSIM_ALLOC_SHIM
