// Minimal command-line option parsing for the hbmsim executables:
// GNU-style `--key value`, `--key=value`, and boolean `--flag`, with
// typed accessors, defaults, and an unknown-option check. No external
// dependencies, deliberately tiny.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace hbmsim {

class ArgParser {
 public:
  /// Parse argv. Options start with "--"; everything else is collected
  /// as a positional argument. "--" ends option parsing.
  ArgParser(int argc, const char* const* argv) {
    bool options_done = false;
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (options_done || token.rfind("--", 0) != 0 || token == "-") {
        positional_.push_back(std::move(token));
        continue;
      }
      if (token == "--") {
        options_done = true;
        continue;
      }
      token.erase(0, 2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
        continue;
      }
      // `--key value` unless the next token is another option or absent
      // (then it is a boolean flag).
      if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    used_.insert(key);
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    char* end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      throw ConfigError("option --" + key + " expects an integer, got '" +
                        it->second + "'");
    }
    return v;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      throw ConfigError("option --" + key + " expects a number, got '" +
                        it->second + "'");
    }
    return v;
  }

  /// Boolean flag: present without value (or "true"/"1") → true.
  [[nodiscard]] bool get_flag(const std::string& key) const {
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return false;
    }
    return it->second.empty() || it->second == "true" || it->second == "1";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Throw if any supplied option was never consumed by an accessor —
  /// catches typos like --thread instead of --threads.
  void reject_unknown() const {
    for (const auto& entry : values_) {
      if (!used_.contains(entry.first)) {
        throw ConfigError("unknown option --" + entry.first);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> used_;
};

}  // namespace hbmsim
