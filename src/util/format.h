// Small formatting helpers for tables and human-readable reports.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace hbmsim {

/// Format a byte count as a human-readable string ("16MiB", "2GiB").
[[nodiscard]] inline std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  auto value = static_cast<double>(bytes);
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (value == static_cast<double>(static_cast<std::uint64_t>(value))) {
    os << static_cast<std::uint64_t>(value) << kUnits[unit];
  } else {
    os << std::fixed << std::setprecision(1) << value << kUnits[unit];
  }
  return os.str();
}

/// Fixed-precision double formatting ("12.345").
[[nodiscard]] inline std::string format_fixed(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Thousands-separated integer formatting ("1,234,567").
[[nodiscard]] inline std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++run;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace hbmsim
