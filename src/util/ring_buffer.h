// RingBuffer: a power-of-two circular FIFO over contiguous storage.
//
// Replaces std::deque on the simulator's tick hot path (the in-flight
// transfer queue, the FIFO arbiter): std::deque allocates a new block
// every few hundred entries forever, while a ring sized once from
// SimConfig never allocates again in steady state. Indexed access from
// the front is provided for the invariant checker's ordered walks.
//
// Not a general container: elements are trivially copyable; growth
// copies the live range out in FIFO order (amortised O(1) push_back).
#pragma once

#include <bit>
#include <cstddef>
#include <vector>

#include "util/error.h"

namespace hbmsim {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity_hint = 0) {
    if (capacity_hint > 0) {
      grow(std::bit_ceil(capacity_hint));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Ensure room for `n` elements without further allocation.
  void reserve(std::size_t n) {
    if (n > buf_.size()) {
      grow(std::bit_ceil(n));
    }
  }

  void push_back(const T& value) {
    if (size_ == buf_.size()) {
      grow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    }
    buf_[(head_ + size_) & mask_] = value;
    ++size_;
  }

  [[nodiscard]] const T& front() const noexcept {
    HBMSIM_ASSERT(size_ > 0, "front() on empty ring");
    return buf_[head_];
  }

  [[nodiscard]] const T& back() const noexcept {
    HBMSIM_ASSERT(size_ > 0, "back() on empty ring");
    return buf_[(head_ + size_ - 1) & mask_];
  }

  void pop_front() noexcept {
    HBMSIM_ASSERT(size_ > 0, "pop_front() on empty ring");
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// i-th element from the front (0 == front()).
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    HBMSIM_ASSERT(i < size_, "ring index out of range");
    return buf_[(head_ + i) & mask_];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void grow(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    mask_ = buf_.size() - 1;
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hbmsim
