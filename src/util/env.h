// Environment variable helpers used by the benchmark harnesses.
//
// Benches default to laptop-scale parameters; HBMSIM_SCALE=paper switches
// every harness to the sizes reported in the paper.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace hbmsim {

/// Read an environment variable; nullopt if unset or empty.
[[nodiscard]] inline std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

/// Read an integral environment variable; `fallback` if unset/unparsable.
[[nodiscard]] inline long long env_int(const char* name, long long fallback) {
  const auto s = env_string(name);
  if (!s) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') {
    return fallback;
  }
  return v;
}

/// Scale at which benches run. "paper" reproduces the exact published
/// parameters; "quick" (default) shrinks inputs to finish in seconds on a
/// single core while preserving every qualitative shape.
enum class BenchScale { kQuick, kPaper };

[[nodiscard]] inline BenchScale bench_scale() {
  const auto s = env_string("HBMSIM_SCALE");
  if (s && (*s == "paper" || *s == "PAPER" || *s == "full")) {
    return BenchScale::kPaper;
  }
  return BenchScale::kQuick;
}

}  // namespace hbmsim
