#include "check/shadow_cache.h"

#include <utility>

#include "assoc/direct_mapped.h"
#include "check/check.h"

namespace hbmsim::check {

ShadowPolicy shadow_policy_for(const CacheModel& cache) noexcept {
  if (dynamic_cast<const assoc::DirectMappedCache*>(&cache) != nullptr) {
    return ShadowPolicy::kDirectMapped;
  }
  if (const auto* hbm = dynamic_cast<const HbmCache*>(&cache)) {
    return ShadowedCache::policy_for(hbm->replacement());
  }
  return ShadowPolicy::kMembershipOnly;
}

ShadowedCache::ShadowedCache(std::unique_ptr<CacheModel> inner,
                             ShadowPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  HBMSIM_CHECK(inner_ != nullptr, "shadowed cache requires an inner model");
  // Adopt any pages already resident (a freshly built model is empty, but
  // tests may wrap a warmed-up cache).
  for (const GlobalPage page : inner_->resident_pages()) {
    position_.emplace(page, order_.insert(order_.end(), page));
  }
  audit_occupancy();
}

ShadowPolicy ShadowedCache::policy_for(ReplacementKind kind) noexcept {
  switch (kind) {
    case ReplacementKind::kLru:
      return ShadowPolicy::kLru;
    case ReplacementKind::kFifo:
      return ShadowPolicy::kFifo;
    case ReplacementKind::kClock:
      return ShadowPolicy::kMembershipOnly;
  }
  return ShadowPolicy::kMembershipOnly;
}

void ShadowedCache::audit_occupancy() const {
  HBMSIM_INVARIANT(
      inner_->size() <= inner_->capacity(),
      make_context("cache occupancy ", inner_->size(),
                   " exceeds capacity k=", inner_->capacity()));
  HBMSIM_INVARIANT(
      inner_->size() == position_.size(),
      make_context("cache reports ", inner_->size(), " resident pages, shadow has ",
                   position_.size()));
}

bool ShadowedCache::contains(GlobalPage page) const {
  const bool result = inner_->contains(page);
  const bool expected = position_.contains(page);
  HBMSIM_INVARIANT(
      result == expected,
      make_context("contains(", page, ") returned ", result,
                   " but the page is ", expected ? "" : "not ",
                   "resident in the shadow"));
  return result;
}

void ShadowedCache::touch(GlobalPage page) {
  const auto it = position_.find(page);
  HBMSIM_INVARIANT(it != position_.end(),
                   make_context("touch (serve) of non-resident page ", page,
                                " — tick step 4 serves resident pages only"));
  if (policy_ == ShadowPolicy::kLru) {
    order_.splice(order_.end(), order_, it->second);  // most recent to back
  }
  inner_->touch(page);
  audit_occupancy();
}

std::optional<GlobalPage> ShadowedCache::insert(GlobalPage page) {
  HBMSIM_INVARIANT(!position_.contains(page),
                   make_context("double fetch: page ", page,
                                " inserted while already resident"));
  const bool was_full = position_.size() >= inner_->capacity();
  const std::optional<GlobalPage> victim = inner_->insert(page);

  if (victim.has_value()) {
    const auto it = position_.find(*victim);
    HBMSIM_INVARIANT(it != position_.end(),
                     make_context("evicted page ", *victim,
                                  " was not resident"));
    if (policy_ == ShadowPolicy::kLru || policy_ == ShadowPolicy::kFifo) {
      // Fully-associative laws only: a direct-mapped (or unknown custom)
      // model may legally conflict-evict below capacity.
      HBMSIM_INVARIANT(
          was_full,
          make_context("eviction of page ", *victim, " at occupancy ",
                       position_.size(), "/", inner_->capacity(),
                       " — a fully-associative cache must not evict below "
                       "capacity"));
      HBMSIM_INVARIANT(
          *victim == order_.front(),
          make_context("victim ", *victim, " is not the ",
                       policy_ == ShadowPolicy::kLru ? "least-recently-used"
                                                     : "first-inserted",
                       " page ", order_.front(),
                       " — the eviction-order law (LRU stack property) "
                       "does not hold"));
    }
    order_.erase(it->second);
    position_.erase(it);
    HBMSIM_INVARIANT(!inner_->contains(*victim),
                     make_context("evicted page ", *victim,
                                  " still reports resident"));
  } else {
    HBMSIM_INVARIANT(
        !was_full,
        make_context("insert of page ", page, " at full occupancy ",
                     position_.size(), "/", inner_->capacity(),
                     " evicted nothing"));
  }

  position_.emplace(page, order_.insert(order_.end(), page));
  HBMSIM_INVARIANT(inner_->contains(page),
                   make_context("page ", page,
                                " not resident immediately after insert"));
  audit_occupancy();
  return victim;
}

std::size_t ShadowedCache::size() const { return inner_->size(); }

std::uint64_t ShadowedCache::capacity() const { return inner_->capacity(); }

std::uint64_t ShadowedCache::evictions() const { return inner_->evictions(); }

std::vector<GlobalPage> ShadowedCache::resident_pages() const {
  return inner_->resident_pages();
}

}  // namespace hbmsim::check
