#include "check/shadow_arbiter.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "check/check.h"
#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::check {
namespace {

// ---- Reference implementations ------------------------------------------
//
// These are the arbiters as originally written (core/arbitration.cc before
// the bucketed/pooled rewrite), moved here unchanged. Do not optimise
// them: their value is being obviously equivalent to the paper's policy
// definitions, so any divergence observed by ShadowedArbiter indicts the
// fast structures.

/// FIFO on std::deque.
class ReferenceFifoArbiter final : public ArbitrationPolicy {
 public:
  void enqueue(const QueuedRequest& request) override {
    queue_.push_back(request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    QueuedRequest r = queue_.front();
    queue_.pop_front();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return {queue_.begin(), queue_.end()};
  }

 private:
  std::deque<QueuedRequest> queue_;
};

/// Priority on std::map keyed by (rank, arrival seq).
class ReferencePriorityArbiter final : public ArbitrationPolicy {
 public:
  explicit ReferencePriorityArbiter(const PriorityMap* priorities)
      : priorities_(priorities) {
    HBMSIM_CHECK(priorities_ != nullptr,
                 "priority arbitration requires a PriorityMap");
  }

  void enqueue(const QueuedRequest& request) override {
    // Key by (priority, arrival sequence): priorities are unique per
    // thread, but under shared_pages a thread's stale entry can coexist
    // with its live one, so the key must never collide.
    queue_.emplace(Key{priorities_->priority_of(request.thread), seq_++},
                   request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const auto it = queue_.begin();
    QueuedRequest r = it->second;
    queue_.erase(it);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    // The map is keyed by (rank, seq); arrival order is seq order.
    std::vector<std::pair<std::uint64_t, QueuedRequest>> by_seq;
    by_seq.reserve(queue_.size());
    for (const auto& [key, request] : queue_) {
      by_seq.emplace_back(key.seq, request);
    }
    std::sort(by_seq.begin(), by_seq.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<QueuedRequest> out;
    out.reserve(by_seq.size());
    for (const auto& [seq, request] : by_seq) {
      out.push_back(request);
    }
    return out;
  }

  void on_priorities_changed() override {
    // Re-rank all waiting requests under the new permutation, preserving
    // arrival order among equal ranks.
    std::vector<std::pair<std::uint64_t, QueuedRequest>> waiting;
    waiting.reserve(queue_.size());
    for (const auto& [key, request] : queue_) {
      waiting.emplace_back(key.seq, request);
    }
    queue_.clear();
    for (const auto& [seq, r] : waiting) {
      queue_.emplace(Key{priorities_->priority_of(r.thread), seq}, r);
    }
  }

 private:
  struct Key {
    std::uint32_t rank;
    std::uint64_t seq;
    friend bool operator<(const Key& a, const Key& b) noexcept {
      return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
    }
  };

  const PriorityMap* priorities_;
  std::uint64_t seq_ = 0;
  std::map<Key, QueuedRequest> queue_;
};

/// Random on a swap-remove vector pool; identical seeded RNG stream to
/// the production arbiter, so the pick sequences must coincide exactly.
class ReferenceRandomArbiter final : public ArbitrationPolicy {
 public:
  explicit ReferenceRandomArbiter(std::uint64_t seed) : rng_(seed) {}

  void enqueue(const QueuedRequest& request) override {
    pool_.push_back(request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (pool_.empty()) {
      return std::nullopt;
    }
    const std::uint64_t i = rng_.uniform(pool_.size());
    QueuedRequest r = pool_[i];
    pool_[i] = pool_.back();
    pool_.pop_back();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return pool_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return pool_;
  }

  [[nodiscard]] bool snapshot_in_arrival_order() const override {
    return false;  // swap-remove pops permute the pool
  }

 private:
  Xoshiro256StarStar rng_;
  std::vector<QueuedRequest> pool_;
};

/// FR-FCFS with the O(queue) row-hit scan over an arrival-order vector.
class ReferenceFrFcfsArbiter final : public ArbitrationPolicy {
 public:
  ReferenceFrFcfsArbiter(std::uint32_t num_channels, std::uint32_t row_pages)
      : row_pages_(row_pages), open_rows_(num_channels, kNoRow) {
    HBMSIM_CHECK(num_channels > 0, "FR-FCFS needs at least one channel");
    HBMSIM_CHECK(row_pages > 0, "FR-FCFS needs a positive row size");
  }

  void enqueue(const QueuedRequest& request) override {
    queue_.push_back(request);  // arrival order
  }

  std::optional<QueuedRequest> pop(std::uint32_t channel) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    HBMSIM_ASSERT(channel < open_rows_.size(), "channel out of range");
    std::size_t pick = 0;
    bool row_hit = false;
    const std::uint64_t open = open_rows_[channel];
    if (open != kNoRow) {
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (row_of(queue_[i].page) == open) {
          pick = i;
          row_hit = true;
          break;  // oldest row hit
        }
      }
    }
    if (!row_hit) {
      pick = 0;  // oldest overall opens a new row
    }
    const QueuedRequest r = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    open_rows_[channel] = row_of(r.page);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return queue_;
  }

 private:
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t row_of(GlobalPage page) const noexcept {
    return page / row_pages_;
  }

  std::uint32_t row_pages_;
  std::vector<std::uint64_t> open_rows_;
  std::vector<QueuedRequest> queue_;
};

/// Adaptive FIFO↔Priority on a flat arrival-order vector: FIFO mode pops
/// the front; Priority mode does a linear scan for the best (rank,
/// arrival) pair. Obviously equivalent to the policy definition — the
/// mode hysteresis is the only logic shared with the production arbiter.
class ReferenceAdaptiveArbiter final : public ArbitrationPolicy {
 public:
  ReferenceAdaptiveArbiter(const PriorityMap* priorities,
                           std::uint32_t high_depth, std::uint32_t low_depth)
      : priorities_(priorities), high_depth_(high_depth),
        low_depth_(low_depth) {
    HBMSIM_CHECK(priorities_ != nullptr,
                 "adaptive arbitration requires a PriorityMap");
  }

  void enqueue(const QueuedRequest& request) override {
    queue_.push_back(request);  // arrival order
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    std::size_t pick = 0;
    if (!fifo_mode_) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        // Strictly-less keeps arrival order among equal ranks (only
        // possible under shared_pages' stale entries).
        if (priorities_->priority_of(queue_[i].thread) <
            priorities_->priority_of(queue_[pick].thread)) {
          pick = i;
        }
      }
    }
    QueuedRequest r = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return queue_;
  }

  void on_epoch(std::size_t queue_depth) override {
    if (queue_depth >= high_depth_) {
      fifo_mode_ = false;
    } else if (queue_depth <= low_depth_) {
      fifo_mode_ = true;
    }
  }

 private:
  const PriorityMap* priorities_;
  std::uint32_t high_depth_;
  std::uint32_t low_depth_;
  bool fifo_mode_ = true;
  std::vector<QueuedRequest> queue_;
};

[[nodiscard]] std::vector<QueuedRequest> sorted(
    std::vector<QueuedRequest> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const QueuedRequest& a, const QueuedRequest& b) {
              if (a.page != b.page) {
                return a.page < b.page;
              }
              if (a.thread != b.thread) {
                return a.thread < b.thread;
              }
              return a.enqueue_tick < b.enqueue_tick;
            });
  return entries;
}

}  // namespace

std::unique_ptr<ArbitrationPolicy> make_reference_arbiter(
    ArbitrationKind kind, const PriorityMap* priorities, std::uint64_t seed,
    std::uint32_t num_channels, std::uint32_t row_pages,
    std::uint32_t adaptive_high, std::uint32_t adaptive_low) {
  switch (kind) {
    case ArbitrationKind::kFifo:
      return std::make_unique<ReferenceFifoArbiter>();
    case ArbitrationKind::kPriority:
      return std::make_unique<ReferencePriorityArbiter>(priorities);
    case ArbitrationKind::kRandom:
      return std::make_unique<ReferenceRandomArbiter>(seed);
    case ArbitrationKind::kFrFcfs:
      return std::make_unique<ReferenceFrFcfsArbiter>(num_channels, row_pages);
    case ArbitrationKind::kAdaptive:
      return std::make_unique<ReferenceAdaptiveArbiter>(priorities,
                                                        adaptive_high,
                                                        adaptive_low);
  }
  throw ConfigError("unknown arbitration kind");
}

ShadowedArbiter::ShadowedArbiter(std::unique_ptr<ArbitrationPolicy> inner,
                                 std::unique_ptr<ArbitrationPolicy> reference)
    : inner_(std::move(inner)), reference_(std::move(reference)) {
  HBMSIM_CHECK(inner_ != nullptr && reference_ != nullptr,
               "ShadowedArbiter needs both queues");
  HBMSIM_INVARIANT(inner_->empty() && reference_->empty(),
                   "shadowed queues must start empty");
}

void ShadowedArbiter::check_sizes() const {
  HBMSIM_INVARIANT(inner_->size() == reference_->size(),
                   make_context("arbiter divergence: implementation holds ",
                                inner_->size(), " requests, reference holds ",
                                reference_->size()));
}

void ShadowedArbiter::enqueue(const QueuedRequest& request) {
  inner_->enqueue(request);
  reference_->enqueue(request);
  check_sizes();
}

std::optional<QueuedRequest> ShadowedArbiter::pop(std::uint32_t channel) {
  const std::optional<QueuedRequest> got = inner_->pop(channel);
  const std::optional<QueuedRequest> want = reference_->pop(channel);
  HBMSIM_INVARIANT(
      got.has_value() == want.has_value(),
      make_context("arbiter divergence on pop(channel=", channel,
                   "): implementation ", got ? "returned a request" : "ran dry",
                   " while the reference ",
                   want ? "returned a request" : "ran dry"));
  if (got.has_value()) {
    HBMSIM_INVARIANT(
        *got == *want,
        make_context("arbiter divergence on pop(channel=", channel,
                     "): implementation chose page ", got->page, " (core ",
                     got->thread, ", tick ", got->enqueue_tick,
                     ") but the reference chose page ", want->page, " (core ",
                     want->thread, ", tick ", want->enqueue_tick, ")"));
  }
  check_sizes();
  return got;
}

std::size_t ShadowedArbiter::size() const {
  check_sizes();
  return inner_->size();
}

void ShadowedArbiter::on_epoch(std::size_t queue_depth) {
  inner_->on_epoch(queue_depth);
  reference_->on_epoch(queue_depth);
  // A mode switch must neither lose nor reorder requests: both queues
  // preserve arrival order, so the snapshots must still agree exactly.
  HBMSIM_INVARIANT(inner_->snapshot() == reference_->snapshot(),
                   "arbiter divergence: snapshots differ after an epoch");
}

void ShadowedArbiter::on_priorities_changed() {
  inner_->on_priorities_changed();
  reference_->on_priorities_changed();
  // A remap must neither lose nor reorder requests: arrival order is
  // rank-independent, so the snapshots must agree exactly.
  HBMSIM_INVARIANT(inner_->snapshot() == reference_->snapshot(),
                   "arbiter divergence: snapshots differ after a remap");
}

std::vector<QueuedRequest> ShadowedArbiter::snapshot() const {
  std::vector<QueuedRequest> got = inner_->snapshot();
  const std::vector<QueuedRequest> want = reference_->snapshot();
  if (inner_->snapshot_in_arrival_order() &&
      reference_->snapshot_in_arrival_order()) {
    HBMSIM_INVARIANT(got == want,
                     "arbiter divergence: arrival-order snapshots differ");
  } else {
    HBMSIM_INVARIANT(
        sorted(got) == sorted(want),
        "arbiter divergence: queues hold different request multisets");
  }
  return got;
}

bool ShadowedArbiter::snapshot_in_arrival_order() const {
  return inner_->snapshot_in_arrival_order();
}

}  // namespace hbmsim::check
