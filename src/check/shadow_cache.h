// ShadowedCache: a CacheModel decorator that re-derives what a correct
// residency model must do and throws InvariantError on any divergence.
//
// The shadow is deliberately naive (std::map + std::list) so that it is
// obviously correct; the real models are the optimised structures under
// audit. Checked invariants, per operation:
//
//   contains  result agrees with shadow membership.
//   touch     page must be resident (serving a non-resident page would
//             violate tick step 4).
//   insert    page must not already be resident (double fetch);
//             an eviction happens iff the model is full — except under
//             ShadowPolicy::kDirectMapped, where a conflict eviction may
//             happen below capacity;
//             the reported victim was resident and is resident no more;
//             under kLru/kFifo the victim is exactly the shadow's
//             least-recent / first-in page (the LRU stack property);
//             occupancy never exceeds capacity.
//
// The Simulator wraps its cache in a ShadowedCache when
// SimConfig::paranoid is set in a checked build (see check.h). Tests
// construct it directly, which works in every build type.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/hbm_cache.h"
#include "core/types.h"

namespace hbmsim::check {

/// Which eviction law the shadow enforces on top of the structural checks.
enum class ShadowPolicy {
  kMembershipOnly,  ///< membership + occupancy only (CLOCK, custom models)
  kLru,             ///< victim must be the least recently used page
  kFifo,            ///< victim must be the first inserted page
  kDirectMapped,    ///< conflict evictions below capacity are legal
};

/// The strongest ShadowPolicy that is sound for `cache`: the eviction law
/// of an HbmCache's replacement kind, conflict-tolerant checking for a
/// DirectMappedCache, membership-only for unknown custom models.
[[nodiscard]] ShadowPolicy shadow_policy_for(const CacheModel& cache) noexcept;

class ShadowedCache final : public CacheModel {
 public:
  ShadowedCache(std::unique_ptr<CacheModel> inner, ShadowPolicy policy);

  [[nodiscard]] bool contains(GlobalPage page) const override;
  void touch(GlobalPage page) override;
  std::optional<GlobalPage> insert(GlobalPage page) override;

  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::uint64_t capacity() const override;
  [[nodiscard]] std::uint64_t evictions() const override;
  [[nodiscard]] std::vector<GlobalPage> resident_pages() const override;

  [[nodiscard]] const CacheModel& inner() const noexcept { return *inner_; }

  /// The ShadowPolicy matching a ReplacementKind (CLOCK's second-chance
  /// scan is an approximation, so it gets membership checks only).
  [[nodiscard]] static ShadowPolicy policy_for(ReplacementKind kind) noexcept;

 private:
  /// Cross-check shadow membership and occupancy against the inner model.
  void audit_occupancy() const;

  std::unique_ptr<CacheModel> inner_;
  ShadowPolicy policy_;
  /// Recency/insertion order, front = next victim under kLru/kFifo.
  std::list<GlobalPage> order_;
  std::map<GlobalPage, std::list<GlobalPage>::iterator> position_;
};

}  // namespace hbmsim::check
