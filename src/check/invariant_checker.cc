#include "check/invariant_checker.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "assoc/direct_mapped.h"
#include "check/check.h"
#include "core/hbm_cache.h"
#include "core/simulator.h"
#include "opt/lower_bound.h"
#include "trace/trace.h"
#include "trace/trace_cursor.h"

namespace hbmsim::check {

void audit_cache_structure(const CacheModel& cache) {
  HBMSIM_INVARIANT(cache.size() <= cache.capacity(),
                   make_context("cache occupancy ", cache.size(),
                                " exceeds capacity k=", cache.capacity()));

  const std::vector<GlobalPage> residents = cache.resident_pages();
  HBMSIM_INVARIANT(residents.size() == cache.size(),
                   make_context("cache reports size ", cache.size(), " but ",
                                residents.size(), " resident pages"));
  for (const GlobalPage page : residents) {
    HBMSIM_INVARIANT(cache.contains(page),
                     make_context("resident page ", page,
                                  " fails its own contains() lookup"));
  }

  std::vector<GlobalPage> sorted = residents;
  std::sort(sorted.begin(), sorted.end());
  HBMSIM_INVARIANT(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "a page is resident in two cache slots at once");

  // Direct-mapped model: residency must respect the set mapping — two
  // resident pages may never share a slot (each page can only live in
  // slot_of(page), and contains() above already pinned each to its own).
  if (const auto* dm = dynamic_cast<const assoc::DirectMappedCache*>(&cache)) {
    std::vector<std::uint64_t> slots;
    slots.reserve(residents.size());
    for (const GlobalPage page : residents) {
      slots.push_back(dm->slot_of(page));
    }
    std::sort(slots.begin(), slots.end());
    HBMSIM_INVARIANT(
        std::adjacent_find(slots.begin(), slots.end()) == slots.end(),
        "two resident pages map to the same direct-mapped slot");
  }
}

void audit_queue_order(std::span<const QueuedRequest> entries) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const QueuedRequest& prev = entries[i - 1];
    const QueuedRequest& cur = entries[i];
    HBMSIM_INVARIANT(
        prev.enqueue_tick <= cur.enqueue_tick,
        make_context("queue arrival order not tick-monotone: tick ",
                     prev.enqueue_tick, " entry precedes tick ",
                     cur.enqueue_tick, " entry"));
    if (prev.enqueue_tick == cur.enqueue_tick) {
      HBMSIM_INVARIANT(
          prev.thread < cur.thread,
          make_context("same-tick misses out of core-id order: core ",
                       prev.thread, " queued before core ", cur.thread,
                       " at tick ", cur.enqueue_tick));
    }
  }
}

void audit_fast_forward(Tick from, Tick to, std::optional<Tick> next_serve_tick,
                        std::uint64_t remap_period, std::size_t runnable_cores,
                        std::size_t queued_requests,
                        std::optional<Tick> arrival_horizon) {
  HBMSIM_INVARIANT(to > from, make_context("fast-forward does not advance: ",
                                           from, " -> ", to));
  HBMSIM_INVARIANT(runnable_cores == 0,
                   make_context("fast-forward from tick ", from, " with ",
                                runnable_cores, " runnable cores"));
  HBMSIM_INVARIANT(queued_requests == 0,
                   make_context("fast-forward from tick ", from, " with ",
                                queued_requests,
                                " DRAM requests queued (a queued request "
                                "fetches every tick)"));
  HBMSIM_INVARIANT(next_serve_tick.has_value(),
                   make_context("fast-forward from tick ", from,
                                " with no transfer in flight — the span is a "
                                "deadlock, not idle time"));
  HBMSIM_INVARIANT(to <= *next_serve_tick,
                   make_context("fast-forward to tick ", to,
                                " jumps past the next arrival at tick ",
                                *next_serve_tick));
  if (remap_period != 0) {
    HBMSIM_INVARIANT(from % remap_period != 0,
                     make_context("fast-forward skips the remap boundary at "
                                  "its own origin tick ",
                                  from));
    const Tick boundary = (from / remap_period + 1) * remap_period;
    HBMSIM_INVARIANT(to <= boundary,
                     make_context("fast-forward to tick ", to,
                                  " jumps past the remap boundary at tick ",
                                  boundary));
  }
  if (arrival_horizon.has_value()) {
    HBMSIM_INVARIANT(to <= *arrival_horizon,
                     make_context("fast-forward to tick ", to,
                                  " jumps past the arrival horizon at tick ",
                                  *arrival_horizon,
                                  " — the serving driver may inject there"));
  }
}

void audit_arrival_conservation(std::uint64_t arrivals,
                                std::uint64_t in_service,
                                std::uint64_t pending, std::uint64_t completed,
                                std::uint64_t rejected) {
  HBMSIM_INVARIANT(
      arrivals == in_service + pending + completed + rejected,
      make_context("arrival conservation broken: ", arrivals,
                   " arrivals != ", in_service, " in service + ", pending,
                   " pending + ", completed, " completed + ", rejected,
                   " rejected — a request was lost or double-counted"));
}

InvariantChecker::InvariantChecker(const Simulator& sim) : sim_(sim) {}

void InvariantChecker::on_fast_forward(Tick from, Tick to) {
  audit_fast_forward(
      from, to,
      sim_.in_flight_.empty()
          ? std::optional<Tick>{}
          : std::optional<Tick>{sim_.in_flight_.front().serve_tick},
      sim_.config_.remap_period, sim_.runnable_now_.count(), sim_.queue_size(),
      sim_.config_.open_system ? std::optional<Tick>{sim_.arrival_horizon_}
                               : std::nullopt);
  ++fast_forwards_audited_;
}

void InvariantChecker::audit_thread_states() {
  const std::size_t p = sim_.state_.size();
  std::size_t issuing = 0;
  std::size_t waiting = 0;
  std::size_t fetched = 0;
  std::size_t done = 0;
  std::uint64_t served_refs = 0;
  for (std::size_t t = 0; t < p; ++t) {
    const TraceCursor& cursor = *sim_.cursors_[t];
    HBMSIM_INVARIANT(cursor.pos() <= cursor.size(),
                     make_context("core ", t, " served ", cursor.pos(),
                                  " refs of a trace of length ",
                                  cursor.size()));
    const bool trace_exhausted = cursor.exhausted();
    HBMSIM_INVARIANT(
        (sim_.state_[t] == Simulator::ThreadState::kDone) == trace_exhausted,
        make_context("core ", t, " state/trace mismatch: served ",
                     cursor.pos(), "/", cursor.size(), " refs but is ",
                     trace_exhausted ? "not " : "", "done"));
    if (!trace_exhausted) {
      HBMSIM_INVARIANT(
          sim_.current_[t] == cursor.current(),
          make_context("core ", t, " cached current page ", sim_.current_[t],
                       " disagrees with its cursor's ", cursor.current()));
    }
    served_refs += cursor.pos();
    switch (sim_.state_[t]) {
      case Simulator::ThreadState::kIssuing: ++issuing; break;
      case Simulator::ThreadState::kWaiting: ++waiting; break;
      case Simulator::ThreadState::kFetched: ++fetched; break;
      case Simulator::ThreadState::kDone: ++done; break;
    }
  }
  HBMSIM_INVARIANT(issuing + waiting + fetched + done == p,
                   make_context("thread-state conservation broken: ", issuing,
                                " issuing + ", waiting, " waiting + ", fetched,
                                " fetched + ", done, " done != p=", p));
  HBMSIM_INVARIANT(done == sim_.done_threads_,
                   make_context("done-thread counter ", sim_.done_threads_,
                                " disagrees with ", done, " kDone states"));
  // Open-system runs retire whole traces and reset next_ref on
  // injection; the retired total keeps the ledger balanced.
  HBMSIM_INVARIANT(
      sim_.retired_refs_ + served_refs == sim_.metrics_.response.count(),
      make_context("reference conservation broken: ", sim_.retired_refs_,
                   " retired + ", served_refs,
                   " refs served by threads but ",
                   sim_.metrics_.response.count(), " response samples"));

  // The runnable set holds exactly the issuing and fetched threads (a
  // bitmap is duplicate-free and id-ordered by construction, so only
  // membership needs auditing).
  HBMSIM_INVARIANT(sim_.runnable_now_.count() == issuing + fetched,
                   make_context("runnable set has ",
                                sim_.runnable_now_.count(), " cores but ",
                                issuing + fetched, " are issuing/fetched"));
  sim_.runnable_now_.for_each([&](std::size_t t) {
    HBMSIM_INVARIANT(t < p, "runnable-set core id out of range");
    const auto state = sim_.state_[t];
    HBMSIM_INVARIANT(state == Simulator::ThreadState::kIssuing ||
                         state == Simulator::ThreadState::kFetched,
                     make_context("core ", t,
                                  " in the runnable set is neither issuing "
                                  "nor fetched"));
  });
}

void InvariantChecker::audit_metrics() {
  const RunMetrics& m = sim_.metrics_;
  HBMSIM_INVARIANT(m.hits + m.misses == m.total_refs,
                   make_context("hits ", m.hits, " + misses ", m.misses,
                                " != total refs ", m.total_refs));
  HBMSIM_INVARIANT(m.fetches <= m.misses + m.requeues,
                   make_context("fetches ", m.fetches, " exceed misses ",
                                m.misses, " + requeues ", m.requeues));
  HBMSIM_INVARIANT(m.fetches >= last_fetches_,
                   "fetch counter went backwards");
  const std::uint64_t fetched_this_tick = m.fetches - last_fetches_;
  HBMSIM_INVARIANT(
      fetched_this_tick <= sim_.config_.num_channels,
      make_context(fetched_this_tick, " fetches in one tick exceed the q=",
                   sim_.config_.num_channels, " far channels"));
  last_fetches_ = m.fetches;
  HBMSIM_INVARIANT(m.skipped_ticks <= m.idle_ticks,
                   make_context("fast-forwarded ", m.skipped_ticks,
                                " ticks but only ", m.idle_ticks,
                                " ticks were idle"));
  HBMSIM_INVARIANT(sim_.tick_ <= sim_.config_.max_ticks,
                   "tick counter exceeded max_ticks");
}

void InvariantChecker::audit_queues() {
  const std::size_t p = sim_.state_.size();
  const bool shared = sim_.config_.shared_pages;
  std::vector<std::uint8_t> queued(p, 0);
  std::size_t queued_waiting = 0;

  for (const auto& queue : sim_.queues_) {
    const std::vector<QueuedRequest> entries = queue->snapshot();
    for (const QueuedRequest& entry : entries) {
      HBMSIM_INVARIANT(entry.thread < p,
                       make_context("queued core id ", entry.thread,
                                    " out of range (p=", p, ")"));
      if (shared) {
        // Shared mode leaves stale duplicates behind by design; only the
        // waiters_ audit below is exact.
        continue;
      }
      HBMSIM_INVARIANT(
          sim_.state_[entry.thread] == Simulator::ThreadState::kWaiting,
          make_context("core ", entry.thread,
                       " is queued for DRAM but not in the waiting state"));
      HBMSIM_INVARIANT(
          entry.page == sim_.current_page(entry.thread),
          make_context("core ", entry.thread,
                       "'s queue entry names a page that is not its "
                       "current request"));
      HBMSIM_INVARIANT(queued[entry.thread] == 0,
                       make_context("core ", entry.thread,
                                    " appears twice in the DRAM queue"));
      queued[entry.thread] = 1;
      ++queued_waiting;
    }
    // Canonical intra-tick order (tick step 2). A re-queued request
    // legally re-enters carrying its original request tick, so the order
    // law only binds while no re-queues have happened.
    if (queue->snapshot_in_arrival_order() && sim_.metrics_.requeues == 0) {
      audit_queue_order(entries);
    }
  }

  std::size_t waiting_total = 0;
  for (std::size_t t = 0; t < p; ++t) {
    if (sim_.state_[t] == Simulator::ThreadState::kWaiting) {
      ++waiting_total;
    }
  }

  if (!shared) {
    // Disjoint model: every waiting core is either queued or blocked on an
    // in-flight transfer — exactly once across both.
    std::vector<std::uint8_t> in_flight_seen(p, 0);
    std::size_t in_flight_waiting = 0;
    for (std::size_t i = 0; i < sim_.in_flight_.size(); ++i) {
      const Simulator::InFlight& flight = sim_.in_flight_[i];
      HBMSIM_INVARIANT(flight.thread < p, "in-flight core id out of range");
      HBMSIM_INVARIANT(
          sim_.state_[flight.thread] == Simulator::ThreadState::kWaiting,
          make_context("core ", flight.thread,
                       " has an in-flight fetch but is not waiting"));
      HBMSIM_INVARIANT(in_flight_seen[flight.thread] == 0,
                       make_context("core ", flight.thread,
                                    " has two fetches in flight"));
      HBMSIM_INVARIANT(queued[flight.thread] == 0,
                       make_context("core ", flight.thread,
                                    " is both queued and in flight"));
      in_flight_seen[flight.thread] = 1;
      ++in_flight_waiting;
    }
    HBMSIM_INVARIANT(
        waiting_total == queued_waiting + in_flight_waiting,
        make_context(waiting_total, " cores wait on DRAM but the queues hold ",
                     queued_waiting, " and ", in_flight_waiting,
                     " are in flight — a request was lost or duplicated"));
  } else {
    // Shared extension: every waiting core is registered as a waiter on
    // its current page, exactly once.
    for (std::size_t t = 0; t < p; ++t) {
      if (sim_.state_[t] != Simulator::ThreadState::kWaiting) {
        continue;
      }
      const GlobalPage page = sim_.current_page(static_cast<ThreadId>(t));
      HBMSIM_INVARIANT(sim_.waiters_.contains(page),
                       make_context("waiting core ", t,
                                    " has no waiter entry for its page"));
      std::size_t count = 0;
      sim_.waiters_.for_each(page, [&](ThreadId w) {
        if (w == static_cast<ThreadId>(t)) {
          ++count;
        }
      });
      HBMSIM_INVARIANT(count == 1,
                       make_context("core ", t, " appears ", count,
                                    " times in its page's waiter list"));
    }
  }
}

void InvariantChecker::audit_in_flight() {
  Tick prev = 0;
  for (std::size_t i = 0; i < sim_.in_flight_.size(); ++i) {
    const Simulator::InFlight& flight = sim_.in_flight_[i];
    HBMSIM_INVARIANT(flight.serve_tick >= prev,
                     "in-flight transfers out of arrival order");
    prev = flight.serve_tick;
    HBMSIM_INVARIANT(!sim_.cache_->contains(flight.page),
                     make_context("in-flight page ", flight.page,
                                  " is already resident"));
    if (sim_.config_.shared_pages) {
      HBMSIM_INVARIANT(sim_.in_flight_pages_.contains(flight.page),
                       "in-flight page missing from the in-flight set");
    }
  }
  if (sim_.config_.shared_pages) {
    HBMSIM_INVARIANT(
        sim_.in_flight_pages_.size() == sim_.in_flight_.size(),
        make_context("in-flight page set tracks ",
                     sim_.in_flight_pages_.size(), " pages but ",
                     sim_.in_flight_.size(), " transfers are in flight"));
  }
}

void InvariantChecker::after_tick() {
  audit_thread_states();
  audit_metrics();
  audit_queues();
  audit_in_flight();
  audit_cache_structure(*sim_.cache_);
  ++ticks_audited_;
}

void InvariantChecker::after_run() {
  const std::size_t p = sim_.state_.size();
  HBMSIM_INVARIANT(sim_.finished(), "after_run on an unfinished simulation");
  HBMSIM_INVARIANT(sim_.in_flight_.empty(),
                   "transfers still in flight after completion");

  std::uint64_t total_trace_refs = 0;
  Tick longest_trace = 0;
  for (std::size_t t = 0; t < p; ++t) {
    HBMSIM_INVARIANT(
        sim_.state_[t] == Simulator::ThreadState::kDone,
        make_context("core ", t, " not done after completion"));
    total_trace_refs += sim_.cursors_[t]->size();
    longest_trace = std::max(longest_trace,
                             static_cast<Tick>(sim_.cursors_[t]->size()));
  }

  const RunMetrics& m = sim_.metrics_;
  HBMSIM_INVARIANT(m.total_refs == total_trace_refs,
                   make_context("issued refs ", m.total_refs,
                                " != total trace refs ", total_trace_refs));
  HBMSIM_INVARIANT(m.response.count() == total_trace_refs,
                   make_context("served refs ", m.response.count(),
                                " != total trace refs ", total_trace_refs));
  HBMSIM_INVARIANT(m.makespan <= sim_.tick_,
                   "makespan exceeds the ticks actually simulated");
  HBMSIM_INVARIANT(total_trace_refs == 0 || m.makespan >= longest_trace,
                   make_context("makespan ", m.makespan,
                                " below the longest trace length ",
                                longest_trace));

  if (!sim_.config_.shared_pages) {
    // Disjoint model: each miss is fetched exactly once, plus one extra
    // fetch per re-queue.
    HBMSIM_INVARIANT(m.fetches == m.misses + m.requeues,
                     make_context("fetches ", m.fetches, " != misses ",
                                  m.misses, " + requeues ", m.requeues));
    // All queues drained (shared mode may leave stale entries behind).
    HBMSIM_INVARIANT(sim_.queue_size() == 0,
                     "DRAM queue not empty after completion");

    // Offline lower bounds (Belady's MIN per core; §2): no run may beat
    // the critical path or the channel-congestion bound. Belady needs
    // random access, so streamed traces are re-materialized here — an
    // offline audit, deliberately outside the resident-memory budget the
    // streaming layer protects.
    std::vector<std::shared_ptr<const Trace>> traces;
    traces.reserve(p);
    for (std::size_t t = 0; t < p; ++t) {
      traces.push_back(
          std::make_shared<Trace>(materialize(*sim_.cursors_[t])));
    }
    const opt::MakespanBounds bounds = opt::makespan_lower_bounds(
        Workload(std::move(traces)), sim_.cache_->capacity(),
        sim_.config_.num_channels);
    HBMSIM_INVARIANT(
        bounds.critical_path <= m.makespan,
        make_context("Belady critical-path lower bound ", bounds.critical_path,
                     " exceeds the achieved makespan ", m.makespan));
    HBMSIM_INVARIANT(
        bounds.channel_congestion <= m.makespan,
        make_context("channel-congestion lower bound ",
                     bounds.channel_congestion,
                     " exceeds the achieved makespan ", m.makespan));
  }
}

}  // namespace hbmsim::check
