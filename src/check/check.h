// Invariant-checking primitives for hbmsim's correctness-tooling layer.
//
// Three tiers of runtime checking (see DESIGN.md §7):
//
//   HBMSIM_CHECK      always on; user input / external data (util/error.h).
//   HBMSIM_DCHECK     model invariants on hot paths; active in debug and
//                     checked builds (HBMSIM_CHECKS_ENABLED), compiles to
//                     nothing otherwise. Throws InvariantError.
//   HBMSIM_INVARIANT  always compiled; used inside the audit machinery
//                     (ShadowedCache, InvariantChecker), whose
//                     *instantiation* is what checked builds gate. This
//                     keeps every invariant directly testable from gtest
//                     regardless of build type.
//
// A "checked build" is either a Debug build or any build configured with
// -DHBMSIM_CHECKED=ON, which defines HBMSIM_CHECKED for the whole project.
// SimConfig::paranoid then hooks the InvariantChecker into every
// Simulator::step(); in non-checked builds the hook does not exist and
// paranoid configs are rejected with ConfigError, so Release binaries pay
// nothing (see tests/check_test.cc for the compile-out proof).
#pragma once

#include <source_location>
#include <sstream>
#include <string>
#include <string_view>

#include "util/error.h"

namespace hbmsim {

/// Thrown when a model invariant does not hold: the simulator's internal
/// state (or a cache/queue structure under audit) contradicts §3.1's tick
/// semantics. Always indicates a bug in hbmsim, never bad user input.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what)
      : Error("invariant violation: " + what) {}
};

namespace check {

/// True when HBMSIM_DCHECK is active and SimConfig::paranoid is honoured.
[[nodiscard]] constexpr bool checks_enabled() noexcept {
  return HBMSIM_CHECKS_ENABLED != 0;
}

namespace detail {

[[noreturn]] inline void fail_invariant(std::string_view expr,
                                        std::string_view context,
                                        std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": " << expr;
  if (!context.empty()) {
    os << " — " << context;
  }
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace check

/// Always-compiled invariant check used by the audit machinery itself.
/// `msg` may be any expression convertible to std::string_view or
/// streamable via make_context(); it is evaluated only on failure.
#define HBMSIM_INVARIANT(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::hbmsim::check::detail::fail_invariant(                        \
          #cond, (msg), std::source_location::current());             \
    }                                                                 \
  } while (false)

/// Hot-path model-invariant check: active in debug/checked builds, a
/// no-op otherwise. Unlike HBMSIM_ASSERT it throws InvariantError, which
/// the checked-build tooling (and tests) distinguish from config errors.
#if HBMSIM_CHECKS_ENABLED
#define HBMSIM_DCHECK(cond, msg) HBMSIM_INVARIANT(cond, msg)
#else
#define HBMSIM_DCHECK(cond, msg) ((void)0)
#endif

namespace check {

/// Build a failure-context string from heterogeneous parts:
///   make_context("occupancy ", size, " exceeds k=", k)
/// Only called on the failure path, so the stream cost never matters.
template <typename... Parts>
[[nodiscard]] std::string make_context(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace check
}  // namespace hbmsim
