// Tick-level audit of the simulator's model invariants (§3.1 semantics).
//
// The InvariantChecker re-verifies, after every tick, everything the
// model promises (DESIGN.md §7 maps each item to the paper's numbered
// tick steps):
//
//   step 2    every waiting core appears exactly once in the DRAM queue
//             (disjoint model), and same-tick misses entered in core-id
//             order (the canonical intra-tick order).
//   step 3/5  at most q fetches were issued this tick; occupancy never
//             exceeds k; direct-mapped residency respects the set
//             mapping.
//   step 4    serves only touch resident pages (enforced by
//             ShadowedCache).
//   global    thread-state conservation (issuing + waiting + fetched +
//             done == p), reference conservation (served + remaining ==
//             trace length), metric consistency (hits + misses == refs),
//             and — at end of run — the offline Belady lower bounds
//             never exceed the achieved makespan.
//
// Wired into Simulator::step()/run() by SimConfig::paranoid in checked
// builds (HBMSIM_CHECKS_ENABLED). The free audit functions are pure and
// always compiled, so tests can drive each invariant — positively and
// negatively — in any build type.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/arbitration.h"
#include "core/types.h"

namespace hbmsim {

class CacheModel;
class Simulator;

namespace check {

/// Structural audit of any residency model: occupancy within capacity,
/// resident set consistent with contains(), duplicate-free, and (for
/// DirectMappedCache) every page in the slot its hash maps it to.
/// Throws InvariantError on violation.
void audit_cache_structure(const CacheModel& cache);

/// Audit one queue snapshot for the canonical intra-tick order: arrival
/// order must be non-decreasing in enqueue tick, and same-tick entries
/// must be in strictly increasing core-id order. Only meaningful when the
/// snapshot preserves arrival order and no re-queues occurred (a re-queue
/// legally re-enters with its original request tick, out of order).
/// Throws InvariantError on violation.
void audit_queue_order(std::span<const QueuedRequest> entries);

/// Audit one fast/event-engine jump over [from, to): the span is legal
/// only if it provably contains no event — it must advance (to > from),
/// no core may be runnable and no request queued at the origin, a
/// transfer must be in flight (otherwise the span is a deadlock, not
/// idle time) and must not arrive before `to`, (remap_period != 0) the
/// span must neither start on a remap boundary nor jump past the next
/// one, and (open systems) it must not jump past `arrival_horizon` —
/// the first tick at which the serving driver may inject an arrival.
/// Throws InvariantError on violation.
void audit_fast_forward(Tick from, Tick to, std::optional<Tick> next_serve_tick,
                        std::uint64_t remap_period, std::size_t runnable_cores,
                        std::size_t queued_requests,
                        std::optional<Tick> arrival_horizon = std::nullopt);

/// Open-system arrival conservation: every request a serving frontend has
/// generated must be in exactly one state — being served by a worker,
/// queued pending admission, completed, or rejected at admission.
/// Throws InvariantError on violation.
void audit_arrival_conservation(std::uint64_t arrivals,
                                std::uint64_t in_service, std::uint64_t pending,
                                std::uint64_t completed, std::uint64_t rejected);

/// Whole-state audit hooks bound to a live Simulator (friend access).
class InvariantChecker {
 public:
  explicit InvariantChecker(const Simulator& sim);

  /// Full audit at the end of Simulator::step() — O(p + k + queue).
  void after_tick();

  /// End-of-run audit: completion, conservation totals, and the Belady
  /// makespan lower bounds (critical path and channel congestion).
  void after_run();

  /// Fast-engine hook: called by Simulator::fast_forward_idle() with the
  /// span about to be skipped, before tick_ jumps. Re-derives the span's
  /// idleness from the simulator state via audit_fast_forward().
  void on_fast_forward(Tick from, Tick to);

  /// Ticks audited so far (tests).
  [[nodiscard]] std::uint64_t ticks_audited() const noexcept {
    return ticks_audited_;
  }

  /// Fast-forward jumps audited so far (tests).
  [[nodiscard]] std::uint64_t fast_forwards_audited() const noexcept {
    return fast_forwards_audited_;
  }

 private:
  void audit_thread_states();
  void audit_metrics();
  void audit_queues();
  void audit_in_flight();

  const Simulator& sim_;
  std::uint64_t last_fetches_ = 0;
  std::uint64_t ticks_audited_ = 0;
  std::uint64_t fast_forwards_audited_ = 0;
};

}  // namespace check
}  // namespace hbmsim
