// ShadowedArbiter: an ArbitrationPolicy decorator that drives the
// pre-optimisation reference arbiter lock-step with the production one
// and throws InvariantError on the first divergence.
//
// The reference implementations (make_reference_arbiter) are the exact
// structures the bucketed/pooled arbiters replaced — std::map keyed by
// (rank, seq) for Priority, std::deque for FIFO, a linear row-hit scan
// for FR-FCFS, the seeded swap-remove pool for Random. They are kept
// here as an executable specification: obviously correct, allocation-
// heavy, and never on the hot path.
//
// Checked per operation:
//   pop       both sides return the same request (or both run dry).
//   size      both sides agree after every mutation.
//   snapshot  identical sequences when both sides preserve arrival
//             order; identical multisets otherwise (Random).
//
// The Simulator builds this wrapper for SimConfig::arbiter_impl ==
// kShadow, and upgrades kFast to kShadow under paranoid. Unlike the
// tick-level checker, the wrapper works in every build type — the
// comparisons use HBMSIM_INVARIANT, which is always compiled.
#pragma once

#include <cstdint>
#include <memory>

#include "core/arbitration.h"

namespace hbmsim::check {

/// The original tree/scan arbitration structures, preserved verbatim as
/// the executable spec for the optimised implementations. Same factory
/// contract as ArbitrationPolicy::make.
[[nodiscard]] std::unique_ptr<ArbitrationPolicy> make_reference_arbiter(
    ArbitrationKind kind, const PriorityMap* priorities, std::uint64_t seed,
    std::uint32_t num_channels = 1, std::uint32_t row_pages = 4,
    std::uint32_t adaptive_high = 1, std::uint32_t adaptive_low = 0);

class ShadowedArbiter final : public ArbitrationPolicy {
 public:
  /// Both queues must start empty and see every call through this
  /// wrapper. `inner` is the implementation under test; `reference` the
  /// spec whose answers are authoritative.
  ShadowedArbiter(std::unique_ptr<ArbitrationPolicy> inner,
                  std::unique_ptr<ArbitrationPolicy> reference);

  void enqueue(const QueuedRequest& request) override;
  std::optional<QueuedRequest> pop(std::uint32_t channel) override;
  [[nodiscard]] std::size_t size() const override;
  void on_priorities_changed() override;
  void on_epoch(std::size_t queue_depth) override;
  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override;
  [[nodiscard]] bool snapshot_in_arrival_order() const override;

 private:
  void check_sizes() const;

  std::unique_ptr<ArbitrationPolicy> inner_;
  std::unique_ptr<ArbitrationPolicy> reference_;
};

}  // namespace hbmsim::check
