#include "opt/lower_bound.h"

#include <algorithm>
#include <unordered_map>

#include "opt/belady.h"
#include "util/error.h"

namespace hbmsim::opt {

MakespanBounds makespan_lower_bounds(const Workload& workload, std::uint64_t k,
                                     std::uint32_t q) {
  HBMSIM_CHECK(q > 0, "need at least one channel");
  MakespanBounds bounds;
  std::uint64_t total_min_misses = 0;

  // Distinct traces are often shared across threads (Workload::replicate /
  // round_robin); memoise the Belady pass per trace object. Point lookup
  // only — never iterated, so the pointer-keyed bucket order (which would
  // vary run to run with ASLR) cannot affect the bounds: they accumulate
  // in thread order (hbmlint's unordered-iteration rule keeps it that way).
  std::unordered_map<const Trace*, std::uint64_t> memo;
  for (std::size_t t = 0; t < workload.num_threads(); ++t) {
    const Trace& trace = workload.trace(t);
    if (trace.empty()) {
      continue;
    }
    auto [it, inserted] = memo.try_emplace(&trace, 0);
    if (inserted) {
      it->second = belady_misses(trace, k);
    }
    const std::uint64_t min_misses = it->second;
    total_min_misses += min_misses;
    bounds.critical_path =
        std::max(bounds.critical_path, trace.size() + min_misses);
  }
  bounds.channel_congestion = (total_min_misses + q - 1) / q;
  return bounds;
}

}  // namespace hbmsim::opt
