// Offline makespan lower bounds for the HBM+DRAM model.
//
// Two bounds, both valid for *any* far-channel arbitration and *any*
// replacement policy:
//
//   * critical path — a core serves at most one reference per tick, and
//     each of its misses needs one extra tick; no policy can give core t
//     fewer misses than Belady's MIN with the whole HBM to itself, so
//       makespan ≥ max_t ( refs_t + belady_misses(trace_t, k) ).
//
//   * channel congestion — every miss crosses one of the q far channels,
//     one page per channel per tick, and core t misses at least
//     belady_misses(trace_t, k) times, so
//       makespan ≥ ⌈ Σ_t belady_misses(trace_t, k) / q ⌉.
//
// The ratio policy-makespan / lower-bound is an (upper estimate of the)
// empirical competitive ratio — the quantity Theorems 1-3 bound for
// Priority and Theorem 2 blows up for FCFS. bench/competitive_ratio
// charts it.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace hbmsim::opt {

struct MakespanBounds {
  std::uint64_t critical_path = 0;
  std::uint64_t channel_congestion = 0;

  [[nodiscard]] std::uint64_t lower() const noexcept {
    return critical_path > channel_congestion ? critical_path
                                              : channel_congestion;
  }
};

/// Compute both bounds for `workload` on an HBM of `k` slots with `q`
/// far channels. O(total refs · log k).
[[nodiscard]] MakespanBounds makespan_lower_bounds(const Workload& workload,
                                                   std::uint64_t k,
                                                   std::uint32_t q);

}  // namespace hbmsim::opt
