// Belady's MIN: the offline-optimal replacement policy (evict the page
// whose next use is farthest in the future). For a single reference
// stream no replacement policy misses less, which makes it the anchor for
// offline lower bounds on the model's makespan (lower_bound.h) and for
// the empirical competitive ratios in bench/competitive_ratio.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace hbmsim::opt {

/// Misses of the offline-optimal policy on `trace` with `k` page slots.
[[nodiscard]] std::uint64_t belady_misses(const Trace& trace, std::uint64_t k);

}  // namespace hbmsim::opt
