#include "opt/belady.h"

#include <set>
#include <vector>

#include "util/error.h"

namespace hbmsim::opt {

std::uint64_t belady_misses(const Trace& trace, std::uint64_t k) {
  HBMSIM_CHECK(k > 0, "cache must have at least one slot");
  const auto refs = trace.refs();
  const std::size_t n = refs.size();

  // next_use[i] = next position referencing refs[i], or n if none.
  std::vector<std::size_t> next_use(n);
  std::vector<std::size_t> last_seen(trace.num_pages(), n);
  for (std::size_t i = n; i-- > 0;) {
    next_use[i] = last_seen[refs[i]];
    last_seen[refs[i]] = i;
  }

  // Resident set ordered by next use (descending order ⇒ begin() of the
  // reverse view is the victim). in_cache[page] holds the page's current
  // next-use key so entries can be located for update.
  std::set<std::pair<std::size_t, LocalPage>, std::greater<>> by_next_use;
  std::vector<std::size_t> in_cache(trace.num_pages(), 0);
  std::vector<bool> resident(trace.num_pages(), false);

  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LocalPage page = refs[i];
    if (resident[page]) {
      // Refresh the page's key to its new next use.
      by_next_use.erase({in_cache[page], page});
    } else {
      ++misses;
      if (by_next_use.size() == k) {
        // Evict the resident page used farthest in the future.
        const auto victim = by_next_use.begin();
        resident[victim->second] = false;
        by_next_use.erase(victim);
      }
      resident[page] = true;
    }
    in_cache[page] = next_use[i];
    by_next_use.emplace(next_use[i], page);
  }
  return misses;
}

}  // namespace hbmsim::opt
