#include "opt/predictor/predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exp/json.h"
#include "trace/trace_cursor.h"

namespace hbmsim::opt {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

}  // namespace

WorkloadSummary WorkloadSummary::summarize(const Workload& workload) {
  WorkloadSummary s;
  const std::size_t p = workload.num_threads();
  s.thread_refs.reserve(p);
  s.curve_of.reserve(p);
  // Dedup by source identity: replicate(p) shares one TraceSource, and
  // round_robin cycles a small pool, so the linear scan stays tiny even
  // when p is large.
  std::vector<const TraceSource*> seen;
  for (std::size_t t = 0; t < p; ++t) {
    const std::shared_ptr<const TraceSource>& source = workload.source(t);
    s.thread_refs.push_back(source->size());
    s.total_refs += source->size();
    std::size_t index = seen.size();
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == source.get()) {
        index = i;
        break;
      }
    }
    if (index == seen.size()) {
      seen.push_back(source.get());
      s.curves.push_back(compute_miss_curve(*materialize_shared(*source)));
    }
    s.curve_of.push_back(index);
  }
  return s;
}

bool Prediction::valid() const noexcept { return std::isfinite(makespan); }

Prediction predict(const WorkloadSummary& summary, const SimConfig& config) {
  Prediction out;
  const std::size_t p = summary.num_threads();
  if (p == 0 || summary.total_refs == 0 || config.hbm_slots == 0 ||
      config.num_channels == 0) {
    // Degenerate input: no work or no capacity. NaN (not inf) end to
    // end, so the JSON/CSV renderers emit null / "n/a".
    out.makespan = kNan;
    out.mean_response = kNan;
    out.p50_response = kNan;
    out.p99_response = kNan;
    out.far_utilization = kNan;
    out.miss_ratio = kNan;
    out.queue_wait = kNan;
    return out;
  }

  // Per-thread HBM share: the shared LRU cache splits k evenly across
  // symmetric competitors (validity region: DESIGN.md §9). A share of 0
  // (p > k) predicts full thrash, which is what the simulator shows too.
  const std::uint64_t share = config.hbm_slots / p;

  // Pass 1: per-thread miss volumes from the Mattson curves.
  double total_misses = 0.0;
  double missing_refs = 0.0;  // refs issued by threads that ever miss
  double missing_threads = 0.0;
  for (std::size_t t = 0; t < p; ++t) {
    const double n = static_cast<double>(summary.thread_refs[t]);
    const double m = summary.miss_ratio(t, share);
    if (m > 0.0 && n > 0.0) {
      total_misses += m * n;
      missing_refs += n;
      missing_threads += 1.0;
    }
  }
  const double refs = static_cast<double>(summary.total_refs);
  const double mix = total_misses / refs;  // aggregate miss ratio
  const double fetch = static_cast<double>(config.fetch_ticks);
  const double q = static_cast<double>(config.num_channels);

  // Far-channel queue wait W via approximate MVA (Schweitzer) over a
  // closed network: N customers (the threads that miss at all), each
  // cycling think-time Z — the hits between consecutive misses plus the
  // pipelined transfer — against a q-server station of unit service (a
  // channel pops one request per tick). See DESIGN.md §9 for the mapping
  // onto the §3.1 tick semantics.
  double wait = 0.0;
  if (total_misses > 0.0) {
    const double n_cust = missing_threads;
    const double miss_share = total_misses / missing_refs;
    const double think = fetch + (1.0 - miss_share) / miss_share;
    double queued = 0.0;  // station population estimate
    for (int iter = 0; iter < 256; ++iter) {
      const double seen_ahead = queued * (n_cust - 1.0) / n_cust;
      const double residence =
          1.0 + (1.0 / q) * std::max(0.0, seen_ahead - (q - 1.0));
      const double next = n_cust / (think + residence) * residence;
      const double delta = next - queued;
      queued = next;
      if (std::abs(delta) < 1e-10) {
        break;
      }
    }
    const double seen_ahead = queued * (n_cust - 1.0) / n_cust;
    wait = (1.0 / q) * std::max(0.0, seen_ahead - (q - 1.0));
  }

  // Pass 2: per-thread completion times. A hit costs 1 tick; a miss
  // costs 1 + wait + fetch (issue-to-reissue, §3.1: enqueue at t, pop at
  // t + wait, serve at t + wait + fetch). The channel bound M/q floors
  // the result — q fetches per tick is a hard ceiling.
  double slowest = 0.0;
  for (std::size_t t = 0; t < p; ++t) {
    const double n = static_cast<double>(summary.thread_refs[t]);
    const double m = summary.miss_ratio(t, share);
    slowest = std::max(slowest, n + m * n * (wait + fetch));
  }
  out.makespan = std::max(slowest, total_misses / q);
  out.mean_response = 1.0 + mix * (wait + fetch);
  // Response quantiles from the hit/miss mixture, modelling the queue
  // wait as exponential with mean `wait` (advisory — the error-bound
  // suite pins makespan and mean_response, not the tail shape).
  const auto quantile = [&](double alpha) {
    if (mix <= 0.0 || alpha <= 1.0 - mix) {
      return 1.0;
    }
    const double beta = (alpha - (1.0 - mix)) / mix;
    const double tail = wait > 0.0 ? -wait * std::log(1.0 - beta) : 0.0;
    return 1.0 + fetch + tail;
  };
  out.p50_response = quantile(0.50);
  out.p99_response = quantile(0.99);
  out.far_utilization = std::min(1.0, total_misses / (q * out.makespan));
  out.miss_ratio = mix;
  out.queue_wait = wait;
  return out;
}

std::string to_json(const Prediction& prediction) {
  exp::JsonObject o;
  o.field("makespan", prediction.makespan)
      .field("mean_response", prediction.mean_response)
      .field("p50_response", prediction.p50_response)
      .field("p99_response", prediction.p99_response)
      .field("far_utilization", prediction.far_utilization)
      .field("miss_ratio", prediction.miss_ratio)
      .field("queue_wait", prediction.queue_wait);
  return o.str();
}

AdaptiveThresholds tune_adaptive_thresholds(const WorkloadSummary& summary,
                                            const SimConfig& config) {
  const std::uint32_t q = std::max<std::uint32_t>(1, config.num_channels);
  // Fallback: the SimConfig::adaptive() defaults (4q / q).
  AdaptiveThresholds t{4 * q, q};
  const Prediction pred = predict(summary, config);
  if (!pred.valid() || !(pred.queue_wait > 0.0) || !(pred.makespan > 0.0)) {
    return t;
  }
  // Little's law on the model's own fixed point: steady-state backlog =
  // miss throughput × mean queue wait. Engage Priority when the observed
  // depth runs well above that steady state (the regime where FIFO's
  // Ω(p) competitiveness bites), release once it drains toward the
  // uncontended band.
  const double throughput = pred.miss_ratio *
                            static_cast<double>(summary.total_refs) /
                            pred.makespan;
  const double backlog = throughput * pred.queue_wait;
  // A closed system can never queue more than its missing threads (one
  // outstanding miss each), and near saturation the AMVA backlog sits at
  // that ceiling — a 1.5x margin would then put the mark above every
  // reachable depth and the policy would never engage. Cap at 3/4 of the
  // missing population so saturated phases trip it reliably.
  const std::uint64_t share = config.hbm_slots / summary.num_threads();
  double n_missing = 0.0;
  for (std::size_t i = 0; i < summary.num_threads(); ++i) {
    if (summary.thread_refs[i] > 0 && summary.miss_ratio(i, share) > 0.0) {
      n_missing += 1.0;
    }
  }
  const double cap = std::max(2.0 * q, std::ceil(0.75 * n_missing));
  const double high =
      std::max(2.0 * q, std::min(std::ceil(1.5 * backlog), cap));
  t.high_depth = static_cast<std::uint32_t>(
      std::min(high, 4.0 * 1024.0 * 1024.0 * 1024.0));
  // Half-depth release: a wide band (release near empty) holds Priority
  // mode through light phases and inherits its starvation; a half-band
  // returns to FIFO as soon as the burst is genuinely draining.
  t.low_depth = std::max(q, t.high_depth / 2);
  return t;
}

}  // namespace hbmsim::opt
