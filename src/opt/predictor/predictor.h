// Closed-form performance model (ROADMAP item 5; DESIGN.md §9).
//
// Predicts makespan, response times, and far-channel utilization for a
// (workload, SimConfig) pair without running the simulator, in the
// style of Salkhordeh et al.'s analytical hybrid-memory model (arXiv
// 1903.10067): per-thread miss ratios come from Mattson miss-ratio
// curves (trace/analysis.h) evaluated at each thread's share of the HBM,
// and far-channel queueing delay comes from a Schweitzer-style
// approximate mean-value-analysis fixed point over a closed network of p
// customers and q channel servers. A prediction costs microseconds, so
// design-space sweeps of thousands of points screen in milliseconds —
// the simulator then audits only the interesting frontier (see
// exp/sweep.h's multi-fidelity modes).
//
// The model is deliberately arbitration-blind for throughput: every
// work-conserving policy serves the same fetch count through the same q
// channels, so makespan and mean response agree across FIFO, Priority,
// Random, and FR-FCFS to within the model's own error (the error-bound
// suite in tests/predictor_test.cc pins the tolerance across all of
// them). What arbitration does change — per-thread fairness and tail
// shape under pathological (adversarial/cyclic) footprints — is exactly
// where the model's validity region ends; see DESIGN.md §9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "trace/analysis.h"
#include "trace/trace.h"

namespace hbmsim::opt {

/// Per-workload model inputs, computed once (Mattson analysis is
/// O(n log n) per distinct trace) and reused across every config of a
/// sweep. Distinct traces are deduplicated by source identity, so a
/// replicate(p) workload pays for one curve, not p.
struct WorkloadSummary {
  std::uint64_t total_refs = 0;
  std::vector<std::uint64_t> thread_refs;  ///< n_t per thread
  std::vector<std::size_t> curve_of;       ///< thread → index into curves
  std::vector<MissCurve> curves;           ///< one per distinct trace

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return thread_refs.size();
  }

  /// Thread t's predicted LRU miss ratio with a k-slot cache share.
  [[nodiscard]] double miss_ratio(std::size_t thread,
                                  std::uint64_t k) const noexcept {
    return curves[curve_of[thread]].miss_ratio_at(k);
  }

  /// Build the summary: streaming sources are materialized transiently
  /// for the Mattson pass (cold path; not for p = 1M workloads).
  [[nodiscard]] static WorkloadSummary summarize(const Workload& workload);
};

/// Model outputs, all in ticks (utilization and miss_ratio in [0, 1]).
/// Degenerate inputs — zero threads, zero refs, zero HBM capacity, zero
/// channels — yield NaN throughout, which the JSON/CSV renderers emit as
/// null / "n/a" (never inf): see to_json below and exp::csv_double.
struct Prediction {
  double makespan = 0.0;
  double mean_response = 0.0;
  double p50_response = 0.0;
  double p99_response = 0.0;
  double far_utilization = 0.0;  ///< fetches per channel-tick
  double miss_ratio = 0.0;       ///< aggregate predicted miss ratio
  double queue_wait = 0.0;       ///< mean ticks a miss waits for a channel

  [[nodiscard]] bool valid() const noexcept;
};

/// Evaluate the closed-form model. Allocation-free and O(p): this is the
/// multi-fidelity sweep's inner loop (thousands of calls per screen).
[[nodiscard]] Prediction predict(const WorkloadSummary& summary,
                                 const SimConfig& config);

/// JSON object for a prediction; non-finite fields render as null.
[[nodiscard]] std::string to_json(const Prediction& prediction);

/// Adaptive-arbitration thresholds derived from the predicted
/// steady-state backlog (SimConfig::adaptive_high_depth / low_depth):
/// switch to Priority when the queue runs well above the predicted
/// steady state, back to FIFO once it drains toward the uncontended
/// regime. Falls back to the 4q/q defaults when the model predicts no
/// contention (or is invalid for this input).
struct AdaptiveThresholds {
  std::uint32_t high_depth = 0;
  std::uint32_t low_depth = 0;
};

[[nodiscard]] AdaptiveThresholds tune_adaptive_thresholds(
    const WorkloadSummary& summary, const SimConfig& config);

}  // namespace hbmsim::opt
