// Structured (machine-readable) experiment output: a tiny dependency-free
// JSON object builder plus to_json() serializers for the simulation types.
//
// The emitters are deliberately flat — one JSON object per experiment
// point, one line per object (JSONL) — so campaign outputs stream straight
// into jq / pandas / DuckDB without a schema registry. Non-finite doubles
// (the NaN ratio of a zero-makespan run, an empty stat's ±inf) serialize
// as `null`, never as bare `nan`, so every emitted line stays valid JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/config.h"
#include "core/metrics.h"

namespace hbmsim::exp {

/// Escape a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render a double as a JSON value: shortest round-trip form, or `null`
/// for NaN / ±inf.
[[nodiscard]] std::string json_double(double v);

/// Minimal append-only JSON object builder.
///
///   JsonObject o;
///   o.field("label", point.label).field("makespan", m.makespan);
///   line = o.str();   // {"label":"fig2b p=100","makespan":123}
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, int value);
  JsonObject& field(std::string_view key, unsigned value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Splice a pre-rendered JSON value (object, array, null) verbatim.
  JsonObject& raw_field(std::string_view key, std::string_view json);

  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

/// Serialize the full simulation configuration (every knob that affects
/// the run, plus the derived human-readable policy name).
[[nodiscard]] std::string to_json(const SimConfig& config);

/// Serialize whole-run metrics. Response-time quantiles are included when
/// the histogram was collected; per-thread metrics are summarized by the
/// completion spread (the full vector would dwarf the line at p=200).
[[nodiscard]] std::string to_json(const RunMetrics& metrics);

}  // namespace hbmsim::exp
