#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "core/simulator.h"
#include "exp/json.h"
#include "util/error.h"

namespace hbmsim::exp {

namespace {

PointResult execute_point(const ExpPoint& point) {
  PointResult r;
  r.label = point.label;
  r.config = point.config;
  const auto start = std::chrono::steady_clock::now();
  try {
    if (point.execute) {
      r.metrics = point.execute(r.extra_json);
    } else {
      HBMSIM_CHECK(point.make_workload != nullptr,
                   "experiment point '" + point.label + "' has no workload");
      const Workload workload = point.make_workload();
      if (point.make_cache) {
        Simulator sim(workload, point.config, point.make_cache());
        r.metrics = sim.run();
      } else {
        Simulator sim(workload, point.config);
        r.metrics = sim.run();
      }
    }
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

void print_progress(std::size_t completed, std::size_t total,
                    const PointResult& r) {
  std::string label = r.label;
  if (label.size() > 48) {
    label.resize(48);
  }
  if (r.ok) {
    std::fprintf(stderr, "\r[%zu/%zu] %-48s %6.1f Mticks/s   ", completed,
                 total, label.c_str(), r.ticks_per_second() / 1e6);
  } else {
    std::fprintf(stderr, "\r[%zu/%zu] %-48s FAILED         ", completed, total,
                 label.c_str());
  }
  std::fflush(stderr);
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (const char ch : s) {
    out += ch == '"' ? std::string("\"\"") : std::string(1, ch);
  }
  out += '"';
  return out;
}

std::string csv_double(double v) {
  return std::isfinite(v) ? json_double(v) : std::string("n/a");
}

}  // namespace

ExpPoint::ExpPoint(std::string label_, Workload workload, SimConfig config_)
    : label(std::move(label_)),
      make_workload([w = std::move(workload)] { return w; }),
      config(config_) {}

ExpPoint::ExpPoint(std::string label_, std::function<Workload()> factory,
                   SimConfig config_)
    : label(std::move(label_)),
      make_workload(std::move(factory)),
      config(config_) {}

std::string to_json(const PointResult& r) {
  JsonObject o;
  o.field("label", r.label).field("ok", r.ok);
  if (!r.ok) {
    o.field("error", r.error);
  }
  o.raw_field("config", to_json(r.config));
  if (r.ok) {
    o.raw_field("metrics", to_json(r.metrics));
    if (!r.extra_json.empty()) {
      o.raw_field("extra", r.extra_json);
    }
    o.field("wall_seconds", r.wall_seconds)
        .field("ticks_per_sec", r.ticks_per_second());
  }
  return o.str();
}

std::string csv_header() {
  return "label,ok,error,policy,hbm_slots,num_channels,arbitration,"
         "replacement,channel_binding,remap_scheme,remap_period,fetch_ticks,"
         "seed,shared_pages,makespan,total_refs,hits,misses,evictions,fetches,"
         "remaps,requeues,hit_rate,mean_response,inconsistency,max_response,"
         "completion_spread,response_p50,response_p99,response_p999,"
         "wall_seconds,ticks_per_sec";
}

std::string to_csv_row(const PointResult& r) {
  const SimConfig& c = r.config;
  const RunMetrics& m = r.metrics;
  const bool hist = r.ok && m.response_hist.total() > 0;
  std::string row;
  row += csv_escape(r.label);
  row += r.ok ? ",1," : ",0,";
  row += csv_escape(r.error);
  row += ',' + csv_escape(c.policy_name());
  row += ',' + std::to_string(c.hbm_slots);
  row += ',' + std::to_string(c.num_channels);
  row += ',' + std::string(to_string(c.arbitration));
  row += ',' + std::string(to_string(c.replacement));
  row += ',' + std::string(to_string(c.channel_binding));
  row += ',' + std::string(to_string(c.remap_scheme));
  row += ',' + std::to_string(c.remap_period);
  row += ',' + std::to_string(c.fetch_ticks);
  row += ',' + std::to_string(c.seed);
  row += c.shared_pages ? ",1" : ",0";
  row += ',' + std::to_string(m.makespan);
  row += ',' + std::to_string(m.total_refs);
  row += ',' + std::to_string(m.hits);
  row += ',' + std::to_string(m.misses);
  row += ',' + std::to_string(m.evictions);
  row += ',' + std::to_string(m.fetches);
  row += ',' + std::to_string(m.remaps);
  row += ',' + std::to_string(m.requeues);
  row += ',' + csv_double(m.hit_rate());
  row += ',' + csv_double(m.mean_response());
  row += ',' + csv_double(m.inconsistency());
  row += ',' + std::to_string(m.max_response());
  row += ',' + std::to_string(m.completion_spread());
  row += ',' + (hist ? csv_double(m.response_quantile(0.50)) : std::string("n/a"));
  row += ',' + (hist ? csv_double(m.response_quantile(0.99)) : std::string("n/a"));
  row += ',' + (hist ? csv_double(m.response_quantile(0.999)) : std::string("n/a"));
  row += ',' + csv_double(r.wall_seconds);
  row += ',' + csv_double(r.ticks_per_second());
  return row;
}

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) {
    return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  jobs = std::min(resolve_jobs(jobs), n);
  if (n == 0) {
    return;
  }
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (std::size_t j = 0; j + 1 < jobs; ++j) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<PointResult> run_points(const std::vector<ExpPoint>& points,
                                    const RunnerOptions& opts) {
  std::vector<PointResult> results(points.size());
  std::vector<char> finished(points.size(), 0);
  std::size_t next_emit = 0;
  std::size_t completed = 0;
  std::mutex mu;

  parallel_for(points.size(), opts.jobs, [&](std::size_t i) {
    PointResult r = execute_point(points[i]);
    const std::lock_guard<std::mutex> lock(mu);
    ++completed;
    if (opts.progress) {
      print_progress(completed, points.size(), r);
    }
    results[i] = std::move(r);
    finished[i] = 1;
    // Stream in input order: emit the longest finished prefix.
    while (next_emit < results.size() && finished[next_emit] != 0) {
      if (opts.jsonl != nullptr) {
        *opts.jsonl << to_json(results[next_emit]) << '\n';
      }
      ++next_emit;
    }
  });

  if (opts.progress && !points.empty()) {
    std::fputc('\n', stderr);
  }
  if (opts.jsonl != nullptr) {
    opts.jsonl->flush();
  }
  return results;
}

}  // namespace hbmsim::exp
