// Minimal table builder for experiment output: aligned text for stdout,
// plus CSV and Markdown emitters so bench results can be pasted straight
// into EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hbmsim::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Row builder with streaming cells: tbl.row() << "a" << 1 << 2.5;
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& operator<<(const std::string& cell);
    RowBuilder& operator<<(const char* cell);
    RowBuilder& operator<<(std::uint64_t v);
    RowBuilder& operator<<(std::int64_t v);
    RowBuilder& operator<<(int v);
    RowBuilder& operator<<(unsigned v);
    RowBuilder& operator<<(double v);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Set fixed precision used by the double overload (default 3).
  Table& set_precision(int digits);

  void print_text(std::ostream& os) const;
  void print_markdown(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  /// Convenience: text rendering as a string.
  [[nodiscard]] std::string to_text() const;

 private:
  friend class RowBuilder;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 3;
};

}  // namespace hbmsim::exp
