// The experiment-sweep API shared by the bench binaries and the CLI.
//
// Everything funnels through one engine (exp/runner.h): a SweepSpec
// describes a campaign as named axes (thread counts × HBM sizes ×
// configs), builds the cross product of ExpPoints, and runs them through
// the parallel runner. The historical helpers run_policies() and
// ratio_sweep() are thin wrappers over the same path, so a sweep behaves
// identically — bit-for-bit — whether it runs serially or on N worker
// threads.
//
// Sweeps also carry a fidelity axis (Fidelity / FidelityOptions): `sim`
// simulates every point, `model` evaluates only the closed-form
// predictor (opt/predictor), and `hybrid` screens the full grid with the
// predictor and simulates just the predicted frontier plus a seeded
// audit sample, reporting model-vs-sim error per simulated point.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "exp/runner.h"
#include "opt/predictor/predictor.h"
#include "trace/trace.h"

namespace hbmsim::exp {

/// How each point of a sweep grid is evaluated.
enum class Fidelity {
  kSim,     ///< simulate every point (the historical default)
  kModel,   ///< closed-form predictor only — no simulation at all
  kHybrid,  ///< predictor screens the grid; simulate top-k + audit sample
};

/// Render as "sim" / "model" / "hybrid"; parse_fidelity returns false on
/// an unknown name and leaves `out` untouched.
[[nodiscard]] std::string_view to_string(Fidelity fidelity) noexcept;
[[nodiscard]] bool parse_fidelity(std::string_view name, Fidelity& out) noexcept;

/// Multi-fidelity knobs. The hybrid screen ranks the whole grid by
/// predicted makespan (ascending — the model's "interesting frontier"),
/// simulates the `top_k` best plus `audit` further points sampled
/// uniformly from the rest with a fixed-seed generator. Selection happens
/// on the serial screening pass, so the simulated subset — and therefore
/// every simulated RunMetrics — is identical at any --jobs level.
struct FidelityOptions {
  Fidelity fidelity = Fidelity::kSim;
  std::size_t top_k = 16;  ///< hybrid: simulate the k best predicted points
  std::size_t audit = 8;   ///< hybrid: extra random audit points
  std::uint64_t audit_seed = 0x9e3779b97f4a7c15ull;
};

/// A (thread count → workload) factory, used by thread-count sweeps.
using WorkloadFactory = std::function<Workload(std::size_t num_threads)>;

/// A (k → config) factory: receives the HBM size axis value and must set
/// everything else.
using ConfigFactory = std::function<SimConfig(std::uint64_t hbm_slots)>;

/// Declarative sweep builder. Axes:
///   threads    thread counts p (needs a WorkloadFactory), or absent when
///              a fixed workload is supplied;
///   hbm_sizes  HBM capacities k handed to each config factory, or absent
///              when configs carry their own k;
///   configs    named (k → SimConfig) factories.
/// build() emits the cross product threads × hbm_sizes × configs in that
/// nesting order, labeled "name p=<p> k=<k> <config>"; run() executes it
/// on the shared engine.
///
///   auto results = SweepSpec("fig2b")
///                      .workload(sort_factory)
///                      .threads({1, 10, 25})
///                      .hbm_sizes({1000, 2000})
///                      .config("fifo", [](std::uint64_t k) { return SimConfig::fifo(k); })
///                      .config("priority", [](std::uint64_t k) { return SimConfig::priority(k); })
///                      .run({.jobs = 8});
class SweepSpec {
 public:
  SweepSpec() = default;
  explicit SweepSpec(std::string name) : name_(std::move(name)) {}

  /// Fixed workload for every point (threads axis unused).
  SweepSpec& workload(Workload w);
  /// Per-thread-count workload factory; each p's workload is materialized
  /// once and shared (read-only) by all of that p's points.
  SweepSpec& workload(WorkloadFactory factory);
  SweepSpec& threads(std::vector<std::size_t> thread_counts);
  SweepSpec& hbm_sizes(std::vector<std::uint64_t> sizes);
  SweepSpec& config(std::string name, ConfigFactory factory);
  /// Fixed config (ignores the k axis).
  SweepSpec& config(std::string name, SimConfig fixed);
  /// Evaluation fidelity for run(); defaults to Fidelity::kSim.
  SweepSpec& fidelity(FidelityOptions opts);

  /// Materialize the cross product. Workload factories run here (serially,
  /// once per thread count); simulation happens later, in run_points.
  [[nodiscard]] std::vector<ExpPoint> build() const;

  /// build() + run_points() in one step, honouring the fidelity axis.
  /// Model/hybrid results carry the prediction (and, for simulated hybrid
  /// points, the model-vs-sim error) in PointResult::extra_json.
  [[nodiscard]] std::vector<PointResult> run(const RunnerOptions& opts = {}) const;

  /// Outcome of a model or hybrid run, for callers that need structure
  /// beyond the JSONL extras (the predictor-compare bench, the tests).
  struct FidelityOutcome {
    /// All grid points in input order. Simulated points carry real
    /// RunMetrics; model-only points have ok=true, zero metrics, and the
    /// prediction in extra_json (`"fidelity":"model"`).
    std::vector<PointResult> results;
    /// Indices (into results) of the points that were simulated.
    std::vector<std::size_t> simulated;
    /// The closed-form prediction for every point, in input order.
    std::vector<opt::Prediction> predictions;
    /// Wall-clock seconds spent on the serial screening pass.
    double screen_seconds = 0.0;
  };

  /// Model/hybrid execution path (run() delegates here). Also valid for
  /// Fidelity::kSim, where it simulates everything and predictions stay
  /// attached for comparison.
  [[nodiscard]] FidelityOutcome run_fidelity(const FidelityOptions& fopts,
                                             const RunnerOptions& opts = {}) const;

 private:
  struct NamedConfig {
    std::string name;
    ConfigFactory make;
  };
  std::string name_;
  WorkloadFactory factory_;
  std::vector<std::size_t> thread_counts_;
  std::vector<std::uint64_t> hbm_sizes_;
  std::vector<NamedConfig> configs_;
  FidelityOptions fidelity_;
};

/// One simulated configuration with its outcome.
struct PolicyResult {
  std::string policy;
  SimConfig config;
  RunMetrics metrics;
  double wall_seconds = 0.0;
};

/// Run `workload` under each config; returns results in input order.
/// A failed point rethrows its error (the historical contract); pass the
/// configs through SweepSpec/run_points directly to capture errors
/// per-point instead.
[[nodiscard]] std::vector<PolicyResult> run_policies(
    const Workload& workload, const std::vector<SimConfig>& configs,
    const RunnerOptions& opts = {});

/// The paper's headline ratio: FIFO makespan / Priority makespan
/// (> 1 means Priority wins).
[[nodiscard]] double fifo_over_priority_makespan(const Workload& workload,
                                                 std::uint64_t hbm_slots,
                                                 std::uint32_t channels = 1);

/// One row of a thread-count sweep comparing two configs.
struct RatioPoint {
  std::size_t num_threads = 0;
  std::uint64_t hbm_slots = 0;
  Tick makespan_a = 0;
  Tick makespan_b = 0;
  /// makespan_a / makespan_b; NaN when makespan_b == 0 (an empty or
  /// failed run) — table and JSON writers render NaN as "n/a"/null, so
  /// the sentinel can never be mistaken for a real ratio.
  [[nodiscard]] double ratio() const noexcept {
    return makespan_b == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : static_cast<double>(makespan_a) /
                                 static_cast<double>(makespan_b);
  }
};

/// For each p in `thread_counts` and each k in `hbm_sizes`, simulate the
/// factory's workload under config_a(k) and config_b(k) and record the
/// makespans. `make_config_a/b` receive k and must set everything else.
[[nodiscard]] std::vector<RatioPoint> ratio_sweep(
    const WorkloadFactory& factory, const std::vector<std::size_t>& thread_counts,
    const std::vector<std::uint64_t>& hbm_sizes,
    const ConfigFactory& make_config_a, const ConfigFactory& make_config_b,
    const RunnerOptions& opts = {});

}  // namespace hbmsim::exp
