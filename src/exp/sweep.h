// Experiment-sweep helpers shared by the bench binaries: run a workload
// under several policies, compute the paper's ratio metrics, and name
// points consistently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace hbmsim::exp {

/// One simulated configuration with its outcome.
struct PolicyResult {
  std::string policy;
  SimConfig config;
  RunMetrics metrics;
};

/// Run `workload` under each config; returns results in input order.
[[nodiscard]] std::vector<PolicyResult> run_policies(
    const Workload& workload, const std::vector<SimConfig>& configs);

/// The paper's headline ratio: FIFO makespan / Priority makespan
/// (> 1 means Priority wins).
[[nodiscard]] double fifo_over_priority_makespan(const Workload& workload,
                                                 std::uint64_t hbm_slots,
                                                 std::uint32_t channels = 1);

/// A (thread count → workload) factory, used by thread-count sweeps.
using WorkloadFactory = std::function<Workload(std::size_t num_threads)>;

/// One row of a thread-count sweep comparing two configs.
struct RatioPoint {
  std::size_t num_threads = 0;
  std::uint64_t hbm_slots = 0;
  Tick makespan_a = 0;
  Tick makespan_b = 0;
  [[nodiscard]] double ratio() const noexcept {
    return makespan_b == 0 ? 0.0
                           : static_cast<double>(makespan_a) /
                                 static_cast<double>(makespan_b);
  }
};

/// For each p in `thread_counts` and each k in `hbm_sizes`, simulate the
/// factory's workload under config_a(k) and config_b(k) and record the
/// makespans. `make_config_a/b` receive k and must set everything else.
[[nodiscard]] std::vector<RatioPoint> ratio_sweep(
    const WorkloadFactory& factory, const std::vector<std::size_t>& thread_counts,
    const std::vector<std::uint64_t>& hbm_sizes,
    const std::function<SimConfig(std::uint64_t)>& make_config_a,
    const std::function<SimConfig(std::uint64_t)>& make_config_b);

}  // namespace hbmsim::exp
