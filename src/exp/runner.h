// The parallel experiment runner: executes a campaign of independent,
// named simulation points across N worker threads.
//
// Design contract (tested by tests/runner_test.cc):
//   * Determinism — each point owns its Workload (materialized inside the
//     worker via the point's factory) and its RNG seeds live in SimConfig,
//     so the RunMetrics of every point are bit-identical whether the
//     campaign runs with jobs=1 or jobs=N, in any completion order.
//   * Input order — results[i] always corresponds to points[i], and the
//     optional JSONL stream emits lines in input order (a finished point
//     is held back until every earlier point has been emitted).
//   * Fault isolation — a point whose workload factory or simulation
//     throws reports {label, error} in its result instead of aborting the
//     rest of the campaign.
//
// The engine is deliberately simple: one atomic next-point cursor, no
// task graph. Experiment points are coarse (milliseconds to minutes), so
// self-scheduling on an atomic counter load-balances as well as work
// stealing would, with none of the machinery.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/hbm_cache.h"
#include "core/metrics.h"
#include "trace/trace.h"

namespace hbmsim::exp {

/// One named simulation point: a label for humans and logs, a workload
/// (by value or by factory), and the full configuration.
struct ExpPoint {
  std::string label;
  /// Invoked inside the worker thread; must be safe to call concurrently
  /// with other points' factories (generator functions that only read
  /// their captures qualify).
  std::function<Workload()> make_workload;
  SimConfig config;
  /// Optional custom residency model (e.g. assoc::DirectMappedCache);
  /// when set, SimConfig::hbm_slots / ::replacement are ignored in favour
  /// of the supplied model, mirroring the Simulator constructor overload.
  std::function<std::unique_ptr<CacheModel>()> make_cache;
  /// Custom executor for points whose driver owns the Simulator (the
  /// open-system serving harness). When set it replaces the default
  /// workload→Simulator→run() path: it must run the point to completion
  /// and return the machine-level RunMetrics, and may fill `extra` with a
  /// pre-rendered JSON object to splice into the result line (see
  /// PointResult::extra_json). `make_workload`/`make_cache` are ignored.
  /// The runner's contracts still apply: the executor runs inside a
  /// worker thread and must derive all randomness from the point itself.
  std::function<RunMetrics(std::string& extra)> execute;

  ExpPoint() = default;
  /// Share an already-materialized workload (cheap: traces are shared_ptr).
  ExpPoint(std::string label_, Workload workload, SimConfig config_);
  /// Materialize the workload lazily inside the worker.
  ExpPoint(std::string label_, std::function<Workload()> factory,
           SimConfig config_);
};

/// Outcome of one point. When `ok` is false the simulation never ran to
/// completion and `error` holds the reason; `metrics` is default-zero.
struct PointResult {
  std::string label;
  SimConfig config;
  RunMetrics metrics;
  double wall_seconds = 0.0;
  bool ok = false;
  std::string error;
  /// Pre-rendered JSON object from a custom executor (empty otherwise);
  /// serialized as the "extra" field of the JSONL record. Not part of the
  /// CSV column set — flat columns stay machine-level.
  std::string extra_json;

  /// Simulated-ticks-per-wall-second throughput (0 when unknown).
  [[nodiscard]] double ticks_per_second() const noexcept {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(metrics.makespan) /
                                     wall_seconds;
  }
};

/// Serialize one result as a single JSON object (one JSONL line).
[[nodiscard]] std::string to_json(const PointResult& result);

/// CSV header + row matching to_csv_row's flat column set. Non-finite
/// doubles render as "n/a".
[[nodiscard]] std::string csv_header();
[[nodiscard]] std::string to_csv_row(const PointResult& result);

struct RunnerOptions {
  /// Worker threads. 1 = run serially on the calling thread (the
  /// reference path); 0 = one per hardware thread.
  std::size_t jobs = 1;
  /// Live progress line on stderr: `[12/35] fig2b p=100 k=2000  3.1 Mticks/s`.
  bool progress = false;
  /// When set, every finished point is appended here in input order, one
  /// JSON object per line (JSONL).
  std::ostream* jsonl = nullptr;
};

/// Execute all points and return their results in input order.
[[nodiscard]] std::vector<PointResult> run_points(
    const std::vector<ExpPoint>& points, const RunnerOptions& opts = {});

/// Lower-level building block: invoke fn(0..n-1) across `jobs` threads
/// (jobs<=1 runs inline). The first exception thrown by any invocation is
/// rethrown on the calling thread after all workers join. Used by
/// run_points and by harnesses whose unit of work is not a Simulator run
/// (e.g. the KNL microbenchmark sweeps).
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// Resolve a jobs request: 0 → hardware_concurrency (min 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs);

}  // namespace hbmsim::exp
