#include "exp/json.h"

#include <cmath>
#include <cstdio>

namespace hbmsim::exp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) {
      return shorter;
    }
  }
  return buf;
}

void JsonObject::key(std::string_view k) {
  if (body_.size() > 1) {
    body_ += ',';
  }
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}
JsonObject& JsonObject::field(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, int value) {
  return field(k, static_cast<std::int64_t>(value));
}
JsonObject& JsonObject::field(std::string_view k, unsigned value) {
  return field(k, static_cast<std::uint64_t>(value));
}
JsonObject& JsonObject::field(std::string_view k, double value) {
  key(k);
  body_ += json_double(value);
  return *this;
}
JsonObject& JsonObject::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}
JsonObject& JsonObject::raw_field(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

std::string to_json(const SimConfig& config) {
  JsonObject o;
  o.field("policy", config.policy_name())
      .field("hbm_slots", config.hbm_slots)
      .field("num_channels", config.num_channels)
      .field("arbitration", to_string(config.arbitration))
      .field("replacement", to_string(config.replacement))
      .field("channel_binding", to_string(config.channel_binding))
      .field("remap_scheme", to_string(config.remap_scheme))
      .field("remap_period", config.remap_period)
      .field("fetch_ticks", config.fetch_ticks)
      .field("seed", config.seed)
      .field("shared_pages", config.shared_pages)
      .field("open_system", config.open_system)
      .field("engine", to_string(config.engine));
  if (config.arbitration == ArbitrationKind::kFrFcfs) {
    o.field("row_pages", config.row_pages);
  }
  if (config.arbitration == ArbitrationKind::kAdaptive) {
    o.field("adaptive_high_depth", config.adaptive_high_depth)
        .field("adaptive_low_depth", config.adaptive_low_depth);
  }
  return o.str();
}

std::string to_json(const RunMetrics& m) {
  JsonObject o;
  o.field("makespan", m.makespan)
      .field("total_refs", m.total_refs)
      .field("hits", m.hits)
      .field("misses", m.misses)
      .field("evictions", m.evictions)
      .field("fetches", m.fetches)
      .field("remaps", m.remaps)
      .field("requeues", m.requeues)
      .field("idle_ticks", m.idle_ticks)
      .field("skipped_ticks", m.skipped_ticks)
      .field("truncated", m.truncated)
      .field("hit_rate", m.hit_rate())
      .field("mean_response", m.mean_response())
      .field("inconsistency", m.inconsistency())
      .field("max_response", m.max_response())
      .field("completion_spread", m.completion_spread());
  if (m.response_hist.total() > 0) {
    o.field("response_p50", m.response_quantile(0.50))
        .field("response_p99", m.response_quantile(0.99))
        .field("response_p999", m.response_quantile(0.999));
  }
  return o.str();
}

}  // namespace hbmsim::exp
