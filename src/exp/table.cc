#include "exp/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace hbmsim::exp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HBMSIM_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  HBMSIM_CHECK(cells.size() == headers_.size(),
               "row width does not match header count");
  rows_.push_back(std::move(cells));
  return *this;
}

Table::RowBuilder::~RowBuilder() {
  if (!cells_.empty()) {
    table_.add_row(std::move(cells_));
  }
}

Table::RowBuilder& Table::RowBuilder::operator<<(const std::string& cell) {
  cells_.push_back(cell);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(const char* cell) {
  cells_.emplace_back(cell);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(unsigned v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(double v) {
  // NaN (e.g. a ratio over a zero makespan) must not render as "nan" or
  // "-nan" — a silently-wrong-looking number; "n/a" says what it means.
  if (std::isnan(v)) {
    cells_.emplace_back("n/a");
    return *this;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(table_.precision_) << v;
  cells_.push_back(os.str());
  return *this;
}

Table& Table::set_precision(int digits) {
  precision_ = digits;
  return *this;
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + (c + 1 < widths.size() ? "  " : "");
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::print_markdown(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (const auto& cell : cells) {
      os << ' ' << cell << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "---|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') {
        out += "\"\"";
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string Table::to_text() const {
  std::ostringstream os;
  print_text(os);
  return os.str();
}

}  // namespace hbmsim::exp
