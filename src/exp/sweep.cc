#include "exp/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "exp/json.h"
#include "util/error.h"

namespace hbmsim::exp {

namespace {

/// SplitMix64: the audit sampler. Small, seedable, and ours — the subset
/// must not depend on the standard library's distribution details.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Relative error |model - sim| / sim; NaN when the reference is zero or
/// either side is non-finite (renders as null downstream, never inf).
double rel_error(double model, double sim) {
  if (!std::isfinite(model) || !std::isfinite(sim) || sim == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(model - sim) / sim;
}

}  // namespace

SweepSpec& SweepSpec::workload(Workload w) {
  factory_ = [w = std::move(w)](std::size_t) { return w; };
  return *this;
}

SweepSpec& SweepSpec::workload(WorkloadFactory factory) {
  factory_ = std::move(factory);
  return *this;
}

SweepSpec& SweepSpec::threads(std::vector<std::size_t> thread_counts) {
  thread_counts_ = std::move(thread_counts);
  return *this;
}

SweepSpec& SweepSpec::hbm_sizes(std::vector<std::uint64_t> sizes) {
  hbm_sizes_ = std::move(sizes);
  return *this;
}

SweepSpec& SweepSpec::config(std::string name, ConfigFactory factory) {
  configs_.push_back({std::move(name), std::move(factory)});
  return *this;
}

SweepSpec& SweepSpec::config(std::string name, SimConfig fixed) {
  configs_.push_back({std::move(name), [fixed](std::uint64_t) { return fixed; }});
  return *this;
}

SweepSpec& SweepSpec::fidelity(FidelityOptions opts) {
  fidelity_ = opts;
  return *this;
}

std::string_view to_string(Fidelity fidelity) noexcept {
  switch (fidelity) {
    case Fidelity::kSim: return "sim";
    case Fidelity::kModel: return "model";
    case Fidelity::kHybrid: return "hybrid";
  }
  return "?";
}

bool parse_fidelity(std::string_view name, Fidelity& out) noexcept {
  if (name == "sim") {
    out = Fidelity::kSim;
  } else if (name == "model") {
    out = Fidelity::kModel;
  } else if (name == "hybrid") {
    out = Fidelity::kHybrid;
  } else {
    return false;
  }
  return true;
}

std::vector<ExpPoint> SweepSpec::build() const {
  HBMSIM_CHECK(static_cast<bool>(factory_), "SweepSpec needs a workload");
  HBMSIM_CHECK(!configs_.empty(), "SweepSpec needs at least one config");

  // Absent axes collapse to one unlabeled value. k=0 means "the config
  // factory ignores its argument" (fixed configs).
  const std::vector<std::size_t> threads =
      thread_counts_.empty() ? std::vector<std::size_t>{0} : thread_counts_;
  const std::vector<std::uint64_t> sizes =
      hbm_sizes_.empty() ? std::vector<std::uint64_t>{0} : hbm_sizes_;

  std::vector<ExpPoint> points;
  points.reserve(threads.size() * sizes.size() * configs_.size());
  for (const std::size_t p : threads) {
    // Materialize once per thread count; every (k, config) point of this
    // p shares the workload read-only (traces are shared_ptr, so this
    // costs nothing and keeps generation identical to the serial path).
    const Workload workload = factory_(p);
    for (const std::uint64_t k : sizes) {
      for (const NamedConfig& config : configs_) {
        std::string label = name_;
        if (!thread_counts_.empty()) {
          label += (label.empty() ? "p=" : " p=") + std::to_string(p);
        }
        if (!hbm_sizes_.empty()) {
          label += (label.empty() ? "k=" : " k=") + std::to_string(k);
        }
        label += (label.empty() ? "" : " ") + config.name;
        points.emplace_back(std::move(label), workload, config.make(k));
      }
    }
  }
  return points;
}

std::vector<PointResult> SweepSpec::run(const RunnerOptions& opts) const {
  if (fidelity_.fidelity == Fidelity::kSim) {
    return run_points(build(), opts);
  }
  return run_fidelity(fidelity_, opts).results;
}

SweepSpec::FidelityOutcome SweepSpec::run_fidelity(
    const FidelityOptions& fopts, const RunnerOptions& opts) const {
  FidelityOutcome out;
  std::vector<ExpPoint> points = build();
  const std::size_t n = points.size();

  // Serial screening pass: one Mattson summary per distinct workload
  // (points of one thread count share trace sources, so the cache keys on
  // the first source's identity), then a microsecond predict() per point.
  // Serial on purpose — the hybrid subset selection below must not depend
  // on opts.jobs.
  const auto screen_start = std::chrono::steady_clock::now();
  out.predictions.resize(n);
  const auto empty_summary = std::make_shared<opt::WorkloadSummary>();
  std::unordered_map<const TraceSource*,
                     std::shared_ptr<const opt::WorkloadSummary>>
      summaries;
  for (std::size_t i = 0; i < n; ++i) {
    HBMSIM_CHECK(points[i].make_workload != nullptr,
                 "fidelity sweeps need plain workload points");
    const Workload workload = points[i].make_workload();
    std::shared_ptr<const opt::WorkloadSummary> summary = empty_summary;
    if (workload.num_threads() > 0) {
      auto& slot = summaries[workload.source(0).get()];
      if (slot == nullptr) {
        slot = std::make_shared<opt::WorkloadSummary>(
            opt::WorkloadSummary::summarize(workload));
      }
      summary = slot;
    }
    out.predictions[i] = opt::predict(*summary, points[i].config);
  }
  out.screen_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    screen_start)
          .count();

  // Pick the simulated subset.
  std::vector<char> reason(n, 0);  // 0 = model-only, 1 = frontier, 2 = audit
  if (fopts.fidelity == Fidelity::kSim) {
    std::fill(reason.begin(), reason.end(), 1);
  } else if (fopts.fidelity == Fidelity::kHybrid) {
    // Frontier: the top_k best (lowest) predicted makespans. NaN ranks
    // last; ties break by input order, so the subset is stable.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = i;
    }
    const auto rank = [&](std::size_t i) {
      const double v = out.predictions[i].makespan;
      return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rank(a) < rank(b);
                     });
    const std::size_t frontier = std::min(fopts.top_k, n);
    for (std::size_t i = 0; i < frontier; ++i) {
      reason[order[i]] = 1;
    }
    // Audit: sample uniformly (without replacement) from the rest via a
    // partial Fisher-Yates on the leftover indices.
    std::vector<std::size_t> rest;
    rest.reserve(n - frontier);
    for (std::size_t i = 0; i < n; ++i) {
      if (reason[i] == 0) {
        rest.push_back(i);
      }
    }
    std::uint64_t rng = fopts.audit_seed;
    const std::size_t audits = std::min(fopts.audit, rest.size());
    for (std::size_t i = 0; i < audits; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    splitmix64(rng) % (rest.size() - i));
      std::swap(rest[i], rest[j]);
      reason[rest[i]] = 2;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (reason[i] != 0) {
      out.simulated.push_back(i);
    }
  }

  // Simulate the subset through the shared runner (bit-identical at any
  // --jobs); JSONL is emitted below instead, so every grid point — model
  // and sim alike — lands in the stream in input order with its extras.
  std::vector<ExpPoint> selected;
  selected.reserve(out.simulated.size());
  for (const std::size_t i : out.simulated) {
    selected.push_back(points[i]);
  }
  RunnerOptions inner = opts;
  inner.jsonl = nullptr;
  std::vector<PointResult> simulated = run_points(selected, inner);

  // Merge: simulated points get real metrics plus model-vs-sim error;
  // screened-out points report the prediction alone.
  out.results.resize(n);
  std::size_t next_sim = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const opt::Prediction& pred = out.predictions[i];
    if (reason[i] != 0) {
      out.results[i] = std::move(simulated[next_sim++]);
      JsonObject extra;
      extra.field("fidelity", "sim")
          .field("selected", reason[i] == 1 ? "frontier" : "audit")
          .raw_field("prediction", opt::to_json(pred));
      if (out.results[i].ok) {
        JsonObject err;
        err.field("makespan",
                  rel_error(pred.makespan,
                            static_cast<double>(out.results[i].metrics.makespan)))
            .field("mean_response",
                   rel_error(pred.mean_response,
                             out.results[i].metrics.mean_response()));
        extra.raw_field("model_error", err.str());
      }
      out.results[i].extra_json = extra.str();
    } else {
      PointResult& r = out.results[i];
      r.label = points[i].label;
      r.config = points[i].config;
      r.ok = true;
      JsonObject extra;
      extra.field("fidelity", "model")
          .raw_field("prediction", opt::to_json(pred));
      r.extra_json = extra.str();
    }
    if (opts.jsonl != nullptr) {
      *opts.jsonl << to_json(out.results[i]) << '\n';
    }
  }
  if (opts.jsonl != nullptr) {
    opts.jsonl->flush();
  }
  return out;
}

std::vector<PolicyResult> run_policies(const Workload& workload,
                                       const std::vector<SimConfig>& configs,
                                       const RunnerOptions& opts) {
  std::vector<ExpPoint> points;
  points.reserve(configs.size());
  for (const SimConfig& config : configs) {
    points.emplace_back(config.policy_name(), workload, config);
  }
  const std::vector<PointResult> raw = run_points(points, opts);

  std::vector<PolicyResult> results;
  results.reserve(raw.size());
  for (const PointResult& r : raw) {
    if (!r.ok) {
      throw Error("policy '" + r.label + "' failed: " + r.error);
    }
    results.push_back({r.label, r.config, r.metrics, r.wall_seconds});
  }
  return results;
}

double fifo_over_priority_makespan(const Workload& workload,
                                   std::uint64_t hbm_slots,
                                   std::uint32_t channels) {
  const RunMetrics fifo =
      simulate(workload, SimConfig::fifo(hbm_slots, channels));
  const RunMetrics priority =
      simulate(workload, SimConfig::priority(hbm_slots, channels));
  return priority.makespan == 0
             ? 0.0
             : static_cast<double>(fifo.makespan) /
                   static_cast<double>(priority.makespan);
}

std::vector<RatioPoint> ratio_sweep(
    const WorkloadFactory& factory, const std::vector<std::size_t>& thread_counts,
    const std::vector<std::uint64_t>& hbm_sizes,
    const ConfigFactory& make_config_a, const ConfigFactory& make_config_b,
    const RunnerOptions& opts) {
  const std::vector<PointResult> results =
      SweepSpec()
          .workload(factory)
          .threads(thread_counts)
          .hbm_sizes(hbm_sizes)
          .config("a", make_config_a)
          .config("b", make_config_b)
          .run(opts);

  std::vector<RatioPoint> points;
  points.reserve(results.size() / 2);
  // build() nests configs innermost, so results pair up as (a, b).
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const PointResult& a = results[i];
    const PointResult& b = results[i + 1];
    if (!a.ok) {
      throw Error("sweep point '" + a.label + "' failed: " + a.error);
    }
    if (!b.ok) {
      throw Error("sweep point '" + b.label + "' failed: " + b.error);
    }
    const std::size_t grid = i / 2;
    RatioPoint point;
    point.num_threads = thread_counts[grid / hbm_sizes.size()];
    point.hbm_slots = hbm_sizes[grid % hbm_sizes.size()];
    point.makespan_a = a.metrics.makespan;
    point.makespan_b = b.metrics.makespan;
    points.push_back(point);
  }
  return points;
}

}  // namespace hbmsim::exp
