#include "exp/sweep.h"

namespace hbmsim::exp {

std::vector<PolicyResult> run_policies(const Workload& workload,
                                       const std::vector<SimConfig>& configs) {
  std::vector<PolicyResult> results;
  results.reserve(configs.size());
  for (const SimConfig& config : configs) {
    PolicyResult r;
    r.policy = config.policy_name();
    r.config = config;
    r.metrics = simulate(workload, config);
    results.push_back(std::move(r));
  }
  return results;
}

double fifo_over_priority_makespan(const Workload& workload,
                                   std::uint64_t hbm_slots,
                                   std::uint32_t channels) {
  const RunMetrics fifo =
      simulate(workload, SimConfig::fifo(hbm_slots, channels));
  const RunMetrics priority =
      simulate(workload, SimConfig::priority(hbm_slots, channels));
  return priority.makespan == 0
             ? 0.0
             : static_cast<double>(fifo.makespan) /
                   static_cast<double>(priority.makespan);
}

std::vector<RatioPoint> ratio_sweep(
    const WorkloadFactory& factory, const std::vector<std::size_t>& thread_counts,
    const std::vector<std::uint64_t>& hbm_sizes,
    const std::function<SimConfig(std::uint64_t)>& make_config_a,
    const std::function<SimConfig(std::uint64_t)>& make_config_b) {
  std::vector<RatioPoint> points;
  points.reserve(thread_counts.size() * hbm_sizes.size());
  for (const std::size_t p : thread_counts) {
    const Workload workload = factory(p);
    for (const std::uint64_t k : hbm_sizes) {
      RatioPoint point;
      point.num_threads = p;
      point.hbm_slots = k;
      point.makespan_a = simulate(workload, make_config_a(k)).makespan;
      point.makespan_b = simulate(workload, make_config_b(k)).makespan;
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace hbmsim::exp
