#include "exp/sweep.h"

#include <utility>

#include "util/error.h"

namespace hbmsim::exp {

SweepSpec& SweepSpec::workload(Workload w) {
  factory_ = [w = std::move(w)](std::size_t) { return w; };
  return *this;
}

SweepSpec& SweepSpec::workload(WorkloadFactory factory) {
  factory_ = std::move(factory);
  return *this;
}

SweepSpec& SweepSpec::threads(std::vector<std::size_t> thread_counts) {
  thread_counts_ = std::move(thread_counts);
  return *this;
}

SweepSpec& SweepSpec::hbm_sizes(std::vector<std::uint64_t> sizes) {
  hbm_sizes_ = std::move(sizes);
  return *this;
}

SweepSpec& SweepSpec::config(std::string name, ConfigFactory factory) {
  configs_.push_back({std::move(name), std::move(factory)});
  return *this;
}

SweepSpec& SweepSpec::config(std::string name, SimConfig fixed) {
  configs_.push_back({std::move(name), [fixed](std::uint64_t) { return fixed; }});
  return *this;
}

std::vector<ExpPoint> SweepSpec::build() const {
  HBMSIM_CHECK(static_cast<bool>(factory_), "SweepSpec needs a workload");
  HBMSIM_CHECK(!configs_.empty(), "SweepSpec needs at least one config");

  // Absent axes collapse to one unlabeled value. k=0 means "the config
  // factory ignores its argument" (fixed configs).
  const std::vector<std::size_t> threads =
      thread_counts_.empty() ? std::vector<std::size_t>{0} : thread_counts_;
  const std::vector<std::uint64_t> sizes =
      hbm_sizes_.empty() ? std::vector<std::uint64_t>{0} : hbm_sizes_;

  std::vector<ExpPoint> points;
  points.reserve(threads.size() * sizes.size() * configs_.size());
  for (const std::size_t p : threads) {
    // Materialize once per thread count; every (k, config) point of this
    // p shares the workload read-only (traces are shared_ptr, so this
    // costs nothing and keeps generation identical to the serial path).
    const Workload workload = factory_(p);
    for (const std::uint64_t k : sizes) {
      for (const NamedConfig& config : configs_) {
        std::string label = name_;
        if (!thread_counts_.empty()) {
          label += (label.empty() ? "p=" : " p=") + std::to_string(p);
        }
        if (!hbm_sizes_.empty()) {
          label += (label.empty() ? "k=" : " k=") + std::to_string(k);
        }
        label += (label.empty() ? "" : " ") + config.name;
        points.emplace_back(std::move(label), workload, config.make(k));
      }
    }
  }
  return points;
}

std::vector<PointResult> SweepSpec::run(const RunnerOptions& opts) const {
  return run_points(build(), opts);
}

std::vector<PolicyResult> run_policies(const Workload& workload,
                                       const std::vector<SimConfig>& configs,
                                       const RunnerOptions& opts) {
  std::vector<ExpPoint> points;
  points.reserve(configs.size());
  for (const SimConfig& config : configs) {
    points.emplace_back(config.policy_name(), workload, config);
  }
  const std::vector<PointResult> raw = run_points(points, opts);

  std::vector<PolicyResult> results;
  results.reserve(raw.size());
  for (const PointResult& r : raw) {
    if (!r.ok) {
      throw Error("policy '" + r.label + "' failed: " + r.error);
    }
    results.push_back({r.label, r.config, r.metrics, r.wall_seconds});
  }
  return results;
}

double fifo_over_priority_makespan(const Workload& workload,
                                   std::uint64_t hbm_slots,
                                   std::uint32_t channels) {
  const RunMetrics fifo =
      simulate(workload, SimConfig::fifo(hbm_slots, channels));
  const RunMetrics priority =
      simulate(workload, SimConfig::priority(hbm_slots, channels));
  return priority.makespan == 0
             ? 0.0
             : static_cast<double>(fifo.makespan) /
                   static_cast<double>(priority.makespan);
}

std::vector<RatioPoint> ratio_sweep(
    const WorkloadFactory& factory, const std::vector<std::size_t>& thread_counts,
    const std::vector<std::uint64_t>& hbm_sizes,
    const ConfigFactory& make_config_a, const ConfigFactory& make_config_b,
    const RunnerOptions& opts) {
  const std::vector<PointResult> results =
      SweepSpec()
          .workload(factory)
          .threads(thread_counts)
          .hbm_sizes(hbm_sizes)
          .config("a", make_config_a)
          .config("b", make_config_b)
          .run(opts);

  std::vector<RatioPoint> points;
  points.reserve(results.size() / 2);
  // build() nests configs innermost, so results pair up as (a, b).
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const PointResult& a = results[i];
    const PointResult& b = results[i + 1];
    if (!a.ok) {
      throw Error("sweep point '" + a.label + "' failed: " + a.error);
    }
    if (!b.ok) {
      throw Error("sweep point '" + b.label + "' failed: " + b.error);
    }
    const std::size_t grid = i / 2;
    RatioPoint point;
    point.num_threads = thread_counts[grid / hbm_sizes.size()];
    point.hbm_slots = hbm_sizes[grid % hbm_sizes.size()];
    point.makespan_a = a.metrics.makespan;
    point.makespan_b = b.metrics.makespan;
    points.push_back(point);
  }
  return points;
}

}  // namespace hbmsim::exp
