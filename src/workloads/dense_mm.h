// Dense matrix–matrix multiplication traces — the paper's parameter sweep
// also ran "Dense Matrix Multiplication" sources (§1.2).
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace hbmsim::workloads {

struct DenseMmOptions {
  std::uint32_t n = 128;            ///< multiply two n×n matrices
  bool blocked = false;             ///< tiled variant (better locality)
  std::uint32_t block = 32;         ///< tile edge when blocked
  std::uint64_t seed = 1;
  std::uint64_t page_bytes = 4096;
};

/// Trace C = A·B on random dense matrices; verifies the product against
/// an untraced reference before returning.
[[nodiscard]] Trace make_dense_mm_trace(const DenseMmOptions& opts);

[[nodiscard]] Workload make_dense_mm_workload(std::size_t num_threads,
                                              const DenseMmOptions& opts,
                                              std::size_t distinct = 4);

}  // namespace hbmsim::workloads
