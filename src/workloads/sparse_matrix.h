// CSR sparse matrices: the substrate for the SpGEMM workload (§3.2,
// Dataset 2). Includes a deterministic random-matrix generator matching
// the paper's setup (600×600, ~10% of elements present, random values)
// and an untraced reference multiply used by tests to verify the
// instrumented kernel computes the right product.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace hbmsim::workloads {

/// Compressed sparse row matrix of doubles.
struct CsrMatrix {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint64_t> row_ptr;  // size rows + 1
  std::vector<std::uint32_t> col_idx;  // size nnz, sorted within each row
  std::vector<double> values;          // size nnz

  [[nodiscard]] std::uint64_t nnz() const noexcept { return col_idx.size(); }

  /// Throws hbmsim::Error if the CSR invariants are violated.
  void validate() const;

  /// Dense row-major expansion (tests only; O(rows·cols)).
  [[nodiscard]] std::vector<double> to_dense() const;
};

/// Uniformly random sparse matrix: each entry present independently with
/// probability `density`, values uniform in [0, 1).
[[nodiscard]] CsrMatrix random_csr(std::uint32_t rows, std::uint32_t cols,
                                   double density, std::uint64_t seed);

/// Untraced reference SpGEMM (Gustavson); used to verify the traced
/// kernel's output.
[[nodiscard]] CsrMatrix multiply_reference(const CsrMatrix& a, const CsrMatrix& b);

/// Max absolute elementwise difference between two same-shape matrices.
[[nodiscard]] double max_abs_diff(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace hbmsim::workloads
