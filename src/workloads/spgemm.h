// Dataset 2: TACO-style sparse matrix–matrix multiplication traces
// (§3.2).
//
// "We replaced the arrays used in this code with our own array-like
//  objects that log all accesses to a file. We generate the access traces
//  by running this modified version on two sparse matrices of size 600 by
//  600 where approximately 10% of the elements exist."
//
// The kernel is the Gustavson row-by-row SpGEMM that TACO emits for
// CSR×CSR with a dense workspace: every operand array (row_ptr / col_idx
// / values of A and B), the workspace, its occupancy list, and the output
// arrays are LoggingArrays, so the trace covers all memory traffic of the
// kernel, temporaries included.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/trace.h"
#include "workloads/sparse_matrix.h"

namespace hbmsim::workloads {

struct SpgemmOptions {
  std::uint32_t rows = 600;          ///< paper: 600×600
  std::uint32_t cols = 600;
  double density = 0.10;             ///< paper: ~10% of elements exist
  std::uint64_t seed = 1;
  std::uint64_t page_bytes = 4096;
};

/// Result of a traced SpGEMM run: the page trace plus the product (so
/// callers can verify correctness against multiply_reference).
struct SpgemmRun {
  Trace trace;
  CsrMatrix product;
};

/// Run C = A·B on fresh random matrices per `opts`, tracing all accesses.
[[nodiscard]] SpgemmRun run_traced_spgemm(const SpgemmOptions& opts);

/// Run C = A·B on caller-provided matrices, tracing all accesses.
[[nodiscard]] SpgemmRun run_traced_spgemm(const CsrMatrix& a, const CsrMatrix& b,
                                          std::uint64_t page_bytes = 4096);

/// Trace-only convenience.
[[nodiscard]] Trace make_spgemm_trace(const SpgemmOptions& opts);

/// A p-thread workload: each thread replays an SpGEMM trace generated
/// with different randomness ("same program, different randomness").
/// `distinct` caps how many distinct traces are generated; threads
/// round-robin over them (memory stays bounded as p grows).
[[nodiscard]] Workload make_spgemm_workload(std::size_t num_threads,
                                            const SpgemmOptions& opts,
                                            std::size_t distinct = 8);

}  // namespace hbmsim::workloads
