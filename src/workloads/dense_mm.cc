#include "workloads/dense_mm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "trace/logging_array.h"
#include "trace/page_mapper.h"
#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::workloads {
namespace {

std::vector<double> random_matrix(std::uint32_t n, Xoshiro256StarStar& rng) {
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (auto& x : m) {
    x = rng.uniform_double();
  }
  return m;
}

}  // namespace

Trace make_dense_mm_trace(const DenseMmOptions& opts) {
  HBMSIM_CHECK(opts.n > 0, "matrix dimension must be positive");
  HBMSIM_CHECK(!opts.blocked || opts.block > 0, "block size must be positive");
  const std::uint32_t n = opts.n;
  Xoshiro256StarStar rng(opts.seed);
  const std::vector<double> a_data = random_matrix(n, rng);
  const std::vector<double> b_data = random_matrix(n, rng);

  PageMapper mapper(opts.page_bytes);
  VirtualLayout layout(opts.page_bytes);
  const std::size_t elems = static_cast<std::size_t>(n) * n;
  LoggingArray<double> a(a_data, layout.reserve_for<double>(elems), &mapper);
  LoggingArray<double> b(b_data, layout.reserve_for<double>(elems), &mapper);
  LoggingArray<double> c(elems, layout.reserve_for<double>(elems), &mapper);

  const auto idx = [n](std::uint32_t r, std::uint32_t col) {
    return static_cast<std::size_t>(r) * n + col;
  };

  if (!opts.blocked) {
    // Naive i-k-j loop order (streaming over B rows).
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t k = 0; k < n; ++k) {
        const double av = a.get(idx(i, k));
        for (std::uint32_t j = 0; j < n; ++j) {
          c.add(idx(i, j), av * b.get(idx(k, j)));
        }
      }
    }
  } else {
    const std::uint32_t bs = opts.block;
    for (std::uint32_t ii = 0; ii < n; ii += bs) {
      for (std::uint32_t kk = 0; kk < n; kk += bs) {
        for (std::uint32_t jj = 0; jj < n; jj += bs) {
          const std::uint32_t i_end = std::min(ii + bs, n);
          const std::uint32_t k_end = std::min(kk + bs, n);
          const std::uint32_t j_end = std::min(jj + bs, n);
          for (std::uint32_t i = ii; i < i_end; ++i) {
            for (std::uint32_t k = kk; k < k_end; ++k) {
              const double av = a.get(idx(i, k));
              for (std::uint32_t j = jj; j < j_end; ++j) {
                c.add(idx(i, j), av * b.get(idx(k, j)));
              }
            }
          }
        }
      }
    }
  }

  // Verify against an untraced reference on a sample of entries (full
  // verification is O(n³); sampling keeps generation fast at paper scale).
  for (std::uint32_t probe = 0; probe < std::min<std::uint32_t>(n, 64); ++probe) {
    const std::uint32_t i = static_cast<std::uint32_t>(rng.uniform(n));
    const std::uint32_t j = static_cast<std::uint32_t>(rng.uniform(n));
    double expect = 0.0;
    for (std::uint32_t k = 0; k < n; ++k) {
      expect += a_data[idx(i, k)] * b_data[idx(k, j)];
    }
    HBMSIM_CHECK(std::abs(c.raw()[idx(i, j)] - expect) < 1e-9 * (1.0 + std::abs(expect)),
                 "traced dense MM produced a wrong product");
  }
  return mapper.take_trace();
}

Workload make_dense_mm_workload(std::size_t num_threads, const DenseMmOptions& opts,
                                std::size_t distinct) {
  HBMSIM_CHECK(distinct > 0, "need at least one distinct trace");
  std::vector<std::shared_ptr<const Trace>> pool;
  const std::size_t count = std::min(distinct, num_threads);
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DenseMmOptions o = opts;
    o.seed = opts.seed + i * 0xBF58476D1CE4E5B9ULL;
    pool.push_back(std::make_shared<Trace>(make_dense_mm_trace(o)));
  }
  return Workload::round_robin(std::move(pool), num_threads,
                               opts.blocked ? "dense-mm-blocked" : "dense-mm");
}

}  // namespace hbmsim::workloads
