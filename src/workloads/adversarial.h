// Dataset 3: traces designed to be bad for FIFO (§3.2, Figure 3).
//
// "FIFO performs asymptotically poorly when run on a long sequence of
//  unique pages, repeated many times. We generate the sequence
//  1, 2, 3 ... 256 and repeat it 100 times."
//
// With HBM sized to hold only a fraction (the paper uses ¼) of all unique
// pages across all threads, FIFO never hits — by the time a thread cycles
// back to a page, it has long been evicted — while Priority lets the
// high-priority threads keep their working sets resident and finish.
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "trace/trace_cursor.h"

namespace hbmsim::workloads {

struct AdversarialOptions {
  std::uint32_t unique_pages = 256;  ///< paper: 1..256
  std::uint32_t repetitions = 100;   ///< paper: repeated 100 times
};

/// The cyclic scan trace: 0,1,...,U-1 repeated R times.
[[nodiscard]] Trace make_cyclic_trace(const AdversarialOptions& opts);

/// p threads all running the cyclic scan (disjoint page namespaces).
[[nodiscard]] Workload make_adversarial_workload(std::size_t num_threads,
                                                 const AdversarialOptions& opts = {});

/// Streaming cursor over the cyclic scan: position i references page
/// i mod U — pure arithmetic, no stored trace. The p = 1M scale cases
/// replicate one CyclicSource across all threads: one source object
/// plus p O(1) cursor states, where the materialized equivalent would
/// store U·R references.
class CyclicCursor final : public TraceCursor {
 public:
  explicit CyclicCursor(const AdversarialOptions& opts);

  [[nodiscard]] std::unique_ptr<TraceCursor> clone() const override {
    return std::make_unique<CyclicCursor>(*this);
  }

 protected:
  [[nodiscard]] LocalPage generate() override {
    return static_cast<LocalPage>(pos() % unique_pages_);
  }
  void reset() override {}

 private:
  std::uint32_t unique_pages_;
};

/// TraceSource producing CyclicCursors.
class CyclicSource final : public TraceSource {
 public:
  explicit CyclicSource(const AdversarialOptions& opts);

  [[nodiscard]] std::uint64_t size() const override {
    return static_cast<std::uint64_t>(opts_.unique_pages) * opts_.repetitions;
  }
  [[nodiscard]] LocalPage num_pages() const override {
    return opts_.unique_pages;
  }
  [[nodiscard]] std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<CyclicCursor>(opts_);
  }

 private:
  AdversarialOptions opts_;
};

/// Streaming twin of make_adversarial_workload: identical sequences,
/// one shared source instead of one shared materialized trace.
[[nodiscard]] Workload make_adversarial_streaming_workload(
    std::size_t num_threads, const AdversarialOptions& opts = {});

/// The paper's Figure 3 HBM size: enough memory for `fraction` of all the
/// unique pages across all threads (¼ in the paper).
[[nodiscard]] std::uint64_t adversarial_hbm_slots(std::size_t num_threads,
                                                  const AdversarialOptions& opts,
                                                  double fraction = 0.25);

}  // namespace hbmsim::workloads
