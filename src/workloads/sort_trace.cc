#include "workloads/sort_trace.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "trace/logging_array.h"
#include "trace/logging_iterator.h"
#include "trace/page_mapper.h"
#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::workloads {
namespace {

using It = LoggingIterator<std::int32_t>;

/// Insertion sort for small ranges (quicksort base case).
void insertion_sort(It first, It last) {
  for (It i = first + 1; i < last; ++i) {
    const std::int32_t key = *i;
    It j = i;
    while (j > first && *(j - 1) > key) {
      *j = *(j - 1);
      --j;
    }
    *j = key;
  }
}

/// Median-of-three pivot selection; leaves the pivot value returned and
/// the three probed elements in sorted order.
std::int32_t median_of_three(It first, It last) {
  It mid = first + (last - first) / 2;
  It back = last - 1;
  if (*mid < *first) {
    std::iter_swap(first, mid);
  }
  if (*back < *first) {
    std::iter_swap(first, back);
  }
  if (*back < *mid) {
    std::iter_swap(mid, back);
  }
  return *mid;
}

void quick_sort(It first, It last) {
  while (last - first > 16) {
    const std::int32_t pivot = median_of_three(first, last);
    It lo = first;
    It hi = last - 1;
    // Hoare partition.
    for (;;) {
      while (*lo < pivot) {
        ++lo;
      }
      while (pivot < *hi) {
        --hi;
      }
      if (lo >= hi) {
        break;
      }
      std::iter_swap(lo, hi);
      ++lo;
      --hi;
    }
    // Recurse into the smaller side; loop on the larger (O(log n) stack).
    if (hi - first < last - hi) {
      quick_sort(first, hi + 1);
      first = hi + 1;
    } else {
      quick_sort(hi + 1, last);
      last = hi + 1;
    }
  }
  insertion_sort(first, last);
}

/// Top-down mergesort with a traced auxiliary buffer: all reads/writes of
/// both the data array and the scratch array appear in the trace.
void merge_sort(It first, It last, It aux_first) {
  const auto n = last - first;
  if (n <= 16) {
    insertion_sort(first, last);
    return;
  }
  const auto half = n / 2;
  merge_sort(first, first + half, aux_first);
  merge_sort(first + half, last, aux_first + half);
  // Merge into aux, then copy back (the classic two-array merge pass).
  It a = first;
  It a_end = first + half;
  It b = first + half;
  It b_end = last;
  It out = aux_first;
  while (a != a_end && b != b_end) {
    if (*b < *a) {
      *out = *b;
      ++b;
    } else {
      *out = *a;
      ++a;
    }
    ++out;
  }
  while (a != a_end) {
    *out = *a;
    ++a;
    ++out;
  }
  while (b != b_end) {
    *out = *b;
    ++b;
    ++out;
  }
  It src = aux_first;
  for (It dst = first; dst != last; ++dst, ++src) {
    *dst = *src;
  }
}

}  // namespace

Trace make_sort_trace(const SortTraceOptions& opts) {
  HBMSIM_CHECK(opts.num_elements > 0, "cannot trace an empty sort");
  Xoshiro256StarStar rng(opts.seed);
  std::vector<std::int32_t> data(opts.num_elements);
  for (auto& x : data) {
    x = static_cast<std::int32_t>(rng() >> 33);
  }

  PageMapper mapper(opts.page_bytes);
  VirtualLayout layout(opts.page_bytes);
  const Address data_base = layout.reserve_for<std::int32_t>(opts.num_elements);
  TracedBuffer<std::int32_t> buffer(std::move(data), data_base, &mapper);

  switch (opts.algo) {
    case SortAlgo::kMergeSort: {
      const Address aux_base = layout.reserve_for<std::int32_t>(opts.num_elements);
      TracedBuffer<std::int32_t> aux(std::vector<std::int32_t>(opts.num_elements),
                                     aux_base, &mapper);
      merge_sort(buffer.begin(), buffer.end(), aux.begin());
      break;
    }
    case SortAlgo::kQuickSort:
      quick_sort(buffer.begin(), buffer.end());
      break;
    case SortAlgo::kStdSort:
      std::sort(buffer.begin(), buffer.end());
      break;
    case SortAlgo::kStdStableSort:
      std::stable_sort(buffer.begin(), buffer.end());
      break;
  }

  HBMSIM_CHECK(std::is_sorted(buffer.raw().begin(), buffer.raw().end()),
               "instrumented sort produced unsorted output");
  return mapper.take_trace();
}

Workload make_sort_workload(std::size_t num_threads, const SortTraceOptions& opts,
                            std::size_t distinct) {
  HBMSIM_CHECK(distinct > 0, "need at least one distinct trace");
  std::vector<std::shared_ptr<const Trace>> pool;
  const std::size_t n = std::min(distinct, num_threads);
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SortTraceOptions o = opts;
    o.seed = opts.seed + i * 0xD1B54A32D192ED03ULL;
    pool.push_back(std::make_shared<Trace>(make_sort_trace(o)));
  }
  return Workload::round_robin(std::move(pool), num_threads,
                               std::string("sort-") + to_string(opts.algo));
}

}  // namespace hbmsim::workloads
