// Synthetic reference streams for tests, ablations, and the paper's
// "distribution of work across the cores" sweep: uniform random, Zipfian,
// sequential streaming, and strided access, plus helpers for building
// imbalanced multi-thread workloads.
//
// Every generator exists in two forms over one implementation: the
// materialized makers below produce a Trace by walking a SyntheticCursor
// to completion, and make_streaming_workload() hands the same cursors to
// the simulator directly (O(1) memory per thread — the p = 1M form).
// The reference sequences are identical by construction; the pinned
// goldens in tests/determinism_test.cc and the streaming-vs-materialized
// differential grid hold both forms to it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.h"
#include "trace/trace_cursor.h"
#include "util/rng.h"

namespace hbmsim::workloads {

/// `length` uniform random references over `num_pages` pages.
[[nodiscard]] Trace make_uniform_trace(std::uint32_t num_pages, std::size_t length,
                                       std::uint64_t seed);

/// Zipf(s)-distributed references (s ≈ 0.8–1.2 models hot/cold pages).
[[nodiscard]] Trace make_zipf_trace(std::uint32_t num_pages, std::size_t length,
                                    double s, std::uint64_t seed);

/// STREAM-like sequential sweep over `num_pages`, repeated `passes` times.
[[nodiscard]] Trace make_stream_trace(std::uint32_t num_pages, std::uint32_t passes);

/// Strided sweep: page indices advance by `stride` mod num_pages.
[[nodiscard]] Trace make_strided_trace(std::uint32_t num_pages, std::size_t length,
                                       std::uint32_t stride);

/// All p threads run the given generator with per-thread seeds.
enum class SyntheticKind { kUniform, kZipf, kStream, kStrided };

struct SyntheticOptions {
  SyntheticKind kind = SyntheticKind::kUniform;
  std::uint32_t num_pages = 1024;
  std::size_t length = 100'000;
  double zipf_s = 0.99;
  std::uint32_t stream_passes = 4;
  std::uint32_t stride = 17;
  std::uint64_t seed = 1;
};

[[nodiscard]] Workload make_synthetic_workload(std::size_t num_threads,
                                               const SyntheticOptions& opts);

/// Streaming cursor over any SyntheticKind: a seeded Xoshiro (via
/// SplitMix64 expansion) plus a position, generating the exact sequence
/// the materialized makers store. Forward-only (uniform and Zipf draw a
/// data-dependent number of RNG values per reference); rewind re-seeds.
class SyntheticCursor final : public TraceCursor {
 public:
  SyntheticCursor(const SyntheticOptions& opts, std::uint64_t seed);

  [[nodiscard]] std::unique_ptr<TraceCursor> clone() const override {
    return std::make_unique<SyntheticCursor>(*this);
  }

 protected:
  [[nodiscard]] LocalPage generate() override;
  void reset() override;

 private:
  SyntheticOptions opts_;
  std::uint64_t seed_;
  Xoshiro256StarStar rng_;
  std::optional<ZipfSampler> zipf_;
  std::uint64_t stride_acc_ = 0;
};

/// TraceSource producing SyntheticCursors for one (options, seed) pair.
class SyntheticSource final : public TraceSource {
 public:
  SyntheticSource(const SyntheticOptions& opts, std::uint64_t seed);

  [[nodiscard]] std::uint64_t size() const override { return length_; }
  [[nodiscard]] LocalPage num_pages() const override {
    return opts_.num_pages;
  }
  [[nodiscard]] std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<SyntheticCursor>(opts_, seed_);
  }

 private:
  SyntheticOptions opts_;
  std::uint64_t seed_;
  std::uint64_t length_;
};

/// Streaming twin of make_synthetic_workload: identical per-thread seed
/// derivation and reference sequences, but O(1) memory per thread.
[[nodiscard]] Workload make_streaming_workload(std::size_t num_threads,
                                               const SyntheticOptions& opts);

/// Streaming twin of make_imbalanced_workload (same length ramp).
[[nodiscard]] Workload make_imbalanced_streaming_workload(
    std::size_t num_threads, const SyntheticOptions& opts,
    double min_fraction = 0.1);

/// Imbalanced variant: thread i's trace is truncated to
/// length · (min_fraction + (1 - min_fraction) · i / (p-1)), so the work
/// ramps linearly from min_fraction to the full length across threads —
/// the "asymmetric work" case where Cycle Priority is expected to suffer
/// mild starvation (§4).
[[nodiscard]] Workload make_imbalanced_workload(std::size_t num_threads,
                                                const SyntheticOptions& opts,
                                                double min_fraction = 0.1);

}  // namespace hbmsim::workloads
