// Synthetic reference streams for tests, ablations, and the paper's
// "distribution of work across the cores" sweep: uniform random, Zipfian,
// sequential streaming, and strided access, plus helpers for building
// imbalanced multi-thread workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace hbmsim::workloads {

/// `length` uniform random references over `num_pages` pages.
[[nodiscard]] Trace make_uniform_trace(std::uint32_t num_pages, std::size_t length,
                                       std::uint64_t seed);

/// Zipf(s)-distributed references (s ≈ 0.8–1.2 models hot/cold pages).
[[nodiscard]] Trace make_zipf_trace(std::uint32_t num_pages, std::size_t length,
                                    double s, std::uint64_t seed);

/// STREAM-like sequential sweep over `num_pages`, repeated `passes` times.
[[nodiscard]] Trace make_stream_trace(std::uint32_t num_pages, std::uint32_t passes);

/// Strided sweep: page indices advance by `stride` mod num_pages.
[[nodiscard]] Trace make_strided_trace(std::uint32_t num_pages, std::size_t length,
                                       std::uint32_t stride);

/// All p threads run the given generator with per-thread seeds.
enum class SyntheticKind { kUniform, kZipf, kStream, kStrided };

struct SyntheticOptions {
  SyntheticKind kind = SyntheticKind::kUniform;
  std::uint32_t num_pages = 1024;
  std::size_t length = 100'000;
  double zipf_s = 0.99;
  std::uint32_t stream_passes = 4;
  std::uint32_t stride = 17;
  std::uint64_t seed = 1;
};

[[nodiscard]] Workload make_synthetic_workload(std::size_t num_threads,
                                               const SyntheticOptions& opts);

/// Imbalanced variant: thread i's trace is truncated to
/// length · (min_fraction + (1 - min_fraction) · i / (p-1)), so the work
/// ramps linearly from min_fraction to the full length across threads —
/// the "asymmetric work" case where Cycle Priority is expected to suffer
/// mild starvation (§4).
[[nodiscard]] Workload make_imbalanced_workload(std::size_t num_threads,
                                                const SyntheticOptions& opts,
                                                double min_fraction = 0.1);

}  // namespace hbmsim::workloads
