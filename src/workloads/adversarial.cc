#include "workloads/adversarial.h"

#include <memory>
#include <vector>

#include "util/error.h"

namespace hbmsim::workloads {

CyclicCursor::CyclicCursor(const AdversarialOptions& opts)
    : TraceCursor(
          static_cast<std::uint64_t>(opts.unique_pages) * opts.repetitions,
          opts.unique_pages),
      unique_pages_(opts.unique_pages) {
  HBMSIM_CHECK(opts.unique_pages > 0, "need at least one page");
  HBMSIM_CHECK(opts.repetitions > 0, "need at least one repetition");
  rewind();
}

CyclicSource::CyclicSource(const AdversarialOptions& opts) : opts_(opts) {
  HBMSIM_CHECK(opts.unique_pages > 0, "need at least one page");
  HBMSIM_CHECK(opts.repetitions > 0, "need at least one repetition");
}

Trace make_cyclic_trace(const AdversarialOptions& opts) {
  return materialize(CyclicCursor(opts));
}

Workload make_adversarial_workload(std::size_t num_threads,
                                   const AdversarialOptions& opts) {
  auto trace = std::make_shared<Trace>(make_cyclic_trace(opts));
  return Workload::replicate(std::move(trace), num_threads, "adversarial-cyclic");
}

Workload make_adversarial_streaming_workload(std::size_t num_threads,
                                             const AdversarialOptions& opts) {
  return Workload::replicate(
      std::shared_ptr<const TraceSource>(std::make_shared<CyclicSource>(opts)),
      num_threads, "adversarial-cyclic-streaming");
}

std::uint64_t adversarial_hbm_slots(std::size_t num_threads,
                                    const AdversarialOptions& opts,
                                    double fraction) {
  HBMSIM_CHECK(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const double total =
      static_cast<double>(num_threads) * static_cast<double>(opts.unique_pages);
  const auto slots = static_cast<std::uint64_t>(total * fraction);
  return slots == 0 ? 1 : slots;
}

}  // namespace hbmsim::workloads
