#include "workloads/adversarial.h"

#include <memory>
#include <vector>

#include "util/error.h"

namespace hbmsim::workloads {

Trace make_cyclic_trace(const AdversarialOptions& opts) {
  HBMSIM_CHECK(opts.unique_pages > 0, "need at least one page");
  HBMSIM_CHECK(opts.repetitions > 0, "need at least one repetition");
  std::vector<LocalPage> refs;
  refs.reserve(static_cast<std::size_t>(opts.unique_pages) * opts.repetitions);
  for (std::uint32_t rep = 0; rep < opts.repetitions; ++rep) {
    for (std::uint32_t page = 0; page < opts.unique_pages; ++page) {
      refs.push_back(page);
    }
  }
  return Trace(std::move(refs), opts.unique_pages);
}

Workload make_adversarial_workload(std::size_t num_threads,
                                   const AdversarialOptions& opts) {
  auto trace = std::make_shared<Trace>(make_cyclic_trace(opts));
  return Workload::replicate(std::move(trace), num_threads, "adversarial-cyclic");
}

std::uint64_t adversarial_hbm_slots(std::size_t num_threads,
                                    const AdversarialOptions& opts,
                                    double fraction) {
  HBMSIM_CHECK(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  const double total =
      static_cast<double>(num_threads) * static_cast<double>(opts.unique_pages);
  const auto slots = static_cast<std::uint64_t>(total * fraction);
  return slots == 0 ? 1 : slots;
}

}  // namespace hbmsim::workloads
