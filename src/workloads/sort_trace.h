// Dataset 1: sorting traces (§3.2).
//
// "We generate GNU sort memory access traces by running GNU sort on
//  randomly generated sequences of 500,000 integers. Since GNU sort takes
//  iterators as input, we created a logging iterator class that logs every
//  dereference to a file, and passed these logging iterators to GNU sort."
//
// The paper's "GNU sort" is the libstdc++ sort [Singler & Konsik 2008].
// We provide:
//   * kMergeSort   — our own top-down mergesort whose auxiliary buffer is
//                    also traced (full memory-traffic coverage); this is
//                    the default surrogate for libstdc++'s stable
//                    mergesort,
//   * kQuickSort   — in-place median-of-three quicksort (the paper's
//                    parameter sweep also ran quicksort traces),
//   * kStdSort / kStdStableSort — the paper's literal technique: hand the
//                    logging iterators straight to the standard sort
//                    (internal temporaries of std::stable_sort are
//                    untraced, exactly as in the paper's instrumentation).
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace hbmsim::workloads {

enum class SortAlgo { kMergeSort, kQuickSort, kStdSort, kStdStableSort };

[[nodiscard]] constexpr const char* to_string(SortAlgo a) noexcept {
  switch (a) {
    case SortAlgo::kMergeSort: return "mergesort";
    case SortAlgo::kQuickSort: return "quicksort";
    case SortAlgo::kStdSort: return "std::sort";
    case SortAlgo::kStdStableSort: return "std::stable_sort";
  }
  return "?";
}

struct SortTraceOptions {
  std::size_t num_elements = 500'000;  ///< paper: 500,000 integers
  SortAlgo algo = SortAlgo::kMergeSort;
  std::uint64_t seed = 1;
  std::uint64_t page_bytes = 4096;
};

/// Trace one sort of `num_elements` random 32-bit integers. Throws
/// hbmsim::Error if the sort (run through the instrumentation) failed to
/// actually sort — a self-check on the instrumentation wrappers.
[[nodiscard]] Trace make_sort_trace(const SortTraceOptions& opts);

/// p threads, each replaying a sort trace generated with different
/// randomness; at most `distinct` distinct traces are materialised.
[[nodiscard]] Workload make_sort_workload(std::size_t num_threads,
                                          const SortTraceOptions& opts,
                                          std::size_t distinct = 8);

}  // namespace hbmsim::workloads
