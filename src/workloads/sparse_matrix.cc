#include "workloads/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hbmsim::workloads {

void CsrMatrix::validate() const {
  HBMSIM_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
               "row_ptr must have rows+1 entries");
  HBMSIM_CHECK(row_ptr.front() == 0, "row_ptr must start at 0");
  HBMSIM_CHECK(row_ptr.back() == col_idx.size(), "row_ptr must end at nnz");
  HBMSIM_CHECK(col_idx.size() == values.size(), "col_idx/values size mismatch");
  for (std::uint32_t r = 0; r < rows; ++r) {
    HBMSIM_CHECK(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be non-decreasing");
    for (std::uint64_t i = row_ptr[r]; i + 1 < row_ptr[r + 1]; ++i) {
      HBMSIM_CHECK(col_idx[i] < col_idx[i + 1], "columns must be sorted & unique");
    }
    for (std::uint64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      HBMSIM_CHECK(col_idx[i] < cols, "column index out of range");
    }
  }
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(static_cast<std::size_t>(rows) * cols, 0.0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      dense[static_cast<std::size_t>(r) * cols + col_idx[i]] = values[i];
    }
  }
  return dense;
}

CsrMatrix random_csr(std::uint32_t rows, std::uint32_t cols, double density,
                     std::uint64_t seed) {
  HBMSIM_CHECK(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  Xoshiro256StarStar rng(seed);
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  const auto expected =
      static_cast<std::size_t>(density * static_cast<double>(rows) * cols);
  m.col_idx.reserve(expected);
  m.values.reserve(expected);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (rng.uniform_double() < density) {
        m.col_idx.push_back(c);
        m.values.push_back(rng.uniform_double());
      }
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

CsrMatrix multiply_reference(const CsrMatrix& a, const CsrMatrix& b) {
  HBMSIM_CHECK(a.cols == b.rows, "dimension mismatch in SpGEMM");
  CsrMatrix c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.reserve(a.rows + 1);
  c.row_ptr.push_back(0);

  std::vector<double> accum(b.cols, 0.0);
  std::vector<bool> occupied(b.cols, false);
  std::vector<std::uint32_t> touched;
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    touched.clear();
    for (std::uint64_t jp = a.row_ptr[i]; jp < a.row_ptr[i + 1]; ++jp) {
      const std::uint32_t j = a.col_idx[jp];
      const double av = a.values[jp];
      for (std::uint64_t kp = b.row_ptr[j]; kp < b.row_ptr[j + 1]; ++kp) {
        const std::uint32_t k = b.col_idx[kp];
        if (!occupied[k]) {
          occupied[k] = true;
          accum[k] = 0.0;
          touched.push_back(k);
        }
        accum[k] += av * b.values[kp];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t k : touched) {
      c.col_idx.push_back(k);
      c.values.push_back(accum[k]);
      occupied[k] = false;
    }
    c.row_ptr.push_back(c.col_idx.size());
  }
  return c;
}

double max_abs_diff(const CsrMatrix& a, const CsrMatrix& b) {
  HBMSIM_CHECK(a.rows == b.rows && a.cols == b.cols,
               "shape mismatch in max_abs_diff");
  const std::vector<double> da = a.to_dense();
  const std::vector<double> db = b.to_dense();
  double worst = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::abs(da[i] - db[i]));
  }
  return worst;
}

}  // namespace hbmsim::workloads
