#include "workloads/spgemm.h"

#include <algorithm>
#include <vector>

#include "trace/logging_array.h"
#include "trace/page_mapper.h"
#include "util/error.h"

namespace hbmsim::workloads {
namespace {

/// Gustavson SpGEMM with every array wrapped in LoggingArray. The
/// structure mirrors the loop nest TACO generates for
///   C(i,k) = A(i,j) * B(j,k)
/// with CSR operands and a dense workspace over k.
CsrMatrix traced_gustavson(const CsrMatrix& a, const CsrMatrix& b,
                           PageMapper& mapper) {
  HBMSIM_CHECK(a.cols == b.rows, "dimension mismatch in SpGEMM");
  VirtualLayout layout(mapper.page_bytes());

  using U64Array = LoggingArray<std::uint64_t>;
  using U32Array = LoggingArray<std::uint32_t>;
  using F64Array = LoggingArray<double>;

  U64Array a_pos(a.row_ptr, layout.reserve_for<std::uint64_t>(a.row_ptr.size()),
                 &mapper);
  U32Array a_crd(a.col_idx, layout.reserve_for<std::uint32_t>(a.col_idx.size()),
                 &mapper);
  F64Array a_val(a.values, layout.reserve_for<double>(a.values.size()), &mapper);
  U64Array b_pos(b.row_ptr, layout.reserve_for<std::uint64_t>(b.row_ptr.size()),
                 &mapper);
  U32Array b_crd(b.col_idx, layout.reserve_for<std::uint32_t>(b.col_idx.size()),
                 &mapper);
  F64Array b_val(b.values, layout.reserve_for<double>(b.values.size()), &mapper);

  // Dense workspace over the k dimension, plus occupancy tracking —
  // TACO's `qw`/`w` workspace arrays.
  F64Array workspace(b.cols, layout.reserve_for<double>(b.cols), &mapper);
  LoggingArray<std::uint8_t> occupied(b.cols,
                                      layout.reserve_for<std::uint8_t>(b.cols),
                                      &mapper);
  U32Array touched(b.cols, layout.reserve_for<std::uint32_t>(b.cols), &mapper);

  // Output arrays, appended row by row. The capacity bound is exact:
  // Gustavson's output nnz is at most the multiply's flop count
  // Σ_{(i,j)∈A} nnz(B_j), and never exceeds the dense size.
  std::uint64_t flops = 0;
  for (std::uint64_t jp = 0; jp < a.nnz(); ++jp) {
    const std::uint32_t j = a.col_idx[jp];
    flops += b.row_ptr[j + 1] - b.row_ptr[j];
  }
  const std::size_t out_cap = std::max<std::uint64_t>(
      16, std::min<std::uint64_t>(static_cast<std::uint64_t>(a.rows) * b.cols,
                                  flops));
  U32Array c_crd(out_cap, layout.reserve_for<std::uint32_t>(out_cap), &mapper);
  F64Array c_val(out_cap, layout.reserve_for<double>(out_cap), &mapper);
  U64Array c_pos(static_cast<std::size_t>(a.rows) + 1,
                 layout.reserve_for<std::uint64_t>(a.rows + 1), &mapper);

  CsrMatrix c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.reserve(a.rows + 1);
  c.row_ptr.push_back(0);
  c_pos.set(0, 0);

  std::uint64_t out_n = 0;
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    std::uint32_t num_touched = 0;
    const std::uint64_t a_lo = a_pos.get(i);
    const std::uint64_t a_hi = a_pos.get(i + 1);
    for (std::uint64_t jp = a_lo; jp < a_hi; ++jp) {
      const std::uint32_t j = a_crd.get(jp);
      const double av = a_val.get(jp);
      const std::uint64_t b_lo = b_pos.get(j);
      const std::uint64_t b_hi = b_pos.get(j + 1);
      for (std::uint64_t kp = b_lo; kp < b_hi; ++kp) {
        const std::uint32_t k = b_crd.get(kp);
        if (occupied.get(k) == 0) {
          occupied.set(k, 1);
          workspace.set(k, 0.0);
          touched.set(num_touched, k);
          ++num_touched;
        }
        workspace.add(k, av * b_val.get(kp));
      }
    }
    // Gather the row: TACO sorts the workspace's touched coordinates to
    // produce ordered CSR output.
    std::vector<std::uint32_t> row_cols(num_touched);
    for (std::uint32_t s = 0; s < num_touched; ++s) {
      row_cols[s] = touched.get(s);
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (const std::uint32_t k : row_cols) {
      HBMSIM_CHECK(out_n < out_cap, "SpGEMM output overflow");
      c_crd.set(out_n, k);
      c_val.set(out_n, workspace.get(k));
      occupied.set(k, 0);
      c.col_idx.push_back(k);
      c.values.push_back(workspace.raw()[k]);
      ++out_n;
    }
    c_pos.set(i + 1, out_n);
    c.row_ptr.push_back(out_n);
  }
  return c;
}

}  // namespace

SpgemmRun run_traced_spgemm(const CsrMatrix& a, const CsrMatrix& b,
                            std::uint64_t page_bytes) {
  PageMapper mapper(page_bytes);
  SpgemmRun run;
  run.product = traced_gustavson(a, b, mapper);
  run.trace = mapper.take_trace();
  return run;
}

SpgemmRun run_traced_spgemm(const SpgemmOptions& opts) {
  const CsrMatrix a = random_csr(opts.rows, opts.cols, opts.density, opts.seed);
  const CsrMatrix b =
      random_csr(opts.cols, opts.rows, opts.density, opts.seed ^ 0x9E3779B97F4A7C15ULL);
  return run_traced_spgemm(a, b, opts.page_bytes);
}

Trace make_spgemm_trace(const SpgemmOptions& opts) {
  return run_traced_spgemm(opts).trace;
}

Workload make_spgemm_workload(std::size_t num_threads, const SpgemmOptions& opts,
                              std::size_t distinct) {
  HBMSIM_CHECK(distinct > 0, "need at least one distinct trace");
  std::vector<std::shared_ptr<const Trace>> pool;
  const std::size_t n = std::min(distinct, num_threads);
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpgemmOptions o = opts;
    o.seed = opts.seed + i * 0x9E3779B97F4A7C15ULL;
    pool.push_back(std::make_shared<Trace>(make_spgemm_trace(o)));
  }
  return Workload::round_robin(std::move(pool), num_threads, "spgemm");
}

}  // namespace hbmsim::workloads
