#include "workloads/synthetic.h"

#include <algorithm>
#include <memory>

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::workloads {
namespace {

Trace generate(const SyntheticOptions& opts, std::uint64_t seed) {
  switch (opts.kind) {
    case SyntheticKind::kUniform:
      return make_uniform_trace(opts.num_pages, opts.length, seed);
    case SyntheticKind::kZipf:
      return make_zipf_trace(opts.num_pages, opts.length, opts.zipf_s, seed);
    case SyntheticKind::kStream:
      return make_stream_trace(opts.num_pages, opts.stream_passes);
    case SyntheticKind::kStrided:
      return make_strided_trace(opts.num_pages, opts.length, opts.stride);
  }
  throw ConfigError("unknown synthetic workload kind");
}

}  // namespace

Trace make_uniform_trace(std::uint32_t num_pages, std::size_t length,
                         std::uint64_t seed) {
  HBMSIM_CHECK(num_pages > 0, "need at least one page");
  Xoshiro256StarStar rng(seed);
  std::vector<LocalPage> refs(length);
  for (auto& r : refs) {
    r = static_cast<LocalPage>(rng.uniform(num_pages));
  }
  return Trace(std::move(refs), num_pages);
}

Trace make_zipf_trace(std::uint32_t num_pages, std::size_t length, double s,
                      std::uint64_t seed) {
  HBMSIM_CHECK(num_pages > 0, "need at least one page");
  Xoshiro256StarStar rng(seed);
  const ZipfSampler zipf(num_pages, s);
  std::vector<LocalPage> refs(length);
  for (auto& r : refs) {
    r = static_cast<LocalPage>(zipf(rng));
  }
  return Trace(std::move(refs), num_pages);
}

Trace make_stream_trace(std::uint32_t num_pages, std::uint32_t passes) {
  HBMSIM_CHECK(num_pages > 0 && passes > 0, "empty stream trace");
  std::vector<LocalPage> refs;
  refs.reserve(static_cast<std::size_t>(num_pages) * passes);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    for (std::uint32_t p = 0; p < num_pages; ++p) {
      refs.push_back(p);
    }
  }
  return Trace(std::move(refs), num_pages);
}

Trace make_strided_trace(std::uint32_t num_pages, std::size_t length,
                         std::uint32_t stride) {
  HBMSIM_CHECK(num_pages > 0, "need at least one page");
  std::vector<LocalPage> refs(length);
  std::uint64_t pos = 0;
  for (auto& r : refs) {
    r = static_cast<LocalPage>(pos % num_pages);
    pos += stride;
  }
  return Trace(std::move(refs), num_pages);
}

Workload make_synthetic_workload(std::size_t num_threads,
                                 const SyntheticOptions& opts) {
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    traces.push_back(std::make_shared<Trace>(
        generate(opts, opts.seed + t * 0x9E3779B97F4A7C15ULL)));
  }
  return Workload(std::move(traces), "synthetic");
}

Workload make_imbalanced_workload(std::size_t num_threads,
                                  const SyntheticOptions& opts,
                                  double min_fraction) {
  HBMSIM_CHECK(min_fraction > 0.0 && min_fraction <= 1.0,
               "min_fraction must be in (0,1]");
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    const double ramp =
        num_threads == 1
            ? 1.0
            : min_fraction + (1.0 - min_fraction) * static_cast<double>(t) /
                                 static_cast<double>(num_threads - 1);
    SyntheticOptions o = opts;
    o.length = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(opts.length) * ramp));
    traces.push_back(std::make_shared<Trace>(
        generate(o, opts.seed + t * 0x9E3779B97F4A7C15ULL)));
  }
  return Workload(std::move(traces), "synthetic-imbalanced");
}

}  // namespace hbmsim::workloads
