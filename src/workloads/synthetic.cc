#include "workloads/synthetic.h"

#include <algorithm>
#include <memory>

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::workloads {
namespace {

// Sequence length for one thread: kStream sweeps num_pages per pass,
// every other kind is the configured length. Also the single validation
// point for the generator parameters, so cursors and materialized makers
// reject the same inputs.
std::uint64_t synthetic_length(const SyntheticOptions& opts) {
  HBMSIM_CHECK(opts.num_pages > 0, "need at least one page");
  switch (opts.kind) {
    case SyntheticKind::kUniform:
    case SyntheticKind::kZipf:
    case SyntheticKind::kStrided:
      return opts.length;
    case SyntheticKind::kStream:
      HBMSIM_CHECK(opts.stream_passes > 0, "empty stream trace");
      return static_cast<std::uint64_t>(opts.num_pages) * opts.stream_passes;
  }
  throw ConfigError("unknown synthetic workload kind");
}

}  // namespace

SyntheticCursor::SyntheticCursor(const SyntheticOptions& opts,
                                 std::uint64_t seed)
    : TraceCursor(synthetic_length(opts), opts.num_pages),
      opts_(opts),
      seed_(seed),
      rng_(seed) {
  if (opts_.kind == SyntheticKind::kZipf) {
    zipf_.emplace(opts_.num_pages, opts_.zipf_s);
  }
  rewind();
}

LocalPage SyntheticCursor::generate() {
  switch (opts_.kind) {
    case SyntheticKind::kUniform:
      return static_cast<LocalPage>(rng_.uniform(opts_.num_pages));
    case SyntheticKind::kZipf:
      return static_cast<LocalPage>((*zipf_)(rng_));
    case SyntheticKind::kStream:
      return static_cast<LocalPage>(pos() % opts_.num_pages);
    case SyntheticKind::kStrided: {
      const auto r = static_cast<LocalPage>(stride_acc_ % opts_.num_pages);
      stride_acc_ += opts_.stride;
      return r;
    }
  }
  HBMSIM_ASSERT(false, "unknown synthetic workload kind");
  return 0;
}

void SyntheticCursor::reset() {
  rng_ = Xoshiro256StarStar(seed_);
  stride_acc_ = 0;
}

SyntheticSource::SyntheticSource(const SyntheticOptions& opts,
                                 std::uint64_t seed)
    : opts_(opts), seed_(seed), length_(synthetic_length(opts)) {}

Trace make_uniform_trace(std::uint32_t num_pages, std::size_t length,
                         std::uint64_t seed) {
  SyntheticOptions o;
  o.kind = SyntheticKind::kUniform;
  o.num_pages = num_pages;
  o.length = length;
  return materialize(SyntheticCursor(o, seed));
}

Trace make_zipf_trace(std::uint32_t num_pages, std::size_t length, double s,
                      std::uint64_t seed) {
  SyntheticOptions o;
  o.kind = SyntheticKind::kZipf;
  o.num_pages = num_pages;
  o.length = length;
  o.zipf_s = s;
  return materialize(SyntheticCursor(o, seed));
}

Trace make_stream_trace(std::uint32_t num_pages, std::uint32_t passes) {
  SyntheticOptions o;
  o.kind = SyntheticKind::kStream;
  o.num_pages = num_pages;
  o.stream_passes = passes;
  return materialize(SyntheticCursor(o, /*seed=*/1));
}

Trace make_strided_trace(std::uint32_t num_pages, std::size_t length,
                         std::uint32_t stride) {
  SyntheticOptions o;
  o.kind = SyntheticKind::kStrided;
  o.num_pages = num_pages;
  o.length = length;
  o.stride = stride;
  return materialize(SyntheticCursor(o, /*seed=*/1));
}

Workload make_synthetic_workload(std::size_t num_threads,
                                 const SyntheticOptions& opts) {
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    traces.push_back(std::make_shared<Trace>(materialize(
        SyntheticCursor(opts, opts.seed + t * 0x9E3779B97F4A7C15ULL))));
  }
  return Workload(std::move(traces), "synthetic");
}

Workload make_streaming_workload(std::size_t num_threads,
                                 const SyntheticOptions& opts) {
  std::vector<std::shared_ptr<const TraceSource>> sources;
  sources.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    sources.push_back(std::make_shared<SyntheticSource>(
        opts, opts.seed + t * 0x9E3779B97F4A7C15ULL));
  }
  return Workload(std::move(sources), "synthetic-streaming");
}

namespace {

SyntheticOptions ramped(const SyntheticOptions& opts, std::size_t t,
                        std::size_t num_threads, double min_fraction) {
  HBMSIM_CHECK(min_fraction > 0.0 && min_fraction <= 1.0,
               "min_fraction must be in (0,1]");
  const double ramp =
      num_threads == 1
          ? 1.0
          : min_fraction + (1.0 - min_fraction) * static_cast<double>(t) /
                               static_cast<double>(num_threads - 1);
  SyntheticOptions o = opts;
  o.length = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(opts.length) * ramp));
  return o;
}

}  // namespace

Workload make_imbalanced_workload(std::size_t num_threads,
                                  const SyntheticOptions& opts,
                                  double min_fraction) {
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    traces.push_back(std::make_shared<Trace>(materialize(
        SyntheticCursor(ramped(opts, t, num_threads, min_fraction),
                        opts.seed + t * 0x9E3779B97F4A7C15ULL))));
  }
  return Workload(std::move(traces), "synthetic-imbalanced");
}

Workload make_imbalanced_streaming_workload(std::size_t num_threads,
                                            const SyntheticOptions& opts,
                                            double min_fraction) {
  std::vector<std::shared_ptr<const TraceSource>> sources;
  sources.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    sources.push_back(std::make_shared<SyntheticSource>(
        ramped(opts, t, num_threads, min_fraction),
        opts.seed + t * 0x9E3779B97F4A7C15ULL));
  }
  return Workload(std::move(sources), "synthetic-imbalanced-streaming");
}

}  // namespace hbmsim::workloads
