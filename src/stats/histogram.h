// Log-bucketed histogram for response-time distributions.
//
// Buckets are powers of two (1, 2, 4, ...), matching the dynamic range of
// response times: hits are exactly 1 tick, starved requests can wait
// millions of ticks. Quantiles are estimated by linear interpolation
// within the containing bucket, over the range of values actually
// observed in that bucket — never past the bucket's representable
// integers. A distribution whose containing bucket holds a single
// distinct value therefore reports that value exactly (p99 of an
// all-hits run is 1.0, not an interpolated 1.98).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace hbmsim {

/// Power-of-two bucketed histogram over positive integers.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept {
    if (weight == 0) {
      return;  // must not widen a bucket's observed range
    }
    const int b = bucket_of(value);
    if (counts_[b] == 0) {
      lo_[b] = hi_[b] = value;
    } else {
      lo_[b] = std::min(lo_[b], value);
      hi_[b] = std::max(hi_[b], value);
    }
    counts_[b] += weight;
    total_ += weight;
  }

  void merge(const LogHistogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
      if (other.counts_[i] == 0) {
        continue;
      }
      if (counts_[i] == 0) {
        lo_[i] = other.lo_[i];
        hi_[i] = other.hi_[i];
      } else {
        lo_[i] = std::min(lo_[i], other.lo_[i]);
        hi_[i] = std::max(hi_[i], other.hi_[i]);
      }
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    HBMSIM_CHECK(b >= 0 && b < kBuckets, "bucket index out of range");
    return counts_[b];
  }

  /// Smallest / largest value observed in bucket b. Only meaningful when
  /// bucket_count(b) > 0.
  [[nodiscard]] std::uint64_t bucket_min(int b) const {
    HBMSIM_CHECK(b >= 0 && b < kBuckets, "bucket index out of range");
    return lo_[b];
  }
  [[nodiscard]] std::uint64_t bucket_max(int b) const {
    HBMSIM_CHECK(b >= 0 && b < kBuckets, "bucket index out of range");
    return hi_[b];
  }

  /// Lower edge of bucket b: values v with floor(log2(max(v,1))) == b.
  [[nodiscard]] static constexpr std::uint64_t bucket_low(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b);
  }

  /// Estimate the q-quantile (q in [0,1]) by interpolating across the
  /// observed value range of the containing bucket. quantile(0) is the
  /// minimum observed value, quantile(1) the maximum; an empty histogram
  /// reports 0.
  [[nodiscard]] double quantile(double q) const {
    HBMSIM_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (total_ == 0) {
      return 0.0;
    }
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      const double c = static_cast<double>(counts_[b]);
      if (c > 0.0 && cum + c >= target) {
        const double frac = (target - cum) / c;
        const double lo = static_cast<double>(lo_[b]);
        const double hi = static_cast<double>(hi_[b]);
        return lo + frac * (hi - lo);
      }
      cum += c;
    }
    // Unreachable except for floating-point shortfall on astronomically
    // large totals; the max observed value is the only sane answer.
    const int b = max_bucket();
    return b < 0 ? 0.0 : static_cast<double>(hi_[b]);
  }

  /// Index of the highest non-empty bucket, or -1 when empty.
  [[nodiscard]] int max_bucket() const noexcept {
    for (int b = kBuckets - 1; b >= 0; --b) {
      if (counts_[b] != 0) {
        return b;
      }
    }
    return -1;
  }

 private:
  static constexpr int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 63 - std::countl_zero(v);
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  // Observed value range per bucket; valid only where counts_[b] > 0.
  std::array<std::uint64_t, kBuckets> lo_{};
  std::array<std::uint64_t, kBuckets> hi_{};
  std::uint64_t total_ = 0;
};

}  // namespace hbmsim
