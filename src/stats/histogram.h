// Log-bucketed histogram for response-time distributions.
//
// Buckets are powers of two (1, 2, 4, ...), matching the dynamic range of
// response times: hits are exactly 1 tick, starved requests can wait
// millions of ticks. Quantiles are estimated by linear interpolation
// within the containing bucket.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace hbmsim {

/// Power-of-two bucketed histogram over positive integers.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept {
    const int b = bucket_of(value);
    counts_[b] += weight;
    total_ += weight;
  }

  void merge(const LogHistogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    HBMSIM_CHECK(b >= 0 && b < kBuckets, "bucket index out of range");
    return counts_[b];
  }

  /// Lower edge of bucket b: values v with floor(log2(max(v,1))) == b.
  [[nodiscard]] static constexpr std::uint64_t bucket_low(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b);
  }

  /// Estimate the q-quantile (q in [0,1]) by interpolating in the bucket.
  [[nodiscard]] double quantile(double q) const {
    HBMSIM_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (total_ == 0) {
      return 0.0;
    }
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      const double c = static_cast<double>(counts_[b]);
      if (cum + c >= target && c > 0.0) {
        const double frac = (target - cum) / c;
        const double lo = static_cast<double>(bucket_low(b));
        const double hi = static_cast<double>(bucket_low(b + 1));
        return lo + frac * (hi - lo);
      }
      cum += c;
    }
    return static_cast<double>(bucket_low(kBuckets - 1));
  }

  /// Index of the highest non-empty bucket, or -1 when empty.
  [[nodiscard]] int max_bucket() const noexcept {
    for (int b = kBuckets - 1; b >= 0; --b) {
      if (counts_[b] != 0) {
        return b;
      }
    }
    return -1;
  }

 private:
  static constexpr int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 63 - std::countl_zero(v);
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace hbmsim
