// Streaming (single-pass) statistics.
//
// Response times are produced once per page reference — potentially
// hundreds of millions per run — so all aggregation is O(1) per sample
// with no retained samples. Variance uses Welford's algorithm, which is
// numerically stable for the very long, skewed streams Priority produces.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace hbmsim {

/// Single-pass mean / variance / min / max accumulator (Welford).
class StreamingStats {
 public:
  constexpr StreamingStats() noexcept = default;

  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator into this one (Chan et al. parallel merge).
  constexpr void merge(const StreamingStats& other) noexcept {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr double mean() const noexcept { return mean_; }
  [[nodiscard]] constexpr double min() const noexcept { return min_; }
  [[nodiscard]] constexpr double max() const noexcept { return max_; }

  /// Population variance (the paper's "inconsistency" is the stddev over
  /// all response times, a population — not sample — statistic).
  [[nodiscard]] constexpr double variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Unbiased sample variance (n-1 denominator), for completeness.
  [[nodiscard]] constexpr double sample_variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] constexpr double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hbmsim
