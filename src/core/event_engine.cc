// The calendar-queue engine (DESIGN.md §3e). This whole file is on the
// tick hot path for hbmlint's hot-path-alloc reachability rule: the
// dense loop must stay allocation-free in steady state.
//
// Dense-path equivalence sketch (full argument in DESIGN.md §3e):
//
//   * Intra-tick order. The reference tick completes arrivals in
//     in-flight ring (fetch) order, then walks the id-sorted active list
//     serving arrivals and issuing fresh requests. The dense tick does
//     the same: phase 1 inserts in ring order, phase 2 merges the due
//     arrivals with the issuer list in global id order, so every cache
//     touch, Welford add, and queue push happens in the reference order.
//   * No kFetched at boundaries. With fetch_ticks >= 2 an arrival is
//     completed and served within one executed tick, so between ticks a
//     thread is only ever kIssuing, kWaiting, or kDone — exactly the
//     states the export protocol writes back. fetch_ticks == 1 inserts
//     at fetch (phase 5) time instead, a different within-tick cache-op
//     order, and is therefore excluded by the eligibility gate.
//   * Idle jumps. A tick with no due arrival, no issuer, and an empty
//     queue does nothing but increment idle_ticks (the reference idle
//     predicate); the dense loop adds the whole span at once.
//   * Deferred bookkeeping is exact, not approximate: Welford adds and
//     histogram increments happen per served reference in the reference
//     order — only the per-tick scan that finds them is batched away.
#include "core/event_engine.h"

#include <algorithm>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "util/error.h"

namespace hbmsim {

namespace {
/// Executed ticks per dense_step() call. Batching amortises the per-step
/// virtual dispatch and keeps the hot constants in registers, while
/// leaving step() granular enough for interleaved drivers: the
/// tick-boundary differential test still observes consistent state every
/// at-most-kDenseChunk executed ticks.
constexpr std::uint32_t kDenseChunk = 64;

/// Best-effort transparent-huge-page backing for a freshly reserved,
/// not-yet-touched buffer. The dense arrays are touched randomly at
/// p-scale, where 4 KiB paging makes the TLB walk — not the cache miss —
/// the dominant per-event cost (and a software prefetch that misses the
/// TLB is simply dropped, so staging cannot hide it). Must run between
/// allocation and first touch; alignment trimming or an unsupported
/// kernel just leaves normal pages behind.
void advise_huge(void* data, std::size_t bytes) {
#if defined(__linux__)
  constexpr std::uintptr_t kHuge = 2u << 20;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kHuge - 1);
  if (hi > lo) {
    madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}
}  // namespace

EventEngine::EventEngine(Simulator& sim) : Engine(sim) {
  if (dense_eligible()) {
    densify();
  }
}

const EngineCaps& EventEngine::caps() const noexcept {
  return engine_caps(EngineKind::kEvent);
}

bool EventEngine::dense_eligible() const {
  const SimConfig& c = sim_.config_;
  // The dense loop models exactly one configuration family; everything
  // else runs the portable layer (still bit-identical, still faster than
  // the tick loop on idle-heavy and single-thread shapes).
  if (c.open_system || c.shared_pages || c.paranoid) {
    return false;
  }
  if (c.arbitration != ArbitrationKind::kFifo ||
      c.channel_binding != ChannelBinding::kAny || c.remap_period != 0) {
    return false;
  }
  if (c.fetch_ticks < 2) {
    return false;  // F=1 inserts at fetch time — a different intra-tick order
  }
  if (c.arbiter_impl != ArbiterImpl::kFast || sim_.checker_ != nullptr) {
    return false;
  }
  const auto* hbm = dynamic_cast<const HbmCache*>(sim_.cache_.get());
  if (hbm == nullptr || (hbm->replacement() != ReplacementKind::kLru &&
                         hbm->replacement() != ReplacementKind::kFifo)) {
    return false;
  }
  return true;
}

void EventEngine::densify() {
  const std::size_t p = sim_.state_.size();
  const auto& hbm = static_cast<const HbmCache&>(*sim_.cache_);
  cache_cap_ = hbm.capacity();
  lru_ = hbm.replacement() == ReplacementKind::kLru;
  per_thread_ = sim_.config_.per_thread_metrics;
  histogram_ = sim_.config_.response_histogram;
  channels_ = sim_.config_.num_channels;
  fetch_ticks_ = sim_.config_.fetch_ticks;

  // Live mirror nodes are bounded by min(k, p·kSlots): occupancy never
  // exceeds k, and the slot-overflow bailout caps any thread at kSlots
  // resident pages. Reserving that bound makes pool growth below safe.
  nodes_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      cache_cap_, static_cast<std::uint64_t>(p) * kSlots)));
  advise_huge(nodes_.data(), nodes_.capacity() * sizeof(Node));
  threads_.reserve(p);
  advise_huge(threads_.data(), p * sizeof(DenseThread));
  threads_.resize(p);  // value-init: every slot index starts empty
  // Scalar run state (state_/request_tick_/current_/cursors_) stays in
  // the Simulator's structure-of-arrays and is mutated in place by the
  // dense loop; only the issuer list is mirrored out of the bitmap
  // (ascending for_each == the id-sorted active walk).
  issuers_.reserve(p);
  sim_.runnable_now_.for_each(
      [&](std::size_t t) { issuers_.push_back(static_cast<ThreadId>(t)); });
  issuers_next_.reserve(p);
  queue_.reserve(p);
  inflight_.reserve(std::min<std::size_t>(
      p, static_cast<std::size_t>(channels_) * fetch_ticks_));
  due_.reserve(channels_);
  dense_ = true;
}

bool EventEngine::step() {
  if (dense_) {
    switch (dense_step()) {
      case DenseOutcome::kAdvanced:
        return true;
      case DenseOutcome::kHalted:
        return false;
      case DenseOutcome::kDeDensified:
        break;  // state exported at a tick boundary; run this step portably
    }
  }
  // Portable layer: the fast engine's batching, clamped to the arrival
  // horizon so an open-system step never executes a tick the serving
  // driver may still inject into.
  if (sim_.serve_hit_run()) {
    if (sim_.finished() || sim_.tick_ >= sim_.arrival_horizon_) {
      return true;
    }
  } else if (sim_.fast_forward_idle()) {
    if (sim_.tick_ >= sim_.arrival_horizon_) {
      return true;
    }
  }
  return sim_.step_tick();
}

EventEngine::DenseOutcome EventEngine::dense_step() {
  Simulator& s = sim_;
  const Tick max_ticks = s.config_.max_ticks;
  const std::uint32_t q = channels_;
  const bool per_thread = per_thread_;
  for (std::uint32_t budget = kDenseChunk; budget != 0; --budget) {
    for (;;) {
      if (s.tick_ >= max_ticks) {
        s.metrics_.truncated = true;
        export_state();
        return DenseOutcome::kHalted;
      }
      if ((!inflight_.empty() && inflight_.front().serve_tick == s.tick_) ||
          !issuers_.empty() || !queue_.empty()) {
        break;
      }
      // Nothing can happen before the next arrival (the run is unfinished —
      // Simulator::step() guards — so a transfer must be in flight): jump
      // the whole idle span in one assignment.
      HBMSIM_CHECK(
          !inflight_.empty(),
          "simulator deadlock: unfinished threads but no pending work");
      const Tick horizon = std::min(inflight_.front().serve_tick, max_ticks);
      const Tick span = horizon - s.tick_;
      s.metrics_.idle_ticks += span;
      s.metrics_.skipped_ticks += span;
      s.tick_ = horizon;
    }

    const Tick now = s.tick_;
    // Phase 0: the arrivals due this tick are a prefix of the in-flight
    // ring (at most q entries share a serve tick). A thread already at
    // kSlots resident pages cannot take another mirror entry — bail out to
    // the portable layer before mutating anything.
    std::size_t due_n = 0;
    while (due_n < inflight_.size() && inflight_[due_n].serve_tick == now) {
      if (threads_[inflight_[due_n].thread].nslots == kSlots) {
        export_state();
        return DenseOutcome::kDeDensified;
      }
      ++due_n;
    }

    // Phase 1: complete arrivals — insert in ring (fetch) order, exactly
    // like complete_arrivals(); same-tick evictions happen here. The page
    // was frozen into the in-flight entry at fetch time, so no trace read
    // is needed here.
    due_.clear();
    for (std::size_t i = 0; i < due_n; ++i) {
      const DenseInFlight f = inflight_.front();
      inflight_.pop_front();
      mirror_insert(make_global_page(f.thread, f.page));
      // lint:allow-hot-path-alloc — reserved to q
      due_.push_back(DueArrival{f.thread, f.page});
    }
    // Id-sort the due arrivals (≤ q of them; q == 2 is by far the common
    // case, so dodge the std::sort call for it).
    if (due_.size() == 2) {
      if (due_[1].thread < due_[0].thread) {
        std::swap(due_[0], due_[1]);
      }
    } else if (due_.size() > 2) {
      std::sort(due_.begin(), due_.end(),
                [](const DueArrival& a, const DueArrival& b) {
                  return a.thread < b.thread;
                });
    }

    // Phase 2: serve arrivals and issue fresh requests merged in global
    // thread-id order — the reference loop's sorted active-list walk. An
    // arrival and an issue for the same thread in one tick is impossible
    // (the thread was kWaiting), so the merge is a strict interleave.
    issuers_next_.clear();
    std::size_t ai = 0;
    std::size_t ii = 0;
    const std::size_t ni = issuers_.size();
    while (ai < due_.size() || ii < ni) {
      if (ai < due_.size() && (ii >= ni || due_[ai].thread < issuers_[ii])) {
        const DueArrival a = due_[ai];
        ++ai;
        const std::uint32_t node = mirror_find(a.thread, a.page);
        if (node == kNil) {
          // Same-tick eviction corner (tiny k): re-queue at the original
          // request tick, matching the reference kFetched re-queue path.
          ++s.metrics_.requeues;
          s.state_[a.thread] = Simulator::ThreadState::kWaiting;
          // lint:allow-hot-path-alloc — reserved to p
          queue_.push_back(DenseQueued{a.thread, a.page});
        } else {
          serve_dense(a.thread, node);
        }
      } else {
        const ThreadId t = issuers_[ii];
        ++ii;
        s.request_tick_[t] = now;
        ++s.metrics_.total_refs;
        if (per_thread) {
          ++s.metrics_.per_thread[t].refs;
        }
        const LocalPage local = s.current_[t];
        const std::uint32_t node = mirror_find(t, local);
        if (node != kNil) {
          ++s.metrics_.hits;
          if (per_thread) {
            ++s.metrics_.per_thread[t].hits;
          }
          serve_dense(t, node);
        } else {
          ++s.metrics_.misses;
          if (per_thread) {
            ++s.metrics_.per_thread[t].misses;
          }
          s.state_[t] = Simulator::ThreadState::kWaiting;
          // lint:allow-hot-path-alloc — reserved to p
          queue_.push_back(DenseQueued{t, local});
        }
      }
    }
    issuers_.swap(issuers_next_);

    // Phase 3: fetch up to q queued requests; their pages land in F ticks.
    // The page rode along in the queue entry from the issue tick, so the
    // fetch reads nothing but the ring itself — no random access at all.
    for (std::uint32_t c = 0; c < q && !queue_.empty(); ++c) {
      const DenseQueued r = queue_.front();
      queue_.pop_front();
      ++s.metrics_.fetches;
      // lint:allow-hot-path-alloc — ring reserved to min(p, q·fetch_ticks)
      inflight_.push_back(DenseInFlight{now + fetch_ticks_, r.thread, r.page});
    }

    ++s.tick_;
    if (s.finished()) {
      export_state();  // leave the Simulator fully consistent for run()
      return DenseOutcome::kAdvanced;
    }
  }
  return DenseOutcome::kAdvanced;
}

void EventEngine::serve_dense(ThreadId t, std::uint32_t node) {
  Simulator& s = sim_;
  if (lru_) {
    mirror_touch(node);  // FIFO replacement ignores accesses
  }
  const Tick w = s.tick_ - s.request_tick_[t] + 1;
  s.metrics_.response.add(static_cast<double>(w));
  if (histogram_) {
    s.metrics_.response_hist.add(w);
  }
  if (per_thread_) {
    s.metrics_.per_thread[t].response.add(static_cast<double>(w));
  }
  // Cursor advance, done bookkeeping, and the cached-page refresh are the
  // reference path's own (retire_reference); only the runnable handover
  // differs — the dense loop keeps its issuer list instead of a bitmap.
  if (s.retire_reference(t)) {
    issuers_next_.push_back(t);  // lint:allow-hot-path-alloc — reserved to p
  }
}

void EventEngine::export_state() {
  HBMSIM_ASSERT(dense_, "export from a non-dense engine");
  dense_ = false;
  Simulator& s = sim_;
  // Per-thread scalars were mutated in place (structure-of-arrays), so
  // the only state to write back is the runnable set: the bitmap went
  // stale the moment the dense loop took over the issuer list.
  s.runnable_now_.clear_all();
  for (const ThreadId t : issuers_) {
    s.runnable_now_.set(t);
  }
  issuers_.clear();
  // Re-materialise the arbitration queue in FIFO order (kAny: one queue).
  while (!queue_.empty()) {
    const DenseQueued r = queue_.front();
    queue_.pop_front();
    const GlobalPage page = make_global_page(r.thread, r.page);
    s.queues_[0]->enqueue(
        QueuedRequest{page, r.thread, s.request_tick_[r.thread]});
  }
  // Re-materialise the in-flight ring.
  while (!inflight_.empty()) {
    const DenseInFlight f = inflight_.front();
    inflight_.pop_front();
    const GlobalPage page = make_global_page(f.thread, f.page);
    // lint:allow-hot-path-alloc — cold export; reserved to min(p, q·F)
    s.in_flight_.push_back(Simulator::InFlight{f.serve_tick, page, f.thread});
  }
  // Replay the mirror into the (still empty) real cache in eviction
  // order: the replacement policy re-derives the exact recency/insertion
  // order, and with occupancy <= k no replay insert evicts.
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    s.cache_->insert(nodes_[n].page);
  }
  evictions_base_ = mirror_evictions_;
  head_ = kNil;
  tail_ = kNil;
  cache_size_ = 0;
}

void EventEngine::finalize(RunMetrics& metrics) {
  // Evictions before the export live only in the mirror's counter; any
  // after a bailout accrue in the real cache.
  metrics.evictions = evictions_base_ + sim_.cache_->evictions();
}

std::size_t EventEngine::queue_size() const {
  return dense_ ? queue_.size() : Engine::queue_size();
}

void EventEngine::mirror_unlink(std::uint32_t n) noexcept {
  Node& nd = nodes_[n];
  if (nd.prev != kNil) {
    nodes_[nd.prev].next = nd.next;
  } else {
    head_ = nd.next;
  }
  if (nd.next != kNil) {
    nodes_[nd.next].prev = nd.prev;
  } else {
    tail_ = nd.prev;
  }
}

void EventEngine::mirror_append(std::uint32_t n) noexcept {
  nodes_[n].prev = tail_;
  nodes_[n].next = kNil;
  if (tail_ != kNil) {
    nodes_[tail_].next = n;
  } else {
    head_ = n;
  }
  tail_ = n;
}

void EventEngine::mirror_slot_erase(GlobalPage page) noexcept {
  DenseThread& dt = threads_[page_owner(page)];
  const LocalPage local = page_local(page);
  for (std::uint8_t i = 0; i < dt.nslots; ++i) {
    if (dt.slot_local[i] == local) {
      dt.slot_local[i] = dt.slot_local[dt.nslots - 1];
      dt.slot_node[i] = dt.slot_node[dt.nslots - 1];
      --dt.nslots;
      return;
    }
  }
  HBMSIM_ASSERT(false, "mirror cache slot index out of sync");
}

void EventEngine::mirror_insert(GlobalPage page) {
  std::uint32_t n;
  if (cache_size_ == cache_cap_) {
    // At capacity: evict the head (LRU-most / oldest insertion) and reuse
    // its node — the mirror of HbmCache::insert's pop_victim path.
    n = head_;
    mirror_unlink(n);
    mirror_slot_erase(nodes_[n].page);
    ++mirror_evictions_;
    nodes_[n].page = page;
  } else {
    // lint:allow-hot-path-alloc — pool reserved to min(k, p·kSlots)
    nodes_.push_back(Node{page, kNil, kNil});
    n = static_cast<std::uint32_t>(nodes_.size() - 1);
    ++cache_size_;
  }
  mirror_append(n);
  DenseThread& dt = threads_[page_owner(page)];
  HBMSIM_ASSERT(dt.nslots < kSlots,
                "mirror slot overflow past the bailout check");
  dt.slot_local[dt.nslots] = page_local(page);
  dt.slot_node[dt.nslots] = n;
  ++dt.nslots;
}

std::uint32_t EventEngine::mirror_find(ThreadId t,
                                       LocalPage local) const noexcept {
  const DenseThread& dt = threads_[t];
  for (std::uint8_t i = 0; i < dt.nslots; ++i) {
    if (dt.slot_local[i] == local) {
      return dt.slot_node[i];
    }
  }
  return kNil;
}

void EventEngine::mirror_touch(std::uint32_t n) noexcept {
  if (n == tail_) {
    return;
  }
  mirror_unlink(n);
  mirror_append(n);
}

}  // namespace hbmsim
