// The HBM+DRAM model simulator (§3.1).
//
// Tick semantics (paper's numbered steps, DESIGN.md §3):
//   1. if t % T == 0, remap priorities
//   2. cores whose current request misses in HBM join the DRAM queue
//   3. evictions happen as part of fetches (equivalent; ≤ q per tick)
//   4. cores whose current request is resident are served; a served core
//      issues its next request at tick t+1
//   5. up to q queued requests (arbitration order) are fetched into HBM;
//      a fetched page is servable from tick t+1 (so a miss costs ≥ 2)
//
// The implementation is sparse: threads blocked on the far channel cost
// nothing per tick, and every queue on the tick path (arbitration
// buckets, waiter chains, the in-flight ring) runs on pooled storage
// sized at construction, so the steady-state loop performs no heap
// allocations (DESIGN.md §3d). The reference tick engine
// (EngineKind::kTick) still costs O(refs + misses + idle_ticks) rather
// than O(makespan · p),
// where idle_ticks counts ticks in which no transfer arrives, no remap
// fires, no core is runnable, and the DRAM queue is empty — the term that
// dominates when q << p or fetch_ticks >> 1.
//
// How time advances is an Engine (core/engine.h), resolved once at
// construction: the fast engine (EngineKind::kFast, DESIGN.md §3c) jumps
// provably idle spans to the next event horizon — min(next in-flight
// serve_tick, next remap boundary t % T == 0, max_ticks, the open-system
// arrival horizon) — and batches single-runnable-thread hit runs; the
// event engine (EngineKind::kEvent, core/event_engine.h, DESIGN.md §3e)
// additionally runs saturated backlogs in O(events) through a dense
// mirrored fast path. All engines are bit-identical by contract
// (tests/simulator_property_test.cc differential suite); only
// RunMetrics::skipped_ticks may differ.
//
// Intra-tick determinism: cores are processed in core-id order at steps
// 2/4, so same-tick misses enter the DRAM queue in core-id order and any
// two runs of the same (workload, config) are bit-identical.
#pragma once

#include <memory>
#include <vector>

#include "core/arbitration.h"
#include "core/config.h"
#include "core/hbm_cache.h"
#include "core/metrics.h"
#include "core/priority_map.h"
#include "core/types.h"
#include "core/waiter_table.h"
#include "trace/trace.h"
#include "trace/trace_cursor.h"
#include "util/flat_map.h"
#include "util/ring_buffer.h"

namespace hbmsim {

namespace check {
class InvariantChecker;
}  // namespace check

class Engine;
class TickEngine;
class FastEngine;
class EventEngine;

class Simulator {
 public:
  /// Thread states, exposed for tests and step-by-step inspection.
  enum class ThreadState : std::uint8_t {
    kIssuing,   ///< will issue its current request at the next step
    kWaiting,   ///< request is in the DRAM queue
    kFetched,   ///< page arrived; serve at step 4 of the next tick
    kDone,      ///< trace fully served
  };

  Simulator(const Workload& workload, const SimConfig& config);

  /// Run against a custom residency model (e.g. assoc::DirectMappedCache).
  /// `cache` must be non-null; SimConfig::hbm_slots and ::replacement are
  /// ignored in favour of the supplied model.
  Simulator(const Workload& workload, const SimConfig& config,
            std::unique_ptr<CacheModel> cache);

  // Out of line: the checked-build InvariantChecker is only forward-
  // declared here. Non-movable: the checker holds a back-reference.
  ~Simulator();
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  /// Advance the simulation. Under the tick engine this is exactly one
  /// tick; under the fast or event engine one call may cover a whole
  /// batched hit run, a fast-forwarded idle span plus the event tick that
  /// ends it, or a dense backlog burst (now() always lands on an
  /// executed-tick boundary). Returns false when the simulation was
  /// already complete (no tick consumed).
  bool step();

  /// Run to completion — or to SimConfig::max_ticks, in which case the
  /// returned metrics carry truncated == true — and return the collected
  /// metrics.
  RunMetrics run();

  [[nodiscard]] bool finished() const noexcept {
    return done_threads_ == state_.size();
  }

  /// ---- Open-system serving mode (SimConfig::open_system only) ----
  /// Hand a fresh request trace to an idle worker: the worker must be
  /// kDone; it re-enters kIssuing and issues the trace's first reference
  /// at the tick the next step() executes. Used by serve::ServingSimulator
  /// to turn completed workers back into request servers.
  void inject_trace(ThreadId t, std::shared_ptr<const Trace> trace);

  /// With every worker idle (finished()), jump the clock forward to
  /// `to` (clamped to max_ticks; the span counts as idle_ticks). The
  /// serving driver uses this to skip dead air between request arrivals
  /// without paying per-tick cost.
  void advance_idle(Tick to);

  /// Promise that no trace will be injected at any tick < `horizon`
  /// (horizon >= now()). This turns arrival injection into an event the
  /// batching engines can schedule around: idle-span jumps and hit runs
  /// are clamped to the horizon, and the event engine's step() returns
  /// control at the horizon tick without executing it, so the serving
  /// driver can inject first. Defaults to 0 in open systems (every tick
  /// is a potential arrival — tick-exact stepping) and to "never" in
  /// closed systems.
  void set_arrival_horizon(Tick horizon);

  /// One worker finishing its injected trace, recorded by the tick it
  /// completed on. Buffered so a batched step can deliver several
  /// completions at once; entries are chronological, id-ascending within
  /// a tick — exactly the order a per-tick harvest scan would see.
  struct Completion {
    Tick tick;
    ThreadId thread;
  };
  [[nodiscard]] const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  void clear_completions() noexcept { completions_.clear(); }

  /// ---- Introspection (tests, debugging) ----
  [[nodiscard]] Tick now() const noexcept { return tick_; }
  [[nodiscard]] ThreadState thread_state(ThreadId t) const;
  [[nodiscard]] std::size_t queue_size() const noexcept;
  [[nodiscard]] const CacheModel& cache() const noexcept { return *cache_; }
  [[nodiscard]] const PriorityMap& priorities() const noexcept { return priorities_; }
  [[nodiscard]] const RunMetrics& metrics() const noexcept { return metrics_; }
  /// The engine this run resolved to (never kAuto) — see
  /// resolve_engine() in core/engine.h for the kAuto rule.
  [[nodiscard]] EngineKind engine() const noexcept { return resolved_engine_; }

 private:
  /// The reference §3.1 tick body (every engine executes event ticks
  /// through it). Precondition: !finished().
  bool step_tick();
  /// Fast/event engines: jump tick_ over a provably idle span to the next
  /// event horizon. Returns false (and skips nothing) unless the span is
  /// provably idle: no runnable core, empty DRAM queue, a transfer in
  /// flight that arrives strictly later, no remap boundary at tick_, and
  /// (open systems) no possible arrival before the horizon.
  bool fast_forward_idle();
  /// Fast/event engines: with exactly one runnable core and nothing
  /// queued or in flight, replay its run of consecutive HBM hits in a
  /// tight loop (one tick each, preserving the exact per-tick
  /// metric-update order, so the Welford response stats stay
  /// bit-identical), stopping at the arrival horizon. Returns whether any
  /// reference was served.
  bool serve_hit_run();
  void do_remap();
  void issue_and_serve();
  void fetch_from_dram();
  void serve(ThreadId t, GlobalPage page);
  /// Advance core `t` past its just-served reference: cursor step, done/
  /// completion bookkeeping, cached-page refresh. Returns whether the
  /// core still has a reference to issue (false == it just finished).
  bool retire_reference(ThreadId t);
  void enqueue_miss(ThreadId t, GlobalPage page, Tick request_tick);
  /// Shared-pages mode: a queue entry is stale if its thread has already
  /// been satisfied by another core's fetch of the same page.
  [[nodiscard]] bool is_stale(const QueuedRequest& request) const;
  [[nodiscard]] GlobalPage current_page(ThreadId t) const;

  /// The arbitration queue a page's request joins: a single shared queue
  /// under ChannelBinding::kAny, or the page's hashed channel queue.
  [[nodiscard]] ArbitrationPolicy& queue_for(GlobalPage page);

  /// Total entries across the arbitration queues. The tick machinery and
  /// the default Engine introspection use this directly; the public
  /// queue_size() delegates through the engine so a dense event-engine
  /// burst reports its mirrored queue instead.
  [[nodiscard]] std::size_t arbiter_queue_size() const noexcept;

  SimConfig config_;
  // Per-core run state, structure-of-arrays (DESIGN.md §3f): the tick
  // loop touches exactly the array it needs — the issue walk streams
  // state_/current_, the serve path request_tick_ — instead of dragging
  // a whole per-thread struct (cursor pointer included) through the
  // cache per visit. Indexed by ThreadId; all sized once to p.
  std::vector<std::unique_ptr<TraceCursor>> cursors_;  ///< reference streams
  std::vector<ThreadState> state_;
  std::vector<Tick> request_tick_;  ///< issue tick of the current request
  /// cursors_[t]->current(), cached so the hot issue path is an array
  /// load, not a virtual call. Refreshed by retire_reference().
  std::vector<LocalPage> current_;
  PriorityMap priorities_;
  /// One queue (kAny) or one per channel (kHashed).
  std::vector<std::unique_ptr<ArbitrationPolicy>> queues_;
  std::unique_ptr<CacheModel> cache_;
  RunMetrics metrics_;

  Tick tick_ = 0;
  std::size_t done_threads_ = 0;
  /// Open-system mode: references of traces fully served and since
  /// replaced by inject_trace (their next_ref counters were reset, but
  /// the response samples remain — conservation audits need the total).
  std::uint64_t retired_refs_ = 0;
  /// Resolved engine choice (see engine()); fixed at construction.
  EngineKind resolved_engine_ = EngineKind::kTick;
  /// The engine driving step()/run() (core/engine.h); built last in the
  /// constructor so it can inspect the final cache/checker wiring.
  std::unique_ptr<Engine> engine_impl_;
  /// No external arrival is injected at ticks < arrival_horizon_ (see
  /// set_arrival_horizon). 0 in open systems until the serving driver
  /// raises it; effectively infinite in closed systems.
  Tick arrival_horizon_ = 0;
  /// Open-system completion buffer (see completions()).
  std::vector<Completion> completions_;

  // Cores to consider at step 2/4 of the current tick (kIssuing and
  // kFetched states), as hierarchical bitmaps: set() is an O(1) sorted
  // insert and the per-tick walk (HierBitmap::consume) visits only
  // runnable cores, so a tick costs O(runnable + q) — no O(p) clear,
  // sort, or scan anywhere in the loop (DESIGN.md §3f).
  HierBitmap runnable_now_;
  HierBitmap runnable_next_;

  // shared_pages only: cores waiting on each in-flight page. Pooled
  // chains over a FlatMap, sized to p at construction — point lookups
  // with deterministic layout, and the steady-state add/resolve cycle
  // allocates nothing (tests/determinism_test.cc fingerprints the
  // shared-pages configs that exercise it).
  WaiterTable waiters_;

  // fetch_ticks > 1 only: fetches in flight, FIFO by issue tick (all
  // transfers take the same time, so arrival order == issue order).
  // Ring buffer sized once at construction (at most one transfer per
  // waiting core, so ≤ p entries).
  struct InFlight {
    Tick serve_tick;
    GlobalPage page;
    ThreadId thread;
  };
  RingBuffer<InFlight> in_flight_;
  // shared_pages + fetch_ticks > 1: pages currently being transferred,
  // so late co-requesters piggyback instead of double-fetching.
  // Deterministic FlatSet rather than std::unordered_set: membership
  // structures on simulation-ordering-sensitive paths must not even
  // offer a hash-dependent iteration order.
  FlatSet in_flight_pages_;
  void complete_arrivals();
  /// shared_pages: flip every core waiting on `page` to kFetched,
  /// marking them in `out` (the runnable set of the serving tick).
  void resolve_waiters(GlobalPage page, HierBitmap& out);

  /// Checked builds only (SimConfig::paranoid): audits every tick.
  std::unique_ptr<check::InvariantChecker> checker_;
  friend class check::InvariantChecker;
  // Engines drive the private tick machinery directly (friendship is not
  // inherited, so each concrete engine is named).
  friend class Engine;
  friend class TickEngine;
  friend class FastEngine;
  friend class EventEngine;
};

/// One-shot convenience: simulate `workload` under `config`.
[[nodiscard]] RunMetrics simulate(const Workload& workload, const SimConfig& config);

}  // namespace hbmsim
