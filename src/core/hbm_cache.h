// The HBM itself: k page slots holding pages fetched from DRAM.
//
// CacheModel is the residency abstraction the simulator drives; the
// default HbmCache is fully associative with a pluggable replacement
// policy (§3 Property 3). assoc/DirectMappedCache implements the same
// interface for the Lemma 1 / Corollary 1 experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/replacement.h"
#include "core/types.h"

namespace hbmsim {

/// Abstract page-residency model for an HBM of fixed slot capacity.
class CacheModel {
 public:
  virtual ~CacheModel() = default;

  /// Is `page` resident?
  [[nodiscard]] virtual bool contains(GlobalPage page) const = 0;

  /// Record a serve of a resident page (recency update where relevant).
  virtual void touch(GlobalPage page) = 0;

  /// Bring `page` in from DRAM; returns the evicted page, if any.
  virtual std::optional<GlobalPage> insert(GlobalPage page) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
  [[nodiscard]] virtual std::uint64_t evictions() const = 0;

  /// Every resident page, in the model's natural order (eviction order
  /// for HbmCache, slot order for DirectMappedCache). Introspection for
  /// the invariant checker and tests — O(size), not for hot paths.
  [[nodiscard]] virtual std::vector<GlobalPage> resident_pages() const = 0;
};

/// Fully-associative HBM with a replacement policy (the model default).
class HbmCache final : public CacheModel {
 public:
  /// An HBM with `capacity` page slots (the model's k).
  HbmCache(std::uint64_t capacity, ReplacementKind replacement);

  [[nodiscard]] bool contains(GlobalPage page) const override;
  void touch(GlobalPage page) override;
  std::optional<GlobalPage> insert(GlobalPage page) override;

  /// Explicitly remove a page (tests and the assoc layer).
  void erase(GlobalPage page);

  [[nodiscard]] std::uint64_t capacity() const override { return capacity_; }
  /// The replacement policy this cache was built with (introspection for
  /// the checked-build ShadowedCache wrapper).
  [[nodiscard]] ReplacementKind replacement() const noexcept {
    return replacement_;
  }
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::uint64_t free_slots() const noexcept;
  [[nodiscard]] std::uint64_t evictions() const override { return evictions_; }
  [[nodiscard]] std::vector<GlobalPage> resident_pages() const override;

  void clear();

 private:
  std::uint64_t capacity_;
  ReplacementKind replacement_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::uint64_t evictions_ = 0;
};

}  // namespace hbmsim
