// Priority permutations π: thread id → priority (Definition 1 of the
// paper, plus the cycle-reverse and interleave variants from the
// parameter sweep).
//
//   Priority          π is always the identity.
//   Dynamic Priority  replace π with a fresh uniformly random permutation.
//   Cycle Priority    π'(i) = (π(i) + 1) mod p.
//   Cycle-Reverse     π'(i) = (π(i) - 1 + p) mod p.
//   Interleave        riffle the priority order: old priority x becomes
//                     2x for x < ⌈p/2⌉ and 2(x-⌈p/2⌉)+1 otherwise, so
//                     front-half and back-half threads alternate.
//
// Lower π value = higher priority (π(i) == 0 is served first).
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/error.h"
#include "util/rng.h"

namespace hbmsim {

/// How priorities change at each remap boundary.
enum class RemapScheme {
  kNone,          ///< static Priority: identity forever
  kDynamic,       ///< Dynamic Priority: fresh random permutation
  kCycle,         ///< Cycle Priority: rotate by +1
  kCycleReverse,  ///< rotate by -1
  kInterleave,    ///< riffle-interleave the priority order
};

[[nodiscard]] constexpr const char* to_string(RemapScheme s) noexcept {
  switch (s) {
    case RemapScheme::kNone: return "none";
    case RemapScheme::kDynamic: return "dynamic";
    case RemapScheme::kCycle: return "cycle";
    case RemapScheme::kCycleReverse: return "cycle-reverse";
    case RemapScheme::kInterleave: return "interleave";
  }
  return "?";
}

/// The live permutation π with its remap rule.
class PriorityMap {
 public:
  PriorityMap(std::uint32_t num_threads, RemapScheme scheme, std::uint64_t seed)
      : scheme_(scheme), pi_(num_threads), rng_(seed) {
    if (num_threads == 0) {
      throw ConfigError("priority map needs at least one thread");
    }
    std::iota(pi_.begin(), pi_.end(), 0u);
  }

  /// Apply the remap rule once. Returns true if π actually changed.
  bool remap() {
    const std::uint32_t p = static_cast<std::uint32_t>(pi_.size());
    switch (scheme_) {
      case RemapScheme::kNone:
        return false;
      case RemapScheme::kDynamic:
        hbmsim::shuffle(pi_.begin(), pi_.end(), rng_);
        return p > 1;
      case RemapScheme::kCycle:
        for (auto& x : pi_) {
          x = (x + 1) % p;
        }
        return p > 1;
      case RemapScheme::kCycleReverse:
        for (auto& x : pi_) {
          x = (x + p - 1) % p;
        }
        return p > 1;
      case RemapScheme::kInterleave: {
        const std::uint32_t half = (p + 1) / 2;
        for (auto& x : pi_) {
          x = x < half ? 2 * x : 2 * (x - half) + 1;
        }
        return p > 1;
      }
    }
    return false;
  }

  /// Priority of a thread; 0 is the highest priority.
  [[nodiscard]] std::uint32_t priority_of(ThreadId thread) const noexcept {
    HBMSIM_ASSERT(thread < pi_.size(), "thread out of range");
    return pi_[thread];
  }

  [[nodiscard]] std::span<const std::uint32_t> pi() const noexcept { return pi_; }
  [[nodiscard]] RemapScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(pi_.size());
  }

 private:
  RemapScheme scheme_;
  std::vector<std::uint32_t> pi_;
  Xoshiro256StarStar rng_;
};

}  // namespace hbmsim
