// HBM block-replacement policies (§1.1, §2).
//
// The policy tracks the set of resident pages and chooses eviction
// victims. LRU is the paper's default (constant-competitive with constant
// resource augmentation, Sleator–Tarjan); FIFO and CLOCK are provided for
// the replacement-policy ablation (DESIGN.md A2).
//
// All operations are O(1) amortised except CLOCK's victim scan, which is
// O(1) amortised over a full hand rotation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/types.h"

namespace hbmsim {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A page was brought into HBM. Must not already be tracked.
  virtual void on_insert(GlobalPage page) = 0;

  /// A resident page was served to its core.
  virtual void on_access(GlobalPage page) = 0;

  /// Choose and remove the eviction victim. Requires size() > 0.
  virtual GlobalPage pop_victim() = 0;

  /// Remove a specific page (flush); no-op if not tracked.
  virtual void erase(GlobalPage page) = 0;

  /// Is the page resident?
  [[nodiscard]] virtual bool contains(GlobalPage page) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// All tracked pages in eviction order: element 0 is the page
  /// pop_victim() would remove next. For CLOCK the order is the hand's
  /// scan order, which only approximates the true eviction sequence
  /// (reference bits may grant second chances). Introspection for the
  /// invariant checker and tests — O(size), not for hot paths.
  [[nodiscard]] virtual std::vector<GlobalPage> victim_order() const = 0;

  virtual void clear() = 0;

  /// Factory. `capacity_hint` sizes internal tables.
  [[nodiscard]] static std::unique_ptr<ReplacementPolicy> make(
      ReplacementKind kind, std::uint64_t capacity_hint);
};

}  // namespace hbmsim
