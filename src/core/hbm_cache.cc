#include "core/hbm_cache.h"

#include "util/error.h"

namespace hbmsim {

HbmCache::HbmCache(std::uint64_t capacity, ReplacementKind replacement)
    : capacity_(capacity),
      replacement_(replacement),
      policy_(ReplacementPolicy::make(replacement, capacity)) {
  if (capacity == 0) {
    throw ConfigError("HBM capacity must be positive");
  }
}

bool HbmCache::contains(GlobalPage page) const {
  return policy_->contains(page);
}

void HbmCache::touch(GlobalPage page) { policy_->on_access(page); }

std::optional<GlobalPage> HbmCache::insert(GlobalPage page) {
  HBMSIM_ASSERT(!contains(page), "inserting already-resident page");
  std::optional<GlobalPage> victim;
  if (policy_->size() >= capacity_) {
    victim = policy_->pop_victim();
    ++evictions_;
  }
  policy_->on_insert(page);
  return victim;
}

void HbmCache::erase(GlobalPage page) { policy_->erase(page); }

std::size_t HbmCache::size() const { return policy_->size(); }

std::uint64_t HbmCache::free_slots() const noexcept {
  return capacity_ - policy_->size();
}

std::vector<GlobalPage> HbmCache::resident_pages() const {
  return policy_->victim_order();
}

void HbmCache::clear() {
  policy_->clear();
  evictions_ = 0;
}

}  // namespace hbmsim
