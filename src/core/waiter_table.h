// WaiterTable: shared-pages bookkeeping of which cores wait on each
// in-flight page (Simulator::waiters_).
//
// Replaces std::unordered_map<GlobalPage, std::vector<ThreadId>> on the
// tick hot path: an open-addressed FlatMap from page to an intrusive
// chain threaded through a structure-of-arrays successor table. A core
// waits on at most one page at a time, so the core id itself is the
// node handle — next_[t] is the next waiter after core t in its chain —
// and the per-thread state is a single flat uint32 array (4 bytes per
// core, DESIGN.md §3f) instead of pooled {thread, next} nodes. Chains
// append at the tail, so waiters come back in registration order — the
// same order the vector gave. Sized once from SimConfig (at most p
// cores can wait), the steady-state add/resolve cycle performs no
// allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/error.h"
#include "util/flat_map.h"

namespace hbmsim {

class WaiterTable {
 public:
  explicit WaiterTable(std::size_t capacity_hint = 0) {
    reserve(capacity_hint);
  }

  /// Pre-size for `n` cores (and thus at most `n` pages with waiters).
  void reserve(std::size_t n) {
    chains_.reserve(n);
    if (n > next_.size()) {
      next_.resize(n, kNil);
    }
  }

  /// Register `thread` as waiting on `page` (appended in call order).
  /// A core may wait on at most one page at a time.
  void add(GlobalPage page, ThreadId thread) {
    HBMSIM_ASSERT(thread < next_.size(), "waiter thread out of range");
    next_[thread] = kNil;
    if (Chain* chain = chains_.find(page)) {
      next_[chain->tail] = thread;
      chain->tail = thread;
    } else {
      chains_.insert(page, Chain{thread, thread});
    }
  }

  [[nodiscard]] bool contains(GlobalPage page) const noexcept {
    return chains_.contains(page);
  }

  /// Pages that currently have at least one registered waiter.
  [[nodiscard]] std::size_t pages() const noexcept { return chains_.size(); }

  /// Visit `page`'s waiters in registration order.
  template <typename Fn>
  void for_each(GlobalPage page, Fn&& fn) const {
    const Chain* chain = chains_.find(page);
    if (chain == nullptr) {
      return;
    }
    for (std::uint32_t t = chain->head; t != kNil; t = next_[t]) {
      fn(static_cast<ThreadId>(t));
    }
  }

  /// Visit `page`'s waiters in registration order, then drop the entry.
  /// Returns whether the page had waiters.
  template <typename Fn>
  bool take(GlobalPage page, Fn&& fn) {
    const Chain* chain = chains_.find(page);
    if (chain == nullptr) {
      return false;
    }
    std::uint32_t t = chain->head;
    chains_.erase(page);
    while (t != kNil) {
      const std::uint32_t succ = next_[t];
      next_[t] = kNil;
      fn(static_cast<ThreadId>(t));
      t = succ;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Chain {
    std::uint32_t head;
    std::uint32_t tail;
  };

  FlatMap<Chain> chains_;
  /// next_[t]: the waiter after core t in its page's chain (kNil at the
  /// tail or when t is not waiting). Indexed by ThreadId — the SoA twin
  /// of the simulator's per-thread arrays.
  std::vector<std::uint32_t> next_;
};

}  // namespace hbmsim
