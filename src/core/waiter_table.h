// WaiterTable: shared-pages bookkeeping of which cores wait on each
// in-flight page (Simulator::waiters_).
//
// Replaces std::unordered_map<GlobalPage, std::vector<ThreadId>> on the
// tick hot path: an open-addressed FlatMap from page to an intrusive
// chain of pooled waiter nodes. Chains append at the tail, so waiters
// come back in registration order — the same order the vector gave —
// and resolving a page releases its nodes to the pool instead of
// destroying a vector. Sized once from SimConfig (at most p cores can
// wait), the steady-state add/resolve cycle performs no allocations.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "util/flat_map.h"

namespace hbmsim {

class WaiterTable {
 public:
  explicit WaiterTable(std::size_t capacity_hint = 0) {
    reserve(capacity_hint);
  }

  /// Pre-size for `n` concurrently waiting cores (and thus at most `n`
  /// pages with waiters).
  void reserve(std::size_t n) {
    chains_.reserve(n);
    pool_.reserve(n);
  }

  /// Register `thread` as waiting on `page` (appended in call order).
  void add(GlobalPage page, ThreadId thread) {
    const std::uint32_t id = pool_.acquire();
    pool_[id] = Node{thread, kNil};
    if (Chain* chain = chains_.find(page)) {
      pool_[chain->tail].next = id;
      chain->tail = id;
    } else {
      chains_.insert(page, Chain{id, id});
    }
  }

  [[nodiscard]] bool contains(GlobalPage page) const noexcept {
    return chains_.contains(page);
  }

  /// Pages that currently have at least one registered waiter.
  [[nodiscard]] std::size_t pages() const noexcept { return chains_.size(); }

  /// Visit `page`'s waiters in registration order.
  template <typename Fn>
  void for_each(GlobalPage page, Fn&& fn) const {
    const Chain* chain = chains_.find(page);
    if (chain == nullptr) {
      return;
    }
    for (std::uint32_t id = chain->head; id != kNil; id = pool_[id].next) {
      fn(pool_[id].thread);
    }
  }

  /// Visit `page`'s waiters in registration order, then drop the entry
  /// (nodes return to the pool). Returns whether the page had waiters.
  template <typename Fn>
  bool take(GlobalPage page, Fn&& fn) {
    const Chain* chain = chains_.find(page);
    if (chain == nullptr) {
      return false;
    }
    std::uint32_t id = chain->head;
    chains_.erase(page);
    while (id != kNil) {
      const Node node = pool_[id];
      pool_.release(id);
      fn(node.thread);
      id = node.next;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    ThreadId thread;
    std::uint32_t next;
  };
  struct Chain {
    std::uint32_t head;
    std::uint32_t tail;
  };

  FlatMap<Chain> chains_;
  IndexPool<Node> pool_;
};

}  // namespace hbmsim
