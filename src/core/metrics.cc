#include "core/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/format.h"

namespace hbmsim {

Tick RunMetrics::completion_spread() const noexcept {
  Tick lo = ~Tick{0};
  Tick hi = 0;
  bool any = false;
  for (const ThreadMetrics& t : per_thread) {
    if (t.refs == 0) {
      continue;
    }
    lo = std::min(lo, t.completion_tick);
    hi = std::max(hi, t.completion_tick);
    any = true;
  }
  return any ? hi - lo : 0;
}

std::string RunMetrics::summary() const {
  std::ostringstream os;
  if (truncated) {
    os << "TRUNCATED at max_ticks — totals below cover the completed "
          "prefix only\n";
  }
  os << "makespan:        " << format_count(makespan) << " ticks\n"
     << "references:      " << format_count(total_refs) << " (hits "
     << format_count(hits) << ", misses " << format_count(misses) << ", hit rate "
     << format_fixed(hit_rate() * 100.0, 2) << "%)\n"
     << "evictions:       " << format_count(evictions) << "\n"
     << "remaps:          " << format_count(remaps) << "\n";
  os << "idle ticks:      " << format_count(idle_ticks);
  if (skipped_ticks > 0) {
    os << " (" << format_count(skipped_ticks) << " fast-forwarded)";
  }
  os << "\n"
     << "response time:   mean " << format_fixed(mean_response()) << ", stddev "
     << format_fixed(inconsistency()) << " (inconsistency), max "
     << format_count(max_response()) << "\n";
  if (!per_thread.empty()) {
    os << "completion:      spread " << format_count(completion_spread())
       << " ticks across " << per_thread.size() << " threads\n";
  }
  return os.str();
}

}  // namespace hbmsim
