#include "core/engine.h"

#include <string>

#include "core/event_engine.h"
#include "util/error.h"

namespace hbmsim {

namespace {

// One row per engine, kAuto last as a pseudo-entry (it resolves to a
// concrete engine before construction; its row documents the resolution
// rule for `hbmsim_cli --engine list`). kFast cannot run open systems:
// its idle-span and hit-run proofs assume no external arrivals, while
// the event engine bounds every batch by the arrival horizon. kFast is
// also frozen out of adaptive arbitration: it is kept as the first-
// generation executable spec, and the epoch hook postdates the audit of
// its span proofs — tick and event run kAdaptive bit-identically.
constexpr EngineCaps kEngineRegistry[] = {
    {EngineKind::kTick, "tick",
     "reference tick loop: executes every tick, the executable spec",
     /*open_system=*/true, /*paranoid=*/true, /*fetch_ticks=*/true,
     /*adaptive=*/true, "DESIGN.md S3"},
    {EngineKind::kFast, "fast",
     "jumps provably idle spans, batches single-thread hit runs",
     /*open_system=*/false, /*paranoid=*/true, /*fetch_ticks=*/true,
     /*adaptive=*/false, "DESIGN.md S3c"},
    {EngineKind::kEvent, "event",
     "calendar-queue core: O(events) on backlog, arrival-horizon aware",
     /*open_system=*/true, /*paranoid=*/true, /*fetch_ticks=*/true,
     /*adaptive=*/true, "DESIGN.md S3e"},
    {EngineKind::kAuto, "auto",
     "resolves at construction: event where batching pays, else tick",
     /*open_system=*/true, /*paranoid=*/true, /*fetch_ticks=*/true,
     /*adaptive=*/true, "core/engine.h"},
};

}  // namespace

std::span<const EngineCaps> engine_registry() noexcept {
  return kEngineRegistry;
}

const EngineCaps& engine_caps(EngineKind kind) noexcept {
  for (const EngineCaps& caps : kEngineRegistry) {
    if (caps.kind == kind) {
      return caps;
    }
  }
  HBMSIM_ASSERT(false, "engine kind missing from registry");
  return kEngineRegistry[0];
}

EngineKind resolve_engine(const SimConfig& config,
                          std::size_t num_threads) noexcept {
  if (config.engine != EngineKind::kAuto) {
    return config.engine;
  }
  // The event engine's batching can pay in three regimes: open-system
  // arrivals (idle spans between arrivals), fetch_ticks > 1 (idle spans
  // while transfers fly), and single-thread workloads (hit runs). In
  // every other regime its guards never fire, so the reference engine is
  // chosen to keep step() branch-free.
  if (config.open_system || config.fetch_ticks > 1 || num_threads == 1) {
    return EngineKind::kEvent;
  }
  return EngineKind::kTick;
}

std::string engine_validation_error(const SimConfig& config) {
  if (config.engine == EngineKind::kAuto) {
    return {};  // resolve_engine() only ever picks a capable engine
  }
  const EngineCaps& caps = engine_caps(config.engine);
  if (config.open_system && !caps.supports_open_system) {
    return std::string("open_system requires an engine with open-system "
                       "support (see --engine list): engine '") +
           caps.name +
           "' lacks it — injected arrivals are events its idle-span proofs "
           "cannot see";
  }
  if (config.paranoid && !caps.supports_paranoid) {
    return std::string("paranoid tick audits are unsupported by engine '") +
           caps.name + "' (see --engine list)";
  }
  if (config.fetch_ticks > 1 && !caps.supports_fetch_ticks) {
    return std::string("fetch_ticks > 1 is unsupported by engine '") +
           caps.name + "' (see --engine list)";
  }
  if (config.arbitration == ArbitrationKind::kAdaptive &&
      !caps.supports_adaptive) {
    return std::string("adaptive arbitration is unsupported by engine '") +
           caps.name +
           "' (see --engine list) — the engine predates the epoch hook and "
           "its support matrix is frozen";
  }
  return {};
}

std::unique_ptr<Engine> make_engine(EngineKind resolved, Simulator& sim) {
  switch (resolved) {
    case EngineKind::kTick:
      return std::make_unique<TickEngine>(sim);
    case EngineKind::kFast:
      return std::make_unique<FastEngine>(sim);
    case EngineKind::kEvent:
      return std::make_unique<EventEngine>(sim);
    case EngineKind::kAuto:
      break;
  }
  HBMSIM_CHECK(false, "make_engine requires a resolved (non-auto) kind");
  return nullptr;
}

void Engine::finalize(RunMetrics& metrics) {
  metrics.evictions = sim_.cache_->evictions();
}

std::size_t Engine::queue_size() const { return sim_.arbiter_queue_size(); }

Simulator::ThreadState Engine::thread_state(ThreadId t) const {
  return sim_.state_[t];
}

bool TickEngine::step() { return sim_.step_tick(); }

const EngineCaps& TickEngine::caps() const noexcept {
  return engine_caps(EngineKind::kTick);
}

bool FastEngine::step() {
  if (sim_.serve_hit_run()) {
    if (sim_.finished()) {
      return true;
    }
  } else {
    sim_.fast_forward_idle();
  }
  return sim_.step_tick();
}

const EngineCaps& FastEngine::caps() const noexcept {
  return engine_caps(EngineKind::kFast);
}

}  // namespace hbmsim
