// Simulation configuration: the model parameters (k, q) and the two
// policies under study (§1.1): far-channel arbitration and HBM block
// replacement.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "core/priority_map.h"
#include "util/error.h"

namespace hbmsim {

/// Far-channel arbitration family (§1.1, §4).
enum class ArbitrationKind {
  kFifo,      ///< First-In-First-Out (FCFS): the hardware status quo
  kPriority,  ///< priority order π over threads (static or remapped)
  kRandom,    ///< uniformly random waiting request (the T→1 limit)
  kFrFcfs,    ///< first-ready FCFS: row hits first, then oldest (§1.3 —
              ///< "first-ready first-come-first-served", the FCFS variant
              ///< KNL's DRAM controller is believed to implement)
  kAdaptive,  ///< hybrid FIFO↔Priority: every remap_period ticks the
              ///< arbiter observes the queue depth and switches mode by
              ///< hysteresis (adaptive_high_depth / adaptive_low_depth) —
              ///< the HAPPY-style policy from ROADMAP item 5, thresholds
              ///< tunable by opt/predictor
};

[[nodiscard]] constexpr const char* to_string(ArbitrationKind k) noexcept {
  switch (k) {
    case ArbitrationKind::kFifo: return "fifo";
    case ArbitrationKind::kPriority: return "priority";
    case ArbitrationKind::kRandom: return "random";
    case ArbitrationKind::kFrFcfs: return "fr-fcfs";
    case ArbitrationKind::kAdaptive: return "adaptive";
  }
  return "?";
}

/// How DRAM requests map to the q far channels.
enum class ChannelBinding {
  kAny,     ///< any request may use any free channel (the model of §2)
  kHashed,  ///< each page is bound to channel hash(page) mod q, as in
            ///< address-interleaved hardware controllers
};

[[nodiscard]] constexpr const char* to_string(ChannelBinding b) noexcept {
  switch (b) {
    case ChannelBinding::kAny: return "any";
    case ChannelBinding::kHashed: return "hashed";
  }
  return "?";
}

/// HBM block-replacement family (§2).
enum class ReplacementKind {
  kLru,    ///< least recently used (the paper's default)
  kFifo,   ///< first-in (insertion order)
  kClock,  ///< CLOCK second-chance approximation of LRU
};

[[nodiscard]] constexpr const char* to_string(ReplacementKind k) noexcept {
  switch (k) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kFifo: return "fifo";
    case ReplacementKind::kClock: return "clock";
  }
  return "?";
}

/// Execution engine (DESIGN.md §3c/§3e). Every engine computes the same
/// function of (workload, config) — the fast and event engines are
/// required to be bit-identical to the reference tick loop (the
/// differential suite in tests/simulator_property_test.cc enforces it);
/// the only field allowed to differ is the RunMetrics::skipped_ticks
/// diagnostic. Engine capabilities (open-system support, paranoid
/// support, fetch_ticks support) live in the registry in core/engine.h —
/// validation consults it instead of hand-rolled per-engine rejections.
enum class EngineKind {
  kTick,   ///< reference: execute every tick of the §3.1 loop
  kFast,   ///< event-driven: jump over provably idle spans, batch hit runs
  kEvent,  ///< calendar-queue: schedule state-changing events only, batch
           ///< per-tick bookkeeping between them (wins on backlog too)
  kAuto,   ///< resolve at construction via the registry (core/engine.h)
};

[[nodiscard]] constexpr const char* to_string(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kTick: return "tick";
    case EngineKind::kFast: return "fast";
    case EngineKind::kEvent: return "event";
    case EngineKind::kAuto: return "auto";
  }
  return "?";
}

/// Parse an engine name; shared by the CLI (--engine), the bench
/// harnesses, and the HBMSIM_ENGINE environment default.
[[nodiscard]] inline EngineKind parse_engine(std::string_view name) {
  if (name == "tick") {
    return EngineKind::kTick;
  }
  if (name == "fast") {
    return EngineKind::kFast;
  }
  if (name == "event") {
    return EngineKind::kEvent;
  }
  if (name == "auto") {
    return EngineKind::kAuto;
  }
  throw ConfigError("unknown engine '" + std::string(name) +
                    "' (tick|fast|event|auto)");
}

/// Which arbitration-queue implementation the Simulator builds. The model
/// semantics are identical by contract — kReference keeps the original
/// tree/scan structures alive in src/check/ as an executable spec, and
/// kShadow runs both lock-step, throwing check::InvariantError on the
/// first divergent pop/size/snapshot. A perf-equivalence harness knob
/// (bench --arbiter-compare, the differential grid), not a model
/// parameter: it is deliberately absent from the JSON config echo.
enum class ArbiterImpl {
  kFast,       ///< bucketed/pooled production structures (default)
  kReference,  ///< the pre-optimisation map/deque/scan implementations
  kShadow,     ///< kFast cross-checked against kReference on every call
};

[[nodiscard]] constexpr const char* to_string(ArbiterImpl a) noexcept {
  switch (a) {
    case ArbiterImpl::kFast: return "fast";
    case ArbiterImpl::kReference: return "reference";
    case ArbiterImpl::kShadow: return "shadow";
  }
  return "?";
}

struct SimConfig;

/// Engine-capability check for a configuration: the first capability the
/// requested engine lacks for this config, or empty when compatible.
/// Defined in core/engine.cc against the engine registry — SimConfig's
/// validation delegates here instead of hand-rolling per-engine mode
/// rejections.
[[nodiscard]] std::string engine_validation_error(const SimConfig& config);

/// Full simulation configuration.
struct SimConfig {
  /// HBM capacity k, in page slots.
  std::uint64_t hbm_slots = 1024;

  /// Number of far channels q between HBM and DRAM (1 in the original
  /// Das et al. model; the paper's extension allows 1..10).
  std::uint32_t num_channels = 1;

  ArbitrationKind arbitration = ArbitrationKind::kFifo;
  ReplacementKind replacement = ReplacementKind::kLru;
  ChannelBinding channel_binding = ChannelBinding::kAny;

  /// FR-FCFS only: pages per DRAM row — a queued request is "row ready"
  /// when its page falls in the row a channel last fetched from.
  std::uint32_t row_pages = 4;

  /// Extension beyond the paper: DRAM block-transfer latency in ticks
  /// (the model fixes it at 1). A fetch issued at tick t is servable at
  /// tick t + fetch_ticks; channels stay pipelined (one new fetch per
  /// channel per tick), so this raises latency without changing
  /// bandwidth. A miss then costs ≥ fetch_ticks + 1 ticks.
  std::uint32_t fetch_ticks = 1;

  /// Priority remap rule; only meaningful for kPriority arbitration.
  RemapScheme remap_scheme = RemapScheme::kNone;

  /// Remap period T in ticks (the paper reports T as a multiple of k;
  /// callers typically set remap_period = multiplier * hbm_slots).
  /// 0 disables remapping. kAdaptive arbitration reuses this as its
  /// epoch length — the boundary tick is when the arbiter re-reads the
  /// queue depth — so it must be positive there.
  std::uint64_t remap_period = 0;

  /// kAdaptive only: switch to Priority mode when the observed queue
  /// depth at an epoch boundary reaches this many requests. Must be ≥ 1
  /// (and ≥ adaptive_low_depth) under kAdaptive; must stay 0 elsewhere.
  std::uint32_t adaptive_high_depth = 0;

  /// kAdaptive only: switch back to FIFO mode when the observed queue
  /// depth at an epoch boundary has drained to at most this many
  /// requests. The gap to adaptive_high_depth is the hysteresis band.
  std::uint32_t adaptive_low_depth = 0;

  /// Seed for Dynamic Priority's permutations and kRandom arbitration.
  std::uint64_t seed = 1;

  /// Extension beyond the paper (its §6.1 future work): non-disjoint
  /// access sequences. When true, all cores share one page namespace —
  /// the same local page id names the same HBM page everywhere, one
  /// DRAM fetch satisfies every core waiting on that page, and a page is
  /// effectively fetched at the priority of its best-ranked waiter.
  /// When false (default), the model's Property 1 holds: per-core page
  /// sets are disjoint.
  bool shared_pages = false;

  /// Audit every tick with the invariant checker (src/check/): the cache
  /// is wrapped in a ShadowedCache and InvariantChecker::after_tick()
  /// runs at each step. Only honoured in checked builds
  /// (-DHBMSIM_CHECKED=ON or Debug; see check/check.h) — elsewhere the
  /// Simulator rejects paranoid configs with ConfigError, so Release
  /// binaries provably compile the hooks out. Defaults to the
  /// HBMSIM_PARANOID environment variable, which lets whole bench and
  /// test suites run under audit without code changes.
  bool paranoid = default_paranoid();

  /// Execution engine (DESIGN.md §3c/§3e). kAuto resolves at Simulator
  /// construction via resolve_engine() in core/engine.h: the event engine
  /// is selected where batching can actually help (open_system,
  /// fetch_ticks > 1, or a single-thread workload); the reference tick
  /// engine runs otherwise. The fast engine is never auto-selected — it
  /// remains an explicit request, kept as the first-generation executable
  /// spec for idle-span jumping. Defaults to the HBMSIM_ENGINE
  /// environment variable (tick|fast|event|auto), so whole bench and
  /// test suites can switch engines without code changes.
  EngineKind engine = default_engine();

  /// Arbitration-queue implementation (see ArbiterImpl). Paranoid runs
  /// upgrade kFast to kShadow so the reference arbiter audits every pop;
  /// unlike paranoid, kShadow itself works in every build type (the
  /// comparison uses HBMSIM_INVARIANT, which is always compiled).
  ArbiterImpl arbiter_impl = ArbiterImpl::kFast;

  /// Parse HBMSIM_ENGINE; kAuto when unset or empty. Unlike
  /// default_paranoid() the parse is not cached: the bench harnesses set
  /// the variable from their own --engine flag before building configs.
  [[nodiscard]] static EngineKind default_engine() {
    const char* v = std::getenv("HBMSIM_ENGINE");
    if (v == nullptr || *v == '\0') {
      return EngineKind::kAuto;
    }
    return parse_engine(v);
  }

  /// True when HBMSIM_PARANOID is set to a non-empty value other than "0".
  [[nodiscard]] static bool default_paranoid() {
    static const bool enabled = [] {
      const char* v = std::getenv("HBMSIM_PARANOID");
      return v != nullptr && *v != '\0' && std::string_view(v) != "0";
    }();
    return enabled;
  }

  /// Collect the response-time histogram (cheap; on by default).
  bool response_histogram = true;

  /// Collect per-thread metrics (on by default).
  bool per_thread_metrics = true;

  /// Safety valve: cut the run off after this many ticks. Exceeding it is
  /// not an error — the run stops and reports RunMetrics::truncated, so an
  /// overloaded open-system run still yields its prefix metrics.
  std::uint64_t max_ticks = std::uint64_t{1} << 42;

  /// Open-system serving mode (src/serve/): the Simulator accepts fresh
  /// request traces on idle workers via inject_trace() and skips empty
  /// spans via advance_idle(). Arrivals are external events, so the
  /// engine must declare supports_open_system in the registry
  /// (core/engine.h): kAuto resolves to kEvent, whose batching is bounded
  /// by the arrival horizon, while an explicit kFast request is rejected
  /// by validate() — its idle-span proofs cannot see arrivals.
  bool open_system = false;

  /// Describe the first inconsistency in this configuration for a
  /// workload of `num_threads` cores; empty string when valid. The single
  /// source of truth for config checking — the Simulator constructor, the
  /// CLI, and the experiment runner all call it (directly or via
  /// validate()), so an invalid point reports one descriptive message
  /// instead of failing on scattered ad-hoc checks.
  [[nodiscard]] std::string validation_error(std::uint32_t num_threads) const {
    if (hbm_slots == 0) {
      return "hbm_slots (k) must be positive";
    }
    if (num_channels == 0) {
      return "num_channels (q) must be positive";
    }
    if (num_channels > hbm_slots) {
      return "num_channels (q=" + std::to_string(num_channels) +
             ") must not exceed hbm_slots (k=" + std::to_string(hbm_slots) + ")";
    }
    if (num_threads == 0) {
      return "workload must have at least one thread";
    }
    if (remap_scheme != RemapScheme::kNone && remap_period == 0) {
      return std::string("remap_scheme '") + to_string(remap_scheme) +
             "' set but remap_period (T) is 0";
    }
    if (arbitration != ArbitrationKind::kPriority &&
        remap_scheme != RemapScheme::kNone) {
      return std::string("remap_scheme only applies to priority arbitration "
                         "(arbitration is '") +
             to_string(arbitration) + "')";
    }
    if (arbitration == ArbitrationKind::kFrFcfs && row_pages == 0) {
      return "FR-FCFS requires a positive row size (row_pages)";
    }
    if (arbitration == ArbitrationKind::kAdaptive) {
      if (remap_period == 0) {
        return "adaptive arbitration requires a positive epoch length "
               "(remap_period)";
      }
      if (adaptive_high_depth == 0) {
        return "adaptive arbitration requires adaptive_high_depth >= 1 "
               "(the Priority-mode trigger)";
      }
      if (adaptive_low_depth > adaptive_high_depth) {
        return "adaptive_low_depth (" + std::to_string(adaptive_low_depth) +
               ") must not exceed adaptive_high_depth (" +
               std::to_string(adaptive_high_depth) + ")";
      }
    } else if (adaptive_high_depth != 0 || adaptive_low_depth != 0) {
      return std::string("adaptive depth thresholds only apply to adaptive "
                         "arbitration (arbitration is '") +
             to_string(arbitration) + "')";
    }
    if (fetch_ticks == 0) {
      return "fetch_ticks must be at least 1";
    }
    if (channel_binding == ChannelBinding::kHashed && num_channels < 2) {
      return "hashed channel binding needs at least 2 channels (q=" +
             std::to_string(num_channels) + " is equivalent to binding 'any')";
    }
    if (max_ticks == 0) {
      return "max_ticks must be positive";
    }
    if (std::string message = engine_validation_error(*this);
        !message.empty()) {
      return message;
    }
    return {};
  }

  /// Throws ConfigError when parameters are inconsistent.
  void validate(std::uint32_t num_threads) const {
    if (std::string message = validation_error(num_threads); !message.empty()) {
      throw ConfigError(std::move(message));
    }
  }

  /// ---- Named policies from the paper ----

  /// FIFO (FCFS) far-channel arbitration + LRU replacement.
  static SimConfig fifo(std::uint64_t k, std::uint32_t q = 1) {
    SimConfig c;
    c.hbm_slots = k;
    c.num_channels = q;
    c.arbitration = ArbitrationKind::kFifo;
    return c;
  }

  /// Static Priority + LRU (Das et al., O(1)-competitive for q=1).
  static SimConfig priority(std::uint64_t k, std::uint32_t q = 1) {
    SimConfig c;
    c.hbm_slots = k;
    c.num_channels = q;
    c.arbitration = ArbitrationKind::kPriority;
    return c;
  }

  /// Dynamic Priority: random re-permutation every `t_mult * k` ticks.
  static SimConfig dynamic_priority(std::uint64_t k, double t_mult,
                                    std::uint32_t q = 1, std::uint64_t seed = 1) {
    SimConfig c = priority(k, q);
    c.remap_scheme = RemapScheme::kDynamic;
    c.remap_period = period_from_multiplier(k, t_mult);
    c.seed = seed;
    return c;
  }

  /// Cycle Priority: rotate priorities every `t_mult * k` ticks.
  static SimConfig cycle_priority(std::uint64_t k, double t_mult,
                                  std::uint32_t q = 1) {
    SimConfig c = priority(k, q);
    c.remap_scheme = RemapScheme::kCycle;
    c.remap_period = period_from_multiplier(k, t_mult);
    return c;
  }

  /// Adaptive FIFO↔Priority arbitration: every `t_mult * k` ticks the
  /// arbiter re-reads the queue depth and switches by hysteresis. The
  /// default thresholds (4q / q) bracket the depth at which queueing
  /// delay starts to dominate a q-channel system; opt/predictor's
  /// tune_adaptive_thresholds() derives workload-specific ones.
  static SimConfig adaptive(std::uint64_t k, double t_mult, std::uint32_t q = 1,
                            std::uint32_t high_depth = 0,
                            std::uint32_t low_depth = 0) {
    SimConfig c;
    c.hbm_slots = k;
    c.num_channels = q;
    c.arbitration = ArbitrationKind::kAdaptive;
    c.remap_period = period_from_multiplier(k, t_mult);
    c.adaptive_high_depth = high_depth != 0 ? high_depth : 4 * q;
    c.adaptive_low_depth = low_depth != 0 ? low_depth : q;
    return c;
  }

  /// Convert the paper's "T as a multiple of k" convention to ticks.
  static std::uint64_t period_from_multiplier(std::uint64_t k, double t_mult) {
    HBMSIM_CHECK(t_mult > 0.0, "remap period multiplier must be positive");
    const double ticks = t_mult * static_cast<double>(k);
    return ticks < 1.0 ? 1 : static_cast<std::uint64_t>(ticks);
  }

  /// Human-readable policy name ("dynamic-priority(T=10k)" etc.).
  [[nodiscard]] std::string policy_name() const {
    switch (arbitration) {
      case ArbitrationKind::kFifo:
        return "fifo";
      case ArbitrationKind::kRandom:
        return "random";
      case ArbitrationKind::kFrFcfs:
        return "fr-fcfs(row=" + std::to_string(row_pages) + ")";
      case ArbitrationKind::kAdaptive:
        return "adaptive(T=" + std::to_string(remap_period) +
               ",hi=" + std::to_string(adaptive_high_depth) +
               ",lo=" + std::to_string(adaptive_low_depth) + ")";
      case ArbitrationKind::kPriority:
        break;
    }
    if (remap_scheme == RemapScheme::kNone) {
      return "priority";
    }
    std::string name = std::string(to_string(remap_scheme)) + "-priority";
    name += "(T=" + std::to_string(remap_period) + ")";
    return name;
  }
};

}  // namespace hbmsim
