// Allocation-free arbitration structures (DESIGN.md §3d).
//
// Every policy here is built from pooled nodes addressed by 32-bit
// handles (util/flat_map.h IndexPool) threaded onto intrusive lists, so
// the steady-state enqueue/pop/remap cycle never touches the allocator:
// the pools grow geometrically to the queue's high-water mark (at most
// one live request per thread, so ~p) and then recycle. The original
// tree/scan implementations live on in src/check/shadow_arbiter.cc as an
// executable specification; SimConfig::arbiter_impl and the paranoid
// mode drive both lock-step.
#include "core/arbitration.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/flat_map.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

constexpr std::uint32_t kNil = 0xFFFFFFFFu;

/// First-Come-First-Served: the hardware status quo (FR-FCFS family).
/// A ring buffer sized to the expected depth: push/pop are two index
/// updates, with no per-block allocation as in std::deque.
class FifoArbiter final : public ArbitrationPolicy {
 public:
  explicit FifoArbiter(std::size_t expected_requests)
      : queue_(expected_requests) {}

  void enqueue(const QueuedRequest& request) override {
    // lint:allow-hot-path-alloc — ring sized to expected_requests (= p)
    queue_.push_back(request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    QueuedRequest r = queue_.front();
    queue_.pop_front();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    std::vector<QueuedRequest> out;
    out.reserve(queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      out.push_back(queue_[i]);
    }
    return out;
  }

 private:
  RingBuffer<QueuedRequest> queue_;
};

/// Priority arbitration: requests from the highest-priority thread
/// (smallest π value) are always served first; ties cannot occur because
/// π is a permutation and each thread queues at most one request.
///
/// Bucketed priority queue: one intrusive FIFO per rank (exactly p
/// buckets, since ranks are thread priorities) plus one intrusive
/// arrival-order list threading all live nodes. The arrival list *is*
/// the (rank, seq) tree's seq dimension — a bucket holds its entries in
/// arrival order because enqueue appends at the tail, so the head of the
/// lowest non-empty rank (one Bitmap scan) is exactly the std::map's
/// begin(). A remap relinks every node bucket-side in one arrival-order
/// walk: O(n) with zero allocations, where the tree rebuild was
/// O(n log n) with n node allocations — and Dynamic/Cycle Priority
/// performs that remap every T ticks.
class PriorityArbiter : public ArbitrationPolicy {
 public:
  PriorityArbiter(const PriorityMap* priorities, std::size_t expected_requests)
      : priorities_(priorities) {
    HBMSIM_CHECK(priorities_ != nullptr,
                 "priority arbitration requires a PriorityMap");
    const std::uint32_t p = priorities_->num_threads();
    buckets_.assign(p, Chain{kNil, kNil});
    nonempty_.resize(p);
    pool_.reserve(std::max<std::size_t>(expected_requests, p));
  }

  void enqueue(const QueuedRequest& request) override {
    const std::uint32_t id = pool_.acquire();
    Node& n = pool_[id];
    n.req = request;
    n.arr_prev = arr_tail_;
    n.arr_next = kNil;
    if (arr_tail_ != kNil) {
      pool_[arr_tail_].arr_next = id;
    } else {
      arr_head_ = id;
    }
    arr_tail_ = id;
    link_bucket(id, priorities_->priority_of(request.thread));
    ++size_;
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    // `min_rank_hint_` invariant: every rank below it has an empty
    // bucket, so the scan may start there. Without it, a backlog whose
    // low ranks have drained pays O(p/64) words per pop — the one regime
    // where the old tree was fast (its begin() stayed cache-hot on the
    // leftmost spine).
    const std::size_t rank = nonempty_.find_first(min_rank_hint_);
    if (rank == Bitmap::npos) {
      return std::nullopt;
    }
    min_rank_hint_ = rank;
    const std::uint32_t id = buckets_[rank].head;
    const QueuedRequest r = pool_[id].req;
    Chain& bucket = buckets_[rank];
    bucket.head = pool_[id].bucket_next;
    if (bucket.head == kNil) {
      bucket.tail = kNil;
      nonempty_.clear(rank);
    }
    unlink_arrival(id);
    pool_.release(id);
    --size_;
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  void on_priorities_changed() override {
    // Re-rank all waiting requests under the new permutation, preserving
    // arrival order among equal ranks: reset the buckets and re-append
    // every node in one walk of the arrival list.
    std::fill(buckets_.begin(), buckets_.end(), Chain{kNil, kNil});
    nonempty_.clear_all();
    min_rank_hint_ = nonempty_.bits();  // every link below lowers it
    for (std::uint32_t id = arr_head_; id != kNil; id = pool_[id].arr_next) {
      link_bucket(id, priorities_->priority_of(pool_[id].req.thread));
    }
  }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    std::vector<QueuedRequest> out;
    out.reserve(size_);
    for (std::uint32_t id = arr_head_; id != kNil; id = pool_[id].arr_next) {
      out.push_back(pool_[id].req);
    }
    return out;
  }

 protected:
  struct Node {
    QueuedRequest req;
    std::uint32_t bucket_next;
    std::uint32_t arr_prev;
    std::uint32_t arr_next;
  };
  struct Chain {
    std::uint32_t head;
    std::uint32_t tail;
  };

  void link_bucket(std::uint32_t id, std::uint32_t rank) {
    if (rank < min_rank_hint_) {
      min_rank_hint_ = rank;
    }
    Chain& bucket = buckets_[rank];
    pool_[id].bucket_next = kNil;
    if (bucket.tail != kNil) {
      pool_[bucket.tail].bucket_next = id;
    } else {
      bucket.head = id;
      nonempty_.set(rank);
    }
    bucket.tail = id;
  }

  void unlink_arrival(std::uint32_t id) {
    const Node& n = pool_[id];
    if (n.arr_prev != kNil) {
      pool_[n.arr_prev].arr_next = n.arr_next;
    } else {
      arr_head_ = n.arr_next;
    }
    if (n.arr_next != kNil) {
      pool_[n.arr_next].arr_prev = n.arr_prev;
    } else {
      arr_tail_ = n.arr_prev;
    }
  }

  const PriorityMap* priorities_;
  IndexPool<Node> pool_;
  std::vector<Chain> buckets_;  // one FIFO per rank
  Bitmap nonempty_;             // ranks with a non-empty bucket
  std::size_t min_rank_hint_ = 0;  // no rank below this has a set bit
  std::uint32_t arr_head_ = kNil;
  std::uint32_t arr_tail_ = kNil;
  std::size_t size_ = 0;
};

/// Adaptive FIFO↔Priority arbitration (ROADMAP item 5, HAPPY-style):
/// serve in arrival order while the queue is shallow — FIFO's tail
/// behaviour is fair and its makespan matches Priority's when contention
/// is light — and switch to static priority order when an epoch boundary
/// observes a deep backlog, where FIFO is Ω(p)-competitive (§3) but
/// Priority lets high-rank threads finish and release far-channel
/// bandwidth. Hysteresis (high/low thresholds) keeps the mode stable
/// between epochs.
///
/// Structurally this is the PriorityArbiter unchanged: the intrusive
/// arrival list *is* the FIFO order, and the globally oldest request
/// always heads its own rank bucket (buckets append in arrival order),
/// so a FIFO-mode pop unlinks the arrival head from its bucket head in
/// O(1) — no second queue, no migration on a mode switch, and both modes
/// stay allocation-free.
class AdaptiveArbiter final : public PriorityArbiter {
 public:
  AdaptiveArbiter(const PriorityMap* priorities, std::size_t expected_requests,
                  std::uint32_t high_depth, std::uint32_t low_depth)
      : PriorityArbiter(priorities, expected_requests),
        high_depth_(high_depth),
        low_depth_(low_depth) {
    HBMSIM_CHECK(high_depth_ >= 1,
                 "adaptive arbitration requires adaptive_high_depth >= 1");
    HBMSIM_CHECK(low_depth_ <= high_depth_,
                 "adaptive_low_depth must not exceed adaptive_high_depth");
  }

  std::optional<QueuedRequest> pop(std::uint32_t channel) override {
    if (!fifo_mode_) {
      return PriorityArbiter::pop(channel);
    }
    if (size_ == 0) {
      return std::nullopt;
    }
    const std::uint32_t id = arr_head_;
    const QueuedRequest r = pool_[id].req;
    // The globally oldest request is also the oldest in its rank bucket
    // (buckets append in arrival order), so it heads its own chain and
    // the bucket-side unlink is O(1).
    const std::uint32_t rank = priorities_->priority_of(r.thread);
    Chain& bucket = buckets_[rank];
    HBMSIM_ASSERT(bucket.head == id,
                  "FIFO-mode pop target does not head its rank bucket");
    bucket.head = pool_[id].bucket_next;
    if (bucket.head == kNil) {
      bucket.tail = kNil;
      nonempty_.clear(rank);
    }
    unlink_arrival(id);
    pool_.release(id);
    --size_;
    return r;
  }

  void on_epoch(std::size_t queue_depth) override {
    // Hysteresis: depths inside the (low, high) band keep the current
    // mode, so a backlog oscillating around one threshold cannot flap
    // the service order every epoch.
    if (queue_depth >= high_depth_) {
      fifo_mode_ = false;
    } else if (queue_depth <= low_depth_) {
      fifo_mode_ = true;
    }
  }

 private:
  std::uint32_t high_depth_;
  std::uint32_t low_depth_;
  bool fifo_mode_ = true;  // start as the hardware status quo
};

/// Uniformly random selection among waiting requests — the T → 1 limit of
/// Dynamic Priority discussed in §4. The swap-remove pool was already
/// O(1) per operation; pre-sizing it removes the growth reallocations.
class RandomArbiter final : public ArbitrationPolicy {
 public:
  RandomArbiter(std::uint64_t seed, std::size_t expected_requests)
      : rng_(seed) {
    pool_.reserve(expected_requests);
  }

  void enqueue(const QueuedRequest& request) override {
    pool_.push_back(request);  // lint:allow-hot-path-alloc — reserved to p at construction
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (pool_.empty()) {
      return std::nullopt;
    }
    const std::uint64_t i = rng_.uniform(pool_.size());
    QueuedRequest r = pool_[i];
    pool_[i] = pool_.back();
    pool_.pop_back();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return pool_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return pool_;
  }

  [[nodiscard]] bool snapshot_in_arrival_order() const override {
    return false;  // swap-remove pops permute the pool
  }

 private:
  Xoshiro256StarStar rng_;
  std::vector<QueuedRequest> pool_;
};

/// First-ready FCFS (Rixner et al.; §1.3): each channel remembers the
/// DRAM row it last fetched from; the oldest queued request in that row
/// ("row hit") is preferred, otherwise the oldest request overall, which
/// then opens a new row. Rows are `row_pages` consecutive pages — the
/// thread tag in GlobalPage keeps rows per-thread, as in banked DRAM
/// where distinct address streams rarely share rows.
///
/// Pooled nodes on an intrusive arrival list, plus a FlatMap row index
/// (row id → FIFO chain of that row's requests, in arrival order). Row-
/// hit selection is one hash lookup instead of a scan of the whole
/// queue; the oldest-overall fallback is the arrival-list head, which is
/// arrival-order exact by construction. Either pick is the head of its
/// own row chain (the globally oldest request is the oldest in its row),
/// so removal is O(1) everywhere.
class FrFcfsArbiter final : public ArbitrationPolicy {
 public:
  FrFcfsArbiter(std::uint32_t num_channels, std::uint32_t row_pages,
                std::size_t expected_requests)
      : row_pages_(row_pages), open_rows_(num_channels, kNoRow) {
    HBMSIM_CHECK(num_channels > 0, "FR-FCFS needs at least one channel");
    HBMSIM_CHECK(row_pages > 0, "FR-FCFS needs a positive row size");
    pool_.reserve(expected_requests);
    rows_.reserve(std::max<std::size_t>(expected_requests, 16));
  }

  void enqueue(const QueuedRequest& request) override {
    const std::uint32_t id = pool_.acquire();
    Node& n = pool_[id];
    n.req = request;
    n.row_next = kNil;
    n.arr_prev = arr_tail_;
    n.arr_next = kNil;
    if (arr_tail_ != kNil) {
      pool_[arr_tail_].arr_next = id;
    } else {
      arr_head_ = id;
    }
    arr_tail_ = id;
    const std::uint64_t row = row_of(request.page);
    if (RowChain* chain = rows_.find(row)) {
      pool_[chain->tail].row_next = id;
      chain->tail = id;
    } else {
      rows_.insert(row, RowChain{id, id});
    }
    ++size_;
  }

  std::optional<QueuedRequest> pop(std::uint32_t channel) override {
    if (size_ == 0) {
      return std::nullopt;
    }
    HBMSIM_ASSERT(channel < open_rows_.size(), "channel out of range");
    std::uint32_t id = kNil;
    const std::uint64_t open = open_rows_[channel];
    if (open != kNoRow) {
      if (const RowChain* chain = rows_.find(open)) {
        id = chain->head;  // oldest row hit
      }
    }
    if (id == kNil) {
      id = arr_head_;  // oldest overall opens a new row
    }
    const QueuedRequest r = pool_[id].req;
    remove(id);
    open_rows_[channel] = row_of(r.page);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    std::vector<QueuedRequest> out;
    out.reserve(size_);
    for (std::uint32_t id = arr_head_; id != kNil; id = pool_[id].arr_next) {
      out.push_back(pool_[id].req);
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  struct Node {
    QueuedRequest req;
    std::uint32_t row_next;
    std::uint32_t arr_prev;
    std::uint32_t arr_next;
  };
  struct RowChain {
    std::uint32_t head;
    std::uint32_t tail;
  };

  [[nodiscard]] std::uint64_t row_of(GlobalPage page) const noexcept {
    return page / row_pages_;
  }

  void remove(std::uint32_t id) {
    const Node& n = pool_[id];
    // Any popped node heads its row chain: a row hit pops the chain head
    // directly, and the oldest-overall pick is the oldest in its own row
    // too (chains are in arrival order).
    const std::uint64_t row = row_of(n.req.page);
    RowChain* chain = rows_.find(row);
    HBMSIM_ASSERT(chain != nullptr && chain->head == id,
                  "popped request does not head its row chain");
    chain->head = n.row_next;
    if (chain->head == kNil) {
      rows_.erase(row);
    }
    if (n.arr_prev != kNil) {
      pool_[n.arr_prev].arr_next = n.arr_next;
    } else {
      arr_head_ = n.arr_next;
    }
    if (n.arr_next != kNil) {
      pool_[n.arr_next].arr_prev = n.arr_prev;
    } else {
      arr_tail_ = n.arr_prev;
    }
    pool_.release(id);
    --size_;
  }

  std::uint32_t row_pages_;
  IndexPool<Node> pool_;
  FlatMap<RowChain> rows_;  // row id → that row's requests, arrival order
  std::vector<std::uint64_t> open_rows_;
  std::uint32_t arr_head_ = kNil;
  std::uint32_t arr_tail_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<ArbitrationPolicy> ArbitrationPolicy::make(
    ArbitrationKind kind, const PriorityMap* priorities, std::uint64_t seed,
    std::uint32_t num_channels, std::uint32_t row_pages,
    std::size_t expected_requests, std::uint32_t adaptive_high,
    std::uint32_t adaptive_low) {
  switch (kind) {
    case ArbitrationKind::kFifo:
      return std::make_unique<FifoArbiter>(expected_requests);
    case ArbitrationKind::kPriority:
      return std::make_unique<PriorityArbiter>(priorities, expected_requests);
    case ArbitrationKind::kRandom:
      return std::make_unique<RandomArbiter>(seed, expected_requests);
    case ArbitrationKind::kFrFcfs:
      return std::make_unique<FrFcfsArbiter>(num_channels, row_pages,
                                             expected_requests);
    case ArbitrationKind::kAdaptive:
      return std::make_unique<AdaptiveArbiter>(priorities, expected_requests,
                                               adaptive_high, adaptive_low);
  }
  throw ConfigError("unknown arbitration kind");
}

}  // namespace hbmsim
