#include "core/arbitration.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

/// First-Come-First-Served: the hardware status quo (FR-FCFS family).
class FifoArbiter final : public ArbitrationPolicy {
 public:
  void enqueue(const QueuedRequest& request) override {
    queue_.push_back(request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    QueuedRequest r = queue_.front();
    queue_.pop_front();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return {queue_.begin(), queue_.end()};
  }

 private:
  std::deque<QueuedRequest> queue_;
};

/// Priority arbitration: requests from the highest-priority thread
/// (smallest π value) are always served first; ties cannot occur because
/// π is a permutation and each thread queues at most one request.
class PriorityArbiter final : public ArbitrationPolicy {
 public:
  explicit PriorityArbiter(const PriorityMap* priorities)
      : priorities_(priorities) {
    HBMSIM_CHECK(priorities_ != nullptr,
                 "priority arbitration requires a PriorityMap");
  }

  void enqueue(const QueuedRequest& request) override {
    // Key by (priority, arrival sequence): priorities are unique per
    // thread, but under shared_pages a thread's stale entry can coexist
    // with its live one, so the key must never collide.
    queue_.emplace(Key{priorities_->priority_of(request.thread), seq_++},
                   request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const auto it = queue_.begin();
    QueuedRequest r = it->second;
    queue_.erase(it);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    // The map is keyed by (rank, seq); arrival order is seq order.
    std::vector<std::pair<std::uint64_t, QueuedRequest>> by_seq;
    by_seq.reserve(queue_.size());
    for (const auto& [key, request] : queue_) {
      by_seq.emplace_back(key.seq, request);
    }
    std::sort(by_seq.begin(), by_seq.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<QueuedRequest> out;
    out.reserve(by_seq.size());
    for (const auto& [seq, request] : by_seq) {
      out.push_back(request);
    }
    return out;
  }

  void on_priorities_changed() override {
    // Re-rank all waiting requests under the new permutation, preserving
    // arrival order among equal ranks.
    std::vector<std::pair<std::uint64_t, QueuedRequest>> waiting;
    waiting.reserve(queue_.size());
    for (const auto& [key, request] : queue_) {
      waiting.emplace_back(key.seq, request);
    }
    queue_.clear();
    for (const auto& [seq, r] : waiting) {
      queue_.emplace(Key{priorities_->priority_of(r.thread), seq}, r);
    }
  }

 private:
  struct Key {
    std::uint32_t rank;
    std::uint64_t seq;
    friend bool operator<(const Key& a, const Key& b) noexcept {
      return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
    }
  };

  const PriorityMap* priorities_;
  std::uint64_t seq_ = 0;
  std::map<Key, QueuedRequest> queue_;
};

/// Uniformly random selection among waiting requests — the T → 1 limit of
/// Dynamic Priority discussed in §4.
class RandomArbiter final : public ArbitrationPolicy {
 public:
  explicit RandomArbiter(std::uint64_t seed) : rng_(seed) {}

  void enqueue(const QueuedRequest& request) override {
    pool_.push_back(request);
  }

  std::optional<QueuedRequest> pop(std::uint32_t /*channel*/) override {
    if (pool_.empty()) {
      return std::nullopt;
    }
    const std::uint64_t i = rng_.uniform(pool_.size());
    QueuedRequest r = pool_[i];
    pool_[i] = pool_.back();
    pool_.pop_back();
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return pool_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return pool_;
  }

  [[nodiscard]] bool snapshot_in_arrival_order() const override {
    return false;  // swap-remove pops permute the pool
  }

 private:
  Xoshiro256StarStar rng_;
  std::vector<QueuedRequest> pool_;
};

/// First-ready FCFS (Rixner et al.; §1.3): each channel remembers the
/// DRAM row it last fetched from; the oldest queued request in that row
/// ("row hit") is preferred, otherwise the oldest request overall, which
/// then opens a new row. Rows are `row_pages` consecutive pages — the
/// thread tag in GlobalPage keeps rows per-thread, as in banked DRAM
/// where distinct address streams rarely share rows.
class FrFcfsArbiter final : public ArbitrationPolicy {
 public:
  FrFcfsArbiter(std::uint32_t num_channels, std::uint32_t row_pages)
      : row_pages_(row_pages), open_rows_(num_channels, kNoRow) {
    HBMSIM_CHECK(num_channels > 0, "FR-FCFS needs at least one channel");
    HBMSIM_CHECK(row_pages > 0, "FR-FCFS needs a positive row size");
  }

  void enqueue(const QueuedRequest& request) override {
    queue_.push_back(request);  // arrival order
  }

  std::optional<QueuedRequest> pop(std::uint32_t channel) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    HBMSIM_ASSERT(channel < open_rows_.size(), "channel out of range");
    std::size_t pick = 0;
    bool row_hit = false;
    const std::uint64_t open = open_rows_[channel];
    if (open != kNoRow) {
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (row_of(queue_[i].page) == open) {
          pick = i;
          row_hit = true;
          break;  // oldest row hit
        }
      }
    }
    if (!row_hit) {
      pick = 0;  // oldest overall opens a new row
    }
    const QueuedRequest r = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    open_rows_[channel] = row_of(r.page);
    return r;
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return queue_;
  }

 private:
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t row_of(GlobalPage page) const noexcept {
    return page / row_pages_;
  }

  std::uint32_t row_pages_;
  std::vector<std::uint64_t> open_rows_;
  std::vector<QueuedRequest> queue_;
};

}  // namespace

std::unique_ptr<ArbitrationPolicy> ArbitrationPolicy::make(
    ArbitrationKind kind, const PriorityMap* priorities, std::uint64_t seed,
    std::uint32_t num_channels, std::uint32_t row_pages) {
  switch (kind) {
    case ArbitrationKind::kFifo:
      return std::make_unique<FifoArbiter>();
    case ArbitrationKind::kPriority:
      return std::make_unique<PriorityArbiter>(priorities);
    case ArbitrationKind::kRandom:
      return std::make_unique<RandomArbiter>(seed);
    case ArbitrationKind::kFrFcfs:
      return std::make_unique<FrFcfsArbiter>(num_channels, row_pages);
  }
  throw ConfigError("unknown arbitration kind");
}

}  // namespace hbmsim
