// Fundamental identifier types for the HBM+DRAM model.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace hbmsim {

/// Core / thread index in [0, p).
using ThreadId = std::uint32_t;

/// Simulation time step.
using Tick = std::uint64_t;

/// A page in the global (cross-thread) namespace. Per model Property 1,
/// each core's page set is disjoint; we enforce this by tagging the local
/// page id with the owning thread id.
using GlobalPage = std::uint64_t;

[[nodiscard]] constexpr GlobalPage make_global_page(ThreadId thread,
                                                    LocalPage page) noexcept {
  return (static_cast<GlobalPage>(thread) << 32) | page;
}

[[nodiscard]] constexpr ThreadId page_owner(GlobalPage page) noexcept {
  return static_cast<ThreadId>(page >> 32);
}

[[nodiscard]] constexpr LocalPage page_local(GlobalPage page) noexcept {
  return static_cast<LocalPage>(page & 0xFFFFFFFFull);
}

}  // namespace hbmsim
