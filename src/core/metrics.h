// Simulation outputs: makespan, response times, and the paper's derived
// metrics — "inconsistency" (stddev of response time over all i, j) and
// mean response time (§4, Table 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "stats/histogram.h"
#include "stats/streaming.h"

namespace hbmsim {

/// Per-thread outcomes.
struct ThreadMetrics {
  std::uint64_t refs = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Tick at which this thread's last request was served (0 if no refs).
  Tick completion_tick = 0;
  /// Response-time stats for this thread only.
  StreamingStats response;
};

/// Whole-run outcomes.
struct RunMetrics {
  /// Ticks until the last request of the last thread is served
  /// (completion tick of the slowest thread + 1).
  Tick makespan = 0;

  std::uint64_t total_refs = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t remaps = 0;
  /// DRAM fetches actually issued. Equals `misses` under the disjoint
  /// model; under shared_pages it can be smaller — concurrent misses on
  /// one page share a single fetch (misses - fetches = piggybacks).
  std::uint64_t fetches = 0;
  /// Fetched-then-evicted-before-serve re-queues (rare; see DESIGN.md §3).
  std::uint64_t requeues = 0;

  /// Ticks in which the machine did no work at all: no transfer arrived,
  /// no remap fired, no core was runnable, and the DRAM queue was empty.
  /// Both engines account these identically (DESIGN.md §3c) — the tick
  /// engine counts them one by one, the fast engine in jumped spans — so
  /// the field participates in cross-engine equivalence.
  std::uint64_t idle_ticks = 0;

  /// Of idle_ticks, how many the fast engine jumped over without
  /// executing (0 under the reference tick engine). A diagnostic of
  /// engine behaviour, not of the simulated machine: it is the one
  /// RunMetrics field excluded from cross-engine equivalence.
  std::uint64_t skipped_ticks = 0;

  /// The run hit SimConfig::max_ticks before every thread finished and
  /// was cut off gracefully (an overloaded serving run reports instead of
  /// aborting). On a truncated run makespan reflects the last *completed*
  /// thread only and the conservation laws checked by
  /// InvariantChecker::after_run need not hold.
  bool truncated = false;

  /// Response time w over all references of all threads (hits count as 1).
  StreamingStats response;
  /// Log₂-bucketed response-time distribution (tail behaviour).
  LogHistogram response_hist;

  /// Per-thread metrics; empty when SimConfig::per_thread_metrics is off.
  std::vector<ThreadMetrics> per_thread;

  /// The paper's "inconsistency": population stddev of response times.
  [[nodiscard]] double inconsistency() const noexcept { return response.stddev(); }

  /// Mean response time (Table 1's "Response Time" column).
  [[nodiscard]] double mean_response() const noexcept { return response.mean(); }

  [[nodiscard]] double hit_rate() const noexcept {
    return total_refs == 0 ? 0.0
                           : static_cast<double>(hits) / static_cast<double>(total_refs);
  }

  /// Worst single response time observed (starvation indicator).
  [[nodiscard]] std::uint64_t max_response() const noexcept {
    return response.count() == 0 ? 0 : static_cast<std::uint64_t>(response.max());
  }

  /// Approximate response-time quantile (log₂-bucket interpolation).
  /// Requires SimConfig::response_histogram (the default).
  [[nodiscard]] double response_quantile(double q) const {
    return response_hist.quantile(q);
  }

  /// Spread of per-thread completion times (thread starvation at the
  /// whole-run level): max completion minus min completion.
  [[nodiscard]] Tick completion_spread() const noexcept;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace hbmsim
