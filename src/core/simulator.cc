#include "core/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "check/invariant_checker.h"
#include "core/engine.h"
#include "check/shadow_arbiter.h"
#include "check/shadow_cache.h"
#include "util/error.h"

namespace hbmsim {

namespace {

// Validate before the delegated-to constructor builds anything (notably
// the HbmCache, whose own capacity check would otherwise fire first with
// a less descriptive message).
const SimConfig& validated(const SimConfig& config, const Workload& workload) {
  config.validate(static_cast<std::uint32_t>(workload.num_threads()));
  return config;
}

}  // namespace

Simulator::Simulator(const Workload& workload, const SimConfig& config)
    : Simulator(workload, config,
                std::make_unique<HbmCache>(validated(config, workload).hbm_slots,
                                           config.replacement)) {}

Simulator::Simulator(const Workload& workload, const SimConfig& config,
                     std::unique_ptr<CacheModel> cache)
    : config_(config),
      priorities_(static_cast<std::uint32_t>(workload.num_threads()),
                  config.arbitration == ArbitrationKind::kPriority
                      ? config.remap_scheme
                      : RemapScheme::kNone,
                  config.seed),
      cache_(std::move(cache)) {
  HBMSIM_CHECK(cache_ != nullptr, "simulator requires a cache model");
  config_.validate(static_cast<std::uint32_t>(workload.num_threads()));

  // kAny: one queue shared by all channels (FR-FCFS keeps per-channel
  // open-row state internally). kHashed: one single-channel queue per
  // channel; pages route by channel_of().
  const std::size_t num_queues =
      config_.channel_binding == ChannelBinding::kHashed ? config_.num_channels
                                                         : 1;
  const std::uint32_t channels_per_queue =
      config_.channel_binding == ChannelBinding::kHashed ? 1
                                                         : config_.num_channels;
  const std::size_t p = workload.num_threads();
  // Paranoid runs upgrade the default arbiter to the shadowed pair, so
  // the reference structures audit every pop (an explicit kReference
  // request is honoured as-is — the differential tests need it bare).
  const ArbiterImpl arbiter_impl =
      config_.paranoid && config_.arbiter_impl == ArbiterImpl::kFast
          ? ArbiterImpl::kShadow
          : config_.arbiter_impl;
  for (std::size_t i = 0; i < num_queues; ++i) {
    auto fast = [&] {
      return ArbitrationPolicy::make(config_.arbitration, &priorities_,
                                     config_.seed + i, channels_per_queue,
                                     config_.row_pages, p,
                                     config_.adaptive_high_depth,
                                     config_.adaptive_low_depth);
    };
    auto reference = [&] {
      return check::make_reference_arbiter(config_.arbitration, &priorities_,
                                           config_.seed + i,
                                           channels_per_queue,
                                           config_.row_pages,
                                           config_.adaptive_high_depth,
                                           config_.adaptive_low_depth);
    };
    switch (arbiter_impl) {
      case ArbiterImpl::kFast:
        queues_.push_back(fast());
        break;
      case ArbiterImpl::kReference:
        queues_.push_back(reference());
        break;
      case ArbiterImpl::kShadow:
        queues_.push_back(
            std::make_unique<check::ShadowedArbiter>(fast(), reference()));
        break;
    }
  }
  cursors_.resize(p);
  state_.resize(p, ThreadState::kIssuing);
  request_tick_.resize(p, 0);
  current_.resize(p, 0);
  if (config_.per_thread_metrics) {
    metrics_.per_thread.resize(p);
  }
  runnable_now_.resize(p);
  runnable_next_.resize(p);
  // Size the remaining tick-path structures once: a core waits on at
  // most one page and has at most one transfer in flight, so p bounds
  // the waiter table and the in-flight ring alike.
  if (config_.shared_pages) {
    waiters_.reserve(p);
    in_flight_pages_.reserve(p);
  }
  if (config_.fetch_ticks > 1) {
    in_flight_.reserve(std::min<std::size_t>(
        p, std::size_t{config_.num_channels} * config_.fetch_ticks));
  }
  for (std::size_t t = 0; t < p; ++t) {
    cursors_[t] = workload.cursor(t);
    if (cursors_[t]->empty()) {
      state_[t] = ThreadState::kDone;
      ++done_threads_;
    } else {
      current_[t] = cursors_[t]->current();
      runnable_now_.set(t);
    }
  }

  // Open systems start with every tick a potential arrival (horizon 0 —
  // tick-exact until the serving driver raises it); closed systems never
  // see one, so the batching engines run unclamped.
  if (config_.open_system) {
    completions_.reserve(p);
  } else {
    arrival_horizon_ = std::numeric_limits<Tick>::max();
  }

  if (config_.paranoid) {
#if HBMSIM_CHECKS_ENABLED
    // Shadow the residency model (per-operation laws) and audit global
    // tick invariants after every step. Both are pure observers: a
    // paranoid run produces bit-identical metrics to a plain one.
    const check::ShadowPolicy policy = check::shadow_policy_for(*cache_);
    cache_ = std::make_unique<check::ShadowedCache>(std::move(cache_), policy);
    checker_ = std::make_unique<check::InvariantChecker>(*this);
#else
    // Proof that checks compile out: a Release binary cannot honour the
    // request, and silently ignoring it would be worse.
    throw ConfigError(
        "SimConfig::paranoid requires a checked build (configure with "
        "-DHBMSIM_CHECKED=ON or CMAKE_BUILD_TYPE=Debug)");
#endif
  }

  // Resolve and build the engine last: validation already vetoed
  // incapable explicit requests through the registry, and the event
  // engine inspects the final cache/checker wiring to decide whether its
  // dense backlog path applies.
  resolved_engine_ = resolve_engine(config_, p);
  engine_impl_ = make_engine(resolved_engine_, *this);
}

Simulator::~Simulator() = default;

Simulator::ThreadState Simulator::thread_state(ThreadId t) const {
  HBMSIM_CHECK(t < state_.size(), "thread id out of range");
  return engine_impl_->thread_state(t);
}

GlobalPage Simulator::current_page(ThreadId t) const {
  const LocalPage local = current_[t];
  // Disjoint model (Property 1): namespace pages by owning core.
  // Shared extension: one global namespace for all cores.
  return config_.shared_pages ? GlobalPage{local} : make_global_page(t, local);
}

void Simulator::enqueue_miss(ThreadId t, GlobalPage page, Tick request_tick) {
  state_[t] = ThreadState::kWaiting;
  if (config_.shared_pages) {
    waiters_.add(page, t);
    // A transfer already in flight will satisfy this core on arrival;
    // don't spend another channel slot on the same page.
    if (in_flight_pages_.contains(page)) {
      return;
    }
  }
  queue_for(page).enqueue(QueuedRequest{page, t, request_tick});
}

bool Simulator::is_stale(const QueuedRequest& request) const {
  return state_[request.thread] != ThreadState::kWaiting ||
         current_page(request.thread) != request.page;
}

std::size_t Simulator::queue_size() const noexcept {
  return engine_impl_->queue_size();
}

std::size_t Simulator::arbiter_queue_size() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) {
    total += q->size();
  }
  return total;
}

ArbitrationPolicy& Simulator::queue_for(GlobalPage page) {
  if (queues_.size() == 1) {
    return *queues_[0];
  }
  return *queues_[channel_of(page, config_.num_channels)];
}

void Simulator::do_remap() {
  if (config_.arbitration == ArbitrationKind::kAdaptive) {
    // Adaptive epoch: every queue observes the same total backlog, so
    // under hashed binding all queues switch mode together — the mode is
    // a property of the system load, not of one channel's queue.
    const std::size_t depth = arbiter_queue_size();
    for (auto& q : queues_) {
      q->on_epoch(depth);
    }
  } else if (priorities_.remap()) {
    for (auto& q : queues_) {
      q->on_priorities_changed();
    }
  }
  ++metrics_.remaps;
}

void Simulator::serve(ThreadId t, GlobalPage page) {
  cache_->touch(page);
  const Tick w = tick_ - request_tick_[t] + 1;
  metrics_.response.add(static_cast<double>(w));
  if (config_.response_histogram) {
    metrics_.response_hist.add(w);
  }
  if (config_.per_thread_metrics) {
    metrics_.per_thread[t].response.add(static_cast<double>(w));
  }
  if (retire_reference(t)) {
    runnable_next_.set(t);
  }
}

bool Simulator::retire_reference(ThreadId t) {
  TraceCursor& cursor = *cursors_[t];
  cursor.next();
  if (cursor.exhausted()) {
    state_[t] = ThreadState::kDone;
    ++done_threads_;
    if (config_.open_system) {
      // lint:allow-hot-path-alloc — reserved to p
      completions_.push_back(Completion{tick_, t});
    }
    if (config_.per_thread_metrics) {
      metrics_.per_thread[t].completion_tick = tick_;
    }
    metrics_.makespan = std::max(metrics_.makespan, tick_ + 1);
    return false;
  }
  current_[t] = cursor.current();
  state_[t] = ThreadState::kIssuing;
  return true;
}

void Simulator::issue_and_serve() {
  // Destructive ascending walk: each core is popped before its visit, so
  // the set is empty when the walk ends — the end-of-tick handover is a
  // plain swap with runnable_next_, no clear or sort.
  runnable_now_.consume([&](std::size_t i) {
    const auto t = static_cast<ThreadId>(i);
    const GlobalPage page = current_page(t);
    switch (state_[t]) {
      case ThreadState::kIssuing: {
        // Step 2/4: a fresh request — an HBM hit is served this tick
        // (w = 1); a miss joins the DRAM queue.
        request_tick_[t] = tick_;
        ++metrics_.total_refs;
        if (config_.per_thread_metrics) {
          ++metrics_.per_thread[t].refs;
        }
        if (cache_->contains(page)) {
          ++metrics_.hits;
          if (config_.per_thread_metrics) {
            ++metrics_.per_thread[t].hits;
          }
          serve(t, page);
        } else {
          ++metrics_.misses;
          if (config_.per_thread_metrics) {
            ++metrics_.per_thread[t].misses;
          }
          enqueue_miss(t, page, tick_);
        }
        break;
      }
      case ThreadState::kFetched: {
        // Step 4: the page arrived last tick. It is normally still
        // resident; if a same-tick fetch batch evicted it first (only
        // possible in tiny-k corner cases), re-queue at the original
        // request time so response accounting stays truthful.
        if (cache_->contains(page)) {
          serve(t, page);
        } else {
          ++metrics_.requeues;
          enqueue_miss(t, page, request_tick_[t]);
        }
        break;
      }
      case ThreadState::kWaiting:
      case ThreadState::kDone:
        HBMSIM_ASSERT(false, "waiting/done thread on active list");
        break;
    }
  });
}

void Simulator::fetch_from_dram() {
  const bool hashed = config_.channel_binding == ChannelBinding::kHashed;
  for (std::uint32_t c = 0; c < config_.num_channels; ++c) {
    ArbitrationPolicy& q = hashed ? *queues_[c] : *queues_[0];
    std::optional<QueuedRequest> next;
    bool channel_idle = false;
    for (;;) {
      next = q.pop(hashed ? 0 : c);
      if (!next) {
        channel_idle = true;
        break;
      }
      // Shared mode leaves duplicate entries behind once a page's fetch
      // satisfies all its waiters, and (with fetch_ticks > 1) entries for
      // pages already in flight; skipping them costs no channel slot.
      if (!config_.shared_pages ||
          (!is_stale(*next) && !in_flight_pages_.contains(next->page))) {
        break;
      }
    }
    if (channel_idle) {
      // A hashed channel with an empty queue sits idle even when other
      // channels are backlogged; under kAny an empty queue ends the tick.
      if (hashed) {
        continue;
      }
      return;
    }
    HBMSIM_ASSERT(!cache_->contains(next->page), "queued page already resident");
    ++metrics_.fetches;
    if (config_.fetch_ticks > 1) {
      // Non-unit transfer time: the page is in flight and becomes
      // servable at tick_ + fetch_ticks; waiting threads are neither
      // queued nor active until arrival.
      // lint:allow-hot-path-alloc — ring reserved to min(p, q·fetch_ticks)
      in_flight_.push_back(
          InFlight{tick_ + config_.fetch_ticks, next->page, next->thread});
      if (config_.shared_pages) {
        in_flight_pages_.insert(next->page);
      }
      continue;
    }
    cache_->insert(next->page);
    if (config_.shared_pages) {
      // The fetch satisfies every core waiting on this page.
      resolve_waiters(next->page, runnable_next_);
    } else {
      HBMSIM_ASSERT(state_[next->thread] == ThreadState::kWaiting,
                    "fetch for non-waiting thread");
      state_[next->thread] = ThreadState::kFetched;
      runnable_next_.set(next->thread);
    }
  }
}

void Simulator::resolve_waiters(GlobalPage page, HierBitmap& out) {
  const bool had_waiters = waiters_.take(page, [&](ThreadId w) {
    if (state_[w] == ThreadState::kWaiting && current_page(w) == page) {
      state_[w] = ThreadState::kFetched;
      out.set(w);
    }
  });
  HBMSIM_ASSERT(had_waiters, "fetched page with no waiter list");
  (void)had_waiters;
}

void Simulator::complete_arrivals() {
  while (!in_flight_.empty() && in_flight_.front().serve_tick == tick_) {
    const InFlight arrival = in_flight_.front();
    in_flight_.pop_front();
    cache_->insert(arrival.page);
    if (config_.shared_pages) {
      in_flight_pages_.erase(arrival.page);
      resolve_waiters(arrival.page, runnable_now_);
      continue;
    }
    HBMSIM_ASSERT(state_[arrival.thread] == ThreadState::kWaiting,
                  "arrival for non-waiting thread");
    state_[arrival.thread] = ThreadState::kFetched;
    // Bitmap insert is order-free: the issue walk is ascending anyway.
    runnable_now_.set(arrival.thread);
  }
}

bool Simulator::step() {
  if (finished()) {
    return false;
  }
  return engine_impl_->step();
}

bool Simulator::step_tick() {
  if (tick_ >= config_.max_ticks) {
    // Overload safety valve: stop and report rather than abort, so an
    // oversubscribed serving run still yields its prefix metrics.
    metrics_.truncated = true;
    return false;
  }
  const bool arrivals_due =
      !in_flight_.empty() && in_flight_.front().serve_tick == tick_;
  if (arrivals_due) {
    complete_arrivals();
  }
  // Liveness: some unfinished thread must be active, queued, or in
  // flight; otherwise a request was lost and the run would spin to
  // max_ticks.
  HBMSIM_CHECK(
      !runnable_now_.empty() || arbiter_queue_size() > 0 || !in_flight_.empty(),
      "simulator deadlock: unfinished threads but no pending work");

  // Step 1: priority remap.
  const bool remap_due =
      config_.remap_period != 0 && tick_ % config_.remap_period == 0;
  if (remap_due) {
    do_remap();
  }

  // Idle accounting — identical under both engines by construction: the
  // tick engine counts these ticks here one by one; the fast engine jumps
  // spans satisfying exactly this predicate (fast_forward_idle), so an
  // executed tick of the fast engine never matches it.
  if (!arrivals_due && !remap_due && runnable_now_.empty() &&
      arbiter_queue_size() == 0) {
    ++metrics_.idle_ticks;
  }

  // Steps 2–4: issue new requests, serve resident pages. The consume()
  // walk is ascending by construction — the canonical intra-tick order
  // (cores processed in id order, so same-tick requests enter the DRAM
  // queue in core-id order; see header) — and leaves runnable_now_
  // empty, so the handover below is a plain swap.
  issue_and_serve();

  // Step 5 (+3): fetch up to q queued pages, evicting as needed.
  fetch_from_dram();

  std::swap(runnable_now_, runnable_next_);
  ++tick_;
  if (checker_) {
    checker_->after_tick();
  }
  return true;
}

bool Simulator::fast_forward_idle() {
  // A span starting at tick_ is provably idle only when nothing can
  // happen until the next in-flight arrival: no runnable core, an empty
  // DRAM queue (a queued request would issue a fetch every tick), and no
  // remap boundary at tick_ itself (the boundary tick must execute —
  // do_remap mutates priority/RNG state and metrics_.remaps).
  if (!runnable_now_.empty() || in_flight_.empty() ||
      arbiter_queue_size() != 0) {
    return false;
  }
  if (config_.remap_period != 0 && tick_ % config_.remap_period == 0) {
    return false;
  }
  Tick horizon = in_flight_.front().serve_tick;
  if (config_.remap_period != 0) {
    const Tick boundary =
        (tick_ / config_.remap_period + 1) * config_.remap_period;
    horizon = std::min(horizon, boundary);
  }
  horizon = std::min(horizon, config_.max_ticks);
  // Open systems: never jump past a tick where the serving driver may
  // inject an arrival (the injected worker must issue on that tick).
  horizon = std::min(horizon, arrival_horizon_);
  if (horizon <= tick_) {
    return false;  // the next event lands on this very tick
  }
  if (checker_) {
    checker_->on_fast_forward(tick_, horizon);
  }
  const Tick span = horizon - tick_;
  metrics_.idle_ticks += span;
  metrics_.skipped_ticks += span;
  tick_ = horizon;
  return true;
}

bool Simulator::serve_hit_run() {
  // Batched hits are only safe with exactly one runnable core and nothing
  // queued or in flight: another core's touch, arrival, or fetch would
  // interleave with the replacement order. Under those guards a tick can
  // only serve this core's next reference, so as long as the references
  // hit we replay the reference engine's exact per-tick effects (request
  // accounting, serve(), tick advance) without the step machinery.
  if (runnable_now_.count() != 1 || !in_flight_.empty() ||
      arbiter_queue_size() != 0) {
    return false;
  }
  const auto t = static_cast<ThreadId>(runnable_now_.find_first());
  if (state_[t] != ThreadState::kIssuing) {
    return false;
  }
  bool served_any = false;
  // The arrival-horizon bound keeps the run tick-exact where the serving
  // driver may inject (closed systems: the horizon is effectively
  // infinite, so the bound is free).
  while (tick_ < config_.max_ticks && tick_ < arrival_horizon_) {
    if (config_.remap_period != 0 && tick_ % config_.remap_period == 0) {
      break;  // the boundary tick must remap; run it through step_tick
    }
    const GlobalPage page = current_page(t);
    if (!cache_->contains(page)) {
      break;  // the miss tick enqueues and fetches; run it through step_tick
    }
    request_tick_[t] = tick_;
    ++metrics_.total_refs;
    ++metrics_.hits;
    if (config_.per_thread_metrics) {
      ++metrics_.per_thread[t].refs;
      ++metrics_.per_thread[t].hits;
    }
    serve(t, page);
    served_any = true;
    if (state_[t] == ThreadState::kDone) {
      runnable_now_.clear(t);
    } else {
      // serve() marked t runnable for the next tick; it simply stays the
      // sole member of runnable_now_ for the next iteration.
      runnable_next_.clear(t);
    }
    ++tick_;
    if (checker_) {
      checker_->after_tick();
    }
    if (state_[t] == ThreadState::kDone) {
      break;
    }
  }
  return served_any;
}

void Simulator::inject_trace(ThreadId t, std::shared_ptr<const Trace> trace) {
  HBMSIM_CHECK(config_.open_system,
               "inject_trace requires SimConfig::open_system");
  HBMSIM_CHECK(t < state_.size(), "inject_trace thread id out of range");
  HBMSIM_CHECK(trace != nullptr && !trace->empty(),
               "injected trace must be non-empty");
  HBMSIM_CHECK(tick_ < config_.max_ticks,
               "inject_trace on a run already at max_ticks");
  HBMSIM_CHECK(state_[t] == ThreadState::kDone,
               "inject_trace target must be an idle (done) worker");
  // The finished trace's references stay counted: the conservation audit
  // compares retired + in-progress refs against the response samples.
  retired_refs_ += cursors_[t]->pos();
  // lint:allow-hot-path-alloc — one cursor per injected request; the
  // driver allocated the trace it wraps in the same breath
  cursors_[t] = std::make_unique<VectorTraceCursor>(std::move(trace));
  current_[t] = cursors_[t]->current();
  state_[t] = ThreadState::kIssuing;
  --done_threads_;
  // The worker issues its first request at the tick about to execute;
  // the bitmap keeps the runnable set in canonical id order by itself.
  HBMSIM_ASSERT(!runnable_now_.test(t),
                "injected worker already on the active list");
  runnable_now_.set(t);
}

void Simulator::set_arrival_horizon(Tick horizon) {
  HBMSIM_CHECK(config_.open_system,
               "set_arrival_horizon requires SimConfig::open_system");
  HBMSIM_CHECK(horizon >= tick_, "arrival horizon cannot be in the past");
  arrival_horizon_ = horizon;
}

void Simulator::advance_idle(Tick to) {
  HBMSIM_CHECK(config_.open_system,
               "advance_idle requires SimConfig::open_system");
  HBMSIM_CHECK(finished(), "advance_idle with unfinished threads");
  HBMSIM_CHECK(to >= tick_, "advance_idle cannot move time backwards");
  const Tick bounded = std::min(to, config_.max_ticks);
  metrics_.idle_ticks += bounded - tick_;
  tick_ = bounded;
  if (to > config_.max_ticks) {
    metrics_.truncated = true;
  }
}

RunMetrics Simulator::run() {
  while (step()) {
  }
  engine_impl_->finalize(metrics_);
  // A truncated run stops mid-flight; after_run's completion and
  // conservation laws only bind finished runs.
  if (checker_ && !metrics_.truncated) {
    checker_->after_run();
  }
  return metrics_;
}

RunMetrics simulate(const Workload& workload, const SimConfig& config) {
  Simulator sim(workload, config);
  return sim.run();
}

}  // namespace hbmsim
