#include "core/replacement.h"

#include <vector>

#include "util/error.h"
#include "util/flat_map.h"

namespace hbmsim {
namespace {

constexpr std::uint32_t kNil = 0xFFFFFFFFu;

/// Shared machinery for list-ordered policies (LRU, FIFO): an intrusive
/// doubly-linked list over a node pool, plus a page → node index map.
/// The front of the list is the next victim; the back is the most
/// recently inserted (FIFO) or most recently used (LRU) page.
class ListPolicyBase : public ReplacementPolicy {
 public:
  explicit ListPolicyBase(std::uint64_t capacity_hint)
      : index_(static_cast<std::size_t>(capacity_hint)) {
    nodes_.reserve(capacity_hint);
  }

  void on_insert(GlobalPage page) final {
    HBMSIM_ASSERT(!contains(page), "double insert into replacement policy");
    const std::uint32_t n = alloc_node(page);
    push_back(n);
    index_.insert(page, n);
  }

  GlobalPage pop_victim() final {
    HBMSIM_CHECK(head_ != kNil, "pop_victim on empty policy");
    const std::uint32_t n = head_;
    const GlobalPage page = nodes_[n].page;
    unlink(n);
    free_node(n);
    index_.erase(page);
    return page;
  }

  void erase(GlobalPage page) final {
    const std::uint32_t* n = index_.find(page);
    if (n == nullptr) {
      return;
    }
    unlink(*n);
    free_node(*n);
    index_.erase(page);
  }

  [[nodiscard]] bool contains(GlobalPage page) const final {
    return index_.contains(page);
  }

  [[nodiscard]] std::size_t size() const final { return index_.size(); }

  [[nodiscard]] std::vector<GlobalPage> victim_order() const final {
    std::vector<GlobalPage> order;
    order.reserve(size());
    for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
      order.push_back(nodes_[n].page);
    }
    return order;
  }

  void clear() final {
    nodes_.clear();
    index_.clear();
    free_ = kNil;
    head_ = kNil;
    tail_ = kNil;
  }

 protected:
  /// Move a node to the back (most-recent end) of the list.
  void move_to_back(GlobalPage page) {
    const std::uint32_t* slot = index_.find(page);
    HBMSIM_ASSERT(slot != nullptr, "access to non-resident page");
    const std::uint32_t n = *slot;
    if (n == tail_) {
      return;
    }
    unlink(n);
    push_back(n);
  }

 private:
  struct Node {
    GlobalPage page;
    std::uint32_t prev;
    std::uint32_t next;
  };

  std::uint32_t alloc_node(GlobalPage page) {
    if (free_ != kNil) {
      const std::uint32_t n = free_;
      free_ = nodes_[n].next;
      nodes_[n] = Node{page, kNil, kNil};
      return n;
    }
    // lint:allow-hot-path-alloc — nodes_ reserved to capacity_hint (= k)
    nodes_.push_back(Node{page, kNil, kNil});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void free_node(std::uint32_t n) {
    nodes_[n].next = free_;
    free_ = n;
  }

  void push_back(std::uint32_t n) {
    nodes_[n].prev = tail_;
    nodes_[n].next = kNil;
    if (tail_ != kNil) {
      nodes_[tail_].next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
  }

  void unlink(std::uint32_t n) {
    const Node& node = nodes_[n];
    if (node.prev != kNil) {
      nodes_[node.prev].next = node.next;
    } else {
      head_ = node.next;
    }
    if (node.next != kNil) {
      nodes_[node.next].prev = node.prev;
    } else {
      tail_ = node.prev;
    }
  }

  std::vector<Node> nodes_;
  FlatMap<std::uint32_t> index_;
  std::uint32_t free_ = kNil;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
};

class LruPolicy final : public ListPolicyBase {
 public:
  using ListPolicyBase::ListPolicyBase;
  void on_access(GlobalPage page) override { move_to_back(page); }
};

class FifoPolicy final : public ListPolicyBase {
 public:
  using ListPolicyBase::ListPolicyBase;
  void on_access(GlobalPage) override {
    // Insertion order only; accesses do not refresh.
  }
};

/// CLOCK (second chance): pages sit on a circular buffer with a reference
/// bit; the hand clears bits until it finds an unreferenced page.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(std::uint64_t capacity_hint)
      : index_(static_cast<std::size_t>(capacity_hint)) {
    entries_.reserve(capacity_hint);
    free_slots_.reserve(capacity_hint);
  }

  void on_insert(GlobalPage page) override {
    HBMSIM_ASSERT(!contains(page), "double insert into CLOCK");
    std::size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      entries_[slot] = Entry{page, /*referenced=*/true, /*valid=*/true};
    } else {
      slot = entries_.size();
      // lint:allow-hot-path-alloc — entries_ reserved to capacity_hint (= k)
      entries_.push_back(Entry{page, true, true});
    }
    index_.insert(page, static_cast<std::uint32_t>(slot));
    ++size_;
  }

  void on_access(GlobalPage page) override {
    const std::uint32_t* slot = index_.find(page);
    HBMSIM_ASSERT(slot != nullptr, "access to non-resident page");
    entries_[*slot].referenced = true;
  }

  GlobalPage pop_victim() override {
    HBMSIM_CHECK(size_ > 0, "pop_victim on empty CLOCK");
    for (;;) {
      if (hand_ >= entries_.size()) {
        hand_ = 0;
      }
      Entry& e = entries_[hand_];
      if (e.valid) {
        if (e.referenced) {
          e.referenced = false;
        } else {
          const GlobalPage victim = e.page;
          evict_slot(hand_);
          ++hand_;
          return victim;
        }
      }
      ++hand_;
    }
  }

  void erase(GlobalPage page) override {
    const std::uint32_t* slot = index_.find(page);
    if (slot == nullptr) {
      return;
    }
    evict_slot(*slot);
  }

  [[nodiscard]] bool contains(GlobalPage page) const override {
    return index_.contains(page);
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  [[nodiscard]] std::vector<GlobalPage> victim_order() const override {
    // Hand-scan order starting at the current hand position; pages with a
    // set reference bit would actually survive one rotation, so this is
    // the structural (not exact) eviction order.
    std::vector<GlobalPage> order;
    order.reserve(size_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::size_t slot = (hand_ + i) % entries_.size();
      if (entries_[slot].valid) {
        order.push_back(entries_[slot].page);
      }
    }
    return order;
  }

  void clear() override {
    entries_.clear();
    index_.clear();
    free_slots_.clear();
    hand_ = 0;
    size_ = 0;
  }

 private:
  struct Entry {
    GlobalPage page;
    bool referenced;
    bool valid;
  };

  void evict_slot(std::size_t slot) {
    index_.erase(entries_[slot].page);
    entries_[slot].valid = false;
    // lint:allow-hot-path-alloc — free_slots_ reserved to capacity_hint:
    // at most one free slot per entry ever constructed.
    free_slots_.push_back(slot);
    --size_;
  }

  std::vector<Entry> entries_;
  FlatMap<std::uint32_t> index_;
  std::vector<std::size_t> free_slots_;
  std::size_t hand_ = 0;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> ReplacementPolicy::make(
    ReplacementKind kind, std::uint64_t capacity_hint) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(capacity_hint);
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>(capacity_hint);
    case ReplacementKind::kClock:
      return std::make_unique<ClockPolicy>(capacity_hint);
  }
  throw ConfigError("unknown replacement kind");
}

}  // namespace hbmsim
