// EventEngine: the calendar-queue engine (DESIGN.md §3e).
//
// Two layers, both bit-identical to the reference tick loop:
//
//   portable   the fast engine's idle-span jumps and hit-run batching,
//              clamped to the open-system arrival horizon — so serving
//              sweeps scale past the tick loop while arrival injection
//              stays an event the driver controls.
//
//   dense      a backlog fast path for the configuration family where a
//              tick's effect is a pure function of three small queues:
//              FIFO arbitration, kAny binding, disjoint pages, no remap,
//              no paranoid audits, fetch_ticks >= 2, and an HbmCache
//              under LRU/FIFO replacement. Per-thread state moves into
//              packed cache-aligned blocks, the cache into an intrusive
//              mirrored LRU list with per-thread slot indexes (threads
//              keep at most kSlots pages resident in the regimes the
//              guards admit), and each executed tick costs O(arrivals +
//              issuers + q) with zero virtual dispatch, hashing, or
//              allocation — O(events), not O(ticks × p). Idle gaps with
//              work only in flight are jumped arithmetically.
//
// The dense layer is entered once at construction (tick 0, all state
// virgin) and exited — state exported back into the Simulator at a tick
// boundary — on run end, max_ticks truncation, or the rare slot-overflow
// corner (a thread needing more than kSlots resident pages), after which
// the portable layer continues the run. Equivalence argument: DESIGN.md
// §3e; enforced by the differential grid and the dense corner tests in
// tests/simulator_property_test.cc.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "util/ring_buffer.h"

namespace hbmsim {

class EventEngine final : public Engine {
 public:
  explicit EventEngine(Simulator& sim);

  bool step() override;
  void finalize(RunMetrics& metrics) override;
  [[nodiscard]] std::size_t queue_size() const override;
  [[nodiscard]] const EngineCaps& caps() const noexcept override;

  /// Whether the dense backlog path is currently driving the run
  /// (introspection for tests — the export corners need pinning).
  [[nodiscard]] bool dense_active() const noexcept { return dense_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  /// Resident pages a thread may hold before the dense path bails out to
  /// the portable layer. In the regimes the guards admit, a thread's
  /// resident set is bounded by its in-flight window (its own fetches are
  /// the only inserts of its pages); 6 covers every workload in the suite
  /// with slack and keeps the per-thread index in one cache line.
  static constexpr std::uint8_t kSlots = 6;

  /// Intrusive eviction-order list node (head = next victim).
  struct Node {
    GlobalPage page;
    std::uint32_t prev;
    std::uint32_t next;
  };
  /// Per-thread resident-page index, one cache line per thread: the
  /// mirror cache's replacement for the global hash lookup — a
  /// contains() probe scans at most kSlots slot entries. The scalar run
  /// state (state, request tick, current page, cursor position) lives in
  /// the Simulator's structure-of-arrays (state_/request_tick_/current_/
  /// cursors_, DESIGN.md §3f) and is maintained live by the dense loop,
  /// so export never copies per-thread scalars and the slot index is the
  /// only dense-private per-thread storage.
  struct alignas(64) DenseThread {
    std::uint8_t nslots;  ///< live entries in slot_local/slot_node
    LocalPage slot_local[kSlots];
    std::uint32_t slot_node[kSlots];
  };
  struct DenseInFlight {
    Tick serve_tick;
    ThreadId thread;
    /// The thread's current reference, frozen at enqueue time — the
    /// cursor cannot advance while the thread waits, so neither the
    /// fetch nor the arrival touches the trace cursor.
    LocalPage page;
  };
  /// A queued request: the page rides along from the issue tick (where
  /// its trace line is hot) so the fetch touches nothing cold.
  struct DenseQueued {
    ThreadId thread;
    LocalPage page;
  };
  /// An arrival of the executing tick (scratch, reserved to q).
  struct DueArrival {
    ThreadId thread;
    LocalPage page;
  };

  enum class DenseOutcome {
    kAdvanced,     ///< executed one tick (possibly after an idle jump)
    kHalted,       ///< truncated at max_ticks; state exported
    kDeDensified,  ///< bailed out at a tick boundary; state exported
  };

  [[nodiscard]] bool dense_eligible() const;
  void densify();
  DenseOutcome dense_step();
  void serve_dense(ThreadId t, std::uint32_t node);
  void export_state();

  // ---- mirror cache ----
  void mirror_unlink(std::uint32_t n) noexcept;
  void mirror_append(std::uint32_t n) noexcept;
  void mirror_slot_erase(GlobalPage page) noexcept;
  void mirror_insert(GlobalPage page);
  [[nodiscard]] std::uint32_t mirror_find(ThreadId t,
                                          LocalPage local) const noexcept;
  void mirror_touch(std::uint32_t n) noexcept;

  bool dense_ = false;
  bool lru_ = false;           ///< mirror replacement: LRU (touch moves) or FIFO
  bool per_thread_ = false;    ///< SimConfig::per_thread_metrics
  bool histogram_ = false;     ///< SimConfig::response_histogram
  std::uint32_t channels_ = 0;
  Tick fetch_ticks_ = 0;

  // Mirror cache storage (nodes pooled, free-listed through Node::next).
  std::vector<Node> nodes_;
  std::uint32_t free_ = kNil;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint64_t cache_cap_ = 0;
  std::size_t cache_size_ = 0;
  std::uint64_t mirror_evictions_ = 0;
  /// Evictions accrued in the mirror before export; finalize() adds the
  /// real cache's count on top (portable-phase evictions after a bailout).
  std::uint64_t evictions_base_ = 0;

  // Per-thread resident-page slot indexes (scalar run state lives in
  // the Simulator's structure-of-arrays and is maintained live).
  std::vector<DenseThread> threads_;

  /// Threads issuing this tick, id-sorted (mirror of runnable_now_).
  std::vector<ThreadId> issuers_;
  std::vector<ThreadId> issuers_next_;
  /// FIFO arbitration queue mirror (kAny: one queue); the enqueue tick is
  /// recomputed from the per-thread state at export.
  RingBuffer<DenseQueued> queue_;
  /// In-flight transfers, FIFO by issue tick (≤ q share a serve tick).
  RingBuffer<DenseInFlight> inflight_;
  /// Arrivals of the tick being executed (scratch, reserved to q).
  std::vector<DueArrival> due_;
};

}  // namespace hbmsim
