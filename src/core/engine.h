// The Engine interface: how a Simulator advances time (DESIGN.md §3c/§3e).
//
// A Simulator owns exactly one Engine, resolved once at construction.
// Every engine computes the same function of (workload, config) — the
// differential suite in tests/simulator_property_test.cc and the pinned
// goldens in tests/determinism_test.cc enforce bit-identical RunMetrics
// across engines; only the skipped_ticks diagnostic may differ.
//
//   TickEngine   the executable spec: one §3.1 tick per step()
//   FastEngine   first-generation event skipping: jumps provably idle
//                spans, batches single-thread hit runs (closed system
//                only — its idle-span proofs cannot see injected
//                arrivals)
//   EventEngine  calendar-queue core (core/event_engine.h): schedules
//                only state-changing events and batches per-tick
//                bookkeeping between them, so a saturated backlog costs
//                O(events); arrival injection is an event (the arrival
//                horizon), so open-system serving sweeps scale too
//
// Capabilities live in a registry (EngineCaps) rather than if/else
// branches: SimConfig validation, kAuto resolution, and the CLI's
// `--engine list` table all consult the same rows.
#pragma once

#include <memory>
#include <span>

#include "core/simulator.h"

namespace hbmsim {

/// Self-description of one engine: identity plus the configuration
/// capabilities validation and kAuto resolution query.
struct EngineCaps {
  EngineKind kind;
  const char* name;     ///< parse_engine() spelling
  const char* summary;  ///< one-line description for --engine list
  /// Can this engine run SimConfig::open_system (injected arrivals)?
  bool supports_open_system;
  /// Can this engine run under SimConfig::paranoid tick audits?
  bool supports_paranoid;
  /// Can this engine run fetch_ticks > 1 (multi-tick transfers)?
  bool supports_fetch_ticks;
  /// Can this engine run ArbitrationKind::kAdaptive (epoch hooks)?
  bool supports_adaptive;
  const char* reference;  ///< where the design is documented
};

/// All engines, kAuto last (a pseudo-entry describing resolution, so the
/// CLI table is complete).
[[nodiscard]] std::span<const EngineCaps> engine_registry() noexcept;

/// Registry row for `kind` (kAuto returns its pseudo-entry).
[[nodiscard]] const EngineCaps& engine_caps(EngineKind kind) noexcept;

/// Resolve kAuto to a concrete engine for this configuration: the event
/// engine where batching can pay (open_system arrivals, fetch_ticks > 1
/// idle spans, or single-thread hit runs), the reference tick engine
/// otherwise. The fast engine is never auto-selected — it remains an
/// explicit request, kept as the first-generation executable spec.
/// Non-kAuto requests return unchanged (validation, not resolution,
/// rejects incapable explicit choices).
[[nodiscard]] EngineKind resolve_engine(const SimConfig& config,
                                        std::size_t num_threads) noexcept;

/// Build the engine for an already-resolved kind. Called by the
/// Simulator constructor after the cache/checker are finalised (the
/// event engine inspects both to decide its dense fast path).
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind resolved,
                                                  Simulator& sim);

/// How a Simulator advances time. Engines are friends of Simulator and
/// drive the reference tick machinery (step_tick and the batching
/// helpers) directly; the base-class defaults describe an engine whose
/// state lives entirely inside the Simulator.
class Engine {
 public:
  explicit Engine(Simulator& sim) noexcept : sim_(sim) {}
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advance the simulation by at least one executed tick (or one batched
  /// span ending on an executed-tick boundary). Precondition: the run is
  /// not finished. Returns false when the run truncated at max_ticks.
  virtual bool step() = 0;

  /// Fold engine-private state into the final metrics (run() calls this
  /// once after the step loop). Default: publish the cache's eviction
  /// count.
  virtual void finalize(RunMetrics& metrics);

  /// ---- Introspection (Simulator's accessors delegate here, so an
  /// engine holding state outside the Simulator stays observable) ----
  [[nodiscard]] virtual std::size_t queue_size() const;
  [[nodiscard]] virtual Simulator::ThreadState thread_state(ThreadId t) const;

  [[nodiscard]] virtual const EngineCaps& caps() const noexcept = 0;

 protected:
  Simulator& sim_;
};

/// The reference engine: every tick of the §3.1 loop, one per step().
class TickEngine final : public Engine {
 public:
  using Engine::Engine;
  bool step() override;
  [[nodiscard]] const EngineCaps& caps() const noexcept override;
};

/// First-generation event skipping (DESIGN.md §3c): jump provably idle
/// spans, batch single-thread hit runs, execute every other tick through
/// the reference loop. Closed system only (see registry).
class FastEngine final : public Engine {
 public:
  using Engine::Engine;
  bool step() override;
  [[nodiscard]] const EngineCaps& caps() const noexcept override;
};

}  // namespace hbmsim
