// Far-channel arbitration: the DRAM request queue (§1.1, §2).
//
// When more than q cores have outstanding HBM misses, the arbitration
// policy decides which requests get the q DRAM channels this tick. Because
// a core blocks until its current request is served (§2), the queue never
// holds more than one request per thread, so it has at most p entries.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/priority_map.h"
#include "core/types.h"

namespace hbmsim {

/// A waiting DRAM request.
struct QueuedRequest {
  GlobalPage page = 0;
  ThreadId thread = 0;
  Tick enqueue_tick = 0;

  friend bool operator==(const QueuedRequest&, const QueuedRequest&) = default;
};

class ArbitrationPolicy {
 public:
  virtual ~ArbitrationPolicy() = default;

  /// Add a request. At most one request per thread may be queued.
  virtual void enqueue(const QueuedRequest& request) = 0;

  /// Remove and return the next request to fetch; nullopt when empty.
  /// `channel` identifies which far channel is asking — only FR-FCFS uses
  /// it (per-channel open-row state); other policies ignore it.
  virtual std::optional<QueuedRequest> pop(std::uint32_t channel = 0) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// The priority permutation changed (Dynamic/Cycle Priority remap);
  /// re-rank queued requests. Default: nothing to do.
  virtual void on_priorities_changed() {}

  /// Epoch boundary for adaptive policies (ArbitrationKind::kAdaptive):
  /// the Simulator reports the total backlog across all queues every
  /// remap_period ticks, and the arbiter may switch its service order in
  /// response. Runs on the hot path when remap_period is small, so
  /// implementations must not allocate. Default: nothing to do.
  virtual void on_epoch(std::size_t queue_depth) {
    static_cast<void>(queue_depth);
  }

  /// All waiting requests, in arrival (enqueue) order where the policy
  /// preserves it — see snapshot_in_arrival_order(). Introspection for
  /// the invariant checker and tests — O(size log size) worst case, not
  /// for hot paths.
  [[nodiscard]] virtual std::vector<QueuedRequest> snapshot() const = 0;

  /// Whether snapshot() order is arrival order. RandomArbiter's swap-
  /// remove pool forgets arrivals, so it returns false; every other
  /// policy preserves the sequence.
  [[nodiscard]] virtual bool snapshot_in_arrival_order() const { return true; }

  /// Factory. `priorities` must outlive the policy and is only required
  /// for kPriority/kAdaptive arbitration; `num_channels` and `row_pages`
  /// only matter for kFrFcfs; `adaptive_high`/`adaptive_low` are the
  /// kAdaptive hysteresis thresholds (SimConfig::adaptive_high_depth /
  /// adaptive_low_depth). `expected_requests` pre-sizes the policy's node
  /// pool / index so a queue that never exceeds it allocates nothing
  /// after construction (the Simulator passes p — the queue holds at
  /// most one live request per thread).
  [[nodiscard]] static std::unique_ptr<ArbitrationPolicy> make(
      ArbitrationKind kind, const PriorityMap* priorities, std::uint64_t seed,
      std::uint32_t num_channels = 1, std::uint32_t row_pages = 4,
      std::size_t expected_requests = 0, std::uint32_t adaptive_high = 1,
      std::uint32_t adaptive_low = 0);
};

/// Channel a page is bound to under ChannelBinding::kHashed. Exposed so
/// tests (and the brute-force reference simulator) share the exact hash.
[[nodiscard]] constexpr std::uint32_t channel_of(GlobalPage page,
                                                 std::uint32_t num_channels) noexcept {
  const std::uint64_t h = page * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>((h >> 32) % num_channels);
}

}  // namespace hbmsim
