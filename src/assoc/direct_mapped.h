// Direct-mapped HBM residency model (§2, "Generalizing fully-associative
// HBM results to direct-mapped implementations").
//
// Practical HBM caches (KNL MCDRAM, Sapphire Rapids) are direct mapped:
// page p can live only in slot h(p). We use a pseudo-random slot hash —
// the "certain assumptions on the mapping from DRAM addresses to
// locations in HBM" the paper requires; an identity (modulo) mapping is
// also available for adversarial-conflict experiments.
//
// Plugs into Simulator via the CacheModel interface, which is what the
// Corollary 1 experiment (bench/ablation_direct_mapped) uses to compare
// makespans of fully-associative vs direct-mapped HBM.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hbm_cache.h"
#include "core/types.h"

namespace hbmsim::assoc {

/// How pages map to slots.
enum class SlotHash {
  kUniversal,  ///< multiply-shift universal hash (the lemma's assumption)
  kModulo,     ///< page mod slots (adversarially conflict-prone)
};

class DirectMappedCache final : public CacheModel {
 public:
  DirectMappedCache(std::uint64_t num_slots, SlotHash hash = SlotHash::kUniversal,
                    std::uint64_t seed = 1);

  [[nodiscard]] bool contains(GlobalPage page) const override;
  void touch(GlobalPage page) override;

  /// Inserting into an occupied slot evicts the occupant even when other
  /// slots are free — the defining property of direct mapping.
  std::optional<GlobalPage> insert(GlobalPage page) override;

  [[nodiscard]] std::size_t size() const override { return occupied_; }
  [[nodiscard]] std::uint64_t capacity() const override { return slots_.size(); }
  [[nodiscard]] std::uint64_t evictions() const override { return evictions_; }
  /// Residents in slot order; each returned page satisfies
  /// slot_of(page) == its slot, which is what the invariant checker uses
  /// to verify residency respects the set mapping.
  [[nodiscard]] std::vector<GlobalPage> resident_pages() const override;

  /// Slot index a page maps to (exposed for tests).
  [[nodiscard]] std::uint64_t slot_of(GlobalPage page) const noexcept;

  /// Evictions caused by slot conflicts while free slots still existed.
  [[nodiscard]] std::uint64_t conflict_evictions() const noexcept {
    return conflict_evictions_;
  }

 private:
  std::vector<GlobalPage> slots_;  // kEmpty when vacant
  SlotHash hash_;
  std::uint64_t mult_a_;  // odd multiplier for multiply-shift
  int shift_;
  std::size_t occupied_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t conflict_evictions_ = 0;
};

}  // namespace hbmsim::assoc
