#include "assoc/frigo_transform.h"

#include <bit>

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::assoc {

FrigoTransform::FrigoTransform(std::uint64_t k, ReplacementKind policy,
                               std::uint64_t seed)
    : k_(k), policy_(policy) {
  HBMSIM_CHECK(k > 0, "transformation needs a positive HBM size");
  HBMSIM_CHECK(policy == ReplacementKind::kLru || policy == ReplacementKind::kFifo,
               "Lemma 1 covers LRU and FIFO replacement");
  SplitMix64 sm(seed);
  mult_a_ = sm.next() | 1;
  mult_b_ = sm.next();
  buckets_.assign(k_, kNil);
  nodes_.reserve(k_);
}

std::uint64_t FrigoTransform::bucket_of(LocalPage page) const noexcept {
  // 2-universal multiply-add-shift over the 32-bit page id.
  const std::uint64_t h = (mult_a_ * page + mult_b_) >> 32;
  return h % k_;
}

void FrigoTransform::list_push_back(std::uint32_t n) {
  nodes_[n].list_prev = list_tail_;
  nodes_[n].list_next = kNil;
  if (list_tail_ != kNil) {
    nodes_[list_tail_].list_next = n;
  } else {
    list_head_ = n;
  }
  list_tail_ = n;
}

void FrigoTransform::list_unlink(std::uint32_t n) {
  const Node& node = nodes_[n];
  if (node.list_prev != kNil) {
    nodes_[node.list_prev].list_next = node.list_next;
  } else {
    list_head_ = node.list_next;
  }
  if (node.list_next != kNil) {
    nodes_[node.list_next].list_prev = node.list_prev;
  } else {
    list_tail_ = node.list_prev;
  }
}

void FrigoTransform::chain_remove(std::uint32_t n) {
  const std::uint64_t b = bucket_of(nodes_[n].user_page);
  std::uint32_t cur = buckets_[b];
  std::uint32_t prev = kNil;
  while (cur != n) {
    HBMSIM_ASSERT(cur != kNil, "node missing from its hash chain");
    prev = cur;
    cur = nodes_[cur].chain_next;
  }
  if (prev == kNil) {
    buckets_[b] = nodes_[n].chain_next;
  } else {
    nodes_[prev].chain_next = nodes_[n].chain_next;
  }
}

bool FrigoTransform::access(LocalPage user_page) {
  // 1. Hash-table lookup: each chain node inspected is one metadata
  //    access — an HBM hit in the transformed program.
  const std::uint64_t b = bucket_of(user_page);
  std::uint32_t cur = buckets_[b];
  std::uint64_t chain = 0;
  std::uint32_t found = kNil;
  while (cur != kNil) {
    ++chain;
    if (nodes_[cur].user_page == user_page) {
      found = cur;
      break;
    }
    cur = nodes_[cur].chain_next;
  }
  stats_.chain_length.add(static_cast<double>(chain));
  stats_.transformed_hits += chain == 0 ? 1 : chain;  // bucket head read counts

  if (found != kNil) {
    // Original hit: access the cached data (1 hit); LRU additionally
    // moves the node to the MRU end (O(1) metadata hits).
    ++stats_.original_hits;
    ++stats_.transformed_hits;  // data access through the Cache DRAM address
    if (policy_ == ReplacementKind::kLru) {
      list_unlink(found);
      list_push_back(found);
      stats_.transformed_hits += 2;  // unlink + relink metadata touches
    }
    return true;
  }

  // Original miss.
  ++stats_.original_misses;
  if (size_ == k_) {
    // Evict the front-of-list page: copy its data from the Cache DRAM
    // address back to the user DRAM address (a transformed miss), then
    // drop its metadata.
    const std::uint32_t victim = list_head_;
    list_unlink(victim);
    chain_remove(victim);
    free_nodes_.push_back(victim);
    --size_;
    ++stats_.transformed_misses;
    stats_.transformed_hits += 2;  // hash + list metadata updates
  }

  // Copy user data to the Cache DRAM address and bring it into HBM
  // (a transformed miss), then insert metadata.
  std::uint32_t n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[n] = Node{user_page, buckets_[b], kNil, kNil};
  } else {
    nodes_.push_back(Node{user_page, buckets_[b], kNil, kNil});
    n = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  buckets_[b] = n;
  list_push_back(n);
  ++size_;
  ++stats_.transformed_misses;
  stats_.transformed_hits += 2;  // hash insert + list append metadata
  return false;
}

std::uint32_t parallel_prefix_sum(std::vector<std::uint32_t>& values) {
  // Hillis–Steele inclusive scan: ⌈log₂ n⌉ parallel steps.
  const std::size_t n = values.size();
  std::uint32_t steps = 0;
  std::vector<std::uint32_t> next(n);
  for (std::size_t offset = 1; offset < n; offset <<= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = values[i] + (i >= offset ? values[i - offset] : 0);
    }
    values.swap(next);
    ++steps;
  }
  return steps;
}

ConcurrentInsertResult simulate_concurrent_insert(std::uint32_t x) {
  HBMSIM_CHECK(x > 0, "need at least one item to insert");
  ConcurrentInsertResult result;

  // Each of the x processors contributes a 1; the prefix sum hands every
  // processor a unique slot in the auxiliary array (the "shared counter").
  std::vector<std::uint32_t> ones(x, 1);
  result.parallel_steps = parallel_prefix_sum(ones);

  // Each item writes itself at slot prefix[i]-1 (one parallel step), then
  // links to its neighbours (one parallel step), then the mini-list is
  // attached to the master list (one parallel step).
  std::vector<std::uint32_t> aux(x);
  for (std::uint32_t i = 0; i < x; ++i) {
    const std::uint32_t slot = ones[i] - 1;
    HBMSIM_CHECK(slot < x, "prefix sum produced an out-of-range slot");
    aux[slot] = i;
  }
  result.parallel_steps += 3;
  result.order = std::move(aux);
  return result;
}

}  // namespace hbmsim::assoc
