// The Lemma 1 transformation: simulate a fully-associative HBM with LRU
// or FIFO replacement on a direct-mapped cache, using a size-k hash table
// (chaining, universal hashing) paired with a doubly-linked eviction
// list — the construction of Frigo et al. as restated in the paper.
//
// This module *executes* the transformation's bookkeeping and counts what
// the transformed program would cost on the direct-mapped cache:
//   * every metadata touch (hash-table chain node, linked-list node) is a
//     transformed HBM hit (the Θ(k) metadata region is HBM-resident);
//   * an original miss induces the data copies user-DRAM ↔ cache-DRAM,
//     which are transformed misses.
// Lemma 1 predicts: O(1) expected hits and no misses per original hit,
// O(1) expected misses per original miss. tests/assoc_test.cc checks the
// measured constants; bench/ablation_direct_mapped reports them.
//
// Theorem 4's concurrent list-insert (x items prepended in O(log x) steps
// via prefix sums) is also implemented, as simulate_concurrent_insert.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "stats/streaming.h"
#include "trace/trace.h"

namespace hbmsim::assoc {

/// Costs attributed to the transformed (direct-mapped) program.
struct TransformStats {
  std::uint64_t original_hits = 0;
  std::uint64_t original_misses = 0;
  std::uint64_t transformed_hits = 0;    // metadata + resident-data touches
  std::uint64_t transformed_misses = 0;  // user-DRAM ↔ cache-DRAM copies
  StreamingStats chain_length;           // hash-chain nodes visited per lookup

  [[nodiscard]] double hits_per_access() const noexcept {
    const std::uint64_t n = original_hits + original_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(transformed_hits) / static_cast<double>(n);
  }
  [[nodiscard]] double misses_per_original_miss() const noexcept {
    return original_misses == 0 ? 0.0
                                : static_cast<double>(transformed_misses) /
                                      static_cast<double>(original_misses);
  }
};

/// Executes the Lemma 1 construction for one core's reference stream.
class FrigoTransform {
 public:
  /// `k` is the fully-associative HBM size being simulated; `policy` must
  /// be kLru or kFifo (the two orders the lemma covers).
  FrigoTransform(std::uint64_t k, ReplacementKind policy, std::uint64_t seed = 1);

  /// Process one access to `user_page`; returns true on an original hit.
  bool access(LocalPage user_page);

  [[nodiscard]] const TransformStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident() const noexcept { return size_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    LocalPage user_page;
    std::uint32_t chain_next;
    std::uint32_t list_prev;
    std::uint32_t list_next;
  };

  [[nodiscard]] std::uint64_t bucket_of(LocalPage page) const noexcept;
  void list_push_back(std::uint32_t n);
  void list_unlink(std::uint32_t n);
  void chain_remove(std::uint32_t n);

  std::uint64_t k_;
  ReplacementKind policy_;
  std::uint64_t mult_a_;
  std::uint64_t mult_b_;
  std::vector<std::uint32_t> buckets_;  // hash table heads
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::uint32_t list_head_ = kNil;  // front = next victim
  std::uint32_t list_tail_ = kNil;
  std::size_t size_ = 0;
  TransformStats stats_;
};

/// Theorem 4: prepend `x` items concurrently to a linked list. Returns
/// the resulting order of the mini-list (built via prefix-sum slot
/// assignment) and the number of parallel steps consumed, which is
/// Θ(log₂ x) + O(1).
struct ConcurrentInsertResult {
  std::vector<std::uint32_t> order;  // item indices front-to-back
  std::uint32_t parallel_steps = 0;
};

[[nodiscard]] ConcurrentInsertResult simulate_concurrent_insert(std::uint32_t x);

/// Inclusive parallel prefix sum (Hillis–Steele schedule); returns the
/// number of parallel steps used (⌈log₂ n⌉). Exposed for tests.
std::uint32_t parallel_prefix_sum(std::vector<std::uint32_t>& values);

}  // namespace hbmsim::assoc
