#include "assoc/direct_mapped.h"

#include <bit>

#include "util/error.h"
#include "util/rng.h"

namespace hbmsim::assoc {
namespace {

// GlobalPage values are (thread << 32 | page), never all-ones in practice;
// reserve it as the vacant marker.
constexpr GlobalPage kEmpty = ~GlobalPage{0};

}  // namespace

DirectMappedCache::DirectMappedCache(std::uint64_t num_slots, SlotHash hash,
                                     std::uint64_t seed)
    : hash_(hash) {
  HBMSIM_CHECK(num_slots > 0, "direct-mapped cache needs at least one slot");
  slots_.assign(num_slots, kEmpty);
  SplitMix64 sm(seed);
  mult_a_ = sm.next() | 1;  // multiply-shift needs an odd multiplier
  // Use the top bits of the product, then reduce into [0, num_slots).
  shift_ = 64 - std::bit_width(num_slots - 1 == 0 ? std::uint64_t{1} : num_slots - 1);
}

std::uint64_t DirectMappedCache::slot_of(GlobalPage page) const noexcept {
  switch (hash_) {
    case SlotHash::kUniversal: {
      const std::uint64_t h = (page * mult_a_) >> shift_;
      return h % slots_.size();
    }
    case SlotHash::kModulo:
      return page % slots_.size();
  }
  return 0;
}

bool DirectMappedCache::contains(GlobalPage page) const {
  return slots_[slot_of(page)] == page;
}

void DirectMappedCache::touch(GlobalPage page) {
  HBMSIM_ASSERT(contains(page), "touch of non-resident page");
  (void)page;  // direct mapping has no recency state
}

std::vector<GlobalPage> DirectMappedCache::resident_pages() const {
  std::vector<GlobalPage> pages;
  pages.reserve(occupied_);
  for (const GlobalPage page : slots_) {
    if (page != kEmpty) {
      pages.push_back(page);
    }
  }
  return pages;
}

std::optional<GlobalPage> DirectMappedCache::insert(GlobalPage page) {
  const std::uint64_t slot = slot_of(page);
  GlobalPage& cell = slots_[slot];
  HBMSIM_ASSERT(cell != page, "inserting already-resident page");
  std::optional<GlobalPage> victim;
  if (cell != kEmpty) {
    victim = cell;
    ++evictions_;
    if (occupied_ < slots_.size()) {
      ++conflict_evictions_;
    }
  } else {
    ++occupied_;
  }
  cell = page;
  return victim;
}

}  // namespace hbmsim::assoc
