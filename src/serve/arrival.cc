#include "serve/arrival.h"

#include <cmath>
#include <utility>

#include "util/error.h"

namespace hbmsim::serve {

ArrivalKind parse_arrival(std::string_view name) {
  if (name == "poisson") {
    return ArrivalKind::kPoisson;
  }
  if (name == "onoff") {
    return ArrivalKind::kOnOff;
  }
  if (name == "trace") {
    return ArrivalKind::kTrace;
  }
  throw ConfigError("unknown arrival kind '" + std::string(name) +
                    "' (poisson|onoff|trace)");
}

std::string ArrivalSpec::validation_error() const {
  if (kind == ArrivalKind::kTrace) {
    for (std::size_t i = 1; i < schedule.size(); ++i) {
      if (schedule[i] < schedule[i - 1]) {
        return "arrival schedule must be non-decreasing (entry " +
               std::to_string(i) + " goes backwards)";
      }
    }
    return {};
  }
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return "arrival rate must be positive and finite";
  }
  if (rate > 1e6) {
    return "arrival rate above 1e6 requests/tick is not meaningful";
  }
  if (kind == ArrivalKind::kOnOff && (on_ticks == 0 || off_ticks == 0)) {
    return "onoff arrivals need positive on_ticks and off_ticks";
  }
  return {};
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  if (std::string message = spec_.validation_error(); !message.empty()) {
    throw ConfigError(std::move(message));
  }
  generate_next();
}

void ArrivalProcess::pop() {
  HBMSIM_CHECK(next_.has_value(), "pop on an exhausted arrival process");
  generate_next();
}

void ArrivalProcess::generate_next() {
  if (spec_.kind == ArrivalKind::kTrace) {
    next_ = cursor_ < spec_.schedule.size()
                ? std::optional<Tick>{spec_.schedule[cursor_++]}
                : std::nullopt;
    return;
  }
  // Exponential inter-arrival time on the stream's active clock. The
  // accumulator stays in doubles and only floors on read, so rounding
  // never drifts the long-run rate.
  const double u = rng_.uniform_double();
  clock_ += -std::log1p(-u) / spec_.rate;
  if (spec_.kind == ArrivalKind::kPoisson) {
    next_ = static_cast<Tick>(clock_);
    return;
  }
  // kOnOff: clock_ counts accumulated *on-period* time; map it to an
  // absolute tick by expanding each completed on-period into a full
  // on+off cycle.
  const double on = static_cast<double>(spec_.on_ticks);
  const double cycle = on + static_cast<double>(spec_.off_ticks);
  const double completed_cycles = std::floor(clock_ / on);
  const double offset = clock_ - completed_cycles * on;
  next_ = static_cast<Tick>(completed_cycles * cycle + offset);
}

}  // namespace hbmsim::serve
