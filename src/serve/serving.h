// Open-system serving harness: request arrivals over the closed-system
// Simulator (ROADMAP item 3 — "which far-channel policy holds p99 under
// heavy mixed traffic?").
//
// The decomposition mirrors a hardware frontend/controller split: the
// ServingSimulator owns the arrival frontend (per-tenant ArrivalProcess
// cursors, admission queues, SLO accounting) and drives the unmodified
// machine model underneath through the SimConfig::open_system API — each
// tenant gets a block of worker threads, an idle worker is handed a fresh
// request trace via Simulator::inject_trace, and dead air between
// arrivals is skipped via Simulator::advance_idle. Before every step the
// harness publishes the next arrival tick via
// Simulator::set_arrival_horizon, so a batching engine (DESIGN.md §3e)
// may advance through many ticks per step — completions are then
// harvested exactly from the simulator's completion buffer
// (Simulator::completions()), which records the tick each worker
// finished, not the tick the step returned.
//
// Tenant → rank mapping: the machine's priority arbitration ranks thread
// ids through the identity π (lower id = higher rank), so the harness
// assigns worker-id blocks in ascending TenantSpec::priority_class order.
// Under kPriority arbitration a latency-critical tenant's misses beat a
// batch tenant's at the far channel; under kFifo/kFrFcfs the classes are
// mapped but inert — exactly the policy comparison the serving bench
// sweeps.
//
// Request lifecycle and its conservation law (audited every step through
// check::audit_arrival_conservation):
//
//   arrival ── admitted ──> in service (a worker runs its trace)
//      │           │              │
//      │           └─> pending (all workers busy, queue below max_pending)
//      └─> rejected (queue full)  │
//                                 └─> completed (last ref served)
//
//   arrivals == in_service + pending + completed + rejected
//
// Latency of a request is measured from its *arrival* tick (queueing
// delay included) to the tick after its last reference is served; a
// request whose latency exceeds TenantSpec::slo_ticks counts as an SLO
// violation. All run state is a pure function of ServingConfig — runs
// are bit-identical across repeats and runner --jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "core/types.h"
#include "serve/arrival.h"
#include "stats/histogram.h"
#include "stats/streaming.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace hbmsim::serve {

/// What one request looks like once admitted: a fresh trace drawn from
/// the tenant's request-content RNG cursor.
struct RequestShape {
  /// Per-worker page namespace size (the tenant's working set).
  LocalPage pages = 256;
  /// References per request.
  std::uint32_t refs = 16;
  /// Zipf page-popularity exponent; 0 = uniform.
  double zipf_s = 0.0;
};

/// One tenant: an arrival stream, a request shape, a worker pool, and an
/// SLO.
struct TenantSpec {
  std::string name;
  /// Worker threads dedicated to this tenant (its max concurrency).
  std::uint32_t workers = 4;
  /// Priority class: lower = more latency-critical. Realized as the
  /// tenant's position in the machine's arbitration rank space (see the
  /// header comment).
  std::uint32_t priority_class = 0;
  ArrivalSpec arrival;
  RequestShape shape;
  /// A request completing in more than this many ticks violates its SLO.
  Tick slo_ticks = 64;
  /// Admission queue depth when all workers are busy; 0 rejects
  /// immediately on saturation.
  std::uint32_t max_pending = 64;
  /// Starvation threshold multiplier: a request completing in more than
  /// starvation_multiplier × slo_ticks counts as starved (see
  /// TenantMetrics::starved) — the tail beyond "late" that admission
  /// control and arbitration policy are supposed to bound.
  std::uint32_t starvation_multiplier = 4;
};

/// Full open-system experiment configuration.
struct ServingConfig {
  std::vector<TenantSpec> tenants;
  /// Machine configuration. The harness forces open_system on; the
  /// engine must advertise open-system support in the capability
  /// registry (kFast is rejected; kAuto resolves to the event engine).
  SimConfig sim;
  /// Arrival horizon: no arrivals are generated at or after this tick.
  /// The run then drains in-service requests (so the simulated horizon
  /// can exceed it) or stops truncated at sim.max_ticks.
  Tick duration = 100'000;
  /// Master seed; per-tenant arrival and request-content seeds derive
  /// from it via SplitMix64.
  std::uint64_t seed = 1;

  [[nodiscard]] std::uint32_t total_workers() const noexcept;
  /// First inconsistency, or empty when valid (includes sim's own check).
  [[nodiscard]] std::string validation_error() const;
  /// Throws ConfigError when invalid.
  void validate() const;
};

/// Per-tenant serving outcomes.
struct TenantMetrics {
  std::string name;
  std::uint32_t priority_class = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_violations = 0;
  /// Starvation tail: completions whose end-to-end latency exceeded
  /// starvation_multiplier × slo_ticks (TenantSpec).
  std::uint64_t starved = 0;
  /// Longest any admitted request sat in the pending queue before being
  /// handed to a worker (arrival → injection), in ticks. Queueing delay
  /// only — a request injected on arrival waits 0.
  Tick max_wait = 0;
  /// End-to-end request latency (arrival → completion, queueing delay
  /// included), in ticks.
  StreamingStats latency;
  LogHistogram latency_hist;

  [[nodiscard]] double latency_quantile(double q) const {
    return latency_hist.quantile(q);
  }
  [[nodiscard]] double slo_violation_rate() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(slo_violations) /
                                static_cast<double>(completed);
  }
};

/// Whole-run serving outcomes.
struct ServingMetrics {
  std::vector<TenantMetrics> per_tenant;
  /// Machine-level metrics of the underlying open-system run.
  RunMetrics sim;
  /// Last simulated tick (arrival horizon plus drain; equals
  /// sim config max_ticks when truncated).
  Tick horizon = 0;

  [[nodiscard]] std::uint64_t total_arrivals() const noexcept;
  [[nodiscard]] std::uint64_t total_completed() const noexcept;
  [[nodiscard]] std::uint64_t total_rejected() const noexcept;
  /// Completed requests per tick of simulated time.
  [[nodiscard]] double throughput() const noexcept;
  /// Multi-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

/// Serialize serving metrics (per-tenant percentiles included) as one
/// JSON object, spliced by the exp:: runner into its JSONL records.
[[nodiscard]] std::string to_json(const ServingMetrics& metrics);

/// Drives one open-system run to completion.
class ServingSimulator {
 public:
  explicit ServingSimulator(const ServingConfig& config);

  /// Run until every arrival is resolved (or sim.max_ticks truncates the
  /// run) and return the collected metrics. Call at most once.
  ServingMetrics run();

  /// First worker thread id of tenant `t` (its workers are the
  /// contiguous block [worker_base, worker_base + workers)).
  [[nodiscard]] ThreadId worker_base(std::size_t tenant) const;

 private:
  struct TenantRuntime {
    ArrivalProcess arrivals;
    Xoshiro256StarStar gen;  // request-content cursor
    ZipfSampler zipf;
    ThreadId base = 0;  // first worker thread id
    /// Idle workers, ascending thread id (lowest id serves first).
    std::vector<ThreadId> idle;
    /// Arrival ticks of admitted-but-unassigned requests, FIFO.
    std::vector<Tick> pending;
    std::size_t pending_head = 0;  // index of the oldest pending entry
    std::uint64_t in_service = 0;
  };
  struct WorkerState {
    std::uint32_t tenant = 0;
    Tick arrival_tick = 0;
    bool busy = false;
  };

  /// Admit every arrival due at `now`: inject onto an idle worker, queue
  /// below max_pending, or reject.
  void deliver_arrivals(Tick now);
  /// Drain the simulator's completion buffer — latency/SLO/starvation
  /// accounting against each completion's recorded tick — and refill
  /// freed workers from the pending queues.
  void harvest_completions();
  void inject_request(std::uint32_t tenant, ThreadId worker, Tick arrival);
  /// Earliest next arrival across tenants, nullopt when all streams are
  /// past the duration horizon.
  [[nodiscard]] std::optional<Tick> next_arrival_tick() const;
  void audit_conservation() const;

  ServingConfig config_;
  std::vector<TenantRuntime> tenants_;
  std::vector<WorkerState> workers_;
  std::unique_ptr<Simulator> sim_;
  ServingMetrics metrics_;
  bool ran_ = false;
};

/// One-shot convenience: run `config` and return the metrics.
[[nodiscard]] ServingMetrics serve(const ServingConfig& config);

}  // namespace hbmsim::serve
