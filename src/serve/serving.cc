#include "serve/serving.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <utility>

#include "check/invariant_checker.h"
#include "exp/json.h"
#include "util/error.h"
#include "util/format.h"

namespace hbmsim::serve {

std::uint32_t ServingConfig::total_workers() const noexcept {
  std::uint32_t total = 0;
  for (const TenantSpec& tenant : tenants) {
    total += tenant.workers;
  }
  return total;
}

std::string ServingConfig::validation_error() const {
  if (tenants.empty()) {
    return "serving config needs at least one tenant";
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& t = tenants[i];
    const std::string who =
        "tenant '" + (t.name.empty() ? std::to_string(i) : t.name) + "' ";
    if (t.workers == 0) {
      return who + "needs at least one worker";
    }
    if (t.shape.pages == 0) {
      return who + "needs a positive page namespace (shape.pages)";
    }
    if (t.shape.refs == 0) {
      return who + "needs at least one reference per request (shape.refs)";
    }
    if (!(t.shape.zipf_s >= 0.0)) {
      return who + "needs a non-negative zipf exponent";
    }
    if (t.slo_ticks == 0) {
      return who + "needs a positive SLO (slo_ticks)";
    }
    if (t.starvation_multiplier == 0) {
      return who + "needs a positive starvation multiplier";
    }
    if (std::string message = t.arrival.validation_error(); !message.empty()) {
      return who + message;
    }
  }
  if (duration == 0) {
    return "duration must be positive";
  }
  if (sim.shared_pages) {
    return "serving mode does not support shared_pages (workers keep "
           "disjoint per-request namespaces)";
  }
  SimConfig machine = sim;
  machine.open_system = true;
  return machine.validation_error(total_workers());
}

void ServingConfig::validate() const {
  if (std::string message = validation_error(); !message.empty()) {
    throw ConfigError(std::move(message));
  }
}

std::uint64_t ServingMetrics::total_arrivals() const noexcept {
  std::uint64_t n = 0;
  for (const TenantMetrics& t : per_tenant) {
    n += t.arrivals;
  }
  return n;
}

std::uint64_t ServingMetrics::total_completed() const noexcept {
  std::uint64_t n = 0;
  for (const TenantMetrics& t : per_tenant) {
    n += t.completed;
  }
  return n;
}

std::uint64_t ServingMetrics::total_rejected() const noexcept {
  std::uint64_t n = 0;
  for (const TenantMetrics& t : per_tenant) {
    n += t.rejected;
  }
  return n;
}

double ServingMetrics::throughput() const noexcept {
  return horizon == 0 ? 0.0
                      : static_cast<double>(total_completed()) /
                            static_cast<double>(horizon);
}

std::string ServingMetrics::summary() const {
  std::ostringstream os;
  os << "horizon:         " << format_count(horizon) << " ticks"
     << (sim.truncated ? " (TRUNCATED at max_ticks)" : "") << "\n"
     << "requests:        " << format_count(total_arrivals()) << " arrived, "
     << format_count(total_completed()) << " completed, "
     << format_count(total_rejected()) << " rejected\n"
     << "throughput:      " << format_fixed(throughput() * 1000.0, 3)
     << " requests / kilotick\n";
  for (const TenantMetrics& t : per_tenant) {
    os << "  " << t.name << " (class " << t.priority_class << "): "
       << format_count(t.completed) << " done, p50/p99/p999 "
       << format_fixed(t.latency_quantile(0.50), 1) << "/"
       << format_fixed(t.latency_quantile(0.99), 1) << "/"
       << format_fixed(t.latency_quantile(0.999), 1) << " ticks, "
       << format_count(t.slo_violations) << " SLO violations ("
       << format_count(t.starved) << " starved), max wait "
       << format_count(t.max_wait) << "\n";
  }
  return os.str();
}

std::string to_json(const ServingMetrics& m) {
  std::string tenants = "[";
  for (std::size_t i = 0; i < m.per_tenant.size(); ++i) {
    const TenantMetrics& t = m.per_tenant[i];
    exp::JsonObject o;
    o.field("tenant", t.name)
        .field("priority_class", t.priority_class)
        .field("arrivals", t.arrivals)
        .field("admitted", t.admitted)
        .field("rejected", t.rejected)
        .field("completed", t.completed)
        .field("slo_violations", t.slo_violations)
        .field("slo_violation_rate", t.slo_violation_rate())
        .field("starved", t.starved)
        .field("max_wait", t.max_wait)
        .field("mean_latency", t.latency.mean())
        .field("max_latency", t.latency.count() == 0
                                  ? std::uint64_t{0}
                                  : static_cast<std::uint64_t>(t.latency.max()));
    if (t.latency_hist.total() > 0) {
      o.field("latency_p50", t.latency_quantile(0.50))
          .field("latency_p99", t.latency_quantile(0.99))
          .field("latency_p999", t.latency_quantile(0.999));
    }
    if (i > 0) {
      tenants += ',';
    }
    tenants += o.str();
  }
  tenants += ']';

  exp::JsonObject o;
  o.field("horizon", m.horizon)
      .field("throughput", m.throughput())
      .field("total_arrivals", m.total_arrivals())
      .field("total_completed", m.total_completed())
      .field("total_rejected", m.total_rejected())
      .raw_field("tenants", tenants);
  return o.str();
}

ServingSimulator::ServingSimulator(const ServingConfig& config)
    : config_(config) {
  config_.validate();
  config_.sim.open_system = true;

  // Tenant → rank mapping: the identity π ranks lower thread ids higher,
  // so worker-id blocks are assigned in ascending priority_class order
  // (ties broken by declaration order, for determinism).
  const std::size_t n = config_.tenants.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return config_.tenants[a].priority_class < config_.tenants[b].priority_class;
  });
  std::vector<ThreadId> bases(n, 0);
  ThreadId next_base = 0;
  for (const std::size_t i : order) {
    bases[i] = next_base;
    next_base += config_.tenants[i].workers;
  }

  // Per-tenant RNG cursors derive from the master seed in declaration
  // order — independent of the rank mapping, so re-prioritizing tenants
  // does not perturb their arrival streams or request contents.
  SplitMix64 seeds(config_.seed);
  tenants_.reserve(n);
  metrics_.per_tenant.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    TenantSpec& spec = config_.tenants[i];
    if (spec.name.empty()) {
      spec.name = "tenant" + std::to_string(i);
    }
    const std::uint64_t arrival_seed = seeds.next();
    const std::uint64_t gen_seed = seeds.next();
    TenantRuntime tr{ArrivalProcess(spec.arrival, arrival_seed),
                     Xoshiro256StarStar(gen_seed),
                     ZipfSampler(spec.shape.pages, spec.shape.zipf_s),
                     bases[i],
                     {},
                     {},
                     0,
                     0};
    tr.idle.resize(spec.workers);
    std::iota(tr.idle.begin(), tr.idle.end(), bases[i]);
    // Admission bounds the live queue to max_pending and harvest compacts
    // the consumed prefix, so this reservation makes the steady-state
    // pending push_back allocation-free.
    tr.pending.reserve(spec.max_pending);
    tenants_.push_back(std::move(tr));
    metrics_.per_tenant[i].name = spec.name;
    metrics_.per_tenant[i].priority_class = spec.priority_class;
  }

  // The machine starts empty: one worker thread per tenant slot, each
  // with an empty trace (kDone until a request is injected).
  std::vector<std::shared_ptr<const Trace>> traces(
      config_.total_workers(), std::make_shared<Trace>());
  workers_.resize(traces.size());
  sim_ = std::make_unique<Simulator>(Workload(std::move(traces), "serving"),
                                     config_.sim);
}

ThreadId ServingSimulator::worker_base(std::size_t tenant) const {
  HBMSIM_CHECK(tenant < tenants_.size(), "tenant index out of range");
  return tenants_[tenant].base;
}

std::optional<Tick> ServingSimulator::next_arrival_tick() const {
  std::optional<Tick> next;
  for (const TenantRuntime& tr : tenants_) {
    const std::optional<Tick> a = tr.arrivals.peek();
    if (a && *a < config_.duration && (!next || *a < *next)) {
      next = *a;
    }
  }
  return next;
}

void ServingSimulator::inject_request(std::uint32_t tenant, ThreadId worker,
                                      Tick arrival) {
  TenantRuntime& tr = tenants_[tenant];
  const TenantSpec& spec = config_.tenants[tenant];
  // Queueing delay so far: 0 when injected on arrival, positive when the
  // request sat in the pending queue for a worker.
  metrics_.per_tenant[tenant].max_wait =
      std::max(metrics_.per_tenant[tenant].max_wait, sim_->now() - arrival);
  // lint:allow-hot-path-alloc — per-request payload: ownership moves into
  // the injected Trace below, so the buffer cannot be pooled here.
  std::vector<LocalPage> refs(spec.shape.refs);
  for (LocalPage& r : refs) {
    r = static_cast<LocalPage>(tr.zipf(tr.gen));
  }
  // lint:allow-hot-path-alloc — one Trace per admitted request, by design:
  // open-system injection materializes request content at admission
  // (O(refs) per request, not per tick).
  auto trace = std::make_shared<Trace>(std::move(refs), spec.shape.pages);
  sim_->inject_trace(worker, std::move(trace));
  workers_[worker] = WorkerState{tenant, arrival, true};
  ++tr.in_service;
}

void ServingSimulator::deliver_arrivals(Tick now) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    TenantRuntime& tr = tenants_[i];
    TenantMetrics& tm = metrics_.per_tenant[i];
    const std::uint32_t max_pending = config_.tenants[i].max_pending;
    for (;;) {
      const std::optional<Tick> a = tr.arrivals.peek();
      if (!a || *a >= config_.duration || *a > now) {
        break;
      }
      tr.arrivals.pop();
      ++tm.arrivals;
      if (!tr.idle.empty()) {
        // Refill keeps FIFO order: an idle worker implies nothing pending.
        HBMSIM_ASSERT(tr.pending_head == tr.pending.size(),
                      "idle worker with requests still pending");
        const ThreadId w = tr.idle.front();
        tr.idle.erase(tr.idle.begin());
        ++tm.admitted;
        inject_request(static_cast<std::uint32_t>(i), w, *a);
      } else if (tr.pending.size() - tr.pending_head < max_pending) {
        ++tm.admitted;
        // lint:allow-hot-path-alloc — reserved to max_pending: harvest
        // compacts the consumed prefix, so size never exceeds the bound.
        tr.pending.push_back(*a);
      } else {
        ++tm.rejected;
      }
    }
  }
  audit_conservation();
}

void ServingSimulator::harvest_completions() {
  const Tick now = sim_->now();
  // The completion buffer records the tick each worker served its last
  // reference — a step that batched many ticks (DESIGN.md §3e) still
  // yields exact per-request latency. Entries are chronological and
  // id-ascending within a tick, matching the per-step worker scan this
  // replaces.
  for (const Simulator::Completion& c : sim_->completions()) {
    WorkerState& ws = workers_[c.thread];
    HBMSIM_ASSERT(ws.busy, "completion for a worker with no request");
    TenantRuntime& tr = tenants_[ws.tenant];
    TenantMetrics& tm = metrics_.per_tenant[ws.tenant];
    // The last reference was served in tick c.tick, so end-to-end
    // latency — arrival to availability — is (c.tick + 1) - arrival; a
    // same-tick single-hit request costs 1.
    const Tick latency = c.tick + 1 - ws.arrival_tick;
    tm.latency.add(static_cast<double>(latency));
    tm.latency_hist.add(latency);
    ++tm.completed;
    const TenantSpec& spec = config_.tenants[ws.tenant];
    if (latency > spec.slo_ticks) {
      ++tm.slo_violations;
      if (latency > static_cast<Tick>(spec.starvation_multiplier) *
                        spec.slo_ticks) {
        ++tm.starved;
      }
    }
    --tr.in_service;
    ws.busy = false;
    const auto pos = std::lower_bound(tr.idle.begin(), tr.idle.end(), c.thread);
    tr.idle.insert(pos, c.thread);
  }
  sim_->clear_completions();
  // Refill freed workers from the pending queues, oldest request first,
  // lowest worker id first — provided the run has room for another tick.
  if (now < config_.sim.max_ticks) {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      TenantRuntime& tr = tenants_[i];
      while (tr.pending_head < tr.pending.size() && !tr.idle.empty()) {
        const Tick arrival = tr.pending[tr.pending_head++];
        const ThreadId w = tr.idle.front();
        tr.idle.erase(tr.idle.begin());
        inject_request(static_cast<std::uint32_t>(i), w, arrival);
      }
      if (tr.pending_head > 0) {
        // Compact the consumed prefix in place (no allocation). Without
        // this, sustained overload grows the dead prefix — and with it
        // the vector's capacity — without bound, since the admission
        // check above bounds only size - pending_head.
        tr.pending.erase(tr.pending.begin(),
                         tr.pending.begin() +
                             static_cast<std::ptrdiff_t>(tr.pending_head));
        tr.pending_head = 0;
      }
    }
  }
  audit_conservation();
}

void ServingSimulator::audit_conservation() const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantRuntime& tr = tenants_[i];
    const TenantMetrics& tm = metrics_.per_tenant[i];
    check::audit_arrival_conservation(
        tm.arrivals, tr.in_service, tr.pending.size() - tr.pending_head,
        tm.completed, tm.rejected);
  }
}

ServingMetrics ServingSimulator::run() {
  HBMSIM_CHECK(!ran_, "ServingSimulator::run may only be called once");
  ran_ = true;
  const Tick max_ticks = config_.sim.max_ticks;
  for (;;) {
    const Tick now = sim_->now();
    if (now >= max_ticks) {
      if (!sim_->finished()) {
        (void)sim_->step();  // records the truncation in RunMetrics
      }
      break;
    }
    deliver_arrivals(now);
    const std::optional<Tick> next = next_arrival_tick();
    if (sim_->finished()) {
      // Machine empty: jump to the next arrival, or stop once every
      // arrival is resolved (the queues drain through harvest, so an
      // empty machine implies empty pending queues).
      if (!next) {
        break;
      }
      sim_->advance_idle(*next);
      if (sim_->now() < *next) {
        break;  // clamped at max_ticks — truncated
      }
      continue;
    }
    // Publish how far the engine may run without consulting us again:
    // arrivals due at `now` are already injected, so the next injection
    // can only happen at the next arrival tick. A batching engine
    // (DESIGN.md §3e) advances up to — never past — this horizon.
    sim_->set_arrival_horizon(next ? *next
                                   : std::numeric_limits<Tick>::max());
    if (!sim_->step()) {
      break;  // truncated mid-service
    }
    harvest_completions();
  }
  metrics_.sim = sim_->metrics();
  metrics_.sim.evictions = sim_->cache().evictions();
  metrics_.horizon = sim_->now();
  return metrics_;
}

ServingMetrics serve(const ServingConfig& config) {
  ServingSimulator sim(config);
  return sim.run();
}

}  // namespace hbmsim::serve
