// Request-arrival processes for the open-system serving mode.
//
// An ArrivalProcess is a deterministic cursor over one tenant's request
// arrival ticks: peek() exposes the next arrival, pop() advances. All
// randomness flows from the seed handed to the constructor (the serving
// harness derives per-tenant seeds from ServingConfig::seed via
// SplitMix64), so a tenant's arrival stream is a pure function of
// (spec, seed) — independent of machine load, runner --jobs, or the
// other tenants. Three stream shapes:
//
//   kPoisson  memoryless arrivals at `rate` requests per tick
//             (exponential inter-arrival times, the M/·/· baseline)
//   kOnOff    bursty traffic: Poisson at `rate` during on-periods of
//             `on_ticks`, silent during off-periods of `off_ticks` —
//             the canonical tail-latency stressor
//   kTrace    an explicit non-decreasing schedule of arrival ticks
//             (replaying measured production arrival logs)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace hbmsim::serve {

enum class ArrivalKind {
  kPoisson,
  kOnOff,
  kTrace,
};

[[nodiscard]] constexpr const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kOnOff: return "onoff";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

/// Parse an arrival-kind name (poisson|onoff|trace); throws ConfigError.
[[nodiscard]] ArrivalKind parse_arrival(std::string_view name);

/// One tenant's arrival-stream parameters.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean requests per tick while the stream is active (kPoisson: always;
  /// kOnOff: during on-periods; ignored by kTrace).
  double rate = 0.01;
  /// kOnOff: length of each burst / silence period in ticks.
  Tick on_ticks = 1000;
  Tick off_ticks = 1000;
  /// kTrace: explicit arrival ticks, non-decreasing.
  std::vector<Tick> schedule;

  /// First inconsistency, or empty when valid.
  [[nodiscard]] std::string validation_error() const;
};

/// Deterministic cursor over an ArrivalSpec's arrival ticks.
class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalSpec spec, std::uint64_t seed);

  /// The next arrival tick (non-decreasing across pops), or nullopt once
  /// a kTrace schedule is exhausted (the random kinds never end — the
  /// serving harness cuts them off at its duration horizon).
  [[nodiscard]] std::optional<Tick> peek() const noexcept { return next_; }

  /// Consume the current arrival and generate the next.
  void pop();

 private:
  void generate_next();

  ArrivalSpec spec_;
  Xoshiro256StarStar rng_;
  /// Continuous arrival clock: absolute time for kPoisson, accumulated
  /// on-period time for kOnOff (mapped to absolute ticks through the
  /// on/off cycle structure).
  double clock_ = 0.0;
  std::size_t cursor_ = 0;  // kTrace position
  std::optional<Tick> next_;
};

}  // namespace hbmsim::serve
