// Trace analysis: LRU stack distances (Mattson et al.) and the miss-ratio
// curve they induce.
//
// The stack distance of an access is the number of *distinct* pages
// referenced since the previous access to the same page (∞ for first
// touches). An LRU cache of k slots misses exactly the accesses with
// stack distance > k, so one O(n log n) pass yields the miss count for
// every cache size at once — the tool for choosing the paper's HBM sizes
// and for explaining where the Figure 2 crossovers sit.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace hbmsim {

/// The distance histogram and derived miss-ratio curve of one trace.
class MissCurve {
 public:
  /// hist[d-1] = number of accesses with stack distance exactly d;
  /// `cold` = first touches (infinite distance).
  MissCurve(std::vector<std::uint64_t> hist, std::uint64_t cold);

  [[nodiscard]] std::uint64_t total_refs() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t cold_misses() const noexcept { return cold_; }

  /// Largest finite stack distance observed (0 if none).
  [[nodiscard]] std::uint64_t max_distance() const noexcept {
    return hist_.size();
  }

  /// LRU misses with a k-slot cache: cold + #accesses with distance > k.
  [[nodiscard]] std::uint64_t misses_at(std::uint64_t k) const noexcept;

  [[nodiscard]] double miss_ratio_at(std::uint64_t k) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(misses_at(k)) /
                             static_cast<double>(total_);
  }

  /// Smallest cache size whose miss ratio is ≤ `target`; returns
  /// max_distance()+1 when even a full-footprint cache cannot reach it
  /// (cold misses dominate).
  [[nodiscard]] std::uint64_t min_k_for_miss_ratio(double target) const;

  /// Raw histogram access (tests).
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept {
    return hist_;
  }

 private:
  std::vector<std::uint64_t> hist_;    // finite distances, 1-based
  std::vector<std::uint64_t> cum_;     // cum_[i] = # accesses with d <= i+1
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
};

/// One-pass Mattson analysis (Fenwick tree over access positions).
[[nodiscard]] MissCurve compute_miss_curve(const Trace& trace);

/// Summary statistics of a single trace, for workload characterisation.
struct TraceProfile {
  std::uint64_t refs = 0;
  std::uint64_t unique_pages = 0;
  double mean_stack_distance = 0.0;   // over finite distances
  std::uint64_t median_stack_distance = 0;
  /// k needed for 50% / 10% / 1% miss ratios.
  std::uint64_t k_for_half = 0;
  std::uint64_t k_for_tenth = 0;
  std::uint64_t k_for_hundredth = 0;
};

[[nodiscard]] TraceProfile profile_trace(const Trace& trace);

}  // namespace hbmsim
