#include "trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace hbmsim {
namespace {

constexpr std::array<char, 4> kMagic = {'H', 'B', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  std::array<unsigned char, 4> b = {
      static_cast<unsigned char>(v),
      static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 24),
  };
  os.write(reinterpret_cast<const char*>(b.data()), b.size());
}

void write_u64(std::ostream& os, std::uint64_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
  write_u32(os, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32(std::istream& is) {
  std::array<unsigned char, 4> b{};
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) {
    throw ParseError("unexpected end of binary trace");
  }
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t read_u64(std::istream& is) {
  const std::uint64_t lo = read_u32(is);
  const std::uint64_t hi = read_u32(is);
  return lo | (hi << 32);
}

}  // namespace

void write_trace_text(const Trace& trace, std::ostream& os) {
  os << "# hbmsim trace v1\n";
  os << "!pages " << trace.num_pages() << '\n';
  for (const LocalPage p : trace.refs()) {
    os << p << '\n';
  }
  if (!os) {
    throw IoError("failed writing text trace");
  }
}

Trace read_trace_text(std::istream& is) {
  std::vector<LocalPage> refs;
  LocalPage num_pages = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR for files written on Windows.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line[0] == '!') {
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "pages") {
        std::uint64_t n = 0;
        header >> n;
        if (!header || n > 0xFFFFFFFFull) {
          throw ParseError("bad !pages header at line " + std::to_string(line_no));
        }
        num_pages = static_cast<LocalPage>(n);
        continue;
      }
      throw ParseError("unknown header '" + line + "' at line " +
                       std::to_string(line_no));
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != '\0' || v > 0xFFFFFFFFull) {
      throw ParseError("bad page id '" + line + "' at line " +
                       std::to_string(line_no));
    }
    refs.push_back(static_cast<LocalPage>(v));
  }
  return Trace(std::move(refs), num_pages);
}

void write_trace_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagic.data(), kMagic.size());
  write_u32(os, kVersion);
  write_u32(os, trace.num_pages());
  write_u64(os, trace.size());
  for (const LocalPage p : trace.refs()) {
    write_u32(os, p);
  }
  if (!os) {
    throw IoError("failed writing binary trace");
  }
}

Trace read_trace_binary(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  if (!is || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    throw ParseError("missing HBMT magic in binary trace");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kVersion) {
    throw ParseError("unsupported binary trace version " + std::to_string(version));
  }
  const LocalPage num_pages = read_u32(is);
  const std::uint64_t count = read_u64(is);
  std::vector<LocalPage> refs;
  refs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    refs.push_back(read_u32(is));
  }
  return Trace(std::move(refs), num_pages);
}

void save_trace(const Trace& trace, const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw IoError("cannot open for writing: " + path.string());
  }
  if (path.extension() == ".btrace") {
    write_trace_binary(trace, os);
  } else {
    write_trace_text(trace, os);
  }
}

Trace load_trace(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw IoError("cannot open for reading: " + path.string());
  }
  if (path.extension() == ".btrace") {
    return read_trace_binary(is);
  }
  return read_trace_text(is);
}

}  // namespace hbmsim
