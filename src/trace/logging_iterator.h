// LoggingIterator: the paper's GNU-sort instrumentation technique (§3.2).
//
// "Since GNU sort takes iterators as input, we created a logging iterator
//  class that logs every dereference to a file, and passed these logging
//  iterators to GNU sort."
//
// LoggingIterator wraps a raw pointer and reports the *virtual* byte
// address of every dereference to an access sink (normally a PageMapper).
// Virtual bases are caller-assigned so traces are deterministic and
// independent of ASLR. It satisfies LegacyRandomAccessIterator, so it can
// be handed directly to std::sort / std::stable_sort — the drop-in
// replacement for the paper's GNU libstdc++ sort.
#pragma once

#include <cstddef>
#include <iterator>

#include "trace/page_mapper.h"

namespace hbmsim {

template <typename T, AccessSink Sink = PageMapper>
class LoggingIterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = T*;
  using reference = T&;

  LoggingIterator() = default;

  /// `virtual_base` is the simulated byte address of `storage_base`.
  LoggingIterator(T* ptr, T* storage_base, Address virtual_base, Sink* sink) noexcept
      : ptr_(ptr), base_(storage_base), vbase_(virtual_base), sink_(sink) {}

  reference operator*() const {
    log();
    return *ptr_;
  }

  pointer operator->() const {
    log();
    return ptr_;
  }

  reference operator[](difference_type n) const {
    LoggingIterator tmp = *this + n;
    return *tmp;
  }

  LoggingIterator& operator++() noexcept { ++ptr_; return *this; }
  LoggingIterator operator++(int) noexcept { auto t = *this; ++ptr_; return t; }
  LoggingIterator& operator--() noexcept { --ptr_; return *this; }
  LoggingIterator operator--(int) noexcept { auto t = *this; --ptr_; return t; }
  LoggingIterator& operator+=(difference_type n) noexcept { ptr_ += n; return *this; }
  LoggingIterator& operator-=(difference_type n) noexcept { ptr_ -= n; return *this; }

  friend LoggingIterator operator+(LoggingIterator it, difference_type n) noexcept {
    it += n;
    return it;
  }
  friend LoggingIterator operator+(difference_type n, LoggingIterator it) noexcept {
    return it + n;
  }
  friend LoggingIterator operator-(LoggingIterator it, difference_type n) noexcept {
    it -= n;
    return it;
  }
  friend difference_type operator-(const LoggingIterator& a,
                                   const LoggingIterator& b) noexcept {
    return a.ptr_ - b.ptr_;
  }

  friend bool operator==(const LoggingIterator& a, const LoggingIterator& b) noexcept {
    return a.ptr_ == b.ptr_;
  }
  friend auto operator<=>(const LoggingIterator& a, const LoggingIterator& b) noexcept {
    return a.ptr_ <=> b.ptr_;
  }

  [[nodiscard]] Address virtual_address() const noexcept {
    return vbase_ + static_cast<Address>(ptr_ - base_) * sizeof(T);
  }

 private:
  void log() const {
    if (sink_ != nullptr) {
      sink_->access(virtual_address());
    }
  }

  T* ptr_ = nullptr;
  T* base_ = nullptr;
  Address vbase_ = 0;
  Sink* sink_ = nullptr;
};

/// A buffer whose begin()/end() iterators log every dereference.
/// The storage itself is plain memory; only accesses through the logging
/// iterators are traced (matching the paper's instrumentation).
template <typename T, AccessSink Sink = PageMapper>
class TracedBuffer {
 public:
  using iterator = LoggingIterator<T, Sink>;

  TracedBuffer(std::vector<T> data, Address virtual_base, Sink* sink)
      : data_(std::move(data)), vbase_(virtual_base), sink_(sink) {}

  [[nodiscard]] iterator begin() noexcept {
    return iterator(data_.data(), data_.data(), vbase_, sink_);
  }
  [[nodiscard]] iterator end() noexcept {
    return iterator(data_.data() + data_.size(), data_.data(), vbase_, sink_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] Address virtual_base() const noexcept { return vbase_; }

  /// Untraced access, for test assertions on the final contents.
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }
  [[nodiscard]] std::vector<T>& raw() noexcept { return data_; }

 private:
  std::vector<T> data_;
  Address vbase_;
  Sink* sink_;
};

}  // namespace hbmsim
