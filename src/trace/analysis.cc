#include "trace/analysis.h"

#include <algorithm>

#include "util/error.h"

namespace hbmsim {
namespace {

/// Fenwick (binary indexed) tree over access positions; supports point
/// update and prefix sum in O(log n).
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, int delta) {
    for (std::size_t x = i + 1; x < tree_.size(); x += x & (~x + 1)) {
      tree_[x] += delta;
    }
  }

  /// Sum of [0, i].
  [[nodiscard]] std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (std::size_t x = i + 1; x > 0; x -= x & (~x + 1)) {
      s += tree_[x];
    }
    return s;
  }

  /// Sum of (lo, hi] with lo < hi (half-open from below).
  [[nodiscard]] std::int64_t range(std::size_t lo, std::size_t hi) const {
    return prefix(hi) - prefix(lo);
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

MissCurve::MissCurve(std::vector<std::uint64_t> hist, std::uint64_t cold)
    : hist_(std::move(hist)), cold_(cold) {
  cum_.resize(hist_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    running += hist_[i];
    cum_[i] = running;
  }
  total_ = running + cold_;
}

std::uint64_t MissCurve::misses_at(std::uint64_t k) const noexcept {
  // Hits at size k = accesses with distance ≤ k.
  const std::uint64_t hits =
      k == 0 ? 0
             : cum_.empty()
                   ? 0
                   : cum_[std::min<std::uint64_t>(k, cum_.size()) - 1];
  return total_ - hits;
}

std::uint64_t MissCurve::min_k_for_miss_ratio(double target) const {
  HBMSIM_CHECK(target >= 0.0 && target <= 1.0, "target ratio must be in [0,1]");
  // miss_ratio_at is non-increasing in k: binary search.
  std::uint64_t lo = 0;
  std::uint64_t hi = max_distance() + 1;
  if (miss_ratio_at(hi) > target) {
    return hi;  // unreachable even with a full-footprint cache
  }
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (miss_ratio_at(mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

MissCurve compute_miss_curve(const Trace& trace) {
  const auto refs = trace.refs();
  const std::size_t n = refs.size();
  Fenwick marked(n);
  // last_pos[page] = index of the page's most recent access, or -1.
  std::vector<std::int64_t> last_pos(trace.num_pages(), -1);
  std::vector<std::uint64_t> hist;
  std::uint64_t cold = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const LocalPage page = refs[i];
    const std::int64_t prev = last_pos[page];
    if (prev < 0) {
      ++cold;
    } else {
      // Marks in (prev, i-1] are the most-recent positions of the
      // distinct *other* pages touched since prev; the stack distance
      // additionally counts this page itself.
      const std::int64_t between =
          i == 0 ? 0 : marked.range(static_cast<std::size_t>(prev), i - 1);
      HBMSIM_ASSERT(between >= 0, "negative distinct count");
      const auto distance = static_cast<std::uint64_t>(between) + 1;
      if (distance > hist.size()) {
        hist.resize(distance, 0);
      }
      ++hist[distance - 1];
      marked.add(static_cast<std::size_t>(prev), -1);
    }
    marked.add(i, +1);
    last_pos[page] = static_cast<std::int64_t>(i);
  }
  return MissCurve(std::move(hist), cold);
}

TraceProfile profile_trace(const Trace& trace) {
  const MissCurve curve = compute_miss_curve(trace);
  TraceProfile p;
  p.refs = curve.total_refs();
  p.unique_pages = trace.unique_pages();

  const auto& hist = curve.histogram();
  std::uint64_t finite = 0;
  double weighted = 0.0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    finite += hist[d];
    weighted += static_cast<double>(hist[d]) * static_cast<double>(d + 1);
  }
  p.mean_stack_distance = finite == 0 ? 0.0 : weighted / static_cast<double>(finite);
  std::uint64_t seen = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    seen += hist[d];
    if (2 * seen >= finite && finite > 0) {
      p.median_stack_distance = d + 1;
      break;
    }
  }
  p.k_for_half = curve.min_k_for_miss_ratio(0.5);
  p.k_for_tenth = curve.min_k_for_miss_ratio(0.1);
  p.k_for_hundredth = curve.min_k_for_miss_ratio(0.01);
  return p;
}

}  // namespace hbmsim
