#include "trace/trace.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "trace/trace_cursor.h"

namespace hbmsim {

Trace::Trace(std::vector<LocalPage> refs, LocalPage num_pages)
    : refs_(std::move(refs)), num_pages_(num_pages) {
  LocalPage max_page = 0;
  for (const LocalPage p : refs_) {
    max_page = std::max(max_page, p);
  }
  if (num_pages_ == 0) {
    num_pages_ = refs_.empty() ? 0 : max_page + 1;
  } else {
    HBMSIM_CHECK(refs_.empty() || max_page < num_pages_,
                 "trace references a page >= num_pages");
  }
}

std::size_t Trace::unique_pages() const {
  std::vector<bool> seen(num_pages_, false);
  std::size_t unique = 0;
  for (const LocalPage p : refs_) {
    if (!seen[p]) {
      seen[p] = true;
      ++unique;
    }
  }
  return unique;
}

Trace Trace::coalesced() const {
  std::vector<LocalPage> out;
  out.reserve(refs_.size());
  for (const LocalPage p : refs_) {
    if (out.empty() || out.back() != p) {
      out.push_back(p);
    }
  }
  return Trace(std::move(out), num_pages_);
}

namespace {

std::vector<std::shared_ptr<const TraceSource>> wrap_traces(
    std::vector<std::shared_ptr<const Trace>> traces) {
  std::vector<std::shared_ptr<const TraceSource>> sources;
  sources.reserve(traces.size());
  for (auto& t : traces) {
    HBMSIM_CHECK(t != nullptr, "workload trace must not be null");
    sources.push_back(std::make_shared<MaterializedSource>(std::move(t)));
  }
  return sources;
}

}  // namespace

Workload::Workload(std::vector<std::shared_ptr<const Trace>> traces,
                   std::string name)
    : Workload(wrap_traces(std::move(traces)), std::move(name)) {}

Workload::Workload(std::vector<std::shared_ptr<const TraceSource>> sources,
                   std::string name)
    : sources_(std::move(sources)), name_(std::move(name)) {
  for (const auto& s : sources_) {
    HBMSIM_CHECK(s != nullptr, "workload source must not be null");
  }
}

Workload Workload::replicate(std::shared_ptr<const Trace> trace,
                             std::size_t num_threads, std::string name) {
  HBMSIM_CHECK(trace != nullptr, "workload trace must not be null");
  return replicate(std::shared_ptr<const TraceSource>(
                       std::make_shared<MaterializedSource>(std::move(trace))),
                   num_threads, std::move(name));
}

Workload Workload::replicate(std::shared_ptr<const TraceSource> source,
                             std::size_t num_threads, std::string name) {
  HBMSIM_CHECK(source != nullptr, "workload source must not be null");
  std::vector<std::shared_ptr<const TraceSource>> sources(num_threads,
                                                          std::move(source));
  return Workload(std::move(sources), std::move(name));
}

Workload Workload::round_robin(std::vector<std::shared_ptr<const Trace>> pool,
                               std::size_t num_threads, std::string name) {
  HBMSIM_CHECK(!pool.empty(), "round_robin requires a non-empty trace pool");
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    traces.push_back(pool[i % pool.size()]);
  }
  return Workload(std::move(traces), std::move(name));
}

const Trace& Workload::trace(std::size_t thread) const {
  HBMSIM_CHECK(thread < sources_.size(), "thread index out of range");
  const std::shared_ptr<const Trace> backing = sources_[thread]->trace();
  HBMSIM_CHECK(backing != nullptr,
               "trace() on a streaming workload source (random access needs "
               "a materialized trace; walk cursor() instead)");
  return *backing;
}

std::shared_ptr<const Trace> Workload::share(std::size_t thread) const {
  HBMSIM_CHECK(thread < sources_.size(), "thread index out of range");
  std::shared_ptr<const Trace> backing = sources_[thread]->trace();
  HBMSIM_CHECK(backing != nullptr,
               "share() on a streaming workload source (random access needs "
               "a materialized trace; walk cursor() instead)");
  return backing;
}

const std::shared_ptr<const TraceSource>& Workload::source(
    std::size_t thread) const {
  HBMSIM_CHECK(thread < sources_.size(), "thread index out of range");
  return sources_[thread];
}

std::unique_ptr<TraceCursor> Workload::cursor(std::size_t thread) const {
  HBMSIM_CHECK(thread < sources_.size(), "thread index out of range");
  return sources_[thread]->cursor();
}

bool Workload::streaming() const noexcept {
  for (const auto& s : sources_) {
    if (s->trace() == nullptr) {
      return true;
    }
  }
  return false;
}

std::uint64_t Workload::total_refs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : sources_) {
    total += s->size();
  }
  return total;
}

std::uint64_t Workload::total_unique_pages() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) {
    total += materialize_shared(*s)->unique_pages();
  }
  return total;
}

}  // namespace hbmsim
