#include "trace/trace.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace hbmsim {

Trace::Trace(std::vector<LocalPage> refs, LocalPage num_pages)
    : refs_(std::move(refs)), num_pages_(num_pages) {
  LocalPage max_page = 0;
  for (const LocalPage p : refs_) {
    max_page = std::max(max_page, p);
  }
  if (num_pages_ == 0) {
    num_pages_ = refs_.empty() ? 0 : max_page + 1;
  } else {
    HBMSIM_CHECK(refs_.empty() || max_page < num_pages_,
                 "trace references a page >= num_pages");
  }
}

std::size_t Trace::unique_pages() const {
  std::vector<bool> seen(num_pages_, false);
  std::size_t unique = 0;
  for (const LocalPage p : refs_) {
    if (!seen[p]) {
      seen[p] = true;
      ++unique;
    }
  }
  return unique;
}

Trace Trace::coalesced() const {
  std::vector<LocalPage> out;
  out.reserve(refs_.size());
  for (const LocalPage p : refs_) {
    if (out.empty() || out.back() != p) {
      out.push_back(p);
    }
  }
  return Trace(std::move(out), num_pages_);
}

Workload::Workload(std::vector<std::shared_ptr<const Trace>> traces,
                   std::string name)
    : traces_(std::move(traces)), name_(std::move(name)) {
  for (const auto& t : traces_) {
    HBMSIM_CHECK(t != nullptr, "workload trace must not be null");
  }
}

Workload Workload::replicate(std::shared_ptr<const Trace> trace,
                             std::size_t num_threads, std::string name) {
  HBMSIM_CHECK(trace != nullptr, "workload trace must not be null");
  std::vector<std::shared_ptr<const Trace>> traces(num_threads, std::move(trace));
  return Workload(std::move(traces), std::move(name));
}

Workload Workload::round_robin(std::vector<std::shared_ptr<const Trace>> pool,
                               std::size_t num_threads, std::string name) {
  HBMSIM_CHECK(!pool.empty(), "round_robin requires a non-empty trace pool");
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    traces.push_back(pool[i % pool.size()]);
  }
  return Workload(std::move(traces), std::move(name));
}

std::uint64_t Workload::total_refs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : traces_) {
    total += t->size();
  }
  return total;
}

std::uint64_t Workload::total_unique_pages() const {
  std::uint64_t total = 0;
  for (const auto& t : traces_) {
    total += t->unique_pages();
  }
  return total;
}

}  // namespace hbmsim
