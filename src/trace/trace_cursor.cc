#include "trace/trace_cursor.h"

#include <utility>
#include <vector>

namespace hbmsim {

Trace materialize(const TraceCursor& cursor) {
  const std::unique_ptr<TraceCursor> walker = cursor.clone();
  walker->rewind();
  std::vector<LocalPage> refs;
  refs.reserve(walker->size());
  while (!walker->exhausted()) {
    refs.push_back(walker->current());
    walker->next();
  }
  return Trace(std::move(refs), cursor.num_pages());
}

std::shared_ptr<const Trace> materialize_shared(const TraceSource& source) {
  if (auto backing = source.trace()) {
    return backing;
  }
  const std::unique_ptr<TraceCursor> walker = source.cursor();
  return std::make_shared<Trace>(materialize(*walker));
}

}  // namespace hbmsim
