// Address-to-page mapping: the paper's preprocessing step (§3.1).
//
// "In a preprocessing step, each array dereference in the annotated code
//  is mapped to its page reference."
//
// PageMapper consumes raw byte addresses (from LoggingIterator /
// LoggingArray instrumentation), divides by the page size, and densifies
// the resulting page numbers into [0, n) in first-touch order, producing a
// Trace ready for simulation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace hbmsim {

/// Raw byte address recorded by instrumentation.
using Address = std::uint64_t;

/// Builds a Trace from a stream of byte addresses.
class PageMapper {
 public:
  /// `page_bytes` must be a power of two (default 4 KiB, the paper's
  /// natural unit for "page").
  explicit PageMapper(std::uint64_t page_bytes = 4096);

  /// Record one memory access at byte address `addr`.
  void access(Address addr);

  /// Record an access to `bytes` consecutive bytes starting at `addr`
  /// (touches every covered page once, in ascending order).
  void access_range(Address addr, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t page_bytes() const noexcept { return page_bytes_; }
  [[nodiscard]] std::size_t num_refs() const noexcept { return refs_.size(); }
  [[nodiscard]] std::size_t num_pages() const noexcept { return next_dense_.size(); }

  /// Finish and produce the trace. The mapper is reset afterwards.
  [[nodiscard]] Trace take_trace(bool coalesce_adjacent = false);

 private:
  std::uint64_t page_bytes_;
  int page_shift_;
  std::vector<LocalPage> refs_;
  // Point lookup only (try_emplace per reference) — never iterated, so
  // bucket order cannot leak into the dense page numbering, which is
  // assigned strictly in first-touch order (hbmlint's unordered-iteration
  // rule keeps it that way).
  std::unordered_map<std::uint64_t, LocalPage> next_dense_;
};

/// Convenience sink interface shared by instrumentation wrappers: anything
/// with an `access(Address)` member works; PageMapper is the standard one.
template <typename T>
concept AccessSink = requires(T sink, Address a) {
  sink.access(a);
};

}  // namespace hbmsim
