// Trace serialization: a line-oriented text format (debuggable, the
// paper's "log to a file" shape) and a compact binary format for large
// captured traces.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace hbmsim {

/// Text format: optional `#` comment lines, then one decimal page id per
/// line. An optional header line `!pages N` pins num_pages.
void write_trace_text(const Trace& trace, std::ostream& os);
[[nodiscard]] Trace read_trace_text(std::istream& is);

/// Binary format: magic "HBMT", u32 version, u32 num_pages, u64 count,
/// then `count` little-endian u32 page ids.
void write_trace_binary(const Trace& trace, std::ostream& os);
[[nodiscard]] Trace read_trace_binary(std::istream& is);

/// File helpers; format chosen by extension (".trace" text, ".btrace"
/// binary).
void save_trace(const Trace& trace, const std::filesystem::path& path);
[[nodiscard]] Trace load_trace(const std::filesystem::path& path);

}  // namespace hbmsim
