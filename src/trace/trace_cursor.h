// Streaming trace access: cursors generate one reference at a time.
//
// A materialized Trace costs O(length) resident memory per distinct
// trace; at p = 1M threads that caps honest experiments long before the
// q << p regime the paper studies becomes interesting. A TraceCursor is
// the lazy alternative: O(1) state per thread (a seeded RNG plus a
// position), producing exactly the same reference sequence the
// materialized generators in src/workloads/ would have stored — the
// generators themselves are implemented by materializing a cursor, so
// the equality is by construction, not by parallel maintenance.
//
// The sequence generators draw a data-dependent number of RNG values per
// reference (Lemire rejection in Xoshiro256StarStar::uniform, Hörmann–
// Derflinger rejection-inversion in ZipfSampler), so cursors are
// forward-only: random access would need a materialized prefix. The two
// recovery operations every consumer needs are supported exactly:
//
//   * rewind()  — back to position 0 by re-seeding (the shadow/paranoid
//     layers re-walk traces after a run; Belady lower bounds need the
//     full sequence);
//   * clone()   — a full state copy at the current position (the event
//     engine freezes pages at issue time; differential tests fork
//     cursors mid-run).
//
// TraceCursor::next() is a hot-path-alloc seed in tools/hbmlint: a
// cursor advances once per served reference, so neither next() nor any
// generate() override may allocate.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/trace.h"
#include "util/error.h"

namespace hbmsim {

/// One core's reference sequence, revealed one position at a time.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// Total references in the sequence (fixed at construction).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Page-id bound: every generated reference is < num_pages().
  [[nodiscard]] LocalPage num_pages() const noexcept { return num_pages_; }
  /// Index of the current (not yet retired) reference, in [0, size()].
  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }
  /// pos() == size(): every reference has been retired; current() is
  /// no longer valid.
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

  /// The reference at pos(). Cached — repeated calls are loads, not
  /// generator draws.
  [[nodiscard]] LocalPage current() const noexcept {
    HBMSIM_ASSERT(!exhausted(), "current() on an exhausted cursor");
    return current_;
  }

  /// Retire the current reference and generate the next (if any).
  void next() {
    HBMSIM_ASSERT(!exhausted(), "next() on an exhausted cursor");
    ++pos_;
    if (pos_ < size_) {
      current_ = generate();
    }
  }

  /// Back to position 0, replaying the identical sequence.
  void rewind() {
    reset();
    pos_ = 0;
    if (size_ > 0) {
      current_ = generate();
    }
  }

  /// Deep copy preserving the exact position and generator state: the
  /// clone and the original produce identical suffixes independently.
  [[nodiscard]] virtual std::unique_ptr<TraceCursor> clone() const = 0;

 protected:
  TraceCursor(std::uint64_t size, LocalPage num_pages)
      : size_(size), num_pages_(num_pages) {}
  TraceCursor(const TraceCursor&) = default;
  TraceCursor& operator=(const TraceCursor&) = default;

  /// Produce the reference at pos() (called once per position, in
  /// order; pos() < size() is guaranteed). Must not allocate.
  [[nodiscard]] virtual LocalPage generate() = 0;
  /// Return the generator to its start-of-sequence state.
  virtual void reset() = 0;

 private:
  std::uint64_t size_;
  LocalPage num_pages_;
  std::uint64_t pos_ = 0;
  LocalPage current_ = 0;
};

/// Cursor over a materialized Trace (shared ownership, so a temporary
/// Workload or an injected open-system trace stays alive).
class VectorTraceCursor final : public TraceCursor {
 public:
  explicit VectorTraceCursor(std::shared_ptr<const Trace> trace)
      : TraceCursor(trace->size(), trace->num_pages()), trace_(std::move(trace)) {
    rewind();
  }

  [[nodiscard]] std::unique_ptr<TraceCursor> clone() const override {
    return std::make_unique<VectorTraceCursor>(*this);
  }

 protected:
  [[nodiscard]] LocalPage generate() override { return (*trace_)[pos()]; }
  void reset() override {}

 private:
  std::shared_ptr<const Trace> trace_;
};

/// Factory for per-thread cursors: what a Workload actually bundles.
/// A source is immutable and shareable; each cursor() call returns an
/// independent walker over the same sequence.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  [[nodiscard]] virtual std::uint64_t size() const = 0;
  [[nodiscard]] virtual LocalPage num_pages() const = 0;
  [[nodiscard]] virtual std::unique_ptr<TraceCursor> cursor() const = 0;

  /// The backing materialized Trace, or nullptr for generative sources.
  /// Consumers that need random access (Belady lower bounds, the
  /// brute-force reference simulator, trace analysis) go through this;
  /// Workload::trace() checks it so materialized-only call sites keep
  /// their exact semantics.
  [[nodiscard]] virtual std::shared_ptr<const Trace> trace() const {
    return nullptr;
  }
};

/// TraceSource over a materialized Trace.
class MaterializedSource final : public TraceSource {
 public:
  explicit MaterializedSource(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {
    HBMSIM_CHECK(trace_ != nullptr, "materialized source needs a trace");
  }

  [[nodiscard]] std::uint64_t size() const override { return trace_->size(); }
  [[nodiscard]] LocalPage num_pages() const override {
    return trace_->num_pages();
  }
  [[nodiscard]] std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<VectorTraceCursor>(trace_);
  }
  [[nodiscard]] std::shared_ptr<const Trace> trace() const override {
    return trace_;
  }

 private:
  std::shared_ptr<const Trace> trace_;
};

/// Materialize a cursor's full sequence into a Trace (from position 0,
/// regardless of where `cursor` currently stands; `cursor` itself is
/// not disturbed). The single bridge between the streaming and
/// materialized worlds: workload generators build their vectors through
/// it, and the paranoid checker re-materializes streamed traces for the
/// offline Belady bound.
[[nodiscard]] Trace materialize(const TraceCursor& cursor);

/// Materialize a source, reusing its backing trace when it has one.
[[nodiscard]] std::shared_ptr<const Trace> materialize_shared(
    const TraceSource& source);

}  // namespace hbmsim
