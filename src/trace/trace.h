// Page-reference traces: the simulator's input format.
//
// A Trace is one core's sequence of page references, with pages given as
// dense local ids [0, num_pages). A Workload bundles p traces, one per
// core. Per the model (§3, Property 1), the page sets of distinct cores
// are disjoint; the simulator enforces this by namespacing local page ids
// with the owning thread id, so the same Trace object can be safely shared
// by many threads (the paper's "same program, different randomness" setup
// with memory use independent of p).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace hbmsim {

/// Dense per-thread page id.
using LocalPage = std::uint32_t;

/// One core's page reference sequence.
class Trace {
 public:
  Trace() = default;

  /// Construct from a reference sequence. `num_pages` must exceed every
  /// referenced page; pass 0 to have it derived from the data.
  explicit Trace(std::vector<LocalPage> refs, LocalPage num_pages = 0);

  [[nodiscard]] std::span<const LocalPage> refs() const noexcept { return refs_; }
  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return refs_.empty(); }
  [[nodiscard]] LocalPage num_pages() const noexcept { return num_pages_; }
  [[nodiscard]] LocalPage operator[](std::size_t i) const noexcept {
    HBMSIM_ASSERT(i < refs_.size(), "trace index out of range");
    return refs_[i];
  }

  /// Number of distinct pages actually referenced (exact, counted).
  [[nodiscard]] std::size_t unique_pages() const;

  /// Collapse runs of consecutive identical page references.
  /// Off by default everywhere (it changes tick counts); provided for the
  /// mapper ablation described in DESIGN.md §6.
  [[nodiscard]] Trace coalesced() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<LocalPage> refs_;
  LocalPage num_pages_ = 0;
};

class TraceCursor;
class TraceSource;

/// A multi-core workload: one reference sequence per core, held as
/// TraceSources (trace/trace_cursor.h). Sources are shared_ptr so p
/// cores replaying the same program do not multiply memory by p. A
/// source may be materialized (wrapping a Trace — the historical form,
/// still what every random-access consumer sees) or generative
/// (streaming — O(1) memory per thread, the p = 1M form); the simulator
/// walks either through cursor().
class Workload {
 public:
  Workload() = default;

  /// One distinct trace per thread (each wrapped in a MaterializedSource).
  explicit Workload(std::vector<std::shared_ptr<const Trace>> traces,
                    std::string name = {});

  /// One source per thread (materialized or streaming).
  explicit Workload(std::vector<std::shared_ptr<const TraceSource>> sources,
                    std::string name = {});

  /// All p threads replay the same trace (disjointness still holds because
  /// the simulator namespaces pages by thread id).
  static Workload replicate(std::shared_ptr<const Trace> trace,
                            std::size_t num_threads, std::string name = {});

  /// All p threads walk the same source through independent cursors —
  /// the p = 1M form: one source object, p cursor states.
  static Workload replicate(std::shared_ptr<const TraceSource> source,
                            std::size_t num_threads, std::string name = {});

  /// Threads round-robin over a pool of distinct traces — the paper's
  /// "same program with different randomness" at bounded memory.
  static Workload round_robin(std::vector<std::shared_ptr<const Trace>> pool,
                              std::size_t num_threads, std::string name = {});

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return sources_.size();
  }

  /// A thread's materialized trace. Requires a materialized-backed
  /// source (HBMSIM_CHECK otherwise): random-access consumers — the
  /// brute-force reference simulator, Belady bounds, trace analysis —
  /// keep their exact semantics, and a streaming workload reaching one
  /// of them by accident fails loudly instead of silently materializing
  /// gigabytes.
  [[nodiscard]] const Trace& trace(std::size_t thread) const;
  /// Shared ownership of a thread's materialized trace (lets consumers
  /// outlive the Workload object itself). Materialized-backed only.
  [[nodiscard]] std::shared_ptr<const Trace> share(std::size_t thread) const;

  /// A thread's source (always available).
  [[nodiscard]] const std::shared_ptr<const TraceSource>& source(
      std::size_t thread) const;
  /// A fresh cursor at position 0 of a thread's sequence.
  [[nodiscard]] std::unique_ptr<TraceCursor> cursor(std::size_t thread) const;
  /// True when any source lacks a materialized backing trace.
  [[nodiscard]] bool streaming() const noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total references across all threads.
  [[nodiscard]] std::uint64_t total_refs() const noexcept;

  /// Total distinct (thread, page) pairs — the union of all cores' page
  /// sets under model disjointness. Streaming sources are materialized
  /// transiently to count (a cold-path analysis helper, not for p = 1M).
  [[nodiscard]] std::uint64_t total_unique_pages() const;

 private:
  std::vector<std::shared_ptr<const TraceSource>> sources_;
  std::string name_;
};

}  // namespace hbmsim
