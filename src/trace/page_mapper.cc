#include "trace/page_mapper.h"

#include <bit>

#include "util/error.h"

namespace hbmsim {

PageMapper::PageMapper(std::uint64_t page_bytes) : page_bytes_(page_bytes) {
  HBMSIM_CHECK(page_bytes > 0 && std::has_single_bit(page_bytes),
               "page size must be a power of two");
  page_shift_ = std::countr_zero(page_bytes);
}

void PageMapper::access(Address addr) {
  const std::uint64_t page = addr >> page_shift_;
  auto [it, inserted] =
      next_dense_.try_emplace(page, static_cast<LocalPage>(next_dense_.size()));
  HBMSIM_CHECK(!inserted || next_dense_.size() <= 0xFFFFFFFFull,
               "too many distinct pages for 32-bit local page ids");
  refs_.push_back(it->second);
}

void PageMapper::access_range(Address addr, std::uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  const std::uint64_t first = addr >> page_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> page_shift_;
  for (std::uint64_t page = first; page <= last; ++page) {
    access(page << page_shift_);
  }
}

Trace PageMapper::take_trace(bool coalesce_adjacent) {
  Trace t(std::move(refs_), static_cast<LocalPage>(next_dense_.size()));
  refs_.clear();
  next_dense_.clear();
  if (coalesce_adjacent) {
    return t.coalesced();
  }
  return t;
}

}  // namespace hbmsim
