// LoggingArray: the paper's TACO instrumentation technique (§3.2).
//
// "We replaced the arrays used in this code with our own array-like
//  objects that log all accesses to a file."
//
// LoggingArray owns its storage and reports the virtual byte address of
// every get/set to an access sink. Workload kernels (SpGEMM, dense MM)
// are written against this explicit get/set interface so that *every*
// array access — including temporaries and accumulators — is traced.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/page_mapper.h"
#include "util/error.h"

namespace hbmsim {

template <typename T, AccessSink Sink = PageMapper>
class LoggingArray {
 public:
  /// An array of `size` default-initialised elements whose element i lives
  /// at simulated byte address `virtual_base + i * sizeof(T)`.
  LoggingArray(std::size_t size, Address virtual_base, Sink* sink)
      : data_(size), vbase_(virtual_base), sink_(sink) {}

  /// Adopt existing contents.
  LoggingArray(std::vector<T> data, Address virtual_base, Sink* sink)
      : data_(std::move(data)), vbase_(virtual_base), sink_(sink) {}

  [[nodiscard]] T get(std::size_t i) const {
    HBMSIM_ASSERT(i < data_.size(), "logging array read out of range");
    log(i);
    return data_[i];
  }

  void set(std::size_t i, const T& value) {
    HBMSIM_ASSERT(i < data_.size(), "logging array write out of range");
    log(i);
    data_[i] = value;
  }

  /// Read-modify-write (one access in the model: the paper counts page
  /// references, and a += touches the page once per dereference site).
  void add(std::size_t i, const T& delta) {
    HBMSIM_ASSERT(i < data_.size(), "logging array update out of range");
    log(i);
    data_[i] += delta;
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] Address virtual_base() const noexcept { return vbase_; }

  /// Untraced access for verification of kernel results.
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }

 private:
  void log(std::size_t i) const {
    if (sink_ != nullptr) {
      sink_->access(vbase_ + static_cast<Address>(i) * sizeof(T));
    }
  }

  std::vector<T> data_;
  Address vbase_;
  Sink* sink_;
};

/// Lays out consecutive virtual address ranges for a set of arrays,
/// page-aligning each so distinct arrays never share a page.
class VirtualLayout {
 public:
  explicit VirtualLayout(std::uint64_t page_bytes = 4096, Address start = 0x10000)
      : page_bytes_(page_bytes), next_(align_up(start, page_bytes)) {}

  /// Reserve space for `count` elements of `elem_bytes` each; returns the
  /// assigned virtual base address.
  Address reserve(std::size_t count, std::size_t elem_bytes) {
    const Address base = next_;
    next_ = align_up(next_ + static_cast<Address>(count) * elem_bytes + 1, page_bytes_);
    return base;
  }

  template <typename T>
  Address reserve_for(std::size_t count) {
    return reserve(count, sizeof(T));
  }

 private:
  static Address align_up(Address a, std::uint64_t align) noexcept {
    return (a + align - 1) / align * align;
  }

  std::uint64_t page_bytes_;
  Address next_;
};

}  // namespace hbmsim
