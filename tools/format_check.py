#!/usr/bin/env python3
"""Version-independent formatting gate for the hbmsim sources.

clang-format output drifts across versions, so CI runs it advisory-only
(.clang-format documents the house style). This script enforces the
basics every clang-format version agrees on, and therefore *does* gate:

  - no tab characters in C++ sources (2-space indent)
  - no trailing whitespace
  - LF line endings (no CRLF)
  - every file ends with exactly one newline

Usage: tools/format_check.py [--root DIR]
Exits non-zero and prints findings if any rule fires.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

GLOBS = (
    "src/**/*.h", "src/**/*.cc",
    "apps/**/*.h", "apps/**/*.cc",
    "bench/**/*.h", "bench/**/*.cc",
    "tests/**/*.h", "tests/**/*.cc",
    "examples/**/*.h", "examples/**/*.cpp",
)


def check_file(path: pathlib.Path) -> list[str]:
    data = path.read_bytes()
    problems = []
    if b"\r" in data:
        problems.append("CRLF line endings (use LF)")
    if not data:
        problems.append("empty file")
        return problems
    if not data.endswith(b"\n"):
        problems.append("missing final newline")
    elif data.endswith(b"\n\n"):
        problems.append("multiple trailing newlines")
    for i, line in enumerate(data.split(b"\n"), 1):
        if b"\t" in line:
            problems.append(f"line {i}: tab character (indent with spaces)")
        if line != line.rstrip():
            problems.append(f"line {i}: trailing whitespace")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    files: list[pathlib.Path] = []
    for glob in GLOBS:
        files.extend(sorted(root.glob(glob)))

    failures = 0
    for path in files:
        for problem in check_file(path):
            print(f"{path.relative_to(root)}: {problem}")
            failures += 1
    if failures:
        print(f"\nformat_check: {failures} finding(s)", file=sys.stderr)
        return 1
    print(f"format_check: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
