#!/usr/bin/env python3
"""Determinism lint for the hbmsim sources.

The simulator's contract is that two runs of the same (workload, config)
are bit-identical, regardless of --jobs, build host, or standard-library
version (DESIGN.md; tests/determinism_test.cc pins fingerprints). This
lint flags source patterns that historically break that contract:

  1. Iteration over std::unordered_map / std::unordered_set. Bucket
     order is hash- and libstdc++-version-dependent, so any iteration
     whose effects reach simulation state or output is a nondeterminism
     bug. Point lookups (find/contains/at/[] / insert/erase) are fine.

  2. Nondeterministic seed sources — rand(), srand(), std::random_device,
     std::mt19937 (engine state differs across library versions),
     time(...), and std::chrono::system_clock — anywhere outside
     src/util/rng.h (the one blessed RNG: SplitMix64, fully specified by
     its seed). std::chrono::steady_clock is allowed: it only feeds
     wall-time metrics, never simulation state.

  3. SimConfig fields without an initializer. A default-constructed
     config must be fully specified; an uninitialized field means two
     "identical" runs can differ by stack garbage.

  4. Heap allocation on the tick hot path. The arbitration structures
     and the simulator tick loop run on pooled storage sized at
     construction (DESIGN.md §3d); perf_simulator --arbiter-compare
     proves the steady state performs zero allocations. This rule keeps
     that property from regressing by textual review: inside
     src/core/arbitration.cc and src/core/event_engine.cc (whole files)
     and the tick functions of
     src/core/simulator.cc it flags `new`, node-based container types
     (std::map/set/list/deque/unordered_*), and container growth calls
     (push_back/emplace_back/emplace). Growth into capacity reserved at
     construction is fine — annotate the line (or the line above) with
     the allowance comment stating the reservation that makes it safe.

Covers src/ (including the open-system serving frontend in src/serve/,
whose arrival streams and request content must be pure functions of
ServingConfig::seed for the serving goldens to hold), apps/, and bench/:
the bench harnesses build workloads and configs (including the
engine-compare equivalence driver, whose whole point is bit-identical
metrics), so a nondeterministic seed there breaks reproducibility just
as surely as one in the simulator core.

Suppress a deliberate exception with a trailing comment:
    for (auto& kv : stats_) {  // lint:allow-unordered-iteration
    auto seed = std::random_device{}();  // lint:allow-nondeterminism
    out.push_back(t);  // lint:allow-hot-path-alloc — reserved to p

Usage: tools/lint_determinism.py [--root DIR]
Exits non-zero and prints findings if any rule fires.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cc", "apps/**/*.cc", "apps/**/*.h",
                "bench/**/*.cc", "bench/**/*.h")

ALLOW_ITER = "lint:allow-unordered-iteration"
ALLOW_RAND = "lint:allow-nondeterminism"
ALLOW_ALLOC = "lint:allow-hot-path-alloc"

# Rule 4: files (and, for the simulator, functions) that form the tick
# hot path. arbitration.cc and the event engine's dense loop
# (event_engine.cc) are hot in their entirety; simulator.cc mixes
# one-time construction with the tick loop, so only the named tick
# functions are in scope.
HOT_PATH_FILES = ("src/core/arbitration.cc", "src/core/event_engine.cc")
HOT_PATH_SIM = "src/core/simulator.cc"
HOT_PATH_SIM_FUNCTIONS = {
    "enqueue_miss", "do_remap", "serve", "issue_and_serve",
    "fetch_from_dram", "resolve_waiters", "complete_arrivals",
    "step", "step_tick", "fast_forward_idle", "serve_hit_run",
}
HOT_PATH_ALLOC = [
    (re.compile(r"(?<![\w:])new\b"),
     "operator new on the tick hot path: use a pooled structure "
     "(util/flat_map.h IndexPool) sized at construction"),
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<"),
     "node-based std::map/std::set allocates per insert; use the bucketed "
     "queue / FlatMap structures (DESIGN.md §3d)"),
    (re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"),
     "std::unordered_* allocates per insert; use FlatMap/FlatSet over "
     "reserved storage"),
    (re.compile(r"\bstd::(?:deque|list|forward_list)\s*<"),
     "std::deque/std::list allocate per node; use RingBuffer or an "
     "intrusive chain over IndexPool"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|emplace)\s*\("),
     "container growth on the tick hot path: reserve at construction and "
     "annotate the line with the reservation that makes it safe"),
]
HOT_PATH_SIM_FN_RE = re.compile(
    r"^[\w:<>,&*\s]*\bSimulator::(?P<name>\w+)\s*\(")

# Rule 2 patterns -> human-readable reason.
NONDETERMINISM = [
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic; seed SplitMix64 (util/rng.h)"),
    (re.compile(r"\bstd::mt19937(_64)?\b"),
     "std::mt19937 state is stdlib-version-dependent; use util/rng.h"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"),
     "rand() is stateful and platform-dependent; use util/rng.h"),
    (re.compile(r"(?<![\w:])srand\s*\("),
     "srand() seeds hidden global state; use util/rng.h"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time(...) as a seed makes runs unreproducible; take seeds from config"),
    (re.compile(r"\bstd::chrono::system_clock\b"),
     "system_clock is wall-clock; use steady_clock for timing, config seeds "
     "for randomness"),
]

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

# Rule 1: declarations of unordered containers, to learn variable names.
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;{=(,)]")
# Direct iteration without a named variable.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(?P<expr>[^)]+)\)")


def strip_noise(line: str) -> str:
    """Remove string literals and // comments so patterns don't match prose."""
    return COMMENT_RE.sub("", STRING_RE.sub('""', line))


class Finding:
    def __init__(self, path: pathlib.Path, line_no: int, message: str):
        self.path = path
        self.line_no = line_no
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: {self.message}"


def lint_nondeterminism(path: pathlib.Path, lines: list[str]) -> list[Finding]:
    if path.as_posix().endswith("util/rng.h"):
        return []  # the blessed RNG implementation
    findings = []
    for i, raw in enumerate(lines, 1):
        if ALLOW_RAND in raw:
            continue
        line = strip_noise(raw)
        for pattern, reason in NONDETERMINISM:
            if pattern.search(line):
                findings.append(Finding(path, i, reason))
    return findings


def lint_unordered_iteration(path: pathlib.Path,
                             lines: list[str]) -> list[Finding]:
    # Pass 1: learn the names of unordered containers declared in this file.
    unordered_names: set[str] = set()
    for raw in lines:
        line = strip_noise(raw)
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group("name"))

    findings = []
    for i, raw in enumerate(lines, 1):
        if ALLOW_ITER in raw:
            continue
        line = strip_noise(raw)
        # Range-for over a known unordered container.
        m = RANGE_FOR_RE.search(line)
        if m:
            expr = m.group("expr").strip()
            base = re.sub(r"[.*&()]|->.*$", "", expr.split(".")[0]).strip()
            if base in unordered_names or "unordered_" in expr:
                findings.append(Finding(
                    path, i,
                    f"iteration over unordered container '{expr}': bucket "
                    "order is hash-dependent (copy to a sorted vector, or "
                    "use FlatMap/FlatSet and document why order is benign)"))
        # Explicit iterator walks: name.begin() on a known unordered name.
        for name in unordered_names:
            if re.search(rf"\b{re.escape(name)}\s*\.\s*(c?begin|c?end)\s*\(",
                         line):
                findings.append(Finding(
                    path, i,
                    f"iterator over unordered container '{name}': bucket "
                    "order is hash-dependent"))
    return findings


def hot_path_lines(path: pathlib.Path, lines: list[str]) -> set[int]:
    """1-based line numbers subject to the hot-path allocation rule."""
    posix = path.as_posix()
    if posix.endswith(HOT_PATH_FILES):
        return set(range(1, len(lines) + 1))
    if not posix.endswith(HOT_PATH_SIM):
        return set()
    # Track the brace extent of each tick-function definition.
    hot: set[int] = set()
    in_hot = False
    depth = 0
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        if not in_hot:
            m = HOT_PATH_SIM_FN_RE.match(line)
            if m and m.group("name") in HOT_PATH_SIM_FUNCTIONS:
                in_hot = True
                depth = 0
        if in_hot:
            hot.add(i)
            depth += line.count("{") - line.count("}")
            if depth <= 0 and "}" in line:
                in_hot = False
    return hot


def lint_hot_path_allocations(path: pathlib.Path,
                              lines: list[str]) -> list[Finding]:
    hot = hot_path_lines(path, lines)
    if not hot:
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if i not in hot:
            continue
        # The allowance may sit on the flagged line or the one above it
        # (for lines that would overflow the column limit).
        if ALLOW_ALLOC in raw or (i >= 2 and ALLOW_ALLOC in lines[i - 2]):
            continue
        line = strip_noise(raw)
        for pattern, reason in HOT_PATH_ALLOC:
            if pattern.search(line):
                findings.append(Finding(path, i, reason))
    return findings


def lint_simconfig_initializers(root: pathlib.Path) -> list[Finding]:
    config = root / "src" / "core" / "config.h"
    if not config.exists():
        return [Finding(config, 0, "src/core/config.h not found")]
    lines = config.read_text().splitlines()

    findings = []
    in_struct = False
    depth = 0
    member_re = re.compile(
        r"^\s*(?!static|using|enum|struct|class|//|/\*|\[\[)"
        r"(?P<decl>[A-Za-z_][\w:<>,\s*&]*?\s+[A-Za-z_]\w*)\s*"
        r"(?P<init>=[^;]+|\{[^;]*\})?\s*;")
    for i, raw in enumerate(lines, 1):
        stripped = strip_noise(raw)
        if not in_struct:
            if re.search(r"\bstruct\s+SimConfig\b", stripped):
                in_struct = True
                depth = stripped.count("{") - stripped.count("}")
            continue
        depth += stripped.count("{") - stripped.count("}")
        if depth < 0 or (depth == 0 and "};" in stripped):
            break
        if depth > 1:
            continue  # nested scope (method body)
        m = member_re.match(stripped)
        if not m:
            continue
        decl = m.group("decl")
        if "(" in decl:  # function declaration
            continue
        if not m.group("init"):
            findings.append(Finding(
                config, i,
                f"SimConfig field '{decl.split()[-1]}' has no initializer: "
                "a default-constructed config must be fully specified"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    files: list[pathlib.Path] = []
    for glob in SOURCE_GLOBS:
        files.extend(sorted(root.glob(glob)))

    findings: list[Finding] = []
    for path in files:
        lines = path.read_text().splitlines()
        findings.extend(lint_nondeterminism(path, lines))
        findings.extend(lint_unordered_iteration(path, lines))
        findings.extend(lint_hot_path_allocations(path, lines))
    findings.extend(lint_simconfig_initializers(root))

    for f in findings:
        try:
            f.path = f.path.relative_to(root)
        except ValueError:
            pass
        print(f)
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
