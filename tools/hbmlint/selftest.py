#!/usr/bin/env python3
"""hbmlint self-test: run the analyzer over each fixture mini-repo and
compare the (rule, path, line) projection of its findings against the
fixture's golden expected.json.

Each directory under fixtures/ is an independent root laid out like the
real repo (src/, apps/, tests/, README.md ...) with an expected.json:

    [{"rule": "hot-path-alloc", "path": "src/core/helper.h", "line": 9}]

Negative fixtures carry an empty list — they must stay clean. Run via
ctest (hbmlint_selftest) or directly: python3 tools/hbmlint/selftest.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import engine  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def project(findings) -> list:
    rows = [{"rule": f.rule, "path": f.path, "line": f.line}
            for f in findings]
    rows.sort(key=lambda r: (r["path"], r["line"], r["rule"]))
    return rows


def main() -> int:
    failures = 0
    ran = 0
    for fixture in sorted(p for p in FIXTURES.iterdir() if p.is_dir()):
        golden_path = fixture / "expected.json"
        if not golden_path.is_file():
            print(f"FAIL {fixture.name}: missing expected.json")
            failures += 1
            continue
        expected = json.loads(golden_path.read_text())
        expected.sort(key=lambda r: (r["path"], r["line"], r["rule"]))
        _, findings = engine.run(fixture)
        got = project(findings)
        ran += 1
        if got == expected:
            print(f"ok   {fixture.name} ({len(got)} finding(s))")
            continue
        failures += 1
        print(f"FAIL {fixture.name}")
        for row in expected:
            if row not in got:
                print(f"  missing expected: {row}")
        for i, row in enumerate(got):
            if row not in expected:
                msg = findings[i].message if i < len(findings) else ""
                print(f"  unexpected: {row}  {msg}")
    if not ran:
        print("FAIL: no fixtures found")
        return 1
    if failures:
        print(f"\nhbmlint selftest: {failures}/{ran} fixture(s) FAILED")
        return 1
    print(f"\nhbmlint selftest: {ran} fixture(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
