#pragma once

#include <vector>

namespace hbmsim {

inline std::vector<int>& tick_scratch() {
  static std::vector<int> scratch;
  return scratch;
}

inline int helper_tick() {
  tick_scratch().push_back(1);
  return static_cast<int>(tick_scratch().size());
}

}  // namespace hbmsim
