#include "core/helper.h"

namespace hbmsim {

bool TickEngine::step() { return true; }

int debug_dump() { return helper_tick(); }

}  // namespace hbmsim
