#include <map>

namespace hbmsim {

class WarpEngine {
 public:
  bool step() { return seen_.empty(); }

 private:
  std::map<int, int> seen_;
};

}  // namespace hbmsim
