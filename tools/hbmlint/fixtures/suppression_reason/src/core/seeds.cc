#include <random>

namespace hbmsim {

unsigned hw_entropy() {
  std::random_device rd;  // lint:allow-nondeterminism
  return rd();
}

int frob() {
  return 0;  // lint:allow-frobnicate — imaginary rule
}

}  // namespace hbmsim
