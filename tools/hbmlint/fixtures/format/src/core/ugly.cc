namespace hbmsim {

int ugly() {
	return 1;
}  

}  // namespace hbmsim
