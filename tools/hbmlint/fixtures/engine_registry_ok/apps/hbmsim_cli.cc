// Usage:
//   --engine tick|auto|list

int main() { return 0; }
