#include <cstdint>

int run_differential_grid() {
  // EngineKind::kTick differential coverage lives here.
  return 0;
}
