#include <cstdint>

int run_tick_golden() {
  // EngineKind::kTick is pinned here; kAuto is exempt from golden
  // coverage because it resolves to a registered engine.
  return 0;
}
