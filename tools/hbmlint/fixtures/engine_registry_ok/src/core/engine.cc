#include "core/engine.h"

namespace hbmsim {

constexpr EngineCaps kEngineRegistry[] = {
    {EngineKind::kTick, "tick", "reference tick loop"},
    {EngineKind::kAuto, "auto", "resolves at construction"},
};

}  // namespace hbmsim
