#include <unordered_map>

namespace hbmsim {

int sum_values(const std::unordered_map<int, int>& stats) {
  int total = 0;
  for (const auto& kv : stats) {
    total += kv.second;
  }
  return total;
}

int lookup(const std::unordered_map<int, int>& stats, int key) {
  return stats.count(key) != 0U ? stats.at(key) : 0;
}

}  // namespace hbmsim
