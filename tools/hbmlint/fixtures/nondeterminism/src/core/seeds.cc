#include <random>

namespace hbmsim {

unsigned bad_seed() {
  std::mt19937 gen(42);
  return static_cast<unsigned>(gen());
}

const char* masked_mention() {
  return "std::random_device appears only inside this string literal";
}

}  // namespace hbmsim
