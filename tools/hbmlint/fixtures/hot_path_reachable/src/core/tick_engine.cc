#include "core/helper.h"

namespace hbmsim {

bool TickEngine::step() { return helper_tick() > 0; }

}  // namespace hbmsim
