#include <vector>

namespace hbmsim {

class StreamCursor {
 public:
  void next();
  int generate();

 private:
  std::vector<int> history_;
};

void StreamCursor::next() {
  history_.push_back(generate());
}

int StreamCursor::generate() { return history_.empty() ? 0 : history_.back(); }

}  // namespace hbmsim
