#include <vector>

namespace hbmsim {

bool TickEngine::step() { return true; }

int cold_scratch(std::vector<int>& out) {
  out.push_back(1);  // lint:allow-hot-path-alloc — reserved by caller
  return static_cast<int>(out.size());
}

}  // namespace hbmsim
