#pragma once

#include <cstdint>

namespace hbmsim {

struct SimConfig {
  std::uint32_t pages = 0;
  std::uint32_t k;
  bool paranoid = false;
};

}  // namespace hbmsim
