#include <vector>

namespace hbmsim {

class AdaptiveArbiter {
 public:
  void on_epoch(unsigned depth) {
    history_.push_back(depth);
    mode_ = depth >= 4 ? 1 : mode_;
  }

 private:
  std::vector<unsigned> history_;
  int mode_ = 0;
};

}  // namespace hbmsim
