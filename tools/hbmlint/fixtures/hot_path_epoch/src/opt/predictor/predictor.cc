namespace hbmsim::opt {

double quantile(const double* curve, unsigned n);

double predict(const double* curve, unsigned n) {
  double acc = 0.0;
  for (unsigned i = 0; i < n; ++i) {
    acc += curve[i];
  }
  return acc + quantile(curve, n);
}

double quantile(const double* curve, unsigned n) {
  double* scratch = new double[n];
  double top = 0.0;
  for (unsigned i = 0; i < n; ++i) {
    scratch[i] = curve[i];
    top = scratch[i] > top ? scratch[i] : top;
  }
  delete[] scratch;
  return top;
}

}  // namespace hbmsim::opt
