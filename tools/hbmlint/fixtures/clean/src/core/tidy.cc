#include <cstdint>

namespace hbmsim {

constexpr std::uint64_t kBig = 100'000'000ULL;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return x ^ (x >> 29) ^ kBig;
}

const char* schema() {
  return R"({"seed": "std::mt19937", "note": "// not a comment"})";
}

}  // namespace hbmsim
