// Usage:
//   --engine tick|warp|list

int main() { return 0; }
