#include <cstdint>

int run_differential_grid() {
  // EngineKind::kTick vs EngineKind::kWarp, bit-identical metrics.
  return 0;
}
