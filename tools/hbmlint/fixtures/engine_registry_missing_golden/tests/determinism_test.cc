#include <cstdint>

int run_tick_golden() {
  // EngineKind::kTick is pinned here; warp coverage is deliberately
  // absent, which the engine-registry rule must flag.
  return 0;
}
