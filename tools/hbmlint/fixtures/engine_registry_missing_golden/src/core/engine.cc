#include "core/engine.h"

namespace hbmsim {

constexpr EngineCaps kEngineRegistry[] = {
    {EngineKind::kTick, "tick", "reference tick loop"},
    {EngineKind::kWarp, "warp", "experimental warp-speed engine"},
};

}  // namespace hbmsim
