#include <vector>

namespace hbmsim::serve {

class ServingSimulator {
 public:
  void inject_request(int request) { queue_.push_back(request); }

 private:
  std::vector<int> queue_;
};

}  // namespace hbmsim::serve
