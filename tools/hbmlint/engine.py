"""hbmlint engine: file discovery, rule dispatch, suppression accounting.

Suppressions are structured comments:

    // lint:allow-<rule-id> — <reason>

The reason is mandatory. A suppression covers findings of that rule on
its own line, or on the first code line after the comment block it sits
in (so a marker trailing the flagged line, on the line above it, or
opening a multi-line justification comment all work). The engine — not
the individual rules — matches findings against suppressions, which is
what makes three classes of marker rot detectable as `suppression`
findings: an unknown rule id, a missing reason, and a marker that
suppresses nothing (stale, e.g. because the reachability rule proved
its line cold).
"""

from __future__ import annotations

import pathlib
import re

from lexer import LexedFile
from rules import (ERROR, Finding, RULES, SUPPRESSION_RULE_ID)

_SUPPRESS = re.compile(r"lint:allow-([A-Za-z0-9_-]+)")
_MARKER = "lint:allow-"


class Suppression:
    def __init__(self, path: str, line: int, rule: str, reason: str,
                 targets):
        self.path = path
        self.line = line
        self.rule = rule
        self.reason = reason
        self.targets = targets  # line numbers this marker covers
        self.used = False


def _targets(lx: LexedFile, line: int) -> frozenset:
    """Lines covered by a marker at `line`: the line itself plus the
    first following line that is not comment-only (skipping the rest of
    the justification comment block the marker may open)."""
    j = line + 1
    while (j - 1 < len(lx.masked_lines)
           and not lx.masked_lines[j - 1].strip()
           and j in lx.comments_by_line):
        j += 1
    return frozenset((line, j))


class LintContext:
    """Lazily lexes and models the tree under `root`; shared by rules."""

    CPP_GLOBS = ("src/**/*.h", "src/**/*.cc", "apps/**/*.h", "apps/**/*.cc",
                 "bench/**/*.h", "bench/**/*.cc")
    FORMAT_GLOBS = CPP_GLOBS + ("tests/**/*.h", "tests/**/*.cc",
                                "examples/**/*.h", "examples/**/*.cpp")
    GRAPH_GLOBS = ("src/**/*.h", "src/**/*.cc")

    def __init__(self, root):
        self.root = pathlib.Path(root).resolve()
        self._lexed = {}
        self._file_lists = {}
        self._project = None

    def files(self, globs) -> list:
        key = tuple(globs)
        cached = self._file_lists.get(key)
        if cached is None:
            found = set()
            for glob in key:
                for p in self.root.glob(glob):
                    if p.is_file():
                        found.add(p.relative_to(self.root).as_posix())
            cached = self._file_lists[key] = sorted(found)
        return cached

    def exists(self, rel: str) -> bool:
        return (self.root / rel).is_file()

    def read_bytes(self, rel: str) -> bytes:
        return (self.root / rel).read_bytes()

    def read_text(self, rel: str):
        if not self.exists(rel):
            return None
        return (self.root / rel).read_text(encoding="utf-8",
                                           errors="replace")

    def lexed(self, rel: str) -> LexedFile:
        lx = self._lexed.get(rel)
        if lx is None:
            lx = self._lexed[rel] = LexedFile(rel, self.read_text(rel))
        return lx

    def project(self):
        if self._project is None:
            from cppmodel import Project
            self._project = Project(self.root, self.files(self.GRAPH_GLOBS),
                                    self.lexed)
        return self._project


def collect_suppressions(ctx: LintContext) -> list:
    sups = []
    for rel in ctx.files(ctx.CPP_GLOBS):
        lx = ctx.lexed(rel)
        for line in sorted(lx.comments_by_line):
            comment = lx.comments_by_line[line]
            for m in _SUPPRESS.finditer(comment):
                tail = comment[m.end():]
                cut = tail.find(_MARKER)
                if cut != -1:
                    tail = tail[:cut]
                reason = tail.strip().lstrip("—–:-").strip()
                sups.append(Suppression(rel, line, m.group(1), reason,
                                        _targets(lx, line)))
    return sups


def run(root) -> tuple:
    """Run every rule under `root`. Returns (ctx, findings) with findings
    sorted and suppression-filtered; `suppression` meta-findings included."""
    ctx = LintContext(root)
    findings = []
    for rule in RULES:
        findings.extend(rule.run(ctx))

    sups = collect_suppressions(ctx)
    by_key = {}
    for s in sups:
        by_key.setdefault((s.path, s.rule), []).append(s)

    kept = []
    for f in findings:
        hit = None
        for s in by_key.get((f.path, f.rule), ()):
            if f.line in s.targets:
                hit = s
                break
        if hit is not None:
            hit.used = True
        else:
            kept.append(f)

    known = {rule.id for rule in RULES} | {SUPPRESSION_RULE_ID}
    for s in sups:
        if s.rule not in known:
            kept.append(Finding(
                SUPPRESSION_RULE_ID, ERROR, s.path, s.line,
                f"suppression names unknown rule 'lint:allow-{s.rule}' "
                f"(known: {', '.join(sorted(known))})"))
            continue
        if not s.reason:
            kept.append(Finding(
                SUPPRESSION_RULE_ID, ERROR, s.path, s.line,
                f"suppression 'lint:allow-{s.rule}' is missing its "
                "mandatory reason (write `// lint:allow-" + s.rule +
                " — <why this line is safe>`)"))
        if not s.used:
            kept.append(Finding(
                SUPPRESSION_RULE_ID, ERROR, s.path, s.line,
                f"stale suppression: no '{s.rule}' finding on the line(s) "
                "it covers — delete the marker (reachability may have "
                "proven the line cold)"))

    kept.sort(key=lambda f: f.sort_key())
    return ctx, kept
