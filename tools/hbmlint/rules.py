"""hbmlint rules.

Each rule is a class with a stable `id` (the token used in
`lint:allow-<id>` suppressions), a default `severity` (`error` findings
gate CI, `warning` findings are advisory), and a `run(ctx)` returning
`Finding`s. Suppression handling is central (engine.py): rules report
everything they see; the engine drops suppressed findings and flags
stale or malformed suppressions itself.

The rule table (mirrored in DESIGN.md "Static analysis architecture"):

  id                   severity  what it guards
  -------------------  --------  ------------------------------------------
  format               warning   tabs/CRLF/trailing-ws/final-newline basics
  nondeterminism       error     no nondeterministic seed sources
  unordered-iteration  error     no iteration over unordered containers
  config-init          error     every SimConfig field has an initializer
  hot-path-alloc       error     no allocation reachable from the tick
                                 hot path (call-graph reachability)
  engine-registry      error     EngineCaps registry vs README / CLI help /
                                 golden-test coverage
  suppression          error     (engine-emitted) malformed or stale
                                 lint:allow markers
"""

from __future__ import annotations

import re

ERROR = "error"
WARNING = "warning"


class Finding:
    def __init__(self, rule: str, severity: str, path: str, line: int,
                 message: str):
        self.rule = rule
        self.severity = severity
        self.path = path  # repo-relative posix path
        self.line = line  # 1-based
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


class Rule:
    id = "base"
    severity = ERROR
    description = ""

    def run(self, ctx):
        raise NotImplementedError


# ---------------------------------------------------------------- format

class FormatRule(Rule):
    id = "format"
    severity = WARNING
    description = ("version-independent formatting basics: no tabs, no "
                   "trailing whitespace, LF endings, exactly one final "
                   "newline")

    def run(self, ctx):
        findings = []
        for rel in ctx.files(ctx.FORMAT_GLOBS):
            data = ctx.read_bytes(rel)
            add = lambda line, msg: findings.append(
                Finding(self.id, self.severity, rel, line, msg))
            if not data:
                add(1, "empty file")
                continue
            if b"\r" in data:
                add(data[:data.index(b"\r")].count(b"\n") + 1,
                    "CRLF line endings (use LF)")
            lines = data.split(b"\n")
            if not data.endswith(b"\n"):
                add(len(lines), "missing final newline")
            elif data.endswith(b"\n\n"):
                add(len(lines), "multiple trailing newlines")
            for i, line in enumerate(lines, 1):
                if b"\t" in line:
                    add(i, "tab character (indent with spaces)")
                if line != line.rstrip():
                    add(i, "trailing whitespace")
        return findings


# -------------------------------------------------------- nondeterminism

_NONDET = [
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic; seed SplitMix64 (util/rng.h)"),
    (re.compile(r"\bstd::mt19937(_64)?\b"),
     "std::mt19937 state is stdlib-version-dependent; use util/rng.h"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"),
     "rand() is stateful and platform-dependent; use util/rng.h"),
    (re.compile(r"(?<![\w:])srand\s*\("),
     "srand() seeds hidden global state; use util/rng.h"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time(...) as a seed makes runs unreproducible; take seeds from config"),
    (re.compile(r"\bstd::chrono::system_clock\b"),
     "system_clock is wall-clock; use steady_clock for timing, config seeds "
     "for randomness"),
]


class NondeterminismRule(Rule):
    id = "nondeterminism"
    severity = ERROR
    description = ("no nondeterministic seed sources outside util/rng.h "
                   "(the one blessed, fully-seed-specified RNG)")

    def run(self, ctx):
        findings = []
        for rel in ctx.files(ctx.CPP_GLOBS):
            if rel.endswith("util/rng.h"):
                continue
            lx = ctx.lexed(rel)
            for i, line in enumerate(lx.masked_lines, 1):
                for pattern, reason in _NONDET:
                    if pattern.search(line):
                        findings.append(
                            Finding(self.id, self.severity, rel, i, reason))
        return findings


# --------------------------------------------------- unordered-iteration

_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;{=(,)]")
_RANGE_FOR = re.compile(r"\bfor\s*\(.*:\s*(?P<expr>[^)]+)\)")


class UnorderedIterationRule(Rule):
    id = "unordered-iteration"
    severity = ERROR
    description = ("no iteration over std::unordered_* containers: bucket "
                   "order is hash- and libstdc++-version-dependent")

    def run(self, ctx):
        findings = []
        for rel in ctx.files(ctx.CPP_GLOBS):
            lx = ctx.lexed(rel)
            names = set()
            for line in lx.masked_lines:
                for m in _UNORDERED_DECL.finditer(line):
                    names.add(m.group("name"))
            for i, line in enumerate(lx.masked_lines, 1):
                m = _RANGE_FOR.search(line)
                if m:
                    expr = m.group("expr").strip()
                    base = re.sub(r"[.*&()]|->.*$", "",
                                  expr.split(".")[0]).strip()
                    if base in names or "unordered_" in expr:
                        findings.append(Finding(
                            self.id, self.severity, rel, i,
                            f"iteration over unordered container '{expr}': "
                            "bucket order is hash-dependent (copy to a "
                            "sorted vector, or use FlatMap/FlatSet and "
                            "document why order is benign)"))
                for name in names:
                    if re.search(
                            rf"\b{re.escape(name)}\s*\.\s*(c?begin|c?end)"
                            r"\s*\(", line):
                        findings.append(Finding(
                            self.id, self.severity, rel, i,
                            f"iterator over unordered container '{name}': "
                            "bucket order is hash-dependent"))
        return findings


# ----------------------------------------------------------- config-init

_MEMBER = re.compile(
    r"^\s*(?!static|using|enum|struct|class|\[\[)"
    r"(?P<decl>[A-Za-z_][\w:<>,\s*&]*?\s+[A-Za-z_]\w*)\s*"
    r"(?P<init>=[^;]+|\{[^;]*\})?\s*;")


class ConfigInitRule(Rule):
    id = "config-init"
    severity = ERROR
    description = ("every SimConfig field carries an initializer: a "
                   "default-constructed config must be fully specified")

    def run(self, ctx):
        rel = "src/core/config.h"
        if rel not in ctx.files(("src/core/config.h",)):
            return []  # fixture roots without a config are simply out of scope
        lx = ctx.lexed(rel)
        findings = []
        in_struct = False
        depth = 0
        for i, line in enumerate(lx.masked_lines, 1):
            if not in_struct:
                if re.search(r"\bstruct\s+SimConfig\b", line):
                    in_struct = True
                    depth = line.count("{") - line.count("}")
                continue
            depth += line.count("{") - line.count("}")
            if depth < 0 or (depth == 0 and "};" in line):
                break
            if depth > 1:
                continue  # nested scope (method body)
            m = _MEMBER.match(line)
            if not m:
                continue
            decl = m.group("decl")
            if "(" in decl:  # function declaration
                continue
            if not m.group("init"):
                findings.append(Finding(
                    self.id, self.severity, rel, i,
                    f"SimConfig field '{decl.split()[-1]}' has no "
                    "initializer: a default-constructed config must be "
                    "fully specified"))
        return findings


# -------------------------------------------------------- hot-path-alloc

_ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"),
     "operator new on the tick hot path: use a pooled structure "
     "(util/flat_map.h IndexPool) sized at construction"),
    (re.compile(r"\bstd::make_(?:shared|unique)\s*<"),
     "make_shared/make_unique allocates; hot-path objects must be "
     "constructed (and pooled) before the steady state"),
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<"),
     "node-based std::map/std::set allocates per insert; use the bucketed "
     "queue / FlatMap structures (DESIGN.md §3d)"),
    (re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"),
     "std::unordered_* allocates per insert; use FlatMap/FlatSet over "
     "reserved storage"),
    (re.compile(r"\bstd::(?:deque|list|forward_list)\s*<"),
     "std::deque/std::list allocate per node; use RingBuffer or an "
     "intrusive chain over IndexPool"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|emplace)\s*\("),
     "container growth on the tick hot path: reserve at construction and "
     "annotate the line with the reservation that makes it safe"),
    (re.compile(r"\.\s*resize\s*\("),
     "resize on the tick hot path can reallocate: size at construction and "
     "annotate the line with the bound that makes it safe"),
    (re.compile(r"\bstd::vector\s*<[^;=()]*>\s+\w+\s*[({]"),
     "local std::vector constructed on the tick hot path allocates per "
     "call: hoist it into pooled state sized at construction"),
]
_NODE_MEMBER = re.compile(
    r"\bstd::(?:(?:multi)?(?:map|set)|unordered_(?:map|set|multimap|"
    r"multiset)|deque|list|forward_list)\s*<")

# Seeds, per DESIGN.md "Static analysis architecture": every engine's
# step(), the production arbiter mutators (including the adaptive
# arbiter's per-epoch mode hook, which runs every remap_period ticks),
# the serving frontend's per-tick inject/harvest path, trace-cursor
# advancement (one next() per served reference — TraceCursor subclasses
# must generate without allocating), the hierarchical runnable-bitmap
# scan, and the closed-form predictor's screening loop (opt/predictor:
# predict() runs thousands of times per multi-fidelity sweep and is
# documented allocation-free).
_ARBITER_SEEDS = {"enqueue", "pop", "on_priorities_changed", "on_epoch"}
_SERVING_SEEDS = {"deliver_arrivals", "harvest_completions",
                  "inject_request", "next_arrival_tick"}
# src/check/ holds deliberately-allocating executable specs (shadow
# arbiters/caches, the invariant checker); src/util/ holds the pooled
# primitives themselves, whose growth paths are amortized-by-reservation
# and proven allocation-free dynamically by perf_simulator
# --arbiter-compare's steady-state allocation probe.
_EXCLUDED = ("src/check/", "src/util/")


def _member_decl_spans(masked: str, ext):
    """(start, end) spans at brace depth 1 inside a class extent — the
    member-declaration scope, skipping nested method/struct bodies."""
    spans = []
    depth = 0
    seg_start = None
    i = ext.start
    while i < ext.end:
        c = masked[i]
        if c == "{":
            depth += 1
            if depth == 1:
                seg_start = i + 1
            elif depth == 2 and seg_start is not None:
                spans.append((seg_start, i))
                seg_start = None
        elif c == "}":
            depth -= 1
            if depth == 1:
                seg_start = i + 1
            elif depth == 0:
                if seg_start is not None:
                    spans.append((seg_start, i))
                break
        i += 1
    return spans


class HotPathAllocRule(Rule):
    id = "hot-path-alloc"
    severity = ERROR
    description = ("zero allocation reachable from the tick hot path, "
                   "discovered by call-graph reachability from Engine::step "
                   "/ arbiter mutators / the serving inject-harvest loop")

    @staticmethod
    def _is_seed(fn):
        if fn.is_ctor_dtor:
            return False
        if fn.name == "step" and fn.cls and fn.cls.endswith("Engine"):
            return True
        if (fn.name in ("next", "generate") and fn.cls
                and fn.cls.endswith("Cursor")):
            return True
        if fn.cls == "HierBitmap" and fn.name in ("find_first", "find_next"):
            return True
        if (fn.path == "src/core/arbitration.cc"
                and fn.name in _ARBITER_SEEDS):
            return True
        if (fn.path == "src/opt/predictor/predictor.cc"
                and fn.name == "predict"):
            return True
        return fn.cls == "ServingSimulator" and fn.name in _SERVING_SEEDS

    def run(self, ctx):
        project = ctx.project()
        # HierBitmap seeds pierce the src/util/ exclusion: the per-tick
        # runnable scan lives there, and its own body must stay
        # allocation-free even though BFS still never expands into the
        # rest of util's amortized-growth primitives.
        seeds = [fn for fm in project.files.values() for fn in fm.defs
                 if self._is_seed(fn)
                 and (not fn.path.startswith(_EXCLUDED)
                      or fn.cls == "HierBitmap")]
        hot = project.reachable(seeds, _EXCLUDED)

        findings = []
        for fn in sorted(hot, key=lambda f: (f.path, f.start_line)):
            via = hot[fn]
            origin = f"in `{fn.qual}`" + (
                f", hot via `{via.qual}`" if via else " (hot-path seed)")
            lx = project.files[fn.path].lexed
            first = lx.masked.count("\n", 0, fn.body_start) + 1
            for ln in range(first, min(fn.end_line, len(lx.masked_lines)) + 1):
                text = lx.masked_lines[ln - 1]
                for pattern, reason in _ALLOC_PATTERNS:
                    if pattern.search(text):
                        findings.append(Finding(
                            self.id, self.severity, fn.path, ln,
                            f"{reason} [{origin}]"))

        # Node-container members of classes whose methods are hot: the
        # container's mutators allocate even if no flagged call appears
        # in the hot bodies themselves.
        hot_classes = {fn.cls for fn in hot if fn.cls}
        seen = set()
        for rel in sorted(project.files):
            if rel.startswith(_EXCLUDED):
                continue
            fm = project.files[rel]
            masked = fm.lexed.masked
            for ext in fm.classes:
                if ext.name not in hot_classes:
                    continue
                for a, b in _member_decl_spans(masked, ext):
                    for m in _NODE_MEMBER.finditer(masked, a, b):
                        ln = masked.count("\n", 0, m.start()) + 1
                        if (rel, ln) in seen:
                            continue
                        seen.add((rel, ln))
                        findings.append(Finding(
                            self.id, self.severity, rel, ln,
                            "node-based container member in class "
                            f"`{ext.name}`, whose methods are on the tick "
                            "hot path: it allocates per insert"))
        return findings


# ------------------------------------------------------- engine-registry

_REGISTRY_ENTRY = re.compile(r"\{EngineKind::k(\w+),\s*\"(\w+)\"")


class EngineRegistryRule(Rule):
    id = "engine-registry"
    severity = ERROR
    description = ("every engine in the EngineCaps registry appears in the "
                   "README capability table, the --engine CLI help, and the "
                   "pinned-golden/differential-grid test coverage")

    # kAuto is exempt from golden coverage: it resolves to another
    # registered engine at construction, so its behavior is pinned
    # through the engine it resolves to (the capability/resolution tests
    # in simulator_property_test.cc cover the resolution itself).
    GOLDEN_EXEMPT = {"Auto"}
    TEST_ARTIFACTS = ("tests/determinism_test.cc",
                      "tests/simulator_property_test.cc")

    def run(self, ctx):
        rel = "src/core/engine.cc"
        if not ctx.exists(rel):
            return []
        text = ctx.lexed(rel).text
        entries = []
        for m in _REGISTRY_ENTRY.finditer(text):
            entries.append((m.group(1), m.group(2),
                            text.count("\n", 0, m.start()) + 1))
        findings = []
        if not entries:
            return [Finding(self.id, self.severity, rel, 1,
                            "no EngineCaps registry entries parsed from "
                            "src/core/engine.cc: the registry moved or "
                            "changed shape — update hbmlint's "
                            "engine-registry rule")]

        readme = ctx.read_text("README.md")
        cli = ctx.read_text("apps/hbmsim_cli.cc")
        cli_engine_lines = "\n".join(
            ln for ln in (cli or "").splitlines() if "--engine" in ln)
        tests = {t: ctx.read_text(t) for t in self.TEST_ARTIFACTS}

        for kind, name, line in entries:
            if readme is None:
                findings.append(Finding(
                    self.id, self.severity, rel, line,
                    "README.md not found, so the engine capability table "
                    "cannot be checked"))
            elif f"| `{name}`" not in readme:
                findings.append(Finding(
                    self.id, self.severity, rel, line,
                    f"engine '{name}' is registered but has no row in the "
                    "README capability table (| `" + name + "` | ...)"))
            if cli is None:
                findings.append(Finding(
                    self.id, self.severity, rel, line,
                    "apps/hbmsim_cli.cc not found, so the --engine help "
                    "text cannot be checked"))
            elif not re.search(rf"\b{re.escape(name)}\b", cli_engine_lines):
                findings.append(Finding(
                    self.id, self.severity, rel, line,
                    f"engine '{name}' is registered but missing from the "
                    "--engine help text in apps/hbmsim_cli.cc"))
            if kind in self.GOLDEN_EXEMPT:
                continue
            for t, body in tests.items():
                if body is None:
                    findings.append(Finding(
                        self.id, self.severity, rel, line,
                        f"{t} not found, so golden coverage for engine "
                        f"'{name}' cannot be checked"))
                elif f"EngineKind::k{kind}" not in body:
                    findings.append(Finding(
                        self.id, self.severity, rel, line,
                        f"engine '{name}' is registered but has no "
                        f"EngineKind::k{kind} coverage in {t}: add it to "
                        "the pinned goldens / differential grid"))
        return findings


RULES = [
    FormatRule(),
    NondeterminismRule(),
    UnorderedIterationRule(),
    ConfigInitRule(),
    HotPathAllocRule(),
    EngineRegistryRule(),
]

# The engine-emitted meta rule (see engine.py): malformed/stale
# suppressions. Listed here so reporters and --list-rules see it.
SUPPRESSION_RULE_ID = "suppression"
SUPPRESSION_RULE_DESCRIPTION = (
    "lint:allow markers must name a known rule, carry a mandatory reason, "
    "and actually suppress a finding (stale markers are findings)")
