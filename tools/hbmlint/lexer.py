"""Comment/string/raw-string-aware C++ lexer for hbmlint.

The rule engine never pattern-matches raw source: every rule sees a
*masked* view of the file in which the contents of string literals, char
literals, and comments are replaced by spaces (delimiters are kept so
column/line geometry is unchanged). This is what lets the rules drop the
per-rule "strip strings, strip // comments" special-casing the old
standalone scripts carried, and it is exact where regexes were not:
block comments spanning lines, raw strings (`R"(...)"`, with optional
encoding prefixes and custom delimiters) spanning lines, escaped quotes,
and C++14 digit separators (`100'000`) are all handled.

Comments are collected per line (block comments contribute to every line
they touch) so the suppression parser can read `lint:allow-*` markers
without consulting the raw text.
"""

from __future__ import annotations


def _is_raw_string_intro(text: str, quote: int) -> bool:
    """True when the '"' at `quote` opens a raw string (R", u8R", LR", ...)."""
    i = quote - 1
    if i < 0 or text[i] != "R":
        return False
    # Optional encoding prefix before the R: u8, u, U, L.
    j = i - 1
    if j >= 1 and text[j - 1 : j + 1] == "u8":
        j -= 2
    elif j >= 0 and text[j] in "uUL":
        j -= 1
    # The prefix must not be the tail of a longer identifier (e.g. FooR").
    return j < 0 or not (text[j].isalnum() or text[j] == "_")


class LexedFile:
    """One source file: raw text, masked text, and per-line comments."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.masked = _mask(text, self)
        self.masked_lines = self.masked.splitlines()

    # comments_by_line is populated by _mask(): 1-based line number ->
    # concatenated comment text appearing on that line.
    comments_by_line: dict


def _mask(text: str, out: LexedFile) -> str:
    comments: dict = {}
    masked = list(text)
    i = 0
    n = len(text)
    line = 1

    def blank(start: int, end: int) -> None:
        for k in range(start, end):
            if masked[k] != "\n":
                masked[k] = " "

    def record_comment(start: int, end: int, start_line: int) -> None:
        ln = start_line
        seg_start = start
        for k in range(start, end + 1):
            if k == end or text[k] == "\n":
                frag = text[seg_start:k]
                if frag.strip():
                    comments[ln] = comments.get(ln, "") + frag
                ln += 1
                seg_start = k + 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            record_comment(i, end, line)
            blank(i, end)
            i = end
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            record_comment(i, end, line)
            blank(i, end)
            line += text.count("\n", i, end)
            i = end
            continue
        if c == '"':
            if _is_raw_string_intro(text, i):
                # R"delim( ... )delim"
                open_paren = text.find("(", i + 1)
                if open_paren == -1:
                    i += 1
                    continue
                delim = text[i + 1 : open_paren]
                closer = ")" + delim + '"'
                end = text.find(closer, open_paren + 1)
                end = n if end == -1 else end + len(closer)
                blank(i + 1, end - 1)
                line += text.count("\n", i, end)
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j + 1, n)
            continue
        if c == "'":
            # A quote directly after an identifier/number character is a
            # C++14 digit separator (100'000), not a char literal.
            if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j + 1, n)
            continue
        i += 1

    out.comments_by_line = comments
    return "".join(masked)


def lex_file(path, rel: str) -> LexedFile:
    """Lex `path` (a pathlib.Path), reporting it as the relative name `rel`."""
    return LexedFile(rel, path.read_text(encoding="utf-8", errors="replace"))
