#!/usr/bin/env python3
"""hbmlint — unified static analysis for the hbmsim sources.

Replaces tools/lint_determinism.py and tools/format_check.py with one
rule engine: a comment/string/raw-string-aware C++ lexer, a per-TU
symbol-and-call extractor whose call graph *discovers* the tick hot
path by reachability (instead of a hand-maintained file list), and
cross-artifact consistency checks between the EngineCaps registry,
README, CLI help, and golden-test coverage. See DESIGN.md "Static
analysis architecture" for the rule table and suppression grammar.

Usage:
    python3 tools/hbmlint [--root DIR] [--format text|json]
                          [--json-out FILE] [--sarif-out FILE]
                          [--list-rules]

Exit status is 1 iff any error-severity finding remains after
suppressions; warning findings (the `format` rule) are advisory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import engine  # noqa: E402
import report  # noqa: E402
from rules import ERROR  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hbmlint", description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout report format (default: text)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--sarif-out", metavar="FILE",
                        help="also write a SARIF 2.1.0 report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, sev, desc in report.rule_table():
            print(f"{rid:20s} {sev:8s} {desc}")
        return 0

    ctx, findings = engine.run(args.root)
    files_scanned = len(ctx.files(ctx.FORMAT_GLOBS))

    if args.format == "json":
        print(json.dumps(report.to_json(findings, files_scanned), indent=2))
    else:
        print(report.render_text(findings, files_scanned))
    if args.json_out:
        report.dump_json(report.to_json(findings, files_scanned),
                         args.json_out)
    if args.sarif_out:
        report.dump_json(report.to_sarif(findings), args.sarif_out)

    return 1 if any(f.severity == ERROR for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
