"""hbmlint reporters: text, json, and SARIF 2.1.0."""

from __future__ import annotations

import json

from rules import (RULES, SUPPRESSION_RULE_ID,
                   SUPPRESSION_RULE_DESCRIPTION, ERROR)

TOOL_NAME = "hbmlint"
TOOL_VERSION = "1.0.0"


def rule_table() -> list:
    rows = [(r.id, r.severity, r.description) for r in RULES]
    rows.append((SUPPRESSION_RULE_ID, ERROR, SUPPRESSION_RULE_DESCRIPTION))
    return rows


def render_text(findings, files_scanned: int) -> str:
    lines = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}: [{f.severity}] {f.rule}: "
                     f"{f.message}")
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
        lines.append(f"{TOOL_NAME}: {errors} error(s), {warnings} "
                     f"warning(s) across {files_scanned} file(s)")
    else:
        lines.append(f"{TOOL_NAME}: OK ({files_scanned} files clean, "
                     f"{len(rule_table())} rules)")
    return "\n".join(lines)


def to_json(findings, files_scanned: int) -> dict:
    return {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "files_scanned": files_scanned,
        "errors": sum(1 for f in findings if f.severity == ERROR),
        "warnings": sum(1 for f in findings if f.severity != ERROR),
        "findings": [
            {"rule": f.rule, "severity": f.severity, "path": f.path,
             "line": f.line, "message": f.message}
            for f in findings
        ],
    }


def to_sarif(findings) -> dict:
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://example.invalid/hbmsim/tools/hbmlint",
                    "rules": [
                        {
                            "id": rid,
                            "shortDescription": {"text": desc},
                            "defaultConfiguration": {
                                "level": "error" if sev == ERROR
                                else "warning",
                            },
                        }
                        for rid, sev, desc in rule_table()
                    ],
                },
            },
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "error" if f.severity == ERROR else "warning",
                    "message": {"text": f.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {"startLine": max(f.line, 1)},
                        },
                    }],
                }
                for f in findings
            ],
        }],
    }


def dump_json(obj, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=2, sort_keys=False)
        fh.write("\n")
