"""Lightweight per-TU symbol/call extraction and the project call graph.

This is not a compiler: it is a deliberately conservative textual model,
good enough to *discover* the tick hot path by reachability instead of
trusting a hand-maintained file list (the failure mode that motivated
hbmlint — see DESIGN.md "Static analysis architecture").

Per file (on the lexer's masked text, so strings/comments cannot fake a
definition):

  * class/struct extents, for attributing in-class definitions;
  * function definitions — `Qualified::name(...) ... {body}` — with the
    body's brace extent and the set of callee names mentioned in it;
  * project-relative `#include "..."` edges.

Call resolution is by callee *name*, restricted to definitions whose
file is textually reachable from the caller's include closure (a TU can
only call what it can see). That over-approximates virtual dispatch —
`cache_->insert(...)` marks every visible `insert` definition hot —
which is the right direction for a linter: the hot set may be slightly
too big, never too small for the code the TU actually links against.
Constructors and destructors are excluded from the hot set: running
before the steady state, they are exactly where sizing allocations are
supposed to happen.
"""

from __future__ import annotations

import pathlib
import re

# Identifiers that look like calls but are control flow / operators.
_KEYWORDS = {
    "alignas", "alignof", "assert", "case", "catch", "constexpr", "decltype",
    "defined", "delete", "do", "else", "for", "if", "new", "noexcept",
    "requires", "return", "sizeof", "static_assert", "switch", "throw",
    "typeid", "while",
}

_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")
_FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:~\s*)?[A-Za-z_]\w*)\s*\(")
_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def _match_brace(text: str, open_pos: int) -> int:
    """Index just past the brace matching text[open_pos] ('{'); len() if
    unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class ClassExtent:
    def __init__(self, name: str, start: int, end: int):
        self.name = name
        self.start = start  # char offset of the opening brace
        self.end = end      # char offset just past the closing brace


class FunctionDef:
    def __init__(self, qual: str, name: str, cls, path: str,
                 start_line: int, end_line: int, body_start: int,
                 body_end: int, is_ctor_dtor: bool):
        self.qual = qual
        self.name = name
        self.cls = cls
        self.path = path
        self.start_line = start_line
        self.end_line = end_line
        self.body_start = body_start  # char offsets into the masked text
        self.body_end = body_end
        self.is_ctor_dtor = is_ctor_dtor
        self.callees: set = set()

    def __repr__(self):
        return f"<{self.qual} {self.path}:{self.start_line}>"


def _body_start_after_params(masked: str, close_paren: int):
    """Char offset of the body's '{' for a definition whose parameter list
    closes at `close_paren`, or None when this is not a definition.

    Accepts the trailing tokens a definition may carry between `)` and
    `{`: cv/ref qualifiers, noexcept(...), override/final, attributes,
    and a trailing return type. Anything else (`;`, `=`, `,`, an
    operator) means declaration/expression, not definition.
    """
    i = close_paren + 1
    n = len(masked)
    word_re = re.compile(r"(?:const|noexcept|override|final|mutable)\b")
    while i < n:
        c = masked[i]
        if c in " \t\n&":
            i += 1
        elif c == "{":
            return i
        elif c == "(":  # noexcept(...)
            depth = 0
            while i < n:
                if masked[i] == "(":
                    depth += 1
                elif masked[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1
        elif masked.startswith("[[", i):
            end = masked.find("]]", i)
            i = n if end == -1 else end + 2
        elif masked.startswith("->", i):
            # Trailing return type: runs to the body brace.
            end = masked.find("{", i)
            return None if end == -1 else end
        else:
            m = word_re.match(masked, i)
            if not m:
                return None
            i = m.end()
    return None


class FileModel:
    def __init__(self, rel: str, lexed):
        self.rel = rel
        self.lexed = lexed
        self.includes = _INCLUDE_RE.findall(lexed.text)
        masked = lexed.masked

        self.classes = []
        for m in _CLASS_RE.finditer(masked):
            brace = masked.find("{", m.start())
            self.classes.append(
                ClassExtent(m.group(1), brace, _match_brace(masked, brace)))

        self.defs = []
        for m in _FUNC_NAME_RE.finditer(masked):
            raw_name = re.sub(r"\s+", "", m.group(1))
            short = raw_name.split("::")[-1]
            if short in _KEYWORDS or raw_name.split("::")[0] in _KEYWORDS:
                continue
            open_paren = masked.find("(", m.end(1))
            close = self._balance(masked, open_paren)
            if close is None:
                continue
            body_start = _body_start_after_params(masked, close)
            if body_start is None:
                continue
            body_end = _match_brace(masked, body_start)
            cls = None
            if "::" in raw_name:
                parts = raw_name.split("::")
                cls, qual = parts[-2], "::".join(parts[-2:])
            else:
                for ext in self.classes:
                    if ext.start < m.start() < ext.end:
                        cls = ext.name  # innermost wins: extents are nested
                qual = f"{cls}::{short}" if cls else short
            is_ctor_dtor = short.startswith("~") or (cls is not None
                                                     and short == cls)
            fn = FunctionDef(
                qual, short, cls, rel,
                masked.count("\n", 0, m.start()) + 1,
                masked.count("\n", 0, body_end) + 1,
                body_start, body_end, is_ctor_dtor)
            for c in _CALL_RE.finditer(masked, body_start, body_end):
                name = c.group(1)
                if name not in _KEYWORDS:
                    fn.callees.add(name)
            self.defs.append(fn)

    @staticmethod
    def _balance(masked: str, open_paren: int):
        depth = 0
        for i in range(open_paren, len(masked)):
            c = masked[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return i
        return None


class Project:
    """All modeled files plus include-closure-aware call resolution."""

    def __init__(self, root: pathlib.Path, rel_paths, lex):
        self.root = root
        self.files = {}
        for rel in rel_paths:
            self.files[rel] = FileModel(rel, lex(rel))
        self._by_name = {}
        for fm in self.files.values():
            for fn in fm.defs:
                self._by_name.setdefault(fn.name, []).append(fn)
        self._closures = {}

    def _resolve_include(self, inc: str, includer: str):
        for candidate in (f"src/{inc}", inc,
                          str(pathlib.PurePosixPath(includer).parent / inc)):
            if candidate in self.files:
                return candidate
        return None

    def closure(self, rel: str) -> set:
        """`rel` plus every project file transitively included from it."""
        cached = self._closures.get(rel)
        if cached is not None:
            return cached
        seen = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in self.files:
                continue
            seen.add(cur)
            for inc in self.files[cur].includes:
                resolved = self._resolve_include(inc, cur)
                if resolved is not None and resolved not in seen:
                    stack.append(resolved)
        self._closures[rel] = seen
        return seen

    def visible_defs(self, caller_path: str, callee_name: str):
        """Definitions of `callee_name` the TU at caller_path can see: in
        the same file, in an included header, or in the .cc paired with an
        included header (cross-TU through its declaration)."""
        closure = self.closure(caller_path)
        out = []
        for fn in self._by_name.get(callee_name, ()):  # insertion order
            if fn.path in closure:
                out.append(fn)
            elif fn.path.endswith(".cc") and fn.path[:-3] + ".h" in closure:
                out.append(fn)
        return out

    def reachable(self, seeds, excluded):
        """BFS the call graph from `seeds` (FunctionDefs), skipping (and
        never entering) defs in files matching `excluded` and all
        ctors/dtors. Returns {FunctionDef: via} where via names the caller
        that first reached it (None for seeds)."""
        hot = {}
        work = []
        for fn in seeds:
            if fn not in hot:
                hot[fn] = None
                work.append(fn)
        while work:
            fn = work.pop(0)
            for name in sorted(fn.callees):
                for callee in self.visible_defs(fn.path, name):
                    if callee.is_ctor_dtor or callee in hot:
                        continue
                    if any(callee.path.startswith(p) for p in excluded):
                        continue
                    hot[callee] = fn
                    work.append(callee)
        return hot
