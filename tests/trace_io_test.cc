// Unit tests for trace serialization: text and binary roundtrips, error
// paths, file helpers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/trace_io.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

Trace sample_trace() { return Trace({0, 5, 2, 5, 1}, 8); }

TEST(TraceIoText, Roundtrip) {
  std::stringstream ss;
  write_trace_text(sample_trace(), ss);
  EXPECT_EQ(read_trace_text(ss), sample_trace());
}

TEST(TraceIoText, PreservesExplicitNumPages) {
  std::stringstream ss;
  write_trace_text(Trace({0, 1}, 100), ss);
  const Trace t = read_trace_text(ss);
  EXPECT_EQ(t.num_pages(), 100u);
}

TEST(TraceIoText, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\n3\n# more\n1\n");
  const Trace t = read_trace_text(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], 3u);
  EXPECT_EQ(t[1], 1u);
}

TEST(TraceIoText, HandlesWindowsLineEndings) {
  std::stringstream ss("!pages 4\r\n3\r\n1\r\n");
  const Trace t = read_trace_text(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.num_pages(), 4u);
}

TEST(TraceIoText, RejectsGarbage) {
  std::stringstream ss("3\nnotanumber\n");
  EXPECT_THROW(read_trace_text(ss), ParseError);
}

TEST(TraceIoText, RejectsUnknownHeader) {
  std::stringstream ss("!bogus 1\n");
  EXPECT_THROW(read_trace_text(ss), ParseError);
}

TEST(TraceIoText, RejectsTrailingJunkOnNumber) {
  std::stringstream ss("12abc\n");
  EXPECT_THROW(read_trace_text(ss), ParseError);
}

TEST(TraceIoText, EmptyStreamGivesEmptyTrace) {
  std::stringstream ss;
  EXPECT_TRUE(read_trace_text(ss).empty());
}

TEST(TraceIoBinary, Roundtrip) {
  std::stringstream ss;
  write_trace_binary(sample_trace(), ss);
  EXPECT_EQ(read_trace_binary(ss), sample_trace());
}

TEST(TraceIoBinary, RoundtripLargeRandom) {
  const Trace t = workloads::make_uniform_trace(1 << 16, 50'000, 9);
  std::stringstream ss;
  write_trace_binary(t, ss);
  EXPECT_EQ(read_trace_binary(ss), t);
}

TEST(TraceIoBinary, RejectsBadMagic) {
  std::stringstream ss("NOPE....");
  EXPECT_THROW(read_trace_binary(ss), ParseError);
}

TEST(TraceIoBinary, RejectsTruncatedStream) {
  std::stringstream ss;
  write_trace_binary(sample_trace(), ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 3));
  EXPECT_THROW(read_trace_binary(truncated), ParseError);
}

TEST(TraceIoBinary, RejectsWrongVersion) {
  std::stringstream ss;
  write_trace_binary(sample_trace(), ss);
  std::string bytes = ss.str();
  bytes[4] = 99;  // version field
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace_binary(bad), ParseError);
}

class TraceIoFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "hbmsim_trace_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(TraceIoFileTest, SaveLoadTextByExtension) {
  const auto path = dir_ / "t.trace";
  save_trace(sample_trace(), path);
  EXPECT_EQ(load_trace(path), sample_trace());
  // Text format is human-readable: starts with a comment.
  std::ifstream is(path);
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(first[0], '#');
}

TEST_F(TraceIoFileTest, SaveLoadBinaryByExtension) {
  const auto path = dir_ / "t.btrace";
  save_trace(sample_trace(), path);
  EXPECT_EQ(load_trace(path), sample_trace());
}

TEST_F(TraceIoFileTest, LoadMissingFileThrowsIoError) {
  EXPECT_THROW(load_trace(dir_ / "absent.trace"), IoError);
}

TEST_F(TraceIoFileTest, SaveToUnwritablePathThrows) {
  EXPECT_THROW(save_trace(sample_trace(), dir_ / "no_dir" / "t.trace"), IoError);
}

}  // namespace
}  // namespace hbmsim
