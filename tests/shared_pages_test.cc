// Tests for the non-disjoint (shared page namespace) extension — the
// paper's §6.1 future work, implemented behind SimConfig::shared_pages —
// and for WaiterTable, the pooled waiter-chain structure backing it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulator.h"
#include "core/waiter_table.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

Workload threads_with(std::vector<std::vector<LocalPage>> traces) {
  std::vector<std::shared_ptr<const Trace>> ts;
  for (auto& refs : traces) {
    ts.push_back(std::make_shared<Trace>(Trace(std::move(refs))));
  }
  return Workload(std::move(ts));
}

SimConfig shared_fifo(std::uint64_t k, std::uint32_t q = 1) {
  SimConfig c = SimConfig::fifo(k, q);
  c.shared_pages = true;
  return c;
}

TEST(SharedPages, OneFetchServesAllConcurrentRequesters) {
  // Four cores all request page 0 at tick 0: one DRAM fetch, everyone
  // served at tick 1.
  const Workload w = threads_with({{0}, {0}, {0}, {0}});
  const RunMetrics m = simulate(w, shared_fifo(8));
  EXPECT_EQ(m.misses, 4u);
  EXPECT_EQ(m.fetches, 1u) << "one fetch must satisfy all four cores";
  EXPECT_EQ(m.makespan, 2u);
  EXPECT_DOUBLE_EQ(m.response.max(), 2.0);
}

TEST(SharedPages, DisjointModeFetchesOncePerCoreInstead) {
  const Workload w = threads_with({{0}, {0}, {0}, {0}});
  const RunMetrics m = simulate(w, SimConfig::fifo(8));
  EXPECT_EQ(m.fetches, 4u);
  EXPECT_EQ(m.makespan, 5u);  // q=1 serializes the four fetches
}

TEST(SharedPages, LateJoinerPiggybacksOnInFlightRequest) {
  // t0 requests page 0 at tick 0; t1 warms up on its own page 1 first and
  // requests page 0 at tick 2, after it became resident: a plain hit.
  const Workload w = threads_with({{0, 0, 0}, {1, 0}});
  const RunMetrics m = simulate(w, shared_fifo(8, 2));
  EXPECT_EQ(m.fetches, 2u);  // pages 0 and 1 once each
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.hits, 3u);
}

TEST(SharedPages, SharedHotSetBeatsDisjointWorkingSets) {
  // All cores stream the same pages: shared mode needs one working set
  // of HBM, disjoint mode needs p of them.
  auto trace = std::make_shared<Trace>(workloads::make_stream_trace(64, 5));
  const Workload w = Workload::replicate(trace, 8);
  const std::uint64_t k = 64;  // exactly one shared working set

  const RunMetrics shared = simulate(w, shared_fifo(k));
  const RunMetrics disjoint = simulate(w, SimConfig::fifo(k));
  EXPECT_LT(shared.makespan, disjoint.makespan / 2);
  // Lockstep streaming: pass 1 misses on all 8 cores (one fetch per page),
  // passes 2..5 hit entirely.
  EXPECT_EQ(shared.fetches, 64u);
  EXPECT_EQ(shared.misses, 8u * 64);
  EXPECT_GE(shared.hit_rate(), 0.8);
  EXPECT_DOUBLE_EQ(disjoint.hit_rate(), 0.0) << "cyclic thrash when disjoint";
}

TEST(SharedPages, FetchCountNeverExceedsMisses) {
  workloads::SyntheticOptions opts;
  opts.num_pages = 32;
  opts.length = 500;
  opts.seed = 4;  // same seed → identical traces → heavy sharing
  std::vector<std::shared_ptr<const Trace>> traces(
      6, std::make_shared<Trace>(workloads::make_uniform_trace(32, 500, 4)));
  const Workload w = Workload(std::move(traces));
  for (const std::uint32_t q : {1u, 3u}) {
    const RunMetrics m = simulate(w, shared_fifo(16, q));
    EXPECT_LE(m.fetches, m.misses);
    EXPECT_GT(m.fetches, 0u);
    EXPECT_EQ(m.response.count(), w.total_refs());
  }
}

TEST(SharedPages, PriorityArbitrationStillWorks) {
  std::vector<std::shared_ptr<const Trace>> traces(
      5, std::make_shared<Trace>(workloads::make_uniform_trace(64, 400, 9)));
  const Workload w = Workload(std::move(traces));
  SimConfig c = SimConfig::priority(16);
  c.shared_pages = true;
  const RunMetrics m = simulate(w, c);
  EXPECT_EQ(m.response.count(), w.total_refs());
  EXPECT_LE(m.fetches, m.misses);

  SimConfig d = SimConfig::dynamic_priority(16, 5.0);
  d.shared_pages = true;
  const RunMetrics md = simulate(w, d);
  EXPECT_EQ(md.response.count(), w.total_refs());
}

TEST(SharedPages, DistinctPagesStillDisjointAcrossValues) {
  // Different local ids never alias.
  const Workload w = threads_with({{0, 1}, {2, 3}});
  const RunMetrics m = simulate(w, shared_fifo(8, 4));
  EXPECT_EQ(m.fetches, 4u);
  EXPECT_EQ(m.hits, 0u);
}

TEST(SharedPages, PriorityQueueSurvivesStaleEntryCollision) {
  // Regression: two threads co-miss page 0 at tick 0 under Priority.
  // Thread B's queue entry goes stale when A's fetch satisfies both; when
  // B then misses page 5, its new entry used to collide with the stale
  // one in the priority queue (same priority key) and be dropped — B
  // waited forever. The run must terminate with every reference served.
  const Workload w = threads_with({{0, 1, 2}, {0, 5, 6}});
  SimConfig c = SimConfig::priority(64);
  c.shared_pages = true;
  const RunMetrics m = simulate(w, c);
  EXPECT_EQ(m.response.count(), 6u);
  EXPECT_EQ(m.per_thread[1].refs, 3u);
}

TEST(SharedPages, HighOverlapPriorityWorkloadTerminates) {
  // Broader version of the regression above: heavy sharing, many stale
  // entries, all priority-family policies.
  std::vector<std::shared_ptr<const Trace>> traces(
      8, std::make_shared<Trace>(workloads::make_uniform_trace(64, 2000, 5)));
  const Workload w = Workload(std::move(traces));
  for (const auto make : {&SimConfig::priority}) {
    SimConfig c = make(32, 1);
    c.shared_pages = true;
    c.max_ticks = 1u << 22;  // a deadlock would hit this instead of hanging
    const RunMetrics m = simulate(w, c);
    EXPECT_EQ(m.response.count(), w.total_refs());
  }
  SimConfig dyn = SimConfig::dynamic_priority(32, 2.0);
  dyn.shared_pages = true;
  dyn.max_ticks = 1u << 22;
  EXPECT_EQ(simulate(w, dyn).response.count(), w.total_refs());
}

TEST(SharedPages, PiggybacksOnInFlightTransfers) {
  // fetch_ticks = 4: t0 misses page 0 at tick 0 (arrival tick 4); t1
  // misses the same page at tick 2 (its private page 1 arrives... no —
  // t1 starts on page 0 too). Both must be served by the single transfer.
  const Workload w = threads_with({{0}, {0}, {0}});
  SimConfig c = shared_fifo(8);
  c.fetch_ticks = 4;
  const RunMetrics m = simulate(w, c);
  EXPECT_EQ(m.fetches, 1u);
  EXPECT_EQ(m.misses, 3u);
  // fetch at tick 0, arrival + serve at tick 4 for all three.
  EXPECT_EQ(m.makespan, 5u);
  EXPECT_DOUBLE_EQ(m.response.max(), 5.0);
}

TEST(SharedPages, LateMissJoinsInFlightTransfer) {
  // t1 spends tick 0-? on its own page 5 and reaches page 0 while t0's
  // transfer of page 0 is still in the air: it must not issue a second
  // fetch.
  const Workload w = threads_with({{0, 0}, {5, 0}});
  SimConfig c = shared_fifo(8, /*q=*/2);
  c.fetch_ticks = 6;
  const RunMetrics m = simulate(w, c);
  // Pages 0 and 5 fetched once each, despite t1's later miss on page 0.
  EXPECT_EQ(m.fetches, 2u);
  EXPECT_EQ(m.response.count(), 4u);
}

TEST(SharedPages, LatencyRunsTerminateUnderAllPolicies) {
  std::vector<std::shared_ptr<const Trace>> traces(
      6, std::make_shared<Trace>(workloads::make_uniform_trace(48, 1200, 17)));
  const Workload w = Workload(std::move(traces));
  for (const ArbitrationKind arb :
       {ArbitrationKind::kFifo, ArbitrationKind::kPriority,
        ArbitrationKind::kFrFcfs}) {
    SimConfig c;
    c.hbm_slots = 24;
    c.arbitration = arb;
    c.shared_pages = true;
    c.fetch_ticks = 3;
    c.max_ticks = 1u << 22;
    const RunMetrics m = simulate(w, c);
    EXPECT_EQ(m.response.count(), w.total_refs()) << to_string(arb);
    EXPECT_LE(m.fetches, m.misses);
  }
}

TEST(SharedPages, DeterministicAcrossRuns) {
  std::vector<std::shared_ptr<const Trace>> traces(
      4, std::make_shared<Trace>(workloads::make_zipf_trace(128, 800, 1.0, 2)));
  const Workload w = Workload(std::move(traces));
  SimConfig c = shared_fifo(32);
  const RunMetrics a = simulate(w, c);
  const RunMetrics b = simulate(w, c);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
}

// --- WaiterTable (the pooled chains behind Simulator::waiters_) ---------

TEST(WaiterTable, VisitsWaitersInRegistrationOrder) {
  WaiterTable table(8);
  table.add(7, 3);
  table.add(9, 1);
  table.add(7, 0);
  table.add(7, 2);
  EXPECT_TRUE(table.contains(7));
  EXPECT_TRUE(table.contains(9));
  EXPECT_EQ(table.pages(), 2u);
  std::vector<ThreadId> order;
  table.for_each(7, [&](ThreadId t) { order.push_back(t); });
  EXPECT_EQ(order, (std::vector<ThreadId>{3, 0, 2}))
      << "chains must preserve add() order (determinism contract)";
}

TEST(WaiterTable, TakeDrainsOnePageAndLeavesOthers) {
  WaiterTable table(8);
  table.add(7, 3);
  table.add(9, 1);
  table.add(7, 0);
  std::vector<ThreadId> taken;
  EXPECT_TRUE(table.take(7, [&](ThreadId t) { taken.push_back(t); }));
  EXPECT_EQ(taken, (std::vector<ThreadId>{3, 0}));
  EXPECT_FALSE(table.contains(7));
  EXPECT_TRUE(table.contains(9));
  EXPECT_EQ(table.pages(), 1u);
  EXPECT_FALSE(table.take(7, [](ThreadId) {})) << "already drained";
}

TEST(WaiterTable, MissingPageIsEmptyNotAnError) {
  WaiterTable table;
  EXPECT_FALSE(table.contains(1));
  std::size_t visits = 0;
  table.for_each(1, [&](ThreadId) { ++visits; });
  EXPECT_EQ(visits, 0u);
  EXPECT_FALSE(table.take(1, [&](ThreadId) { ++visits; }));
  EXPECT_EQ(visits, 0u);
}

TEST(WaiterTable, AddTakeCyclesReuseThePool) {
  // The steady-state contract: within the reservation, add/take cycles
  // recycle nodes in place (the allocation-free proof lives in
  // perf_simulator --arbiter-compare; this covers the reuse mechanics).
  WaiterTable table(4);
  for (int round = 0; round < 1000; ++round) {
    const auto page = static_cast<GlobalPage>(round % 3);
    table.add(page, 0);
    table.add(page, 1);
    table.add(page, 2);
    table.add(page, 3);
    std::vector<ThreadId> taken;
    EXPECT_TRUE(table.take(page, [&](ThreadId t) { taken.push_back(t); }));
    EXPECT_EQ(taken, (std::vector<ThreadId>{0, 1, 2, 3})) << round;
    EXPECT_EQ(table.pages(), 0u);
  }
}

}  // namespace
}  // namespace hbmsim
