// Unit tests for the trace-capture instrumentation: PageMapper,
// LoggingIterator (the paper's GNU-sort technique), LoggingArray (the
// TACO technique), and VirtualLayout.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "trace/logging_array.h"
#include "trace/logging_iterator.h"
#include "trace/page_mapper.h"
#include "util/error.h"

namespace hbmsim {
namespace {

TEST(PageMapper, MapsAddressesToDensePages) {
  PageMapper m(4096);
  m.access(0);        // page 0 → dense 0
  m.access(4096);     // page 1 → dense 1
  m.access(100);      // page 0 again
  m.access(8192 * 4); // page 8 → dense 2 (first-touch order)
  const Trace t = m.take_trace();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 1u);
  EXPECT_EQ(t[2], 0u);
  EXPECT_EQ(t[3], 2u);
  EXPECT_EQ(t.num_pages(), 3u);
}

TEST(PageMapper, RejectsNonPowerOfTwoPageSize) {
  EXPECT_THROW(PageMapper m(1000), Error);
  EXPECT_THROW(PageMapper m(0), Error);
}

TEST(PageMapper, PageBoundaryIsExact) {
  PageMapper m(64);
  m.access(63);  // page 0
  m.access(64);  // page 1
  const Trace t = m.take_trace();
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 1u);
}

TEST(PageMapper, AccessRangeTouchesEveryCoveredPage) {
  PageMapper m(64);
  m.access_range(10, 200);  // bytes 10..209 → pages 0..3
  const Trace t = m.take_trace();
  ASSERT_EQ(t.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i], i);
  }
}

TEST(PageMapper, AccessRangeZeroBytesIsNoop) {
  PageMapper m(64);
  m.access_range(10, 0);
  EXPECT_EQ(m.num_refs(), 0u);
}

TEST(PageMapper, TakeTraceResetsState) {
  PageMapper m(4096);
  m.access(0);
  (void)m.take_trace();
  EXPECT_EQ(m.num_refs(), 0u);
  m.access(1 << 20);
  const Trace t = m.take_trace();
  EXPECT_EQ(t[0], 0u) << "dense ids restart after take_trace";
}

TEST(PageMapper, CoalesceOption) {
  PageMapper m(4096);
  m.access(0);
  m.access(8);
  m.access(4096);
  const Trace t = m.take_trace(/*coalesce_adjacent=*/true);
  ASSERT_EQ(t.size(), 2u);
}

TEST(LoggingIterator, LogsEveryDereferenceAtVirtualAddresses) {
  PageMapper m(64);
  std::vector<std::int32_t> data{10, 20, 30, 40};
  TracedBuffer<std::int32_t> buf(std::move(data), /*virtual_base=*/1024, &m);
  auto it = buf.begin();
  EXPECT_EQ(*it, 10);
  EXPECT_EQ(it[3], 40);
  // Two accesses: addr 1024 (page 16→dense 0), addr 1036 (same page).
  const Trace t = m.take_trace();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], t[1]);
}

TEST(LoggingIterator, SatisfiesRandomAccessArithmetic) {
  PageMapper m(64);
  TracedBuffer<std::int32_t> buf({1, 2, 3, 4, 5}, 0, &m);
  auto a = buf.begin();
  auto b = buf.end();
  EXPECT_EQ(b - a, 5);
  EXPECT_EQ(*(a + 2), 3);
  EXPECT_EQ(*(2 + a), 3);
  EXPECT_EQ(*(b - 1), 5);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a + 5 == b);
  auto c = a;
  ++c;
  --c;
  EXPECT_TRUE(c == a);
  c += 3;
  c -= 1;
  EXPECT_EQ(*c, 3);
}

TEST(LoggingIterator, StdSortWorksThroughIt) {
  PageMapper m(4096);
  std::vector<std::int32_t> data{5, 3, 1, 4, 2};
  TracedBuffer<std::int32_t> buf(std::move(data), 0, &m);
  std::sort(buf.begin(), buf.end());
  EXPECT_TRUE(std::is_sorted(buf.raw().begin(), buf.raw().end()));
  EXPECT_GT(m.num_refs(), 0u) << "sorting must generate logged accesses";
}

TEST(LoggingIterator, VirtualAddressTracksPosition) {
  PageMapper m(64);
  TracedBuffer<std::int32_t> buf({1, 2, 3}, 4096, &m);
  auto it = buf.begin();
  EXPECT_EQ(it.virtual_address(), 4096u);
  ++it;
  EXPECT_EQ(it.virtual_address(), 4100u);
}

TEST(LoggingIterator, NullSinkIsSafe) {
  std::vector<std::int32_t> data{2, 1};
  std::int32_t* p = data.data();
  LoggingIterator<std::int32_t> a(p, p, 0, nullptr);
  LoggingIterator<std::int32_t> b(p + 2, p, 0, nullptr);
  std::sort(a, b);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(LoggingArray, GetSetAddLogAccesses) {
  PageMapper m(4096);
  LoggingArray<double> arr(16, 0, &m);
  arr.set(0, 1.5);
  EXPECT_EQ(arr.get(0), 1.5);
  arr.add(0, 2.5);
  EXPECT_EQ(arr.raw()[0], 4.0);
  EXPECT_EQ(m.num_refs(), 3u);
}

TEST(LoggingArray, AdoptExistingContents) {
  PageMapper m(4096);
  LoggingArray<int> arr(std::vector<int>{7, 8}, 0, &m);
  EXPECT_EQ(arr.get(1), 8);
  EXPECT_EQ(arr.size(), 2u);
}

TEST(LoggingArray, ElementsMapToCorrectPages) {
  PageMapper m(64);  // 8 doubles per page
  LoggingArray<double> arr(16, /*virtual_base=*/0, &m);
  arr.set(0, 1.0);   // page 0
  arr.set(7, 1.0);   // page 0
  arr.set(8, 1.0);   // page 1
  const Trace t = m.take_trace();
  EXPECT_EQ(t[0], t[1]);
  EXPECT_NE(t[0], t[2]);
}

TEST(PageMapper, HandlesHighAddresses) {
  PageMapper m(4096);
  m.access(~std::uint64_t{0} - 100);  // near the top of the address space
  m.access(0);
  const Trace t = m.take_trace();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NE(t[0], t[1]);
}

TEST(PageMapper, DensifiesInFirstTouchOrderAcrossGaps) {
  PageMapper m(4096);
  m.access(100ull << 30);  // dense id 0 despite the huge raw page number
  m.access(0);             // dense id 1
  const Trace t = m.take_trace();
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 1u);
  EXPECT_EQ(t.num_pages(), 2u);
}

TEST(VirtualLayout, ReservationsArePageDisjoint) {
  VirtualLayout layout(4096);
  const Address a = layout.reserve_for<double>(100);   // 800 bytes
  const Address b = layout.reserve_for<double>(1);     // next array
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 4096) << "arrays must never share a page";
}

TEST(VirtualLayout, HandlesExactPageMultiples) {
  VirtualLayout layout(4096);
  const Address a = layout.reserve(4096, 1);
  const Address b = layout.reserve(1, 1);
  EXPECT_GT(b, a + 4095);
}

}  // namespace
}  // namespace hbmsim
