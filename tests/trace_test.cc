// Unit tests for trace/trace.h: Trace invariants and Workload builders.
#include <gtest/gtest.h>

#include <memory>

#include "core/types.h"
#include "trace/trace.h"
#include "trace/trace_cursor.h"
#include "util/error.h"

namespace hbmsim {
namespace {

TEST(Trace, DefaultIsEmpty) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.num_pages(), 0u);
}

TEST(Trace, DerivesNumPagesFromData) {
  Trace t({3, 1, 4, 1, 5});
  EXPECT_EQ(t.num_pages(), 6u);  // max page 5 → 6 pages
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], 3u);
  EXPECT_EQ(t[4], 5u);
}

TEST(Trace, AcceptsExplicitNumPages) {
  Trace t({0, 1}, 10);
  EXPECT_EQ(t.num_pages(), 10u);
}

TEST(Trace, RejectsPageBeyondNumPages) {
  EXPECT_THROW(Trace({0, 5}, 5), Error);
}

TEST(Trace, UniquePagesCountsDistinct) {
  Trace t({0, 1, 0, 2, 1, 0});
  EXPECT_EQ(t.unique_pages(), 3u);
  Trace sparse({7}, 100);
  EXPECT_EQ(sparse.unique_pages(), 1u);
}

TEST(Trace, CoalescedCollapsesRuns) {
  Trace t({0, 0, 1, 1, 1, 0, 2, 2});
  const Trace c = t.coalesced();
  EXPECT_EQ(c.refs().size(), 4u);
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 1u);
  EXPECT_EQ(c[2], 0u);
  EXPECT_EQ(c[3], 2u);
  EXPECT_EQ(c.num_pages(), t.num_pages());
}

TEST(Trace, CoalescedOfEmptyIsEmpty) {
  EXPECT_TRUE(Trace().coalesced().empty());
}

TEST(Trace, EqualityComparesContent) {
  EXPECT_EQ(Trace({1, 2}), Trace({1, 2}));
  EXPECT_NE(Trace({1, 2}), Trace({2, 1}));
}

TEST(Workload, ReplicateSharesOneTrace) {
  auto trace = std::make_shared<Trace>(Trace({0, 1, 2}));
  const Workload w = Workload::replicate(trace, 5, "test");
  EXPECT_EQ(w.num_threads(), 5u);
  EXPECT_EQ(w.name(), "test");
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(&w.trace(t), trace.get());
  }
  EXPECT_EQ(w.total_refs(), 15u);
  EXPECT_EQ(w.total_unique_pages(), 15u);  // pages are per-thread disjoint
}

TEST(Workload, RoundRobinCyclesPool) {
  auto a = std::make_shared<Trace>(Trace({0}));
  auto b = std::make_shared<Trace>(Trace({0, 1}));
  const Workload w = Workload::round_robin({a, b}, 5);
  EXPECT_EQ(&w.trace(0), a.get());
  EXPECT_EQ(&w.trace(1), b.get());
  EXPECT_EQ(&w.trace(2), a.get());
  EXPECT_EQ(&w.trace(4), a.get());
  EXPECT_EQ(w.total_refs(), 1u + 2 + 1 + 2 + 1);
}

TEST(Workload, RejectsNullTrace) {
  std::vector<std::shared_ptr<const Trace>> traces{nullptr};
  EXPECT_THROW(Workload w(std::move(traces)), Error);
  EXPECT_THROW(Workload::replicate(std::shared_ptr<const Trace>{}, 3), Error);
  EXPECT_THROW(Workload::replicate(std::shared_ptr<const TraceSource>{}, 3),
               Error);
}

TEST(Workload, RoundRobinRejectsEmptyPool) {
  EXPECT_THROW(Workload::round_robin({}, 3), Error);
}

TEST(Workload, TraceIndexOutOfRangeThrows) {
  const Workload w = Workload::replicate(std::make_shared<Trace>(Trace({0})), 2);
  EXPECT_THROW((void)w.trace(2), Error);
}

TEST(Workload, ZeroThreadWorkloadIsRepresentable) {
  // Construction is fine; SimConfig::validate rejects it at simulate time.
  const Workload w{};
  EXPECT_EQ(w.num_threads(), 0u);
  EXPECT_EQ(w.total_refs(), 0u);
}

TEST(GlobalPage, RoundTripsThreadAndLocalIds) {
  for (const ThreadId t : {0u, 1u, 255u, 65535u}) {
    for (const LocalPage pg : {0u, 1u, 0xFFFFFFu, 0xFFFFFFFFu}) {
      const GlobalPage g = make_global_page(t, pg);
      EXPECT_EQ(page_owner(g), t);
      EXPECT_EQ(page_local(g), pg);
    }
  }
}

TEST(GlobalPage, DistinctThreadsNeverCollide) {
  EXPECT_NE(make_global_page(0, 5), make_global_page(1, 5));
  EXPECT_NE(make_global_page(2, 0), make_global_page(0, 2));
}

TEST(Workload, ShareExtendsTraceLifetime) {
  std::shared_ptr<const Trace> kept;
  {
    const Workload w =
        Workload::replicate(std::make_shared<Trace>(Trace({1, 2, 3})), 2);
    kept = w.share(1);
  }  // workload destroyed
  EXPECT_EQ(kept->size(), 3u);
  EXPECT_EQ((*kept)[2], 3u);
}

}  // namespace
}  // namespace hbmsim
