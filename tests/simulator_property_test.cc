// Property-based tests for the simulator.
//
// The centrepiece is an independent brute-force reference implementation
// of the §3.1 tick loop (O(p·makespan), plain containers, no sparse
// bookkeeping) checked for *exact* equivalence — makespan, hit/miss
// counts, response moments — against the optimized Simulator across a
// parameter grid of policies, thread counts, channel counts and HBM
// sizes. The remaining tests assert model invariants (conservation,
// determinism, LRU inclusion, the p·T response bound for Cycle Priority).
// A second harness proves the fast engine (DESIGN.md §3c) and the
// calendar-queue event engine (§3e, including its dense backlog layer)
// bit-identical to the reference tick engine: a randomized grid over
// (workload family, arbitration, replacement, q, fetch_ticks,
// remap_period, shared pages, direct-mapped cache, streaming vs
// materialized trace source) fingerprints all engines' RunMetrics, step()-interleaving tests pin thread_state()
// agreement at every event boundary, and dense corner tests pin the
// export protocol (requeue, slot overflow, truncation).
#include <gtest/gtest.h>

#include <bit>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "assoc/direct_mapped.h"
#include "check/check.h"
#include "core/event_engine.h"
#include "core/simulator.h"
#include "stats/streaming.h"
#include "util/rng.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

// ---------------------------------------------------------------------
// Brute-force reference simulator.
// ---------------------------------------------------------------------

struct BruteResult {
  Tick makespan = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  StreamingStats response;
};

BruteResult brute_force(const Workload& w, const SimConfig& cfg) {
  const std::size_t p = w.num_threads();
  PriorityMap pm(static_cast<std::uint32_t>(p),
                 cfg.arbitration == ArbitrationKind::kPriority ? cfg.remap_scheme
                                                               : RemapScheme::kNone,
                 cfg.seed);

  enum State { kIssue, kWait, kFetched, kDone };
  struct Th {
    std::size_t next = 0;
    Tick req = 0;
    State state = kIssue;
  };
  std::vector<Th> th(p);
  std::size_t done = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (w.trace(i).empty()) {
      th[i].state = kDone;
      ++done;
    }
  }

  // Plain LRU: front = least recent.
  std::list<GlobalPage> lru;
  std::unordered_map<GlobalPage, std::list<GlobalPage>::iterator> pos;

  struct QE {
    GlobalPage page;
    ThreadId thread;
    std::uint64_t seq;
  };
  std::vector<QE> queue;
  std::uint64_t seq = 0;
  constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
  std::vector<std::uint64_t> open_row(cfg.num_channels, kNoRow);
  struct Flight {
    Tick at;
    GlobalPage page;
    ThreadId thread;
  };
  std::vector<Flight> in_flight;

  BruteResult r;
  const auto page_of = [&](std::size_t i) {
    return make_global_page(static_cast<ThreadId>(i), w.trace(i)[th[i].next]);
  };
  const auto serve = [&](std::size_t i, Tick t) {
    const GlobalPage g = page_of(i);
    lru.splice(lru.end(), lru, pos.at(g));  // touch: move to MRU end
    r.response.add(static_cast<double>(t - th[i].req + 1));
    ++th[i].next;
    if (th[i].next == w.trace(i).size()) {
      th[i].state = kDone;
      ++done;
      r.makespan = std::max(r.makespan, t + 1);
    } else {
      th[i].state = kIssue;
    }
  };

  const auto insert_page = [&](GlobalPage page) {
    if (pos.size() == cfg.hbm_slots) {
      pos.erase(lru.front());
      lru.pop_front();
    }
    lru.push_back(page);
    pos[page] = std::prev(lru.end());
  };

  for (Tick t = 0; done < p; ++t) {
    // Arrivals of non-unit transfers land before anything else this tick.
    for (std::size_t i = 0; i < in_flight.size();) {
      if (in_flight[i].at == t) {
        insert_page(in_flight[i].page);
        th[in_flight[i].thread].state = kFetched;
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (cfg.remap_period != 0 && t % cfg.remap_period == 0) {
      pm.remap();
    }
    for (std::size_t i = 0; i < p; ++i) {
      Th& c = th[i];
      if (c.state == kIssue) {
        const GlobalPage g = page_of(i);
        c.req = t;
        if (pos.contains(g)) {
          ++r.hits;
          serve(i, t);
        } else {
          ++r.misses;
          c.state = kWait;
          queue.push_back(QE{g, static_cast<ThreadId>(i), seq++});
        }
      } else if (c.state == kFetched) {
        const GlobalPage g = page_of(i);
        if (pos.contains(g)) {
          serve(i, t);
        } else {
          c.state = kWait;
          queue.push_back(QE{g, static_cast<ThreadId>(i), seq++});
        }
      }
    }
    for (std::uint32_t ch = 0; ch < cfg.num_channels && !queue.empty(); ++ch) {
      // Eligibility: under hashed binding channel ch only serves pages
      // bound to it.
      const auto eligible = [&](const QE& e) {
        return cfg.channel_binding == ChannelBinding::kAny ||
               channel_of(e.page, cfg.num_channels) == ch;
      };
      std::size_t best = queue.size();
      for (std::size_t j = 0; j < queue.size(); ++j) {
        if (!eligible(queue[j])) {
          continue;
        }
        if (best == queue.size()) {
          best = j;
          continue;
        }
        bool better = false;
        switch (cfg.arbitration) {
          case ArbitrationKind::kFifo:
            better = queue[j].seq < queue[best].seq;
            break;
          case ArbitrationKind::kPriority:
            better = pm.priority_of(queue[j].thread) <
                     pm.priority_of(queue[best].thread);
            break;
          case ArbitrationKind::kFrFcfs: {
            const auto row = [&](const QE& e) { return e.page / cfg.row_pages; };
            const bool j_hit = row(queue[j]) == open_row[ch];
            const bool b_hit = row(queue[best]) == open_row[ch];
            better = j_hit != b_hit ? j_hit : queue[j].seq < queue[best].seq;
            break;
          }
          case ArbitrationKind::kRandom:
          case ArbitrationKind::kAdaptive:
            break;  // not modelled by this oracle (check/ covers them)
        }
        if (better) {
          best = j;
        }
      }
      if (best == queue.size()) {
        continue;  // this hashed channel has no eligible request
      }
      const QE e = queue[best];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
      open_row[ch] = e.page / cfg.row_pages;
      if (cfg.fetch_ticks > 1) {
        in_flight.push_back(Flight{t + cfg.fetch_ticks, e.page, e.thread});
      } else {
        insert_page(e.page);
        th[e.thread].state = kFetched;
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// Equivalence grid.
// ---------------------------------------------------------------------

struct GridCase {
  std::string name;
  std::size_t threads;
  std::uint32_t channels;
  std::uint64_t k;
  ArbitrationKind arbitration;
  RemapScheme scheme;
  std::uint64_t period;
  ChannelBinding binding = ChannelBinding::kAny;
  std::uint32_t fetch_ticks = 1;
};

class BruteEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(BruteEquivalence, OptimizedMatchesReference) {
  const GridCase& g = GetParam();
  // Mixed-locality workload: uniform over 24 pages → real hit/miss mix.
  workloads::SyntheticOptions opts;
  opts.num_pages = 24;
  opts.length = 400;
  opts.seed = 1234;
  const Workload w = workloads::make_synthetic_workload(g.threads, opts);

  SimConfig cfg;
  cfg.hbm_slots = g.k;
  cfg.num_channels = g.channels;
  cfg.arbitration = g.arbitration;
  cfg.remap_scheme = g.scheme;
  cfg.remap_period = g.period;
  cfg.channel_binding = g.binding;
  cfg.fetch_ticks = g.fetch_ticks;
  cfg.seed = 99;

  const RunMetrics fast = simulate(w, cfg);
  const BruteResult slow = brute_force(w, cfg);

  EXPECT_EQ(fast.makespan, slow.makespan);
  EXPECT_EQ(fast.hits, slow.hits);
  EXPECT_EQ(fast.misses, slow.misses);
  ASSERT_EQ(fast.response.count(), slow.response.count());
  EXPECT_NEAR(fast.response.mean(), slow.response.mean(), 1e-9);
  EXPECT_NEAR(fast.inconsistency(), slow.response.stddev(), 1e-6);
  EXPECT_DOUBLE_EQ(fast.response.max(), slow.response.max());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BruteEquivalence,
    ::testing::Values(
        GridCase{"fifo_1t", 1, 1, 8, ArbitrationKind::kFifo, RemapScheme::kNone, 0},
        GridCase{"fifo_3t", 3, 1, 16, ArbitrationKind::kFifo, RemapScheme::kNone, 0},
        GridCase{"fifo_8t_q3", 8, 3, 32, ArbitrationKind::kFifo, RemapScheme::kNone, 0},
        GridCase{"fifo_tight", 5, 1, 6, ArbitrationKind::kFifo, RemapScheme::kNone, 0},
        GridCase{"prio_1t", 1, 1, 8, ArbitrationKind::kPriority, RemapScheme::kNone, 0},
        GridCase{"prio_4t", 4, 1, 16, ArbitrationKind::kPriority, RemapScheme::kNone, 0},
        GridCase{"prio_8t_q2", 8, 2, 24, ArbitrationKind::kPriority, RemapScheme::kNone, 0},
        GridCase{"prio_tight", 6, 1, 8, ArbitrationKind::kPriority, RemapScheme::kNone, 0},
        GridCase{"dyn_5t", 5, 1, 16, ArbitrationKind::kPriority, RemapScheme::kDynamic, 13},
        GridCase{"dyn_8t_q2", 8, 2, 16, ArbitrationKind::kPriority, RemapScheme::kDynamic, 7},
        GridCase{"cycle_5t", 5, 1, 16, ArbitrationKind::kPriority, RemapScheme::kCycle, 11},
        GridCase{"cyclerev_4t", 4, 1, 12, ArbitrationKind::kPriority, RemapScheme::kCycleReverse, 9},
        GridCase{"interleave_6t", 6, 2, 16, ArbitrationKind::kPriority, RemapScheme::kInterleave, 17},
        GridCase{"frfcfs_4t", 4, 1, 16, ArbitrationKind::kFrFcfs, RemapScheme::kNone, 0},
        GridCase{"frfcfs_8t_q3", 8, 3, 24, ArbitrationKind::kFrFcfs, RemapScheme::kNone, 0},
        GridCase{"fifo_hashed_q3", 8, 3, 32, ArbitrationKind::kFifo, RemapScheme::kNone, 0, ChannelBinding::kHashed},
        GridCase{"prio_hashed_q2", 6, 2, 24, ArbitrationKind::kPriority, RemapScheme::kNone, 0, ChannelBinding::kHashed},
        GridCase{"frfcfs_hashed_q2", 6, 2, 24, ArbitrationKind::kFrFcfs, RemapScheme::kNone, 0, ChannelBinding::kHashed},
        GridCase{"dyn_hashed_q2", 6, 2, 24, ArbitrationKind::kPriority, RemapScheme::kDynamic, 11, ChannelBinding::kHashed},
        GridCase{"fifo_latency4", 5, 1, 16, ArbitrationKind::kFifo, RemapScheme::kNone, 0, ChannelBinding::kAny, 4},
        GridCase{"prio_latency3_q2", 6, 2, 24, ArbitrationKind::kPriority, RemapScheme::kNone, 0, ChannelBinding::kAny, 3},
        GridCase{"dyn_latency2", 5, 1, 16, ArbitrationKind::kPriority, RemapScheme::kDynamic, 13, ChannelBinding::kAny, 2},
        GridCase{"fifo_hashed_latency3_q2", 6, 2, 24, ArbitrationKind::kFifo, RemapScheme::kNone, 0, ChannelBinding::kHashed, 3},
        GridCase{"frfcfs_latency2_q2", 6, 2, 24, ArbitrationKind::kFrFcfs, RemapScheme::kNone, 0, ChannelBinding::kAny, 2}),
    [](const auto& inf) { return inf.param.name; });

// ---------------------------------------------------------------------
// Conservation and bound invariants across a policy grid.
// ---------------------------------------------------------------------

struct PolicyCase {
  std::string name;
  SimConfig config;
};

SimConfig with(ArbitrationKind a, RemapScheme s, std::uint64_t period,
               std::uint64_t k = 32, std::uint32_t q = 1) {
  SimConfig c;
  c.hbm_slots = k;
  c.num_channels = q;
  c.arbitration = a;
  c.remap_scheme = s;
  c.remap_period = period;
  return c;
}

class PolicyInvariants : public ::testing::TestWithParam<PolicyCase> {
 protected:
  Workload make_workload(std::size_t threads) const {
    workloads::SyntheticOptions opts;
    opts.kind = workloads::SyntheticKind::kZipf;
    opts.num_pages = 64;
    opts.length = 500;
    opts.zipf_s = 0.9;
    opts.seed = 7;
    return workloads::make_synthetic_workload(threads, opts);
  }
};

TEST_P(PolicyInvariants, ConservationLaws) {
  const Workload w = make_workload(6);
  const RunMetrics m = simulate(w, GetParam().config);
  EXPECT_EQ(m.total_refs, w.total_refs());
  EXPECT_EQ(m.hits + m.misses, m.total_refs);
  EXPECT_EQ(m.response.count(), m.total_refs);
  EXPECT_EQ(m.requeues, 0u) << "requeues need tiny-k corner cases";
  // Disjoint model: every miss issues exactly one fetch, and evictions
  // cannot exceed fetches.
  EXPECT_EQ(m.fetches, m.misses);
  EXPECT_LE(m.evictions, m.fetches);
}

TEST_P(PolicyInvariants, MakespanBounds) {
  const Workload w = make_workload(6);
  const SimConfig& cfg = GetParam().config;
  const RunMetrics m = simulate(w, cfg);
  // Lower bounds: channel capacity and critical path.
  EXPECT_GE(m.makespan * cfg.num_channels, m.misses);
  std::uint64_t critical = 0;
  for (const auto& t : m.per_thread) {
    critical = std::max(critical, t.hits + 2 * t.misses);
  }
  EXPECT_GE(m.makespan, critical);
  // Upper bound: every tick at least one issue, serve, or fetch happens.
  EXPECT_LE(m.makespan, 2 * m.total_refs + m.misses + 1);
}

TEST_P(PolicyInvariants, ResponseTimesRespectModel) {
  const Workload w = make_workload(4);
  const RunMetrics m = simulate(w, GetParam().config);
  EXPECT_GE(m.response.min(), 1.0);       // hits take exactly one tick
  EXPECT_LE(m.response.min(), 2.0);
  EXPECT_GE(m.mean_response(), 1.0);
  if (m.misses > 0) {
    EXPECT_GE(m.response.max(), 2.0);     // a miss takes at least two
  }
}

TEST_P(PolicyInvariants, DeterministicAcrossRuns) {
  const Workload w = make_workload(5);
  const RunMetrics a = simulate(w, GetParam().config);
  const RunMetrics b = simulate(w, GetParam().config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  EXPECT_DOUBLE_EQ(a.inconsistency(), b.inconsistency());
}

TEST_P(PolicyInvariants, SingleThreadMakespanIsPolicyIndependent) {
  // With p = 1 the DRAM queue holds at most one request, so arbitration
  // cannot matter: every policy must produce the FIFO result exactly.
  const Workload w = make_workload(1);
  const RunMetrics m = simulate(w, GetParam().config);
  SimConfig fifo = GetParam().config;
  fifo.arbitration = ArbitrationKind::kFifo;
  fifo.remap_scheme = RemapScheme::kNone;
  fifo.remap_period = 0;
  const RunMetrics reference = simulate(w, fifo);
  EXPECT_EQ(m.makespan, reference.makespan);
  EXPECT_EQ(m.hits, reference.hits);
  EXPECT_DOUBLE_EQ(m.response.mean(), reference.response.mean());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyInvariants,
    ::testing::Values(
        PolicyCase{"fifo", with(ArbitrationKind::kFifo, RemapScheme::kNone, 0)},
        PolicyCase{"fifo_q4", with(ArbitrationKind::kFifo, RemapScheme::kNone, 0, 32, 4)},
        PolicyCase{"priority", with(ArbitrationKind::kPriority, RemapScheme::kNone, 0)},
        PolicyCase{"dynamic", with(ArbitrationKind::kPriority, RemapScheme::kDynamic, 64)},
        PolicyCase{"cycle", with(ArbitrationKind::kPriority, RemapScheme::kCycle, 64)},
        PolicyCase{"cycle_reverse", with(ArbitrationKind::kPriority, RemapScheme::kCycleReverse, 64)},
        PolicyCase{"interleave", with(ArbitrationKind::kPriority, RemapScheme::kInterleave, 64)},
        PolicyCase{"random", with(ArbitrationKind::kRandom, RemapScheme::kNone, 0)}),
    [](const auto& inf) { return inf.param.name; });

// ---------------------------------------------------------------------
// Structural properties.
// ---------------------------------------------------------------------

TEST(SimulatorProperties, LruInclusionSingleThread) {
  // LRU is a stack algorithm: for one thread, a larger HBM never misses
  // more.
  const Trace t = workloads::make_zipf_trace(128, 2000, 1.0, 5);
  auto tp = std::make_shared<Trace>(t);
  std::uint64_t prev_misses = ~0ull;
  for (const std::uint64_t k : {8ull, 16ull, 32ull, 64ull, 128ull}) {
    const RunMetrics m =
        simulate(Workload::replicate(tp, 1), SimConfig::fifo(k));
    EXPECT_LE(m.misses, prev_misses) << "k=" << k;
    prev_misses = m.misses;
  }
}

TEST(SimulatorProperties, AmpleHbmAndChannelsGiveIdealMakespan) {
  // k and q so large nothing ever contends: every thread runs at one
  // ref per tick plus one extra tick per miss.
  workloads::SyntheticOptions opts;
  opts.num_pages = 32;
  opts.length = 300;
  const Workload w = workloads::make_synthetic_workload(4, opts);
  SimConfig c = SimConfig::fifo(100'000, 64);
  const RunMetrics m = simulate(w, c);
  std::uint64_t expected = 0;
  for (const auto& t : m.per_thread) {
    expected = std::max(expected, t.hits + 2 * t.misses);
  }
  EXPECT_EQ(m.makespan, expected);
}

TEST(SimulatorProperties, CyclePriorityResponseBoundedByPT) {
  // The paper: a thread becomes highest priority within p permutations,
  // so no request waits beyond p·T (+ service slack).
  workloads::SyntheticOptions opts;
  opts.num_pages = 64;
  opts.length = 600;
  opts.seed = 3;
  const std::size_t p = 8;
  const Workload w = workloads::make_synthetic_workload(p, opts);
  const std::uint64_t period = 16;
  SimConfig c = with(ArbitrationKind::kPriority, RemapScheme::kCycle, period,
                     /*k=*/16, /*q=*/1);
  const RunMetrics m = simulate(w, c);
  EXPECT_LE(m.max_response(), (p + 2) * period + 8);
}

TEST(SimulatorProperties, DynamicSeedsChangeScheduleNotTotals) {
  workloads::SyntheticOptions opts;
  opts.num_pages = 48;
  opts.length = 400;
  const Workload w = workloads::make_synthetic_workload(6, opts);
  SimConfig c1 = SimConfig::dynamic_priority(16, 2.0, 1, /*seed=*/1);
  SimConfig c2 = SimConfig::dynamic_priority(16, 2.0, 1, /*seed=*/2);
  const RunMetrics a = simulate(w, c1);
  const RunMetrics b = simulate(w, c2);
  EXPECT_EQ(a.total_refs, b.total_refs);
  // Schedules generally differ; makespans stay in the same ballpark.
  EXPECT_LT(static_cast<double>(a.makespan) / static_cast<double>(b.makespan), 2.0);
  EXPECT_GT(static_cast<double>(a.makespan) / static_cast<double>(b.makespan), 0.5);
}

TEST(SimulatorProperties, ReplicatedTraceSharingMatchesDeepCopies) {
  // DESIGN.md §6: sharing one Trace across threads (with page-id
  // namespacing) must behave exactly like p physically distinct copies.
  const Trace t = workloads::make_uniform_trace(32, 300, 11);
  auto shared = std::make_shared<Trace>(t);
  const Workload shared_w = Workload::replicate(shared, 4);
  std::vector<std::shared_ptr<const Trace>> copies;
  for (int i = 0; i < 4; ++i) {
    copies.push_back(std::make_shared<Trace>(t));
  }
  const Workload copied_w = Workload(std::move(copies));
  for (const auto kind : {ArbitrationKind::kFifo, ArbitrationKind::kPriority}) {
    SimConfig c = with(kind, RemapScheme::kNone, 0, 24, 1);
    const RunMetrics a = simulate(shared_w, c);
    const RunMetrics b = simulate(copied_w, c);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  }
}

TEST(SimulatorProperties, TinyCacheStillTerminates) {
  // k == q == 1 with heavy contention: every fetch evicts. The run must
  // still terminate and serve every reference exactly once.
  const Workload w = workloads::make_synthetic_workload(
      3, workloads::SyntheticOptions{.num_pages = 4, .length = 50, .seed = 2});
  SimConfig c = SimConfig::fifo(1, 1);
  const RunMetrics m = simulate(w, c);
  EXPECT_EQ(m.total_refs, w.total_refs());
  EXPECT_EQ(m.response.count(), m.total_refs);
}

// ---------------------------------------------------------------------
// Differential equivalence: fast and event engines vs the reference
// tick engine.
// ---------------------------------------------------------------------

// Order-sensitive fingerprint of every RunMetrics field that takes part
// in cross-engine equivalence — i.e. everything except skipped_ticks,
// which is 0 under the reference engine by definition. Floating-point
// fields enter via bit_cast: the contract is bit-identity, not epsilon
// closeness.
std::uint64_t engine_fingerprint(const RunMetrics& m) {
  SplitMix64 mixer(0x5D1FF);
  std::uint64_t h = mixer.next();
  const auto add = [&h](std::uint64_t v) {
    SplitMix64 sm(h ^ v);
    h = sm.next();
  };
  add(m.makespan);
  add(m.total_refs);
  add(m.hits);
  add(m.misses);
  add(m.evictions);
  add(m.remaps);
  add(m.fetches);
  add(m.requeues);
  add(m.idle_ticks);
  add(m.response.count());
  add(std::bit_cast<std::uint64_t>(m.response.mean()));
  add(std::bit_cast<std::uint64_t>(m.response.stddev()));
  add(std::bit_cast<std::uint64_t>(m.response.max()));
  add(std::bit_cast<std::uint64_t>(m.response_hist.quantile(0.99)));
  for (const ThreadMetrics& t : m.per_thread) {
    add(t.refs);
    add(t.hits);
    add(t.misses);
    add(t.completion_tick);
    add(t.response.count());
    add(std::bit_cast<std::uint64_t>(t.response.mean()));
  }
  return h;
}

RunMetrics run_with_engine(const Workload& w, SimConfig cfg, EngineKind engine,
                           bool direct_mapped) {
  cfg.engine = engine;
  if (!direct_mapped) {
    return simulate(w, cfg);
  }
  Simulator sim(w, cfg,
                std::make_unique<assoc::DirectMappedCache>(cfg.hbm_slots));
  return sim.run();
}

TEST(EngineDifferential, RandomizedGridBitIdentical) {
  // 64 configurations drawn from a fixed seed, spanning every axis the
  // fast paths interact with. Each runs under all three engines (the
  // event engine's dense layer engages wherever its gates admit the
  // config); the fingerprints must match exactly and the idle
  // accounting must agree.
  SplitMix64 rng(0xD1FFE4E17);
  std::uint64_t total_skipped = 0;
  for (int i = 0; i < 64; ++i) {
    const std::size_t threads = 1 + rng.next() % 8;
    workloads::SyntheticOptions wopts;
    const std::uint64_t family = rng.next() % 4;
    wopts.kind = family == 0   ? workloads::SyntheticKind::kUniform
                 : family == 1 ? workloads::SyntheticKind::kZipf
                 : family == 2 ? workloads::SyntheticKind::kStream
                               : workloads::SyntheticKind::kStrided;
    wopts.num_pages = static_cast<std::uint32_t>(16 + 8 * (rng.next() % 11));
    wopts.length = 300;
    wopts.stream_passes = 3;
    wopts.zipf_s = 0.9;
    wopts.seed = rng.next();
    const Workload w = workloads::make_synthetic_workload(threads, wopts);

    SimConfig cfg;
    cfg.hbm_slots = std::uint64_t{8} << (rng.next() % 3);  // 8, 16, 32
    cfg.num_channels = static_cast<std::uint32_t>(1 + rng.next() % 3);
    const std::uint64_t arb = rng.next() % 4;
    cfg.arbitration = arb == 0   ? ArbitrationKind::kFifo
                      : arb == 1 ? ArbitrationKind::kPriority
                      : arb == 2 ? ArbitrationKind::kRandom
                                 : ArbitrationKind::kFrFcfs;
    if (cfg.arbitration == ArbitrationKind::kPriority && rng.next() % 2 == 0) {
      cfg.remap_scheme =
          rng.next() % 2 == 0 ? RemapScheme::kDynamic : RemapScheme::kCycle;
      cfg.remap_period = 5 + rng.next() % 40;
    }
    const std::uint64_t repl = rng.next() % 3;
    cfg.replacement = repl == 0   ? ReplacementKind::kLru
                      : repl == 1 ? ReplacementKind::kFifo
                                  : ReplacementKind::kClock;
    cfg.channel_binding = cfg.num_channels >= 2 && rng.next() % 2 == 0
                              ? ChannelBinding::kHashed
                              : ChannelBinding::kAny;
    cfg.fetch_ticks = static_cast<std::uint32_t>(1 + rng.next() % 7);
    cfg.shared_pages = rng.next() % 2 == 0;
    cfg.seed = rng.next();
    // Direct-mapped residency replaces the replacement policy entirely
    // (and is where requeue corner cases live).
    const bool direct_mapped = rng.next() % 4 == 0;

    SCOPED_TRACE("case " + std::to_string(i) + ": p=" +
                 std::to_string(threads) + " q=" +
                 std::to_string(cfg.num_channels) + " k=" +
                 std::to_string(cfg.hbm_slots) + " arb=" +
                 to_string(cfg.arbitration) + " repl=" +
                 to_string(cfg.replacement) + " bind=" +
                 to_string(cfg.channel_binding) + " ft=" +
                 std::to_string(cfg.fetch_ticks) + " T=" +
                 std::to_string(cfg.remap_period) +
                 (cfg.shared_pages ? " shared" : "") +
                 (direct_mapped ? " direct-mapped" : ""));

    const RunMetrics ref =
        run_with_engine(w, cfg, EngineKind::kTick, direct_mapped);
    const RunMetrics fast =
        run_with_engine(w, cfg, EngineKind::kFast, direct_mapped);
    const RunMetrics event =
        run_with_engine(w, cfg, EngineKind::kEvent, direct_mapped);

    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(fast));
    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(event));

    // The streaming trace axis: the same workload served by TraceCursors
    // instead of materialized vectors (identical sequences by
    // construction — trace/trace_cursor.h) must land on the reference
    // fingerprint under every engine.
    const Workload sw = workloads::make_streaming_workload(threads, wopts);
    for (const EngineKind engine :
         {EngineKind::kTick, EngineKind::kFast, EngineKind::kEvent}) {
      const RunMetrics streamed = run_with_engine(sw, cfg, engine, direct_mapped);
      EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(streamed))
          << "streaming source diverged under " << to_string(engine);
    }
    EXPECT_EQ(ref.skipped_ticks, 0u);
    EXPECT_EQ(ref.idle_ticks, fast.idle_ticks);
    EXPECT_EQ(ref.idle_ticks, event.idle_ticks);
    EXPECT_LE(fast.skipped_ticks, fast.idle_ticks);
    EXPECT_LE(event.skipped_ticks, event.idle_ticks);
    total_skipped += fast.skipped_ticks + event.skipped_ticks;

    // The arbiter axis: the map/scan reference structures and the
    // cross-checked shadow wrapper must land on the same fingerprint as
    // the production bucketed structures (DESIGN.md §3d).
    SimConfig ref_arb_cfg = cfg;
    ref_arb_cfg.arbiter_impl = ArbiterImpl::kReference;
    const RunMetrics ref_arb =
        run_with_engine(w, ref_arb_cfg, EngineKind::kTick, direct_mapped);
    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(ref_arb));
    SimConfig shadow_cfg = cfg;
    shadow_cfg.arbiter_impl = ArbiterImpl::kShadow;
    const RunMetrics shadow =
        run_with_engine(w, shadow_cfg, EngineKind::kFast, direct_mapped);
    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(shadow));
    // The shadow arbiter forces the event engine onto its portable layer
    // (the dense gate requires the production arbiter): a third engine ×
    // arbiter combination for the price of one run.
    const RunMetrics event_shadow =
        run_with_engine(w, shadow_cfg, EngineKind::kEvent, direct_mapped);
    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(event_shadow));
  }
  // The grid must actually exercise the fast path, not vacuously agree.
  EXPECT_GT(total_skipped, 0u);
}

TEST(EngineDifferential, StepInterleavingAgreesAtEventBoundaries) {
  // Drive the fast engine step by step; after each step, march the
  // reference engine to the same tick and compare the externally visible
  // state: thread_state() for every core, queue depth, and the running
  // metric counters. This pins not just end-of-run totals but the entire
  // trajectory at event boundaries.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kZipf;
  wopts.num_pages = 48;
  wopts.length = 250;
  wopts.zipf_s = 0.9;
  wopts.seed = 21;
  const std::size_t threads = 4;
  const Workload w = workloads::make_synthetic_workload(threads, wopts);

  SimConfig cfg = SimConfig::dynamic_priority(/*k=*/16, /*t_mult=*/2.0,
                                              /*q=*/2, /*seed=*/5);
  cfg.fetch_ticks = 3;

  SimConfig tick_cfg = cfg;
  tick_cfg.engine = EngineKind::kTick;
  SimConfig fast_cfg = cfg;
  fast_cfg.engine = EngineKind::kFast;
  Simulator ref(w, tick_cfg);
  Simulator fast(w, fast_cfg);

  while (!fast.finished()) {
    ASSERT_TRUE(fast.step());
    while (ref.now() < fast.now()) {
      ASSERT_TRUE(ref.step());
    }
    ASSERT_EQ(ref.now(), fast.now());
    for (ThreadId t = 0; t < threads; ++t) {
      EXPECT_EQ(ref.thread_state(t), fast.thread_state(t))
          << "thread " << t << " diverged at tick " << ref.now();
    }
    EXPECT_EQ(ref.queue_size(), fast.queue_size());
    EXPECT_EQ(ref.metrics().total_refs, fast.metrics().total_refs);
    EXPECT_EQ(ref.metrics().hits, fast.metrics().hits);
    EXPECT_EQ(ref.metrics().misses, fast.metrics().misses);
    EXPECT_EQ(ref.metrics().fetches, fast.metrics().fetches);
    EXPECT_EQ(ref.metrics().idle_ticks, fast.metrics().idle_ticks);
  }
  EXPECT_TRUE(ref.finished());
  EXPECT_EQ(ref.metrics().makespan, fast.metrics().makespan);
  EXPECT_EQ(ref.metrics().response.count(), fast.metrics().response.count());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.metrics().response.mean()),
            std::bit_cast<std::uint64_t>(fast.metrics().response.mean()));
  EXPECT_GT(fast.metrics().skipped_ticks, 0u);
}

TEST(EngineDifferential, MidRunStepsThenRunMatchesFullRun) {
  // step()-ing a fast-engine simulator a few times and then finishing
  // with run() must land on exactly the full-run fingerprint.
  workloads::SyntheticOptions wopts;
  wopts.num_pages = 64;
  wopts.length = 300;
  wopts.seed = 3;
  const Workload w = workloads::make_synthetic_workload(3, wopts);
  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/2);
  cfg.fetch_ticks = 5;
  cfg.engine = EngineKind::kFast;

  const RunMetrics whole = simulate(w, cfg);
  Simulator stepped(w, cfg);
  for (int i = 0; i < 10 && !stepped.finished(); ++i) {
    stepped.step();
  }
  const RunMetrics resumed = stepped.run();
  EXPECT_EQ(engine_fingerprint(whole), engine_fingerprint(resumed));
  EXPECT_EQ(whole.skipped_ticks, resumed.skipped_ticks);
  EXPECT_GT(whole.skipped_ticks, 0u);
}

TEST(EngineRegistry, RowsAreCompleteAndSelfConsistent) {
  const auto rows = engine_registry();
  ASSERT_EQ(rows.size(), 4u);  // tick, fast, event + the kAuto pseudo-entry
  EXPECT_EQ(rows.back().kind, EngineKind::kAuto);
  for (const EngineCaps& row : rows) {
    EXPECT_EQ(row.name, to_string(row.kind));
    EXPECT_EQ(&engine_caps(row.kind), &row);
    if (row.kind != EngineKind::kAuto) {
      // Every concrete name must round-trip through the parser.
      EXPECT_EQ(parse_engine(row.name), row.kind);
    }
  }
  // The capability axes validation queries.
  EXPECT_FALSE(engine_caps(EngineKind::kFast).supports_open_system);
  EXPECT_TRUE(engine_caps(EngineKind::kTick).supports_open_system);
  EXPECT_TRUE(engine_caps(EngineKind::kEvent).supports_open_system);
}

TEST(EngineRegistry, ValidationConsultsCapabilities) {
  SimConfig open = SimConfig::fifo(8, 1);
  open.open_system = true;
  open.engine = EngineKind::kFast;
  const std::string message = engine_validation_error(open);
  EXPECT_NE(message.find("open_system"), std::string::npos);
  EXPECT_NE(message.find("--engine list"), std::string::npos);
  open.engine = EngineKind::kEvent;
  EXPECT_TRUE(engine_validation_error(open).empty());
  open.engine = EngineKind::kAuto;  // resolution, not validation, decides
  EXPECT_TRUE(engine_validation_error(open).empty());
}

TEST(EngineDifferential, AutoResolvesWhereBatchingCanHelp) {
  workloads::SyntheticOptions wopts;
  wopts.num_pages = 16;
  wopts.length = 50;
  wopts.seed = 1;

  // fetch_ticks > 1 → idle spans (and dense backlogs) are possible →
  // the event engine.
  SimConfig latent = SimConfig::fifo(8, 1);
  latent.fetch_ticks = 4;
  latent.engine = EngineKind::kAuto;
  EXPECT_EQ(Simulator(workloads::make_synthetic_workload(4, wopts), latent)
                .engine(),
            EngineKind::kEvent);

  // Single thread → hit runs are batchable → the event engine.
  SimConfig single = SimConfig::fifo(8, 1);
  single.engine = EngineKind::kAuto;
  EXPECT_EQ(Simulator(workloads::make_synthetic_workload(1, wopts), single)
                .engine(),
            EngineKind::kEvent);

  // Unit latency, multiple threads: no skippable tick can exist (a
  // non-empty queue fetches every tick and arrivals land the next),
  // so auto keeps the reference engine.
  SimConfig plain = SimConfig::fifo(8, 1);
  plain.engine = EngineKind::kAuto;
  EXPECT_EQ(Simulator(workloads::make_synthetic_workload(4, wopts), plain)
                .engine(),
            EngineKind::kTick);

  // Explicit requests always win over the heuristic.
  SimConfig forced = SimConfig::fifo(8, 1);
  forced.engine = EngineKind::kFast;
  EXPECT_EQ(Simulator(workloads::make_synthetic_workload(4, wopts), forced)
                .engine(),
            EngineKind::kFast);
}

TEST(EngineDifferential, EventStepInterleavingAgreesAtTickBoundaries) {
  // The event-engine analogue of the trajectory pin above, on a config
  // the dense backlog layer admits: while dense, thread_state() and
  // queue_size() are answered from the SoA mirror without exporting, and
  // must agree with the reference at every executed tick boundary.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kZipf;
  wopts.num_pages = 48;
  wopts.length = 250;
  wopts.zipf_s = 0.9;
  wopts.seed = 33;
  const std::size_t threads = 4;
  const Workload w = workloads::make_synthetic_workload(threads, wopts);

  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/2);
  cfg.fetch_ticks = 3;

  SimConfig tick_cfg = cfg;
  tick_cfg.engine = EngineKind::kTick;
  SimConfig event_cfg = cfg;
  event_cfg.engine = EngineKind::kEvent;
  Simulator ref(w, tick_cfg);
  Simulator event(w, event_cfg);

  while (!event.finished()) {
    ASSERT_TRUE(event.step());
    while (ref.now() < event.now()) {
      ASSERT_TRUE(ref.step());
    }
    ASSERT_EQ(ref.now(), event.now());
    for (ThreadId t = 0; t < threads; ++t) {
      EXPECT_EQ(ref.thread_state(t), event.thread_state(t))
          << "thread " << t << " diverged at tick " << ref.now();
    }
    EXPECT_EQ(ref.queue_size(), event.queue_size());
    EXPECT_EQ(ref.metrics().total_refs, event.metrics().total_refs);
    EXPECT_EQ(ref.metrics().hits, event.metrics().hits);
    EXPECT_EQ(ref.metrics().misses, event.metrics().misses);
    EXPECT_EQ(ref.metrics().fetches, event.metrics().fetches);
    EXPECT_EQ(ref.metrics().idle_ticks, event.metrics().idle_ticks);
  }
  EXPECT_TRUE(ref.finished());
  EXPECT_EQ(ref.metrics().makespan, event.metrics().makespan);
  EXPECT_EQ(ref.metrics().response.count(), event.metrics().response.count());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.metrics().response.mean()),
            std::bit_cast<std::uint64_t>(event.metrics().response.mean()));
}

TEST(EngineDifferential, DenseBacklogStaysDenseAndMatchesReference) {
  // A saturated channel backlog — the regime the dense layer exists for.
  // Drive a standalone EventEngine so dense_active() is observable: the
  // dense layer must carry the run from tick 0 to the finishing tick
  // boundary (where export_state() hands back a consistent Simulator),
  // and finalize() must land on the reference fingerprint.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kUniform;
  wopts.num_pages = 512;  // >> k: essentially every reference misses
  wopts.length = 200;
  wopts.seed = 7;
  const Workload w = workloads::make_synthetic_workload(8, wopts);

  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/2);
  cfg.fetch_ticks = 4;
  cfg.engine = EngineKind::kTick;  // the sim's own engine stays unused

  Simulator sim(w, cfg);
  EventEngine ev(sim);
  ASSERT_TRUE(ev.dense_active());
  while (!sim.finished()) {
    ASSERT_TRUE(ev.step());
    if (!sim.finished()) {
      EXPECT_TRUE(ev.dense_active());
    }
  }
  // The finishing step exported the dense state back into the Simulator.
  EXPECT_FALSE(ev.dense_active());
  RunMetrics dense = sim.metrics();
  ev.finalize(dense);

  const RunMetrics ref = run_with_engine(w, cfg, EngineKind::kTick, false);
  EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(dense));
  EXPECT_GT(dense.misses, 0u);
  EXPECT_GT(dense.evictions, 0u);
}

TEST(EngineDifferential, DenseDeDensifiesOnSlotOverflowAndStaysExact) {
  // A single thread streaming distinct pages accumulates resident pages
  // it never touches again; at kSlots the dense layer must bail out at a
  // tick boundary — before mutating anything — and the portable layer
  // must finish the run bit-identically.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kStream;
  wopts.num_pages = 32;
  wopts.length = 32;
  wopts.stream_passes = 1;
  wopts.seed = 3;
  const Workload w = workloads::make_synthetic_workload(1, wopts);

  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/1);
  cfg.fetch_ticks = 2;
  cfg.engine = EngineKind::kTick;

  Simulator sim(w, cfg);
  EventEngine ev(sim);
  ASSERT_TRUE(ev.dense_active());
  bool dedensified = false;
  while (!sim.finished()) {
    ASSERT_TRUE(ev.step());
    if (!ev.dense_active() && !sim.finished()) {
      dedensified = true;
    }
  }
  EXPECT_TRUE(dedensified);
  RunMetrics got = sim.metrics();
  ev.finalize(got);

  const RunMetrics ref = run_with_engine(w, cfg, EngineKind::kTick, false);
  EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(got));
}

TEST(EngineDifferential, DenseTruncationExportsConsistentState) {
  // max_ticks truncation mid-backlog: the dense layer must halt exactly
  // at the boundary, export, and leave metrics identical to a truncated
  // reference run.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kUniform;
  wopts.num_pages = 256;
  wopts.length = 400;
  wopts.seed = 11;
  const Workload w = workloads::make_synthetic_workload(8, wopts);

  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/2);
  cfg.fetch_ticks = 4;
  cfg.max_ticks = 100;

  const RunMetrics ref = run_with_engine(w, cfg, EngineKind::kTick, false);
  const RunMetrics event = run_with_engine(w, cfg, EngineKind::kEvent, false);
  ASSERT_TRUE(ref.truncated);
  EXPECT_TRUE(event.truncated);
  EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(event));
}

TEST(EngineDifferential, DenseHitHeavyRunsMatchUnderBothReplacements) {
  // Hot working set inside k: the dense layer serves hits through the
  // per-thread slot index and (LRU only) touches the mirror list. Both
  // replacement mirrors must reproduce the reference bit-for-bit.
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kZipf;
  wopts.num_pages = 12;
  wopts.length = 300;
  wopts.zipf_s = 1.2;
  wopts.seed = 5;
  const Workload w = workloads::make_synthetic_workload(4, wopts);

  for (const ReplacementKind repl :
       {ReplacementKind::kLru, ReplacementKind::kFifo}) {
    SimConfig cfg = SimConfig::fifo(/*k=*/64, /*q=*/2);
    cfg.fetch_ticks = 2;
    cfg.replacement = repl;
    SCOPED_TRACE(to_string(repl));
    const RunMetrics ref = run_with_engine(w, cfg, EngineKind::kTick, false);
    const RunMetrics event = run_with_engine(w, cfg, EngineKind::kEvent, false);
    EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(event));
    EXPECT_GT(ref.hits, 0u);
  }
}

TEST(EngineDifferential, ParanoidEventRunMatchesReference) {
  // paranoid forces the dense gate shut; the event engine's portable
  // layer must run under the full invariant audit (including the
  // fast-forward span audits) and still match the reference.
  if (!check::checks_enabled()) {
    GTEST_SKIP() << "paranoid runs need a checked build";
  }
  workloads::SyntheticOptions wopts;
  wopts.kind = workloads::SyntheticKind::kZipf;
  wopts.num_pages = 48;
  wopts.length = 200;
  wopts.zipf_s = 0.9;
  wopts.seed = 17;
  const Workload w = workloads::make_synthetic_workload(4, wopts);

  SimConfig cfg = SimConfig::fifo(/*k=*/16, /*q=*/2);
  cfg.fetch_ticks = 3;
  cfg.paranoid = true;
  const RunMetrics ref = run_with_engine(w, cfg, EngineKind::kTick, false);
  const RunMetrics event = run_with_engine(w, cfg, EngineKind::kEvent, false);
  EXPECT_EQ(engine_fingerprint(ref), engine_fingerprint(event));
}

TEST(EngineDifferential, TickEngineNeverSkips) {
  workloads::SyntheticOptions wopts;
  wopts.num_pages = 64;
  wopts.length = 200;
  wopts.seed = 9;
  const Workload w = workloads::make_synthetic_workload(2, wopts);
  SimConfig cfg = SimConfig::fifo(8, 2);
  cfg.fetch_ticks = 6;
  cfg.engine = EngineKind::kTick;
  const RunMetrics m = simulate(w, cfg);
  EXPECT_EQ(m.skipped_ticks, 0u);
  EXPECT_GT(m.idle_ticks, 0u);  // the regime has idle time; tick counts it
}

}  // namespace
}  // namespace hbmsim
