// Unit tests for the ArgParser used by the command-line drivers.
#include <gtest/gtest.h>

#include "util/args.h"
#include "util/error.h"

namespace hbmsim {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, KeyValueSpaceForm) {
  const ArgParser a = parse({"--threads", "16", "--policy", "fifo"});
  EXPECT_EQ(a.get_int("threads", 0), 16);
  EXPECT_EQ(a.get("policy", ""), "fifo");
}

TEST(ArgParser, KeyValueEqualsForm) {
  const ArgParser a = parse({"--threads=32", "--t-mult=2.5"});
  EXPECT_EQ(a.get_int("threads", 0), 32);
  EXPECT_DOUBLE_EQ(a.get_double("t-mult", 0.0), 2.5);
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const ArgParser a = parse({});
  EXPECT_EQ(a.get_int("threads", 7), 7);
  EXPECT_EQ(a.get("policy", "priority"), "priority");
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(a.get_flag("verbose"));
  EXPECT_FALSE(a.has("anything"));
}

TEST(ArgParser, BooleanFlags) {
  const ArgParser a = parse({"--shared-pages", "--csv=true", "--quiet", "--k", "9"});
  EXPECT_TRUE(a.get_flag("shared-pages"));
  EXPECT_TRUE(a.get_flag("csv"));
  EXPECT_TRUE(a.get_flag("quiet"));
  EXPECT_EQ(a.get_int("k", 0), 9);
}

TEST(ArgParser, FlagFollowedByOptionIsBoolean) {
  const ArgParser a = parse({"--verbose", "--threads", "4"});
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_EQ(a.get_int("threads", 0), 4);
}

TEST(ArgParser, PositionalArguments) {
  const ArgParser a = parse({"run", "--k", "4", "input.trace"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "run");
  EXPECT_EQ(a.positional()[1], "input.trace");
}

TEST(ArgParser, DoubleDashEndsOptions) {
  const ArgParser a = parse({"--k", "4", "--", "--not-an-option"});
  EXPECT_EQ(a.get_int("k", 0), 4);
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "--not-an-option");
}

TEST(ArgParser, BadIntegerThrows) {
  const ArgParser a = parse({"--threads", "abc"});
  EXPECT_THROW((void)a.get_int("threads", 0), ConfigError);
}

TEST(ArgParser, BadDoubleThrows) {
  const ArgParser a = parse({"--t-mult", "1.5x"});
  EXPECT_THROW((void)a.get_double("t-mult", 0.0), ConfigError);
}

TEST(ArgParser, RejectUnknownCatchesTypos) {
  const ArgParser a = parse({"--thread", "4"});
  (void)a.get_int("threads", 0);  // the real option name
  EXPECT_THROW(a.reject_unknown(), ConfigError);
}

TEST(ArgParser, RejectUnknownPassesWhenAllUsed) {
  const ArgParser a = parse({"--threads", "4", "--verbose"});
  (void)a.get_int("threads", 0);
  (void)a.get_flag("verbose");
  EXPECT_NO_THROW(a.reject_unknown());
}

}  // namespace
}  // namespace hbmsim
