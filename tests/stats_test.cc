// Unit tests for stats/: streaming statistics and the log histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.h"
#include "stats/streaming.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  // Classic example: mean 5, population variance 4.
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(StreamingStats, MatchesTwoPassComputation) {
  Xoshiro256StarStar rng(17);
  std::vector<double> xs(10000);
  StreamingStats s;
  for (auto& x : xs) {
    x = rng.uniform_double() * 1000.0;
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Xoshiro256StarStar rng(18);
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform_double() * 100.0 - 50.0;
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  a.add(3.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  StreamingStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(StreamingStats, StableOnLongSkewedStream) {
  // Welford must not lose precision on the kind of stream Priority
  // produces: millions of 1s with occasional huge outliers.
  StreamingStats s;
  for (int i = 0; i < 1'000'000; ++i) {
    s.add(1.0);
  }
  s.add(1e9);
  EXPECT_GT(s.stddev(), 0.0);
  EXPECT_NEAR(s.mean(), (1e6 + 1e9) / 1000001.0, 1.0);
}

TEST(LogHistogram, BucketsArePowersOfTwo) {
  LogHistogram h;
  h.add(1);    // bucket 0
  h.add(2);    // bucket 1
  h.add(3);    // bucket 1
  h.add(4);    // bucket 2
  h.add(1023); // bucket 9
  h.add(1024); // bucket 10
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.max_bucket(), 10);
}

TEST(LogHistogram, ZeroGoesToBucketZero) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(LogHistogram, QuantileOnUniformStream) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) {
    h.add(v);
  }
  // Median of 1..1024 is ~512; log buckets give a coarse estimate.
  const double median = h.quantile(0.5);
  EXPECT_GT(median, 256.0);
  EXPECT_LT(median, 1024.0);
  // The 0-quantile resolves to the low edge of the first non-empty
  // bucket (bucket 0 spans [0, 2)).
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.0), 2.0);
}

TEST(LogHistogram, QuantileEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.max_bucket(), -1);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a;
  LogHistogram b;
  a.add(1);
  b.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket_count(0), 2u);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(7, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket_count(2), 10u);
}

// Regression: an all-hits run (every response exactly 1 tick) must report
// p99 == 1.0 exactly. The old interpolation walked past the bucket's
// value range and reported ~1.98.
TEST(LogHistogram, AllHitsTailQuantilesAreExactlyOne) {
  LogHistogram h;
  for (int i = 0; i < 100'000; ++i) {
    h.add(1);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

// Any single repeated value is reported exactly at every quantile, even
// when it sits mid-bucket.
TEST(LogHistogram, SingleValueDistributionIsExact) {
  LogHistogram h;
  h.add(37, 1000);  // bucket 5 spans [32, 64)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 37.0);
}

// Regression: quantile(1.0) used to return the *next* bucket's lower
// edge; it must be the maximum observed value. quantile(0.0) is the
// minimum observed value.
TEST(LogHistogram, QuantileEdgesAreObservedExtremes) {
  LogHistogram h;
  h.add(3);
  h.add(100);
  h.add(700);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 700.0);
}

// Interpolation never leaves the containing bucket's observed range; in
// particular the old fallback that returned 2^63 is gone.
TEST(LogHistogram, QuantileStaysWithinObservedRange) {
  LogHistogram h;
  h.add(5, 3);
  h.add(6, 3);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 6.0);
  }
}

TEST(LogHistogram, MergeCombinesObservedRanges) {
  LogHistogram a;
  LogHistogram b;
  a.add(40);   // bucket 5: [32, 64)
  b.add(33);   // bucket 5 too, lower value
  b.add(63);   // bucket 5, upper value
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket_min(5), 33u);
  EXPECT_EQ(a.bucket_max(5), 63u);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 33.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 63.0);

  // Merging into an empty histogram adopts the source ranges verbatim.
  LogHistogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.total(), 3u);
  EXPECT_EQ(empty.bucket_min(5), 33u);
  EXPECT_EQ(empty.bucket_max(5), 63u);

  // Merging an empty histogram is a no-op.
  LogHistogram none;
  a.merge(none);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket_min(5), 33u);
}

TEST(LogHistogram, MaxBucketTracksHighestNonEmpty) {
  LogHistogram h;
  EXPECT_EQ(h.max_bucket(), -1);
  h.add(1);
  EXPECT_EQ(h.max_bucket(), 0);
  h.add(1'000'000);  // bucket 19: [2^19, 2^20)
  EXPECT_EQ(h.max_bucket(), 19);
  h.add(512);
  EXPECT_EQ(h.max_bucket(), 19);
}

// Weighted adds accumulate mass without smearing values across bucket
// boundaries: 1023 and 1024 land in adjacent buckets and keep their
// exact observed ranges.
TEST(LogHistogram, WeightedAddNearBucketBoundary) {
  LogHistogram h;
  h.add(1023, 50);  // bucket 9: [512, 1024)
  h.add(1024, 50);  // bucket 10: [1024, 2048)
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket_count(9), 50u);
  EXPECT_EQ(h.bucket_count(10), 50u);
  EXPECT_EQ(h.bucket_min(9), 1023u);
  EXPECT_EQ(h.bucket_max(9), 1023u);
  EXPECT_EQ(h.bucket_min(10), 1024u);
  EXPECT_EQ(h.bucket_max(10), 1024u);
  // The halfway quantile sits at the boundary between the two point
  // masses; both sides are exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1023.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 1024.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
}

// Zero-weight adds are ignored entirely — they must not create
// phantom observed-range entries.
TEST(LogHistogram, ZeroWeightAddIsIgnored) {
  LogHistogram h;
  h.add(999, 0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_bucket(), -1);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

}  // namespace
}  // namespace hbmsim
