// Tests for the invariant-checking layer (src/check/): the ShadowedCache
// decorator, the free audit functions, and the SimConfig::paranoid hook.
//
// The audit machinery is always compiled (check/check.h), so the positive
// and negative cases below run in every build type; only the tests that
// need a live paranoid Simulator branch on check::checks_enabled().
// Each negative test corrupts a model deliberately and asserts that the
// exact invariant fires as InvariantError.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "assoc/direct_mapped.h"
#include "check/check.h"
#include "check/invariant_checker.h"
#include "check/shadow_arbiter.h"
#include "check/shadow_cache.h"
#include "core/hbm_cache.h"
#include "core/simulator.h"
#include "util/error.h"
#include "workloads/adversarial.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

using check::InvariantChecker;
using check::ShadowedCache;
using check::ShadowPolicy;

std::unique_ptr<ShadowedCache> shadowed_lru(std::uint64_t k) {
  return std::make_unique<ShadowedCache>(
      std::make_unique<HbmCache>(k, ReplacementKind::kLru), ShadowPolicy::kLru);
}

// --- ShadowedCache: correct models pass --------------------------------

TEST(ShadowedCache, LruWorkloadPassesAllChecks) {
  const auto cache = shadowed_lru(3);
  EXPECT_EQ(cache->insert(10), std::nullopt);
  EXPECT_EQ(cache->insert(11), std::nullopt);
  EXPECT_EQ(cache->insert(12), std::nullopt);
  cache->touch(10);  // 10 is now most recent; LRU victim is 11
  EXPECT_EQ(cache->insert(13), std::optional<GlobalPage>{11});
  EXPECT_TRUE(cache->contains(10));
  EXPECT_FALSE(cache->contains(11));
  EXPECT_EQ(cache->size(), 3u);
  EXPECT_EQ(cache->evictions(), 1u);
}

TEST(ShadowedCache, FifoWorkloadPassesAllChecks) {
  ShadowedCache cache(std::make_unique<HbmCache>(2, ReplacementKind::kFifo),
                      ShadowPolicy::kFifo);
  EXPECT_EQ(cache.insert(1), std::nullopt);
  EXPECT_EQ(cache.insert(2), std::nullopt);
  cache.touch(1);  // FIFO ignores recency: victim stays 1
  EXPECT_EQ(cache.insert(3), std::optional<GlobalPage>{1});
}

TEST(ShadowedCache, DirectMappedConflictEvictionBelowCapacityIsLegal) {
  // kModulo: pages 0 and 8 collide in slot 0 of an 8-slot cache.
  auto inner = std::make_unique<assoc::DirectMappedCache>(
      8, assoc::SlotHash::kModulo);
  ShadowedCache cache(std::move(inner), ShadowPolicy::kDirectMapped);
  EXPECT_EQ(cache.insert(0), std::nullopt);
  EXPECT_EQ(cache.insert(8), std::optional<GlobalPage>{0});  // size 1 < 8
  EXPECT_NO_THROW(check::audit_cache_structure(cache.inner()));
}

TEST(ShadowedCache, AdoptsAWarmedUpInnerModel) {
  auto inner = std::make_unique<HbmCache>(4, ReplacementKind::kLru);
  inner->insert(7);
  inner->insert(8);
  ShadowedCache cache(std::move(inner), ShadowPolicy::kLru);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(7));
  EXPECT_EQ(cache.insert(9), std::nullopt);
}

// --- ShadowedCache: deliberately corrupted models are caught -----------

TEST(ShadowedCacheNegative, DoubleFetchIsCaught) {
  const auto cache = shadowed_lru(4);
  cache->insert(5);
  EXPECT_THROW(cache->insert(5), InvariantError);  // step-5 double fetch
}

TEST(ShadowedCacheNegative, ServingANonResidentPageIsCaught) {
  const auto cache = shadowed_lru(4);
  cache->insert(1);
  EXPECT_THROW(cache->touch(2), InvariantError);  // step-4 violation
}

TEST(ShadowedCacheNegative, WrongVictimViolatesTheLruStackProperty) {
  // A FIFO cache audited under the LRU law: after touch(0) the LRU shadow
  // expects victim 1, but FIFO still evicts 0.
  ShadowedCache cache(std::make_unique<HbmCache>(3, ReplacementKind::kFifo),
                      ShadowPolicy::kLru);
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  cache.touch(0);
  EXPECT_THROW(cache.insert(3), InvariantError);
}

/// A residency model with switchable bugs, for negative tests.
class BrokenCache final : public CacheModel {
 public:
  explicit BrokenCache(std::uint64_t capacity) : capacity_(capacity) {}

  bool lie_in_contains = false;     ///< deny residency of resident pages
  bool swallow_evictions = false;   ///< grow past capacity, report no victim
  bool duplicate_residents = false; ///< report a page in two slots

  [[nodiscard]] bool contains(GlobalPage page) const override {
    if (lie_in_contains) {
      return false;
    }
    for (const GlobalPage p : pages_) {
      if (p == page) {
        return true;
      }
    }
    return false;
  }

  void touch(GlobalPage) override {}

  std::optional<GlobalPage> insert(GlobalPage page) override {
    if (!swallow_evictions && pages_.size() >= capacity_) {
      const GlobalPage victim = pages_.front();
      pages_.erase(pages_.begin());
      pages_.push_back(page);
      return victim;
    }
    pages_.push_back(page);
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const override { return pages_.size(); }
  [[nodiscard]] std::uint64_t capacity() const override { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const override { return 0; }
  [[nodiscard]] std::vector<GlobalPage> resident_pages() const override {
    std::vector<GlobalPage> out = pages_;
    if (duplicate_residents && !out.empty()) {
      out.back() = out.front();
    }
    return out;
  }

 private:
  std::uint64_t capacity_;
  std::vector<GlobalPage> pages_;
};

TEST(ShadowedCacheNegative, OverOccupancyIsCaught) {
  auto broken = std::make_unique<BrokenCache>(2);
  broken->swallow_evictions = true;
  ShadowedCache cache(std::move(broken), ShadowPolicy::kMembershipOnly);
  cache.insert(1);
  cache.insert(2);
  // Third insert at full capacity evicts nothing: occupancy passes k.
  EXPECT_THROW(cache.insert(3), InvariantError);
}

TEST(ShadowedCacheNegative, LyingContainsIsCaught) {
  auto broken = std::make_unique<BrokenCache>(4);
  BrokenCache* handle = broken.get();
  ShadowedCache cache(std::move(broken), ShadowPolicy::kMembershipOnly);
  cache.insert(1);
  handle->lie_in_contains = true;
  EXPECT_THROW((void)cache.contains(1), InvariantError);
}

// --- Free audit functions ----------------------------------------------

TEST(AuditCacheStructure, AcceptsHealthyModels) {
  HbmCache healthy(4, ReplacementKind::kLru);
  healthy.insert(1);
  healthy.insert(2);
  EXPECT_NO_THROW(check::audit_cache_structure(healthy));

  assoc::DirectMappedCache dm(8);
  dm.insert(3);
  dm.insert(4);
  EXPECT_NO_THROW(check::audit_cache_structure(dm));
}

TEST(AuditCacheStructure, DoubleResidencyIsCaught) {
  BrokenCache broken(4);
  broken.insert(1);
  broken.insert(2);
  broken.duplicate_residents = true;  // page 1 now reported in two slots
  EXPECT_THROW(check::audit_cache_structure(broken), InvariantError);
}

TEST(AuditCacheStructure, ResidentPageFailingContainsIsCaught) {
  BrokenCache broken(4);
  broken.insert(1);
  broken.lie_in_contains = true;
  EXPECT_THROW(check::audit_cache_structure(broken), InvariantError);
}

TEST(AuditQueueOrder, AcceptsCanonicalOrder) {
  const std::vector<QueuedRequest> entries = {
      {10, 0, 0}, {11, 2, 0}, {12, 1, 3}, {13, 4, 3}};
  EXPECT_NO_THROW(check::audit_queue_order(entries));
  EXPECT_NO_THROW(check::audit_queue_order({}));
}

TEST(AuditQueueOrder, SameTickMissesOutOfCoreIdOrderAreCaught) {
  // Tick step 2: same-tick misses must enter in core-id order.
  const std::vector<QueuedRequest> entries = {{10, 2, 5}, {11, 1, 5}};
  EXPECT_THROW(check::audit_queue_order(entries), InvariantError);
}

TEST(AuditQueueOrder, NonMonotoneArrivalTicksAreCaught) {
  const std::vector<QueuedRequest> entries = {{10, 0, 7}, {11, 1, 4}};
  EXPECT_THROW(check::audit_queue_order(entries), InvariantError);
}

// --- shadow_policy_for dispatch ----------------------------------------

TEST(ShadowPolicyFor, MatchesTheModelUnderAudit) {
  const HbmCache lru(4, ReplacementKind::kLru);
  const HbmCache fifo(4, ReplacementKind::kFifo);
  const HbmCache clock(4, ReplacementKind::kClock);
  const assoc::DirectMappedCache dm(4);
  const BrokenCache custom(4);
  EXPECT_EQ(check::shadow_policy_for(lru), ShadowPolicy::kLru);
  EXPECT_EQ(check::shadow_policy_for(fifo), ShadowPolicy::kFifo);
  EXPECT_EQ(check::shadow_policy_for(clock), ShadowPolicy::kMembershipOnly);
  EXPECT_EQ(check::shadow_policy_for(dm), ShadowPolicy::kDirectMapped);
  EXPECT_EQ(check::shadow_policy_for(custom), ShadowPolicy::kMembershipOnly);
}

// --- audit_fast_forward: legality of fast-engine jumps -----------------
//
// The fast engine may jump tick_ over a span only when the span provably
// contains no event (DESIGN.md §3c). audit_fast_forward is the free,
// always-compiled form of the check the paranoid InvariantChecker runs on
// every jump; the negative cases below model exactly the bugs a broken
// fast path would introduce.

TEST(AuditFastForward, AcceptsProvablyIdleSpans) {
  // Plain span up to the next arrival.
  EXPECT_NO_THROW(check::audit_fast_forward(/*from=*/5, /*to=*/9,
                                            /*next_serve_tick=*/9,
                                            /*remap_period=*/0,
                                            /*runnable_cores=*/0,
                                            /*queued_requests=*/0));
  // Stopping short of the arrival is legal too (e.g. at a remap boundary).
  EXPECT_NO_THROW(check::audit_fast_forward(5, 8, 20, /*remap_period=*/8, 0, 0));
  // Landing exactly on the boundary is the required behaviour.
  EXPECT_NO_THROW(check::audit_fast_forward(9, 16, 100, /*remap_period=*/8, 0, 0));
}

TEST(AuditFastForward, JumpPastTheNextArrivalIsCaught) {
  // A broken fast path that overshoots serve_tick would silently delay a
  // transfer's arrival — the checker must fire.
  EXPECT_THROW(check::audit_fast_forward(5, 12, /*next_serve_tick=*/9, 0, 0, 0),
               InvariantError);
}

TEST(AuditFastForward, JumpOverARemapBoundaryIsCaught) {
  // Next boundary after tick 5 with T=8 is tick 8; jumping to 17 would
  // skip the remap (and its RNG draw) entirely.
  EXPECT_THROW(check::audit_fast_forward(5, 17, 30, /*remap_period=*/8, 0, 0),
               InvariantError);
}

TEST(AuditFastForward, JumpFromARemapBoundaryIsCaught) {
  // tick 16 with T=8 must execute the remap, not be skipped over.
  EXPECT_THROW(check::audit_fast_forward(16, 20, 30, /*remap_period=*/8, 0, 0),
               InvariantError);
}

TEST(AuditFastForward, RunnableWorkForbidsSkipping) {
  EXPECT_THROW(check::audit_fast_forward(5, 9, 9, 0, /*runnable_cores=*/1, 0),
               InvariantError);
  EXPECT_THROW(check::audit_fast_forward(5, 9, 9, 0, 0, /*queued_requests=*/2),
               InvariantError);
}

TEST(AuditFastForward, NoTransferInFlightIsCaught) {
  // With nothing in flight the span is a deadlock, not idle time.
  EXPECT_THROW(check::audit_fast_forward(5, 9, std::nullopt, 0, 0, 0),
               InvariantError);
}

TEST(AuditFastForward, NonAdvancingJumpIsCaught) {
  EXPECT_THROW(check::audit_fast_forward(5, 5, 9, 0, 0, 0), InvariantError);
  EXPECT_THROW(check::audit_fast_forward(5, 3, 9, 0, 0, 0), InvariantError);
}

// --- SimConfig::paranoid wiring ----------------------------------------

Workload small_workload() {
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kZipf;
  opts.num_pages = 64;
  opts.length = 400;
  opts.seed = 42;
  return workloads::make_synthetic_workload(4, opts);
}

TEST(Paranoid, HonouredInCheckedBuildsRejectedElsewhere) {
  SimConfig config = SimConfig::fifo(/*k=*/32, /*q=*/2);
  config.paranoid = true;
  if (check::checks_enabled()) {
    // The audit is a pure observer: metrics are bit-identical to a
    // plain run, and the whole run passes under audit.
    SimConfig plain = config;
    plain.paranoid = false;
    const RunMetrics audited = simulate(small_workload(), config);
    const RunMetrics bare = simulate(small_workload(), plain);
    EXPECT_EQ(audited.makespan, bare.makespan);
    EXPECT_EQ(audited.hits, bare.hits);
    EXPECT_EQ(audited.misses, bare.misses);
    EXPECT_EQ(audited.fetches, bare.fetches);
    EXPECT_EQ(audited.evictions, bare.evictions);
    EXPECT_EQ(audited.response.count(), bare.response.count());
    EXPECT_DOUBLE_EQ(audited.response.mean(), bare.response.mean());
  } else {
    // Compile-out proof: a non-checked build cannot honour paranoid and
    // must say so instead of silently skipping the audit.
    EXPECT_THROW(Simulator(small_workload(), config), ConfigError);
  }
}

TEST(Paranoid, AuditedConfigurationsCoverTheExtensions) {
  if (!check::checks_enabled()) {
    GTEST_SKIP() << "paranoid runs need a checked build";
  }
  // Shared pages + multi-tick transfers + priority remapping: the
  // configurations with the trickiest bookkeeping all pass under audit.
  SimConfig config = SimConfig::dynamic_priority(/*k=*/32, /*t_mult=*/2.0,
                                                 /*q=*/2, /*seed=*/7);
  config.shared_pages = true;
  config.fetch_ticks = 3;
  config.paranoid = true;
  const RunMetrics m = simulate(small_workload(), config);
  EXPECT_GT(m.makespan, 0u);
}

TEST(Paranoid, FastEngineFig2StyleRunsCleanUnderAudit) {
  if (!check::checks_enabled()) {
    GTEST_SKIP() << "paranoid runs need a checked build";
  }
  // Fig-2 regime (priority arbitration over a contended working set) with
  // long transfers so the fast engine genuinely fast-forwards; every
  // jump passes through InvariantChecker::on_fast_forward, every batched
  // hit tick through after_tick. The audited fast run must be
  // bit-identical to a plain reference tick run.
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kUniform;
  opts.num_pages = 96;
  opts.length = 500;
  opts.seed = 13;
  const Workload w = workloads::make_synthetic_workload(2, opts);

  SimConfig fast = SimConfig::priority(/*k=*/32, /*q=*/2);
  fast.fetch_ticks = 4;
  fast.engine = EngineKind::kFast;
  fast.paranoid = true;
  SimConfig reference = fast;
  reference.engine = EngineKind::kTick;
  reference.paranoid = false;

  const RunMetrics audited = simulate(w, fast);
  const RunMetrics bare = simulate(w, reference);
  EXPECT_GT(audited.skipped_ticks, 0u);
  EXPECT_EQ(audited.makespan, bare.makespan);
  EXPECT_EQ(audited.hits, bare.hits);
  EXPECT_EQ(audited.misses, bare.misses);
  EXPECT_EQ(audited.idle_ticks, bare.idle_ticks);
  EXPECT_EQ(audited.response.count(), bare.response.count());
  EXPECT_DOUBLE_EQ(audited.response.mean(), bare.response.mean());
}

TEST(Paranoid, FastEngineFig3StyleRunsCleanUnderAudit) {
  if (!check::checks_enabled()) {
    GTEST_SKIP() << "paranoid runs need a checked build";
  }
  // Fig-3 regime: the adversarial cyclic workload (every reference a
  // miss) behind a long far channel, under dynamic priority remapping —
  // fast-forward must stop at every remap boundary, on time, every time.
  const Workload w = workloads::make_adversarial_workload(
      4, {.unique_pages = 64, .repetitions = 5});
  SimConfig config = SimConfig::dynamic_priority(/*k=*/32, /*t_mult=*/2.0,
                                                 /*q=*/2, /*seed=*/3);
  config.fetch_ticks = 6;
  config.engine = EngineKind::kFast;
  config.paranoid = true;
  const RunMetrics m = simulate(w, config);
  EXPECT_EQ(m.total_refs, w.total_refs());
  EXPECT_EQ(m.response.count(), m.total_refs);
  EXPECT_GT(m.remaps, 0u);
}

TEST(Paranoid, DchecksMatchChecksEnabled) {
  if (check::checks_enabled()) {
    EXPECT_THROW(HBMSIM_DCHECK(false, "must fire in checked builds"),
                 InvariantError);
  } else {
    EXPECT_NO_THROW(HBMSIM_DCHECK(false, "must be compiled out"));
  }
  // HBMSIM_INVARIANT is always live — it is the audit machinery itself.
  EXPECT_THROW(HBMSIM_INVARIANT(false, "always fires"), InvariantError);
  EXPECT_NO_THROW(HBMSIM_INVARIANT(true, "never fires"));
}

TEST(Paranoid, InvariantErrorMessagesCarryContext) {
  try {
    HBMSIM_INVARIANT(1 == 2, check::make_context("k=", 16, " q=", 2));
    FAIL() << "HBMSIM_INVARIANT(false) must throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant violation"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("k=16 q=2"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

// --- ShadowedArbiter: the bucketed queues against their reference spec --

TEST(ShadowedArbiter, AgreeingImplementationsPassEveryCheck) {
  PriorityMap pm(8, RemapScheme::kDynamic, 3);
  check::ShadowedArbiter shadowed(
      ArbitrationPolicy::make(ArbitrationKind::kPriority, &pm, 3, 1, 4, 8),
      check::make_reference_arbiter(ArbitrationKind::kPriority, &pm, 3));
  for (ThreadId t = 0; t < 8; ++t) {
    shadowed.enqueue(QueuedRequest{make_global_page(t, 0), t, t});
  }
  pm.remap();
  shadowed.on_priorities_changed();
  std::size_t popped = 0;
  while (shadowed.pop(0)) {
    ++popped;  // every pop cross-checked against the reference
  }
  EXPECT_EQ(popped, 8u);
}

namespace {
/// Deliberately wrong "FIFO": pops newest-first. Sizes and snapshots
/// agree with the reference, so only the pop cross-check can see it.
class LifoImpostor final : public ArbitrationPolicy {
 public:
  void enqueue(const QueuedRequest& request) override {
    stack_.push_back(request);
  }
  std::optional<QueuedRequest> pop(std::uint32_t) override {
    if (stack_.empty()) {
      return std::nullopt;
    }
    const QueuedRequest r = stack_.back();
    stack_.pop_back();
    return r;
  }
  [[nodiscard]] std::size_t size() const override { return stack_.size(); }
  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return stack_;
  }

 private:
  std::vector<QueuedRequest> stack_;
};

/// Drops every other request: the size cross-check must fire on enqueue.
class LossyArbiter final : public ArbitrationPolicy {
 public:
  void enqueue(const QueuedRequest& request) override {
    if (keep_ = !keep_; keep_) {
      queue_.push_back(request);
    }
  }
  std::optional<QueuedRequest> pop(std::uint32_t) override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const QueuedRequest r = queue_.front();
    queue_.erase(queue_.begin());
    return r;
  }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] std::vector<QueuedRequest> snapshot() const override {
    return queue_;
  }

 private:
  std::vector<QueuedRequest> queue_;
  bool keep_ = true;  // flipped before use: the FIRST request is dropped
};
}  // namespace

TEST(ShadowedArbiterNegative, WrongPopOrderIsCaught) {
  check::ShadowedArbiter shadowed(
      std::make_unique<LifoImpostor>(),
      check::make_reference_arbiter(ArbitrationKind::kFifo, nullptr, 1));
  shadowed.enqueue(QueuedRequest{make_global_page(0, 0), 0, 0});
  shadowed.enqueue(QueuedRequest{make_global_page(1, 0), 1, 1});
  EXPECT_THROW((void)shadowed.pop(0), InvariantError)
      << "LIFO pop against the FIFO spec must diverge on the first pop";
}

TEST(ShadowedArbiterNegative, DroppedRequestIsCaughtAtEnqueue) {
  check::ShadowedArbiter shadowed(
      std::make_unique<LossyArbiter>(),
      check::make_reference_arbiter(ArbitrationKind::kFifo, nullptr, 1));
  EXPECT_THROW(
      shadowed.enqueue(QueuedRequest{make_global_page(0, 0), 0, 0}),
      InvariantError)
      << "a dropped request shows up as a size mismatch immediately";
}

TEST(ShadowedArbiter, SimulatorShadowModeMatchesFastInAnyBuild) {
  // arbiter_impl = kShadow works in Release too (HBMSIM_INVARIANT is
  // always compiled) — unlike paranoid, which needs a checked build.
  const Workload w = small_workload();
  SimConfig fast = SimConfig::priority(/*k=*/24, /*q=*/2);
  SimConfig shadowed = fast;
  shadowed.arbiter_impl = ArbiterImpl::kShadow;
  const RunMetrics a = simulate(w, fast);
  const RunMetrics b = simulate(w, shadowed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
}

TEST(ShadowedArbiter, ReferenceImplMatchesFastEndToEnd) {
  // Running the whole simulation on the reference structures must be
  // bit-identical to the production structures.
  const Workload w = small_workload();
  for (const ArbitrationKind kind :
       {ArbitrationKind::kFifo, ArbitrationKind::kPriority,
        ArbitrationKind::kRandom, ArbitrationKind::kFrFcfs}) {
    SimConfig fast = SimConfig::fifo(/*k=*/24, /*q=*/2);
    fast.arbitration = kind;
    SimConfig reference = fast;
    reference.arbiter_impl = ArbiterImpl::kReference;
    const RunMetrics a = simulate(w, fast);
    const RunMetrics b = simulate(w, reference);
    EXPECT_EQ(a.makespan, b.makespan) << to_string(kind);
    EXPECT_EQ(a.hits, b.hits) << to_string(kind);
    EXPECT_EQ(a.misses, b.misses) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean()) << to_string(kind);
  }
}

}  // namespace
}  // namespace hbmsim
