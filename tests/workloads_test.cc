// Unit tests for the workload generators: instrumented sorts (Dataset 1),
// SpGEMM (Dataset 2), the adversarial FIFO-killer (Dataset 3), dense MM,
// and the synthetic families.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workloads/adversarial.h"
#include "workloads/dense_mm.h"
#include "workloads/sort_trace.h"
#include "workloads/sparse_matrix.h"
#include "workloads/spgemm.h"
#include "workloads/synthetic.h"

namespace hbmsim::workloads {
namespace {

// --- Dataset 1: sorting --------------------------------------------------

class SortAlgoTest : public ::testing::TestWithParam<SortAlgo> {};

TEST_P(SortAlgoTest, ProducesNonTrivialTrace) {
  SortTraceOptions opts;
  opts.num_elements = 4096;
  opts.algo = GetParam();
  opts.seed = 5;
  const Trace t = make_sort_trace(opts);
  // 4096 int32 = 4 data pages (+4 aux for mergesort); n log n accesses.
  EXPECT_GE(t.num_pages(), 4u);
  EXPECT_LE(t.num_pages(), 16u);
  EXPECT_GT(t.size(), opts.num_elements) << "sorting touches each element repeatedly";
}

TEST_P(SortAlgoTest, DeterministicPerSeed) {
  SortTraceOptions opts;
  opts.num_elements = 1024;
  opts.algo = GetParam();
  opts.seed = 9;
  EXPECT_EQ(make_sort_trace(opts), make_sort_trace(opts));
  opts.seed = 10;
  // Different input permutation → (almost surely) different access trace,
  // except for mergesort whose merge pattern is data-dependent too.
  const Trace other = make_sort_trace(opts);
  EXPECT_GT(other.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Algos, SortAlgoTest,
                         ::testing::Values(SortAlgo::kMergeSort,
                                           SortAlgo::kQuickSort,
                                           SortAlgo::kStdSort,
                                           SortAlgo::kStdStableSort),
                         [](const auto& inf) {
                           switch (inf.param) {
                             case SortAlgo::kMergeSort: return "mergesort";
                             case SortAlgo::kQuickSort: return "quicksort";
                             case SortAlgo::kStdSort: return "std_sort";
                             case SortAlgo::kStdStableSort: return "std_stable_sort";
                           }
                           return "unknown";
                         });

TEST(SortTrace, MergesortTouchesAuxiliaryPages) {
  SortTraceOptions merge;
  merge.num_elements = 8192;
  merge.algo = SortAlgo::kMergeSort;
  SortTraceOptions quick = merge;
  quick.algo = SortAlgo::kQuickSort;
  // Mergesort uses a second, page-disjoint buffer: about twice the pages.
  EXPECT_GT(make_sort_trace(merge).num_pages(),
            make_sort_trace(quick).num_pages());
}

TEST(SortTrace, TinyInputsWork) {
  for (const auto algo : {SortAlgo::kMergeSort, SortAlgo::kQuickSort}) {
    SortTraceOptions opts;
    opts.num_elements = 2;
    opts.algo = algo;
    EXPECT_GT(make_sort_trace(opts).size(), 0u);
    opts.num_elements = 17;  // around the insertion-sort cutoff
    EXPECT_GT(make_sort_trace(opts).size(), 0u);
  }
}

TEST(SortTrace, WorkloadPoolsDistinctSeeds) {
  SortTraceOptions opts;
  opts.num_elements = 512;
  const Workload w = make_sort_workload(6, opts, /*distinct=*/3);
  EXPECT_EQ(w.num_threads(), 6u);
  EXPECT_EQ(&w.trace(0), &w.trace(3)) << "round-robin reuses the pool";
  EXPECT_NE(w.trace(0), w.trace(1)) << "different seeds → different traces";
}

// --- Dataset 2: SpGEMM ---------------------------------------------------

TEST(SparseMatrix, RandomCsrIsValidAndHitsDensity) {
  const CsrMatrix m = random_csr(200, 200, 0.1, 42);
  m.validate();
  const double density =
      static_cast<double>(m.nnz()) / (200.0 * 200.0);
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(SparseMatrix, ZeroDensityGivesEmptyMatrix) {
  const CsrMatrix m = random_csr(10, 10, 0.0, 1);
  m.validate();
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseMatrix, FullDensityGivesDenseMatrix) {
  const CsrMatrix m = random_csr(8, 8, 1.0, 1);
  m.validate();
  EXPECT_EQ(m.nnz(), 64u);
}

TEST(SparseMatrix, ReferenceMultiplyMatchesDenseComputation) {
  const CsrMatrix a = random_csr(30, 40, 0.2, 7);
  const CsrMatrix b = random_csr(40, 25, 0.2, 8);
  const CsrMatrix c = multiply_reference(a, b);
  c.validate();
  const auto da = a.to_dense();
  const auto db = b.to_dense();
  const auto dc = c.to_dense();
  for (std::uint32_t i = 0; i < 30; ++i) {
    for (std::uint32_t j = 0; j < 25; ++j) {
      double expect = 0.0;
      for (std::uint32_t k = 0; k < 40; ++k) {
        expect += da[i * 40 + k] * db[k * 25 + j];
      }
      ASSERT_NEAR(dc[i * 25 + j], expect, 1e-9);
    }
  }
}

TEST(Spgemm, TracedKernelComputesTheRightProduct) {
  const CsrMatrix a = random_csr(50, 50, 0.15, 3);
  const CsrMatrix b = random_csr(50, 50, 0.15, 4);
  const SpgemmRun run = run_traced_spgemm(a, b);
  run.product.validate();
  EXPECT_LT(max_abs_diff(run.product, multiply_reference(a, b)), 1e-9);
  EXPECT_GT(run.trace.size(), a.nnz() + b.nnz()) << "trace covers all operands";
}

TEST(Spgemm, TraceIsDeterministic) {
  SpgemmOptions opts;
  opts.rows = 40;
  opts.cols = 40;
  opts.seed = 11;
  EXPECT_EQ(make_spgemm_trace(opts), make_spgemm_trace(opts));
}

TEST(Spgemm, RectangularShapesWork) {
  const CsrMatrix a = random_csr(20, 60, 0.1, 1);
  const CsrMatrix b = random_csr(60, 15, 0.1, 2);
  const SpgemmRun run = run_traced_spgemm(a, b);
  EXPECT_EQ(run.product.rows, 20u);
  EXPECT_EQ(run.product.cols, 15u);
  EXPECT_LT(max_abs_diff(run.product, multiply_reference(a, b)), 1e-9);
}

TEST(Spgemm, WorkloadBuildsRequestedThreads) {
  SpgemmOptions opts;
  opts.rows = 30;
  opts.cols = 30;
  const Workload w = make_spgemm_workload(5, opts, 2);
  EXPECT_EQ(w.num_threads(), 5u);
  EXPECT_EQ(w.name(), "spgemm");
  EXPECT_NE(w.trace(0), w.trace(1));
  EXPECT_EQ(&w.trace(0), &w.trace(2));
}

// --- Dense MM -------------------------------------------------------------

TEST(DenseMm, TraceCoversThreeMatrices) {
  DenseMmOptions opts;
  opts.n = 32;  // 32×32 doubles = 8 KiB per matrix = 2 pages each
  const Trace t = make_dense_mm_trace(opts);
  EXPECT_GE(t.num_pages(), 6u);
  EXPECT_EQ(t.size(),
            // i-k-j loop: per (i,k): 1 read of A + n (B read + C update)·2
            static_cast<std::size_t>(32) * 32 * (1 + 2 * 32));
}

TEST(DenseMm, BlockedVariantTouchesSamePagesDifferentOrder) {
  DenseMmOptions naive;
  naive.n = 24;
  DenseMmOptions blocked = naive;
  blocked.blocked = true;
  blocked.block = 8;
  const Trace a = make_dense_mm_trace(naive);
  const Trace b = make_dense_mm_trace(blocked);
  EXPECT_EQ(a.num_pages(), b.num_pages());
  // Tiling re-reads A once per j-tile, so the blocked trace is slightly
  // longer, and the access order is different.
  EXPECT_GT(b.size(), a.size());
  EXPECT_LT(b.size(), a.size() + a.size() / 8);
}

TEST(DenseMm, WorkloadFactory) {
  DenseMmOptions opts;
  opts.n = 16;
  const Workload w = make_dense_mm_workload(3, opts, 2);
  EXPECT_EQ(w.num_threads(), 3u);
}

// --- Dataset 3: adversarial ------------------------------------------------

TEST(Adversarial, CyclicTraceHasExactStructure) {
  const Trace t = make_cyclic_trace({.unique_pages = 256, .repetitions = 100});
  EXPECT_EQ(t.size(), 25'600u);
  EXPECT_EQ(t.num_pages(), 256u);
  EXPECT_EQ(t.unique_pages(), 256u);
  // Every window of 256 refs enumerates 0..255 in order.
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(t[i], i % 256);
  }
}

TEST(Adversarial, HbmSizingMatchesPaperFraction) {
  const AdversarialOptions opts{.unique_pages = 256, .repetitions = 100};
  // ¼ of all unique pages across 8 threads: 8·256/4 = 512.
  EXPECT_EQ(adversarial_hbm_slots(8, opts, 0.25), 512u);
  EXPECT_EQ(adversarial_hbm_slots(1, opts, 1.0), 256u);
  EXPECT_GE(adversarial_hbm_slots(1, opts, 1e-9), 1u) << "clamped to 1";
}

TEST(Adversarial, WorkloadSharesTheTrace) {
  const Workload w = make_adversarial_workload(16, {.unique_pages = 8, .repetitions = 2});
  EXPECT_EQ(w.num_threads(), 16u);
  EXPECT_EQ(&w.trace(0), &w.trace(15));
}

// --- Synthetic --------------------------------------------------------------

TEST(Synthetic, UniformCoversSupport) {
  const Trace t = make_uniform_trace(16, 5000, 1);
  EXPECT_EQ(t.num_pages(), 16u);
  EXPECT_EQ(t.unique_pages(), 16u);
}

TEST(Synthetic, ZipfIsSkewed) {
  const Trace t = make_zipf_trace(1000, 20'000, 1.1, 2);
  std::size_t low = 0;
  for (const LocalPage p : t.refs()) {
    low += p < 10 ? 1 : 0;
  }
  EXPECT_GT(low, t.size() / 5);
}

TEST(Synthetic, StreamIsSequential) {
  const Trace t = make_stream_trace(5, 3);
  ASSERT_EQ(t.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(t[i], i % 5);
  }
}

TEST(Synthetic, StridedWrapsModulo) {
  const Trace t = make_strided_trace(10, 7, 3);
  const LocalPage expect[] = {0, 3, 6, 9, 2, 5, 8};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(t[i], expect[i]);
  }
}

TEST(Synthetic, WorkloadThreadsGetDistinctSeeds) {
  SyntheticOptions opts;
  opts.num_pages = 64;
  opts.length = 200;
  const Workload w = make_synthetic_workload(3, opts);
  EXPECT_NE(w.trace(0), w.trace(1));
  EXPECT_NE(w.trace(1), w.trace(2));
}

TEST(Synthetic, ImbalancedRampsLinearly) {
  SyntheticOptions opts;
  opts.num_pages = 8;
  opts.length = 1000;
  const Workload w = make_imbalanced_workload(5, opts, 0.2);
  EXPECT_EQ(w.trace(0).size(), 200u);
  EXPECT_EQ(w.trace(4).size(), 1000u);
  EXPECT_LT(w.trace(1).size(), w.trace(3).size());
}

TEST(Synthetic, ImbalancedSingleThreadGetsFullLength) {
  SyntheticOptions opts;
  opts.length = 500;
  const Workload w = make_imbalanced_workload(1, opts, 0.1);
  EXPECT_EQ(w.trace(0).size(), 500u);
}

}  // namespace
}  // namespace hbmsim::workloads
