// Integration tests: end-to-end, cross-module checks that reproduce the
// paper's qualitative results at miniature scale.
//
//  * Figure 3 — FIFO catastrophically loses on the cyclic adversarial
//    workload, by a factor that grows with thread count.
//  * Figures 4/5 — Dynamic Priority keeps (or beats) Priority's makespan
//    while slashing its inconsistency; FIFO has the lowest inconsistency
//    and the worst mean response time (Table 1's ordering).
//  * Corollary 1 — direct-mapped HBM with constant augmentation stays
//    within a constant factor of fully-associative makespan.
//  * Trace capture → file → reload → simulate is lossless.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "assoc/direct_mapped.h"
#include "core/simulator.h"
#include "exp/sweep.h"
#include "trace/trace_io.h"
#include "workloads/adversarial.h"
#include "workloads/sort_trace.h"
#include "workloads/spgemm.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

Workload mini_sort_workload(std::size_t p) {
  workloads::SortTraceOptions opts;
  opts.num_elements = 4096;
  opts.seed = 3;
  return workloads::make_sort_workload(p, opts, /*distinct=*/4);
}

Workload mini_spgemm_workload(std::size_t p) {
  workloads::SpgemmOptions opts;
  opts.rows = 80;
  opts.cols = 80;
  opts.density = 0.1;
  opts.seed = 5;
  return workloads::make_spgemm_workload(p, opts, /*distinct=*/4);
}

// --- Figure 3 -------------------------------------------------------------

TEST(Integration, Figure3FifoLosesBadlyOnAdversarialTrace) {
  // FIFO makespan ≈ p·U·R (every reference misses); Priority runs the
  // top k/U threads hit-mostly in waves, giving ≈ 4·U·R + p·U, so the
  // ratio grows ≈ linearly in p as p·R/(4R + p).
  const workloads::AdversarialOptions opts{.unique_pages = 64, .repetitions = 25};
  double prev_ratio = 1.0;
  for (const std::size_t p : {8, 16, 32}) {
    const Workload w = workloads::make_adversarial_workload(p, opts);
    const std::uint64_t k = workloads::adversarial_hbm_slots(p, opts, 0.25);
    const RunMetrics fifo = simulate(w, SimConfig::fifo(k));
    const RunMetrics prio = simulate(w, SimConfig::priority(k));
    const double ratio = static_cast<double>(fifo.makespan) /
                         static_cast<double>(prio.makespan);
    EXPECT_GT(ratio, 1.3) << "p=" << p;
    EXPECT_GT(ratio, prev_ratio * 1.2)
        << "the gap must widen roughly linearly with p (p=" << p << ")";
    prev_ratio = ratio;

    // Mechanism check (§4): FIFO almost never hits — pages are evicted
    // before their reuse — while Priority protects the top threads'
    // working sets (lower-priority threads still stream misses while
    // they wait, so the aggregate hit rate sits well below 1).
    EXPECT_LT(fifo.hit_rate(), 0.05) << "p=" << p;
    EXPECT_GT(prio.hit_rate(), 0.25) << "p=" << p;
    EXPECT_GT(prio.hit_rate(), 10 * fifo.hit_rate()) << "p=" << p;
  }
}

// --- Figures 4/5 and Table 1 ------------------------------------------------

struct PolicyOutcomes {
  RunMetrics fifo;
  RunMetrics priority;
  RunMetrics dynamic;
};

PolicyOutcomes run_three(const Workload& w, std::uint64_t k) {
  PolicyOutcomes o;
  o.fifo = simulate(w, SimConfig::fifo(k));
  o.priority = simulate(w, SimConfig::priority(k));
  o.dynamic = simulate(w, SimConfig::dynamic_priority(k, /*t_mult=*/10.0));
  return o;
}

TEST(Integration, DynamicPriorityCutsInconsistencyKeepsMakespan) {
  const Workload w = mini_sort_workload(16);
  const PolicyOutcomes o = run_three(w, /*k=*/24);

  // Figure 5's ordering: Priority has (by far) the highest inconsistency,
  // FIFO the lowest; Dynamic Priority sits well below Priority.
  EXPECT_GT(o.priority.inconsistency(), o.dynamic.inconsistency());
  EXPECT_GT(o.priority.inconsistency(), 2.0 * o.fifo.inconsistency());

  // Figure 4: Dynamic Priority's makespan is competitive with the best of
  // FIFO and Priority (generous slack — this is a miniature workload).
  const double best = static_cast<double>(
      std::min(o.fifo.makespan, o.priority.makespan));
  EXPECT_LT(static_cast<double>(o.dynamic.makespan), 1.3 * best);
}

TEST(Integration, Table1ResponseTimeOrdering) {
  const Workload w = mini_spgemm_workload(16);
  const PolicyOutcomes o = run_three(w, /*k=*/32);
  // Table 1: FIFO has the highest mean response time, Priority the
  // lowest, Dynamic Priority between them.
  EXPECT_LT(o.priority.mean_response(), o.fifo.mean_response());
  EXPECT_LE(o.priority.mean_response(), o.dynamic.mean_response() + 1e-9);
  EXPECT_LE(o.dynamic.mean_response(), o.fifo.mean_response() + 1e-9);
}

TEST(Integration, ShorterRemapPeriodLowersInconsistency) {
  // Figure 5's x-axis: as T shrinks, inconsistency falls (monotone-ish;
  // we compare the two extremes with a healthy gap).
  const Workload w = mini_sort_workload(12);
  const std::uint64_t k = 24;
  const RunMetrics frequent = simulate(w, SimConfig::dynamic_priority(k, 1.0));
  const RunMetrics rare = simulate(w, SimConfig::dynamic_priority(k, 100.0));
  EXPECT_LT(frequent.inconsistency(), rare.inconsistency());
}

TEST(Integration, CyclePriorityBehavesLikeDynamicOnBalancedWork) {
  // §4: "For balanced workloads Cycle Priority also performs similarly to
  // Dynamic Priority."
  const Workload w = mini_sort_workload(12);
  const std::uint64_t k = 24;
  const RunMetrics dynamic = simulate(w, SimConfig::dynamic_priority(k, 10.0));
  const RunMetrics cycle = simulate(w, SimConfig::cycle_priority(k, 10.0));
  const double ratio = static_cast<double>(cycle.makespan) /
                       static_cast<double>(dynamic.makespan);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

// --- Corollary 1 -------------------------------------------------------------

TEST(Integration, DirectMappedWithAugmentationIsConstantCompetitive) {
  const Workload w = mini_sort_workload(8);
  const std::uint64_t k = 32;
  const RunMetrics assoc_run = simulate(w, SimConfig::priority(k));

  SimConfig dm_cfg = SimConfig::priority(2 * k);
  Simulator dm_sim(w, dm_cfg,
                   std::make_unique<assoc::DirectMappedCache>(
                       2 * k, assoc::SlotHash::kUniversal, 7));
  const RunMetrics dm_run = dm_sim.run();

  EXPECT_EQ(dm_run.total_refs, assoc_run.total_refs);
  const double ratio = static_cast<double>(dm_run.makespan) /
                       static_cast<double>(assoc_run.makespan);
  EXPECT_LT(ratio, 3.0) << "2x-augmented direct-mapped must stay O(1)-competitive";
}

TEST(Integration, ModuloMappedCacheSuffersOnStridedConflicts) {
  // The lemma's hashing assumption matters: an un-hashed (modulo) direct
  // map can be much worse than the hashed one under conflicting strides.
  auto strided = std::make_shared<Trace>(workloads::make_strided_trace(
      /*num_pages=*/256, /*length=*/4000, /*stride=*/64));
  const Workload w = Workload::replicate(strided, 4);
  SimConfig cfg = SimConfig::fifo(64);

  Simulator hashed(w, cfg,
                   std::make_unique<assoc::DirectMappedCache>(
                       64, assoc::SlotHash::kUniversal, 3));
  Simulator modulo(w, cfg,
                   std::make_unique<assoc::DirectMappedCache>(
                       64, assoc::SlotHash::kModulo));
  const RunMetrics h = hashed.run();
  const RunMetrics m = modulo.run();
  // Stride 64 mod 64 = 0: all pages of a thread collide in one modulo
  // slot, so the modulo cache hits (almost) never.
  EXPECT_GT(h.hit_rate(), m.hit_rate());
}

// --- Capture → serialize → simulate ------------------------------------------

TEST(Integration, TraceFileRoundTripPreservesSimulation) {
  const auto dir =
      std::filesystem::temp_directory_path() / "hbmsim_integration";
  std::filesystem::create_directories(dir);

  workloads::SpgemmOptions opts;
  opts.rows = 60;
  opts.cols = 60;
  const Trace original = workloads::make_spgemm_trace(opts);
  save_trace(original, dir / "spgemm.btrace");
  const Trace reloaded = load_trace(dir / "spgemm.btrace");
  ASSERT_EQ(original, reloaded);

  const Workload w1 = Workload::replicate(std::make_shared<Trace>(original), 4);
  const Workload w2 = Workload::replicate(std::make_shared<Trace>(reloaded), 4);
  const RunMetrics a = simulate(w1, SimConfig::priority(64));
  const RunMetrics b = simulate(w2, SimConfig::priority(64));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.hits, b.hits);

  std::filesystem::remove_all(dir);
}

// --- Channel-count extension (Theorem 3 sanity) ------------------------------

TEST(Integration, MoreChannelsNeverHurtMuchAndEventuallyHelp) {
  const Workload w = mini_spgemm_workload(12);
  const std::uint64_t k = 48;
  const RunMetrics q1 = simulate(w, SimConfig::priority(k, 1));
  const RunMetrics q4 = simulate(w, SimConfig::priority(k, 4));
  // With 12 threads contending, 4 channels must help substantially.
  EXPECT_LT(q4.makespan, q1.makespan);
  EXPECT_LT(static_cast<double>(q4.makespan),
            0.8 * static_cast<double>(q1.makespan));
}

}  // namespace
}  // namespace hbmsim
