// Tests for the closed-form performance model (opt/predictor) and the
// multi-fidelity sweep modes built on it (exp/sweep.h):
//
//  - the error-bound suite: model-vs-simulator relative error pinned
//    across a 128-config grid spanning arbitration policies × channel
//    counts × fetch latencies × HBM capacities (= miss-ratio regimes),
//    with a separate, looser pin for the priority family where staged
//    completion makes the symmetric-share model a conservative upper
//    bound (DESIGN.md §9);
//  - the degenerate-input contract: zero refs / capacity / channels
//    yield NaN internally and render as JSON null and CSV "n/a" — never
//    "inf" or "nan" — end to end through the sweep JSONL writer;
//  - jobs-independence: a hybrid sweep selects the same simulated subset
//    and produces bit-identical metrics and extras at any --jobs level;
//  - tune_adaptive_thresholds invariants.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "opt/predictor/predictor.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

Workload workload(workloads::SyntheticKind kind, std::size_t threads) {
  workloads::SyntheticOptions opts;
  opts.kind = kind;
  opts.num_pages = 128;
  opts.length = 2000;
  opts.zipf_s = 0.9;
  opts.seed = 7;
  return workloads::make_synthetic_workload(threads, opts);
}

double rel_error(double model, double sim) {
  return std::abs(model - sim) / sim;
}

// --- Error-bound suite -------------------------------------------------

TEST(PredictorErrorBounds, GridStaysWithinPinnedTolerance) {
  // Pinned tolerances. The model is arbitration-blind, so for the
  // order-insensitive policies (FIFO, Random, FR-FCFS) it tracks the
  // simulator closely; static Priority lets high-rank threads finish
  // early and release shared LRU capacity, a feedback the symmetric
  // model cannot see, so its predictions are a conservative upper bound
  // with a wider band (DESIGN.md §9 "validity region").
  constexpr double kMakespanTol = 0.25;
  constexpr double kMeanResponseTol = 0.40;
  constexpr double kMakespanTolPriority = 0.90;
  constexpr double kMeanResponseTolPriority = 1.60;

  struct PolicyCase {
    const char* name;
    ArbitrationKind kind;
  };
  const std::vector<PolicyCase> policies = {
      {"fifo", ArbitrationKind::kFifo},
      {"priority", ArbitrationKind::kPriority},
      {"random", ArbitrationKind::kRandom},
      {"fr-fcfs", ArbitrationKind::kFrFcfs},
  };
  const std::vector<workloads::SyntheticKind> kinds = {
      workloads::SyntheticKind::kZipf, workloads::SyntheticKind::kUniform};
  const std::vector<std::uint64_t> capacities = {32, 64, 128, 256};
  const std::vector<std::uint32_t> channels = {1, 2};
  const std::vector<std::uint32_t> fetches = {1, 4};

  std::size_t evaluated = 0;
  double worst_makespan = 0.0, worst_mean = 0.0;          // order-insensitive
  double worst_makespan_prio = 0.0, worst_mean_prio = 0.0;
  for (const auto kind : kinds) {
    const Workload w = workload(kind, 8);
    const opt::WorkloadSummary summary = opt::WorkloadSummary::summarize(w);
    for (const auto k : capacities) {
      for (const auto q : channels) {
        for (const auto fetch : fetches) {
          for (const auto& policy : policies) {
            SimConfig config = policy.kind == ArbitrationKind::kPriority
                                   ? SimConfig::priority(k, q)
                                   : SimConfig::fifo(k, q);
            config.arbitration = policy.kind;
            config.fetch_ticks = fetch;
            SCOPED_TRACE(::testing::Message()
                         << policy.name << " k=" << k << " q=" << q
                         << " F=" << fetch << " kind=" << static_cast<int>(kind));

            const opt::Prediction pred = opt::predict(summary, config);
            ASSERT_TRUE(pred.valid());
            const RunMetrics metrics = simulate(w, config);
            ASSERT_GT(metrics.makespan, 0u);

            const double em = rel_error(pred.makespan,
                                        static_cast<double>(metrics.makespan));
            const double er =
                rel_error(pred.mean_response, metrics.mean_response());
            const bool prio = policy.kind == ArbitrationKind::kPriority;
            EXPECT_LE(em, prio ? kMakespanTolPriority : kMakespanTol);
            EXPECT_LE(er, prio ? kMeanResponseTolPriority : kMeanResponseTol);
            (prio ? worst_makespan_prio : worst_makespan) =
                std::max(prio ? worst_makespan_prio : worst_makespan, em);
            (prio ? worst_mean_prio : worst_mean) =
                std::max(prio ? worst_mean_prio : worst_mean, er);
            ++evaluated;
          }
        }
      }
    }
  }
  EXPECT_GE(evaluated, 64u) << "the error-bound grid shrank below spec";
  RecordProperty("worst_makespan_rel_error", worst_makespan);
  RecordProperty("worst_mean_response_rel_error", worst_mean);
  RecordProperty("worst_makespan_rel_error_priority", worst_makespan_prio);
  RecordProperty("worst_mean_response_rel_error_priority", worst_mean_prio);
}

// --- Degenerate inputs: null / "n/a", never inf ------------------------

void expect_all_null(const opt::Prediction& pred) {
  EXPECT_FALSE(pred.valid());
  const std::string json = opt::to_json(pred);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(Predictor, ZeroCapacityOrChannelsPredictsNullNotInf) {
  const Workload w = workload(workloads::SyntheticKind::kZipf, 4);
  const opt::WorkloadSummary summary = opt::WorkloadSummary::summarize(w);

  SimConfig no_capacity = SimConfig::fifo(64);
  no_capacity.hbm_slots = 0;  // division hazard: share = k/p
  expect_all_null(opt::predict(summary, no_capacity));

  SimConfig no_channels = SimConfig::fifo(64);
  no_channels.num_channels = 0;  // division hazard: M/q channel bound
  expect_all_null(opt::predict(summary, no_channels));
}

TEST(Predictor, EmptyWorkloadPredictsNullNotInf) {
  const Workload empty(std::vector<std::shared_ptr<const Trace>>{}, "empty");
  const opt::WorkloadSummary summary = opt::WorkloadSummary::summarize(empty);
  EXPECT_EQ(summary.total_refs, 0u);
  expect_all_null(opt::predict(summary, SimConfig::fifo(64)));
}

TEST(Predictor, ModelFidelityJsonlRendersNullForDegenerateConfig) {
  // End to end through the sweep writer: a model-fidelity sweep over a
  // zero-capacity config must emit JSON null inside the prediction
  // object, and no "inf"/"nan" anywhere in the line.
  SimConfig degenerate = SimConfig::fifo(64);
  degenerate.hbm_slots = 0;
  std::ostringstream jsonl;
  exp::RunnerOptions opts;
  opts.jsonl = &jsonl;
  const auto results = exp::SweepSpec("degenerate")
                           .workload(workload(workloads::SyntheticKind::kZipf, 2))
                           .config("no-capacity", degenerate)
                           .fidelity({exp::Fidelity::kModel})
                           .run(opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  const std::string line = jsonl.str();
  EXPECT_NE(line.find("\"fidelity\":\"model\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"makespan\":null"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
}

TEST(Predictor, CsvRendersNonFiniteAsNa) {
  EXPECT_EQ(exp::json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(exp::json_double(std::numeric_limits<double>::infinity()), "null");
  // A point with no recorded responses has NaN response statistics; the
  // flat CSV row must say "n/a", not print a non-finite literal.
  exp::PointResult empty;
  empty.label = "empty";
  empty.config = SimConfig::fifo(8);
  empty.ok = true;
  const std::string row = exp::to_csv_row(empty);
  EXPECT_NE(row.find("n/a"), std::string::npos) << row;
  EXPECT_EQ(row.find("inf"), std::string::npos) << row;
  EXPECT_EQ(row.find("nan"), std::string::npos) << row;
}

// --- Hybrid sweeps are jobs-independent --------------------------------

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t metrics_fingerprint(const RunMetrics& m) {
  std::uint64_t h = 0;
  h = mix64(h, m.makespan);
  h = mix64(h, m.hits);
  h = mix64(h, m.misses);
  h = mix64(h, m.requeues);
  h = mix64(h, m.response.count());
  h = mix64(h, std::bit_cast<std::uint64_t>(m.response.mean()));
  h = mix64(h, std::bit_cast<std::uint64_t>(m.response.max()));
  return h;
}

exp::SweepSpec hybrid_grid() {
  exp::SweepSpec spec("hybrid-identity");
  spec.workload([](std::size_t p) {
        return workload(workloads::SyntheticKind::kZipf, p);
      })
      .threads({4})
      .hbm_sizes({16, 24, 32, 48, 64, 96, 128, 192, 256, 320, 384, 448, 512,
                  640, 768, 1024})
      .config("fifo", [](std::uint64_t k) { return SimConfig::fifo(k); })
      .config("priority", [](std::uint64_t k) { return SimConfig::priority(k); });
  return spec;
}

TEST(HybridSweep, SimulatedSubsetAndResultsAreJobsIndependent) {
  const exp::SweepSpec spec = hybrid_grid();
  exp::FidelityOptions fopts;
  fopts.fidelity = exp::Fidelity::kHybrid;
  fopts.top_k = 4;
  fopts.audit = 4;

  exp::RunnerOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 4;
  const auto a = spec.run_fidelity(fopts, serial);
  const auto b = spec.run_fidelity(fopts, parallel);

  ASSERT_EQ(a.results.size(), 32u);
  ASSERT_EQ(a.results.size(), b.results.size());
  // Selection happens on the serial screening pass, so the simulated
  // subset is identical — not merely equivalent — across jobs levels.
  EXPECT_EQ(a.simulated, b.simulated);
  EXPECT_EQ(a.simulated.size(), fopts.top_k + fopts.audit);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predictions[i].makespan),
              std::bit_cast<std::uint64_t>(b.predictions[i].makespan));
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE(a.results[i].label);
    EXPECT_EQ(a.results[i].label, b.results[i].label);
    EXPECT_EQ(a.results[i].ok, b.results[i].ok);
    EXPECT_EQ(a.results[i].extra_json, b.results[i].extra_json);
    EXPECT_EQ(metrics_fingerprint(a.results[i].metrics),
              metrics_fingerprint(b.results[i].metrics));
  }
  // Simulated points carry the model-vs-sim audit; screened-out points
  // carry the prediction alone.
  for (const std::size_t i : a.simulated) {
    EXPECT_NE(a.results[i].extra_json.find("\"model_error\""),
              std::string::npos);
  }
  std::size_t model_only = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].extra_json.find("\"fidelity\":\"model\"") !=
        std::string::npos) {
      ++model_only;
    }
  }
  EXPECT_EQ(model_only, a.results.size() - a.simulated.size());
}

// --- Threshold tuning invariants ---------------------------------------

TEST(TuneAdaptiveThresholds, ContendedWorkloadYieldsOrderedBand) {
  const Workload w = workload(workloads::SyntheticKind::kZipf, 8);
  const opt::WorkloadSummary summary = opt::WorkloadSummary::summarize(w);
  const SimConfig config = SimConfig::fifo(/*k=*/64, /*q=*/2);
  const opt::AdaptiveThresholds t = opt::tune_adaptive_thresholds(summary, config);
  EXPECT_GE(t.high_depth, 2u * config.num_channels);
  EXPECT_GE(t.low_depth, config.num_channels);
  EXPECT_LE(t.low_depth, t.high_depth);
  // The high mark must stay reachable: a closed system queues at most
  // one outstanding miss per thread.
  EXPECT_LE(t.high_depth, summary.num_threads());
}

TEST(TuneAdaptiveThresholds, DegenerateInputFallsBackToDefaults) {
  const Workload empty(std::vector<std::shared_ptr<const Trace>>{}, "empty");
  const opt::WorkloadSummary summary = opt::WorkloadSummary::summarize(empty);
  const SimConfig config = SimConfig::fifo(/*k=*/64, /*q=*/3);
  const opt::AdaptiveThresholds t = opt::tune_adaptive_thresholds(summary, config);
  EXPECT_EQ(t.high_depth, 4u * config.num_channels);
  EXPECT_EQ(t.low_depth, config.num_channels);
}

}  // namespace
}  // namespace hbmsim
