// Unit tests for priority permutation schemes (Definition 1 + variants).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "core/priority_map.h"

namespace hbmsim {
namespace {

std::vector<std::uint32_t> pi_vector(const PriorityMap& m) {
  return {m.pi().begin(), m.pi().end()};
}

bool is_permutation_of_identity(const std::vector<std::uint32_t>& pi) {
  std::vector<std::uint32_t> sorted = pi;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) {
      return false;
    }
  }
  return true;
}

TEST(PriorityMap, StartsAsIdentity) {
  const PriorityMap m(5, RemapScheme::kDynamic, 1);
  for (ThreadId t = 0; t < 5; ++t) {
    EXPECT_EQ(m.priority_of(t), t);
  }
}

TEST(PriorityMap, NoneNeverChanges) {
  PriorityMap m(8, RemapScheme::kNone, 1);
  EXPECT_FALSE(m.remap());
  EXPECT_FALSE(m.remap());
  for (ThreadId t = 0; t < 8; ++t) {
    EXPECT_EQ(m.priority_of(t), t);
  }
}

TEST(PriorityMap, CycleRotatesByOne) {
  PriorityMap m(4, RemapScheme::kCycle, 1);
  EXPECT_TRUE(m.remap());
  // π'(i) = (π(i)+1) mod p: thread 0 → priority 1, ..., thread 3 → 0.
  EXPECT_EQ(m.priority_of(0), 1u);
  EXPECT_EQ(m.priority_of(1), 2u);
  EXPECT_EQ(m.priority_of(2), 3u);
  EXPECT_EQ(m.priority_of(3), 0u);
}

TEST(PriorityMap, CycleReturnsToIdentityAfterPRemaps) {
  PriorityMap m(6, RemapScheme::kCycle, 1);
  for (int i = 0; i < 6; ++i) {
    m.remap();
  }
  for (ThreadId t = 0; t < 6; ++t) {
    EXPECT_EQ(m.priority_of(t), t);
  }
}

TEST(PriorityMap, CycleGuaranteesEveryThreadTopsWithinPRemaps) {
  // The paper's response-time bound (p·T) relies on every thread becoming
  // highest priority within p permutations.
  PriorityMap m(7, RemapScheme::kCycle, 1);
  std::set<ThreadId> topped;
  for (int r = 0; r < 7; ++r) {
    for (ThreadId t = 0; t < 7; ++t) {
      if (m.priority_of(t) == 0) {
        topped.insert(t);
      }
    }
    m.remap();
  }
  EXPECT_EQ(topped.size(), 7u);
}

TEST(PriorityMap, CycleReverseUndoesCycle) {
  // cycle advances by +1 and cycle-reverse by -1, so applied to the same
  // identity start their priorities always sum to 2t (mod p).
  PriorityMap fwd(5, RemapScheme::kCycle, 1);
  fwd.remap();
  PriorityMap rev(5, RemapScheme::kCycleReverse, 1);
  rev.remap();
  for (ThreadId t = 0; t < 5; ++t) {
    EXPECT_EQ((fwd.priority_of(t) + rev.priority_of(t)) % 5, (2 * t) % 5);
  }
}

TEST(PriorityMap, DynamicProducesValidPermutations) {
  PriorityMap m(50, RemapScheme::kDynamic, 42);
  for (int r = 0; r < 20; ++r) {
    EXPECT_TRUE(m.remap());
    EXPECT_TRUE(is_permutation_of_identity(pi_vector(m)));
  }
}

TEST(PriorityMap, DynamicIsSeedDeterministic) {
  PriorityMap a(20, RemapScheme::kDynamic, 7);
  PriorityMap b(20, RemapScheme::kDynamic, 7);
  for (int r = 0; r < 5; ++r) {
    a.remap();
    b.remap();
    EXPECT_EQ(pi_vector(a), pi_vector(b));
  }
}

TEST(PriorityMap, DynamicDifferentSeedsDiffer) {
  PriorityMap a(20, RemapScheme::kDynamic, 7);
  PriorityMap b(20, RemapScheme::kDynamic, 8);
  a.remap();
  b.remap();
  EXPECT_NE(pi_vector(a), pi_vector(b));
}

TEST(PriorityMap, DynamicActuallyShuffles) {
  PriorityMap m(30, RemapScheme::kDynamic, 3);
  m.remap();
  std::vector<std::uint32_t> identity(30);
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_NE(pi_vector(m), identity);
}

TEST(PriorityMap, InterleaveIsAPermutation) {
  for (std::uint32_t p : {1u, 2u, 5u, 8u, 17u}) {
    PriorityMap m(p, RemapScheme::kInterleave, 1);
    m.remap();
    EXPECT_TRUE(is_permutation_of_identity(pi_vector(m))) << "p=" << p;
  }
}

TEST(PriorityMap, InterleaveRiffles) {
  PriorityMap m(6, RemapScheme::kInterleave, 1);
  m.remap();
  // half = 3: priorities 0,1,2 → 0,2,4 and 3,4,5 → 1,3,5.
  EXPECT_EQ(m.priority_of(0), 0u);
  EXPECT_EQ(m.priority_of(1), 2u);
  EXPECT_EQ(m.priority_of(2), 4u);
  EXPECT_EQ(m.priority_of(3), 1u);
  EXPECT_EQ(m.priority_of(4), 3u);
  EXPECT_EQ(m.priority_of(5), 5u);
}

TEST(PriorityMap, SingleThreadRemapsAreNoops) {
  for (const RemapScheme s :
       {RemapScheme::kDynamic, RemapScheme::kCycle, RemapScheme::kInterleave}) {
    PriorityMap m(1, s, 1);
    EXPECT_FALSE(m.remap());
    EXPECT_EQ(m.priority_of(0), 0u);
  }
}

TEST(PriorityMap, DynamicIsStatisticallyFair) {
  // Over many remaps, every thread should hold top priority about
  // equally often — the property that turns Priority's starvation into
  // Dynamic Priority's bounded unfairness.
  constexpr std::uint32_t kThreads = 8;
  constexpr int kRemaps = 8000;
  PriorityMap m(kThreads, RemapScheme::kDynamic, 97);
  std::vector<int> tops(kThreads, 0);
  for (int r = 0; r < kRemaps; ++r) {
    m.remap();
    for (ThreadId t = 0; t < kThreads; ++t) {
      if (m.priority_of(t) == 0) {
        ++tops[t];
      }
    }
  }
  for (const int c : tops) {
    EXPECT_NEAR(c, kRemaps / kThreads, kRemaps / kThreads * 0.15);
  }
}

TEST(PriorityMap, InterleaveCyclesBackToIdentity) {
  // The riffle is a permutation of the priority values, so iterating it
  // must return to the identity within its order.
  PriorityMap m(8, RemapScheme::kInterleave, 1);
  std::vector<std::uint32_t> identity(m.pi().begin(), m.pi().end());
  int period = 0;
  for (int i = 1; i <= 64; ++i) {
    m.remap();
    if (std::equal(m.pi().begin(), m.pi().end(), identity.begin())) {
      period = i;
      break;
    }
  }
  EXPECT_GT(period, 0) << "riffle of 8 elements must have finite order";
}

TEST(PriorityMap, ToStringCoversAllSchemes) {
  EXPECT_STREQ(to_string(RemapScheme::kNone), "none");
  EXPECT_STREQ(to_string(RemapScheme::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(RemapScheme::kCycle), "cycle");
  EXPECT_STREQ(to_string(RemapScheme::kCycleReverse), "cycle-reverse");
  EXPECT_STREQ(to_string(RemapScheme::kInterleave), "interleave");
}

}  // namespace
}  // namespace hbmsim
