// Tests for the Lemma 1 / Theorem 4 machinery: the Frigo-style
// transformation must make exactly the same hit/miss decisions as a plain
// fully-associative cache, with O(1) expected bookkeeping constants, and
// the concurrent list insert must run in Θ(log x) parallel steps.
#include <gtest/gtest.h>

#include <cmath>
#include <list>
#include <unordered_map>

#include "assoc/direct_mapped.h"
#include "assoc/frigo_transform.h"
#include "core/hbm_cache.h"
#include "util/error.h"
#include "workloads/synthetic.h"

namespace hbmsim::assoc {
namespace {

/// Plain fully-associative cache with LRU or FIFO order — the "original
/// program" the transformation simulates.
class PlainCache {
 public:
  PlainCache(std::uint64_t k, ReplacementKind policy) : k_(k), policy_(policy) {}

  bool access(LocalPage page) {
    const auto it = pos_.find(page);
    if (it != pos_.end()) {
      if (policy_ == ReplacementKind::kLru) {
        order_.splice(order_.end(), order_, it->second);
      }
      return true;
    }
    if (pos_.size() == k_) {
      pos_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(page);
    pos_[page] = std::prev(order_.end());
    return false;
  }

 private:
  std::uint64_t k_;
  ReplacementKind policy_;
  std::list<LocalPage> order_;
  std::unordered_map<LocalPage, std::list<LocalPage>::iterator> pos_;
};

class FrigoVsPlain
    : public ::testing::TestWithParam<std::tuple<ReplacementKind, double>> {};

TEST_P(FrigoVsPlain, IdenticalHitMissDecisions) {
  const auto [policy, zipf_s] = GetParam();
  const std::uint64_t k = 64;
  FrigoTransform transform(k, policy, /*seed=*/5);
  PlainCache plain(k, policy);
  const Trace t = workloads::make_zipf_trace(256, 20'000, zipf_s, 77);
  for (const LocalPage page : t.refs()) {
    ASSERT_EQ(transform.access(page), plain.access(page));
  }
  EXPECT_EQ(transform.stats().original_hits + transform.stats().original_misses,
            t.size());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FrigoVsPlain,
    ::testing::Combine(::testing::Values(ReplacementKind::kLru,
                                         ReplacementKind::kFifo),
                       ::testing::Values(0.0, 0.9, 1.3)),
    [](const auto& inf) {
      return std::string(to_string(std::get<0>(inf.param))) + "_zipf" +
             std::to_string(static_cast<int>(std::get<1>(inf.param) * 10));
    });

TEST(FrigoTransform, ExpectedChainLengthIsConstant) {
  // Load factor ≤ 1 (k live keys in k buckets) ⇒ E[chain] = O(1). The
  // lemma's universal-hash assumption shows up as a small constant here.
  FrigoTransform transform(128, ReplacementKind::kLru, 3);
  const Trace t = workloads::make_uniform_trace(512, 50'000, 9);
  for (const LocalPage page : t.refs()) {
    transform.access(page);
  }
  EXPECT_LT(transform.stats().chain_length.mean(), 3.0);
  EXPECT_LT(transform.stats().chain_length.max(), 20.0)
      << "worst chain should stay logarithmic-ish";
}

TEST(FrigoTransform, CostConstantsMatchLemma1) {
  FrigoTransform transform(64, ReplacementKind::kLru, 1);
  const Trace t = workloads::make_zipf_trace(256, 30'000, 1.0, 13);
  for (const LocalPage page : t.refs()) {
    transform.access(page);
  }
  const TransformStats& s = transform.stats();
  ASSERT_GT(s.original_hits, 0u);
  ASSERT_GT(s.original_misses, 0u);
  // O(1) transformed hits per original access (metadata + data touches).
  EXPECT_LT(s.hits_per_access(), 8.0);
  // Exactly O(1) transformed misses per original miss (the two data
  // copies; never more than 2 + eviction copy).
  EXPECT_GE(s.misses_per_original_miss(), 1.0);
  EXPECT_LE(s.misses_per_original_miss(), 2.0);
  // And *no* transformed misses attributable to hits: total transformed
  // misses is bounded by 2 per original miss.
  EXPECT_LE(s.transformed_misses, 2 * s.original_misses);
}

TEST(FrigoTransform, ResidentNeverExceedsK) {
  FrigoTransform transform(16, ReplacementKind::kFifo, 2);
  const Trace t = workloads::make_uniform_trace(64, 5'000, 4);
  for (const LocalPage page : t.refs()) {
    transform.access(page);
    ASSERT_LE(transform.resident(), 16u);
  }
  EXPECT_EQ(transform.resident(), 16u);
}

TEST(FrigoTransform, RejectsUnsupportedPolicies) {
  EXPECT_THROW(FrigoTransform(16, ReplacementKind::kClock, 1), Error);
  EXPECT_THROW(FrigoTransform(0, ReplacementKind::kLru, 1), Error);
}

TEST(FrigoTransform, WorksAtCapacityOne) {
  FrigoTransform transform(1, ReplacementKind::kLru, 1);
  EXPECT_FALSE(transform.access(1));
  EXPECT_TRUE(transform.access(1));
  EXPECT_FALSE(transform.access(2));
  EXPECT_FALSE(transform.access(1));
}

// --- Theorem 4: concurrent list insertion --------------------------------

TEST(ConcurrentInsert, ParallelPrefixSumIsCorrectAndLogDepth) {
  std::vector<std::uint32_t> v{3, 1, 4, 1, 5, 9, 2, 6};
  const std::uint32_t steps = parallel_prefix_sum(v);
  const std::vector<std::uint32_t> expect{3, 4, 8, 9, 14, 23, 25, 31};
  EXPECT_EQ(v, expect);
  EXPECT_EQ(steps, 3u);  // ⌈log₂ 8⌉
}

TEST(ConcurrentInsert, PrefixSumHandlesDegenerateSizes) {
  std::vector<std::uint32_t> one{7};
  EXPECT_EQ(parallel_prefix_sum(one), 0u);
  EXPECT_EQ(one[0], 7u);
  std::vector<std::uint32_t> empty;
  EXPECT_EQ(parallel_prefix_sum(empty), 0u);
}

TEST(ConcurrentInsert, EveryItemGetsAUniqueSlot) {
  for (const std::uint32_t x : {1u, 2u, 3u, 7u, 64u, 100u}) {
    const ConcurrentInsertResult r = simulate_concurrent_insert(x);
    ASSERT_EQ(r.order.size(), x);
    std::vector<bool> seen(x, false);
    for (const std::uint32_t item : r.order) {
      ASSERT_LT(item, x);
      ASSERT_FALSE(seen[item]) << "item placed twice";
      seen[item] = true;
    }
  }
}

TEST(ConcurrentInsert, StepCountIsLogarithmic) {
  for (const std::uint32_t x : {2u, 8u, 64u, 500u}) {
    const ConcurrentInsertResult r = simulate_concurrent_insert(x);
    const auto log2x =
        static_cast<std::uint32_t>(std::ceil(std::log2(static_cast<double>(x))));
    EXPECT_EQ(r.parallel_steps, log2x + 3) << "x=" << x;
  }
}

}  // namespace
}  // namespace hbmsim::assoc
