// Unit tests for util/: error handling, RNG determinism and statistics,
// env helpers, formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/env.h"
#include "util/error.h"
#include "util/format.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    HBMSIM_CHECK(false, "details here");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(HBMSIM_CHECK(1 + 1 == 2, "never"));
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
}

TEST(SplitMix64, KnownSequence) {
  // Reference values from the public-domain splitmix64 implementation.
  SplitMix64 sm(1234567);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Xoshiro, UniformStaysInBounds) {
  Xoshiro256StarStar rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Xoshiro, UniformBoundOneIsAlwaysZero) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(Xoshiro, UniformRangeInclusive) {
  Xoshiro256StarStar rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256StarStar rng(3);
  double sum = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Xoshiro, UniformIsRoughlyUniform) {
  Xoshiro256StarStar rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.uniform(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Xoshiro, ForkProducesIndependentStream) {
  Xoshiro256StarStar parent(5);
  Xoshiro256StarStar child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent() == child() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256StarStar rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  hbmsim::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, orig) << "100 elements should virtually never stay in place";
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Shuffle, HandlesEmptyAndSingle) {
  Xoshiro256StarStar rng(13);
  std::vector<int> empty;
  hbmsim::shuffle(empty.begin(), empty.end(), rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  hbmsim::shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Zipf, SamplesInSupport) {
  Xoshiro256StarStar rng(21);
  const ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf(rng), 100u);
  }
}

TEST(Zipf, SkewsTowardSmallValues) {
  Xoshiro256StarStar rng(22);
  const ZipfSampler zipf(1000, 1.2);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    low += zipf(rng) < 10 ? 1 : 0;
  }
  // With s=1.2 the first 10 of 1000 values carry far more than 1% mass.
  EXPECT_GT(low, kN / 5);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Xoshiro256StarStar rng(23);
  const ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ++counts[zipf(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 10 * 0.15);
  }
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1024), "1KiB");
  EXPECT_EQ(format_bytes(16ull << 20), "16MiB");
  EXPECT_EQ(format_bytes(2ull << 30), "2GiB");
  EXPECT_EQ(format_bytes(1536), "1.5KiB");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
}

TEST(Env, IntFallback) {
  ::unsetenv("HBMSIM_TEST_UNSET");
  EXPECT_EQ(env_int("HBMSIM_TEST_UNSET", 42), 42);
  ::setenv("HBMSIM_TEST_INT", "17", 1);
  EXPECT_EQ(env_int("HBMSIM_TEST_INT", 42), 17);
  ::setenv("HBMSIM_TEST_BAD", "zzz", 1);
  EXPECT_EQ(env_int("HBMSIM_TEST_BAD", 42), 42);
}

TEST(Env, ScaleDefaultsToQuick) {
  ::unsetenv("HBMSIM_SCALE");
  EXPECT_EQ(bench_scale(), BenchScale::kQuick);
  ::setenv("HBMSIM_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kPaper);
  ::unsetenv("HBMSIM_SCALE");
}

// --- RingBuffer (the in-flight queue / FIFO arbiter backing store) ------

TEST(RingBuffer, FifoOrderAcrossWraparound) {
  RingBuffer<int> ring(4);  // tiny capacity forces head_ to wrap
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.size() < 3) {
      ring.push_back(next_in++);
    }
    EXPECT_EQ(ring.front(), next_out);
    EXPECT_EQ(ring.back(), next_in - 1);
    ring.pop_front();
    ++next_out;
  }
  EXPECT_EQ(ring.capacity(), 4u) << "bounded occupancy must never grow";
}

TEST(RingBuffer, GrowthPreservesOrderAndIndexing) {
  RingBuffer<int> ring;  // no reservation: exercise geometric growth
  // Stagger pushes and pops so the live range straddles the wrap point
  // when growth strikes.
  for (int i = 0; i < 10; ++i) {
    ring.push_back(i);
  }
  for (int i = 0; i < 5; ++i) {
    ring.pop_front();
  }
  for (int i = 10; i < 200; ++i) {
    ring.push_back(i);
  }
  ASSERT_EQ(ring.size(), 195u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 5) << "indexed from front";
  }
}

TEST(RingBuffer, ReserveIsExactUpperBoundForSteadyState) {
  RingBuffer<int> ring;
  ring.reserve(100);
  const std::size_t reserved = ring.capacity();
  EXPECT_GE(reserved, 100u);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) {
      ring.push_back(i);
    }
    while (!ring.empty()) {
      ring.pop_front();
    }
  }
  EXPECT_EQ(ring.capacity(), reserved) << "within-reserve churn must not grow";
}

TEST(RingBuffer, ClearResetsButKeepsStorage) {
  RingBuffer<int> ring(8);
  for (int i = 0; i < 6; ++i) {
    ring.push_back(i);
  }
  const std::size_t cap = ring.capacity();
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), cap);
  ring.push_back(42);
  EXPECT_EQ(ring.front(), 42);
}

}  // namespace
}  // namespace hbmsim
