// Unit tests for the HBM+DRAM simulator: hand-computed tick-by-tick
// scenarios pinning the model semantics of §3.1 (hit w=1, miss w≥2,
// q-limited fetches, FIFO vs Priority ordering, remap timing), plus
// configuration validation and metrics bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "core/simulator.h"
#include "util/error.h"

namespace hbmsim {
namespace {

Workload single_thread(std::vector<LocalPage> refs) {
  return Workload::replicate(std::make_shared<Trace>(Trace(std::move(refs))), 1);
}

Workload threads_with(std::vector<std::vector<LocalPage>> traces) {
  std::vector<std::shared_ptr<const Trace>> ts;
  for (auto& refs : traces) {
    ts.push_back(std::make_shared<Trace>(Trace(std::move(refs))));
  }
  return Workload(std::move(ts));
}

// --- Single-thread semantics -------------------------------------------

TEST(Simulator, AllMissesTakeTwoTicksEach) {
  // 3 distinct pages, ample HBM: miss → fetch same tick → serve next tick.
  const RunMetrics m = simulate(single_thread({0, 1, 2}), SimConfig::fifo(10));
  EXPECT_EQ(m.makespan, 6u);
  EXPECT_EQ(m.total_refs, 3u);
  EXPECT_EQ(m.misses, 3u);
  EXPECT_EQ(m.hits, 0u);
  EXPECT_DOUBLE_EQ(m.response.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.response.max(), 2.0);
}

TEST(Simulator, HitsTakeOneTick) {
  // Page 0 misses once then hits twice: ticks 0(miss) 1(serve) 2(hit) 3(hit).
  const RunMetrics m = simulate(single_thread({0, 0, 0}), SimConfig::fifo(10));
  EXPECT_EQ(m.makespan, 4u);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits, 2u);
  EXPECT_DOUBLE_EQ(m.response.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.response.max(), 2.0);
  EXPECT_NEAR(m.response.mean(), (2.0 + 1.0 + 1.0) / 3.0, 1e-12);
}

TEST(Simulator, LruEvictionCausesRepeatMisses) {
  // k=2, cyclic over 3 pages: classic LRU worst case — every ref misses.
  const RunMetrics m =
      simulate(single_thread({0, 1, 2, 0, 1, 2}), SimConfig::fifo(2));
  EXPECT_EQ(m.misses, 6u);
  EXPECT_EQ(m.hits, 0u);
  EXPECT_EQ(m.evictions, 4u);
  EXPECT_EQ(m.makespan, 12u);
}

TEST(Simulator, WorkingSetWithinHbmHitsAfterWarmup) {
  std::vector<LocalPage> refs;
  for (int pass = 0; pass < 10; ++pass) {
    for (LocalPage p = 0; p < 3; ++p) {
      refs.push_back(p);
    }
  }
  const RunMetrics m = simulate(single_thread(refs), SimConfig::fifo(3));
  EXPECT_EQ(m.misses, 3u);
  EXPECT_EQ(m.hits, 27u);
  // 3 misses cost 2 ticks each, 27 hits cost 1: makespan = 33.
  EXPECT_EQ(m.makespan, 33u);
}

// --- Multi-thread FIFO vs Priority --------------------------------------

TEST(Simulator, FifoServesChannelInArrivalThenIdOrder) {
  // Two threads, one page each, q=1: t0's request is fetched first (id
  // order within the tick), so t0 finishes at tick 1, t1 at tick 2.
  const RunMetrics m =
      simulate(threads_with({{0}, {0}}), SimConfig::fifo(10, 1));
  EXPECT_EQ(m.makespan, 3u);
  ASSERT_EQ(m.per_thread.size(), 2u);
  EXPECT_EQ(m.per_thread[0].completion_tick, 1u);
  EXPECT_EQ(m.per_thread[1].completion_tick, 2u);
  EXPECT_DOUBLE_EQ(m.per_thread[0].response.max(), 2.0);
  EXPECT_DOUBLE_EQ(m.per_thread[1].response.max(), 3.0);
}

TEST(Simulator, TwoChannelsServeBothAtOnce) {
  const RunMetrics m =
      simulate(threads_with({{0}, {0}}), SimConfig::fifo(10, 2));
  EXPECT_EQ(m.makespan, 2u);
  EXPECT_DOUBLE_EQ(m.response.max(), 2.0);
}

TEST(Simulator, PriorityPreemptsOlderLowPriorityRequest) {
  // t2 requests at tick 0; t0 requests at tick 2 — under Priority, t0's
  // later request is fetched before t2's older one.
  // t0: hit-burst then miss; build: t0 = [0,0,1] (page 0 missed once).
  // Simpler: t0 = [0,1], t1 = [0], t2 = [0]; q=1, static priority.
  const RunMetrics m = simulate(threads_with({{0, 1}, {0}, {0}}),
                                SimConfig::priority(10, 1));
  // tick0: all miss; queue {t0,t1,t2}; fetch t0.p0.
  // tick1: serve t0 (w2); fetch t1.p0.
  // tick2: t0 issues p1 (miss, queued); serve t1 (w3, done); fetch t0.p1
  //        (priority 0 beats t2's older request).
  // tick3: serve t0 (w2, done); fetch t2.p0.
  // tick4: serve t2 (w5, done). makespan 5.
  EXPECT_EQ(m.makespan, 5u);
  EXPECT_EQ(m.per_thread[0].completion_tick, 3u);
  EXPECT_EQ(m.per_thread[1].completion_tick, 2u);
  EXPECT_EQ(m.per_thread[2].completion_tick, 4u);
  EXPECT_DOUBLE_EQ(m.per_thread[2].response.max(), 5.0);
}

TEST(Simulator, FifoSameScenarioServesOldestFirst) {
  const RunMetrics m =
      simulate(threads_with({{0, 1}, {0}, {0}}), SimConfig::fifo(10, 1));
  // tick0: queue {t0,t1,t2}; fetch t0.p0.
  // tick1: serve t0; fetch t1.p0.
  // tick2: t0 issues p1 → queued behind t2; serve t1; fetch t2.p0.
  // tick3: serve t2 (w4); fetch t0.p1.
  // tick4: serve t0 (w=4-2+1=3). makespan 5.
  EXPECT_EQ(m.makespan, 5u);
  EXPECT_EQ(m.per_thread[2].completion_tick, 3u);
  EXPECT_EQ(m.per_thread[0].completion_tick, 4u);
}

TEST(Simulator, StarvationUnderStaticPriority) {
  // Two high-priority threads stream unique pages, saturating the q=1
  // channel between them (the paper: "one thread cannot saturate the
  // channel"); the low-priority thread's single request starves until
  // both streams end.
  std::vector<LocalPage> stream(50);
  for (LocalPage i = 0; i < 50; ++i) {
    stream[i] = i;
  }
  const RunMetrics m = simulate(threads_with({stream, stream, {0}}),
                                SimConfig::priority(1000, 1));
  EXPECT_EQ(m.per_thread[2].completion_tick + 1, m.makespan);
  EXPECT_GT(m.per_thread[2].response.max(), 100.0);
}

TEST(Simulator, NoStarvationWhenChannelHasSlack) {
  // A single high-priority streaming thread leaves the channel idle every
  // other tick, so the low-priority request is served almost immediately.
  std::vector<LocalPage> stream(50);
  for (LocalPage i = 0; i < 50; ++i) {
    stream[i] = i;
  }
  const RunMetrics m =
      simulate(threads_with({stream, {0}}), SimConfig::priority(1000, 1));
  EXPECT_LT(m.per_thread[1].response.max(), 10.0);
}

// --- Remapping ----------------------------------------------------------

TEST(Simulator, RemapCountMatchesPeriod) {
  std::vector<LocalPage> refs(20);
  for (int i = 0; i < 20; ++i) {
    refs[i] = static_cast<LocalPage>(i);
  }
  SimConfig c = SimConfig::dynamic_priority(4, /*t_mult=*/1.0);  // T = 4 ticks
  const RunMetrics m = simulate(single_thread(refs), c);
  EXPECT_EQ(m.makespan, 40u);
  EXPECT_EQ(m.remaps, 10u);  // ticks 0, 4, 8, ..., 36
}

TEST(Simulator, DynamicPriorityWithHugePeriodEqualsStaticPriority) {
  const Workload w = threads_with({{0, 1, 2, 0}, {0, 1, 2}, {0, 2, 1}});
  SimConfig dynamic = SimConfig::dynamic_priority(4, /*t_mult=*/1e6);
  const RunMetrics a = simulate(w, dynamic);
  const RunMetrics b = simulate(w, SimConfig::priority(4));
  // Only the tick-0 remap differs; with the period past the makespan the
  // permutation applied at tick 0 persists. Compare against priority with
  // the same initial shuffle is not possible, so instead check the
  // *static* invariants: same refs, and makespan within the p factor.
  EXPECT_EQ(a.total_refs, b.total_refs);
  EXPECT_LE(a.makespan, 3 * b.makespan);
  EXPECT_LE(b.makespan, 3 * a.makespan);
}

TEST(Simulator, CyclePriorityIsDeterministic) {
  const Workload w = threads_with({{0, 1, 2}, {2, 1, 0}, {1, 1, 1}});
  SimConfig c = SimConfig::cycle_priority(8, 1.0);
  const RunMetrics a = simulate(w, c);
  const RunMetrics b = simulate(w, c);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  EXPECT_DOUBLE_EQ(a.inconsistency(), b.inconsistency());
}

// --- Stepping / introspection -------------------------------------------

TEST(Simulator, StepReportsStatesTickByTick) {
  Simulator sim(single_thread({0, 0}), SimConfig::fifo(4));
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.thread_state(0), Simulator::ThreadState::kIssuing);
  ASSERT_TRUE(sim.step());  // tick 0: miss, queued, fetched
  EXPECT_EQ(sim.thread_state(0), Simulator::ThreadState::kFetched);
  EXPECT_EQ(sim.cache().size(), 1u);
  ASSERT_TRUE(sim.step());  // tick 1: served, re-issues next tick
  EXPECT_EQ(sim.thread_state(0), Simulator::ThreadState::kIssuing);
  ASSERT_TRUE(sim.step());  // tick 2: hit, served, done
  EXPECT_EQ(sim.thread_state(0), Simulator::ThreadState::kDone);
  EXPECT_TRUE(sim.finished());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EmptyTracesFinishImmediately) {
  const Workload w = threads_with({{}, {0}});
  const RunMetrics m = simulate(w, SimConfig::fifo(4));
  EXPECT_EQ(m.total_refs, 1u);
  EXPECT_EQ(m.makespan, 2u);
  EXPECT_EQ(m.per_thread[0].refs, 0u);
}

TEST(Simulator, AllEmptyWorkloadHasZeroMakespan) {
  const RunMetrics m = simulate(threads_with({{}, {}}), SimConfig::fifo(4));
  EXPECT_EQ(m.makespan, 0u);
  EXPECT_EQ(m.total_refs, 0u);
}

// --- Channel binding and FR-FCFS ------------------------------------------

TEST(Simulator, HashedBindingCanIdleChannels) {
  // All four requested pages bind to specific channels; under kAny four
  // channels finish the batch in one tick, under kHashed pages colliding
  // on a channel serialize.
  const Workload w = threads_with({{0}, {1}, {2}, {3}});
  SimConfig any = SimConfig::fifo(16, 4);
  const RunMetrics m_any = simulate(w, any);
  EXPECT_EQ(m_any.makespan, 2u);

  SimConfig hashed = any;
  hashed.channel_binding = ChannelBinding::kHashed;
  const RunMetrics m_hashed = simulate(w, hashed);
  // Never faster than the unconstrained model; possibly slower.
  EXPECT_GE(m_hashed.makespan, m_any.makespan);
  EXPECT_EQ(m_hashed.total_refs, m_any.total_refs);
}

TEST(Simulator, HashedBindingConservesWork) {
  const Workload w = threads_with(
      {{0, 1, 2, 3, 0, 1}, {2, 0, 3, 1}, {1, 1, 2, 2}, {3, 2, 1, 0}});
  SimConfig cfg = SimConfig::fifo(6, 3);
  cfg.channel_binding = ChannelBinding::kHashed;
  const RunMetrics m = simulate(w, cfg);
  EXPECT_EQ(m.total_refs, w.total_refs());
  EXPECT_EQ(m.fetches, m.misses);
}

TEST(Simulator, FrFcfsBatchesSameRowFetches) {
  // One thread misses a long run of consecutive pages while another
  // thread's isolated requests arrive between them: FR-FCFS serves the
  // streaming thread's row hits back-to-back.
  std::vector<LocalPage> stream(32);
  for (LocalPage i = 0; i < 32; ++i) {
    stream[i] = i;
  }
  std::vector<LocalPage> pokes = {100, 101, 102, 103};
  const Workload w = threads_with({stream, pokes});
  SimConfig frfcfs = SimConfig::fifo(1000, 1);
  frfcfs.arbitration = ArbitrationKind::kFrFcfs;
  frfcfs.row_pages = 8;
  const RunMetrics m = simulate(w, frfcfs);
  EXPECT_EQ(m.total_refs, w.total_refs());
  // Sanity: completes, and the streaming thread is not delayed behind
  // the pokes any worse than plain FCFS.
  const RunMetrics fifo = simulate(w, SimConfig::fifo(1000, 1));
  EXPECT_LE(m.per_thread[0].completion_tick,
            fifo.per_thread[0].completion_tick + 8);
}

// --- Non-unit transfer time (fetch_ticks extension) -------------------------

TEST(Simulator, FetchLatencyStretchesMisses) {
  // L = 3: miss at tick t is servable at t+3, so each cold miss costs
  // exactly L+1 ticks end to end and w = L+1.
  SimConfig c = SimConfig::fifo(10);
  c.fetch_ticks = 3;
  const RunMetrics m = simulate(single_thread({0, 1}), c);
  // tick0 miss/fetch; arrival tick3; serve tick3; issue p1 tick4; fetch
  // tick4; arrival+serve tick7. makespan 8.
  EXPECT_EQ(m.makespan, 8u);
  EXPECT_DOUBLE_EQ(m.response.mean(), 4.0);
}

TEST(Simulator, FetchLatencyLeavesHitsAlone) {
  SimConfig c = SimConfig::fifo(10);
  c.fetch_ticks = 5;
  const RunMetrics m = simulate(single_thread({0, 0, 0}), c);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits, 2u);
  // miss: served tick 5 (w=6); hits tick 6 and 7 (w=1 each). makespan 8.
  EXPECT_EQ(m.makespan, 8u);
  EXPECT_DOUBLE_EQ(m.response.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.response.max(), 6.0);
}

TEST(Simulator, FetchLatencyIsPipelined) {
  // Two threads missing distinct pages at tick 0, q=1, L=4: the channel
  // issues one fetch per tick, so arrivals land at ticks 4 and 5 —
  // latency overlaps rather than serializing end to end.
  SimConfig c = SimConfig::fifo(10);
  c.fetch_ticks = 4;
  const RunMetrics m = simulate(threads_with({{0}, {0}}), c);
  EXPECT_EQ(m.per_thread[0].completion_tick, 4u);
  EXPECT_EQ(m.per_thread[1].completion_tick, 5u);
  EXPECT_EQ(m.makespan, 6u);
}

TEST(Simulator, FetchLatencyOneMatchesDefaultEngineExactly) {
  const Workload w = threads_with({{0, 1, 0, 2}, {2, 1, 0}, {1, 1, 1}});
  SimConfig a = SimConfig::priority(4);
  SimConfig b = a;
  b.fetch_ticks = 1;  // explicit, should be the identical code path
  const RunMetrics ma = simulate(w, a);
  const RunMetrics mb = simulate(w, b);
  EXPECT_EQ(ma.makespan, mb.makespan);
  EXPECT_DOUBLE_EQ(ma.response.mean(), mb.response.mean());
}

TEST(Simulator, FetchLatencyValidation) {
  const Workload w = single_thread({0});
  SimConfig zero = SimConfig::fifo(4);
  zero.fetch_ticks = 0;
  EXPECT_THROW(simulate(w, zero), ConfigError);
}

// --- Config validation ---------------------------------------------------

TEST(SimConfig, RejectsBadParameters) {
  const Workload w = single_thread({0});
  SimConfig zero_k = SimConfig::fifo(0);
  EXPECT_THROW(simulate(w, zero_k), ConfigError);

  SimConfig zero_q = SimConfig::fifo(4, 0);
  EXPECT_THROW(simulate(w, zero_q), ConfigError);

  SimConfig q_gt_k = SimConfig::fifo(2, 4);
  EXPECT_THROW(simulate(w, q_gt_k), ConfigError);

  SimConfig remap_no_period = SimConfig::priority(4);
  remap_no_period.remap_scheme = RemapScheme::kDynamic;
  EXPECT_THROW(simulate(w, remap_no_period), ConfigError);

  SimConfig remap_on_fifo = SimConfig::fifo(4);
  remap_on_fifo.remap_scheme = RemapScheme::kDynamic;
  remap_on_fifo.remap_period = 10;
  EXPECT_THROW(simulate(w, remap_on_fifo), ConfigError);

  SimConfig zero_row = SimConfig::fifo(4);
  zero_row.arbitration = ArbitrationKind::kFrFcfs;
  zero_row.row_pages = 0;
  EXPECT_THROW(simulate(w, zero_row), ConfigError);

  EXPECT_THROW(simulate(Workload{}, SimConfig::fifo(4)), ConfigError);
}

TEST(SimConfig, MaxTicksTruncatesGracefully) {
  // Five distinct pages need ~10 ticks; a 3-tick budget cuts the run
  // short. That is a truncation, not an error: the metrics cover the
  // completed prefix and say so.
  SimConfig c = SimConfig::fifo(4);
  c.max_ticks = 3;
  Simulator sim(single_thread({0, 1, 2, 3, 4}), c);
  const RunMetrics m = sim.run();
  EXPECT_TRUE(m.truncated);
  EXPECT_FALSE(sim.finished());
  EXPECT_EQ(sim.now(), 3u);
  EXPECT_LT(m.response.count(), 5u);
  EXPECT_NE(m.summary().find("TRUNCATED"), std::string::npos);
}

TEST(SimConfig, RunsWithinBudgetAreNotMarkedTruncated) {
  SimConfig c = SimConfig::fifo(4);
  c.max_ticks = 1000;
  const RunMetrics m = simulate(single_thread({0, 1, 2}), c);
  EXPECT_FALSE(m.truncated);
  EXPECT_EQ(m.response.count(), 3u);
}

TEST(SimConfig, PolicyNames) {
  EXPECT_EQ(SimConfig::fifo(10).policy_name(), "fifo");
  EXPECT_EQ(SimConfig::priority(10).policy_name(), "priority");
  EXPECT_EQ(SimConfig::dynamic_priority(10, 10.0).policy_name(),
            "dynamic-priority(T=100)");
  EXPECT_EQ(SimConfig::cycle_priority(10, 5.0).policy_name(),
            "cycle-priority(T=50)");
}

TEST(SimConfig, PeriodFromMultiplierRoundsAndClamps) {
  EXPECT_EQ(SimConfig::period_from_multiplier(100, 10.0), 1000u);
  EXPECT_EQ(SimConfig::period_from_multiplier(100, 0.001), 1u);
  EXPECT_THROW(SimConfig::period_from_multiplier(100, 0.0), Error);
}

// --- Metrics bookkeeping -------------------------------------------------

TEST(Metrics, PerThreadTotalsSumToGlobal) {
  const Workload w = threads_with({{0, 1, 0}, {0, 0}, {3, 2, 1, 0}});
  const RunMetrics m = simulate(w, SimConfig::fifo(3));
  std::uint64_t refs = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& t : m.per_thread) {
    refs += t.refs;
    hits += t.hits;
    misses += t.misses;
  }
  EXPECT_EQ(refs, m.total_refs);
  EXPECT_EQ(hits, m.hits);
  EXPECT_EQ(misses, m.misses);
  EXPECT_EQ(m.total_refs, w.total_refs());
  EXPECT_EQ(m.response.count(), m.total_refs);
}

TEST(Metrics, PerThreadDisabledLeavesVectorEmpty) {
  SimConfig c = SimConfig::fifo(4);
  c.per_thread_metrics = false;
  c.response_histogram = false;
  const RunMetrics m = simulate(single_thread({0, 1}), c);
  EXPECT_TRUE(m.per_thread.empty());
  EXPECT_EQ(m.response_hist.total(), 0u);
  EXPECT_EQ(m.total_refs, 2u);
}

TEST(Metrics, HistogramCountsEveryResponse) {
  const RunMetrics m = simulate(single_thread({0, 0, 1}), SimConfig::fifo(4));
  EXPECT_EQ(m.response_hist.total(), 3u);
  // w=1 hits land in bucket 0; w=2 misses in bucket 1.
  EXPECT_EQ(m.response_hist.bucket_count(0), 1u);
  EXPECT_EQ(m.response_hist.bucket_count(1), 2u);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  const RunMetrics m = simulate(single_thread({0, 0}), SimConfig::fifo(4));
  const std::string s = m.summary();
  EXPECT_NE(s.find("makespan"), std::string::npos);
  EXPECT_NE(s.find("hit rate"), std::string::npos);
  EXPECT_NE(s.find("inconsistency"), std::string::npos);
}

TEST(Metrics, CompletionSpreadMeasuresStraggle) {
  const Workload w = threads_with({{0}, {0, 1, 2, 3}});
  const RunMetrics m = simulate(w, SimConfig::fifo(8, 2));
  EXPECT_GT(m.completion_spread(), 0u);
  EXPECT_EQ(m.completion_spread(),
            m.per_thread[1].completion_tick - m.per_thread[0].completion_tick);
}

}  // namespace
}  // namespace hbmsim
