// Unit tests for trace/trace_cursor.h: the streaming trace layer.
//
// The contract under test (DESIGN.md §3f): every cursor backend
// generates exactly the sequence its materialized maker stores (equality
// is by construction — the makers call materialize() over the same
// cursors — so these tests pin the walking semantics: current()/next()
// stepping, rewind() re-seeding, clone() state copies, exhaustion), and
// a Workload served through cursors is observationally identical to its
// materialized twin under simulate(), including at max_ticks truncation.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulator.h"
#include "trace/trace.h"
#include "trace/trace_cursor.h"
#include "workloads/adversarial.h"
#include "workloads/synthetic.h"

namespace hbmsim {
namespace {

/// Walk a fresh clone of `cursor` from wherever it stands to exhaustion.
std::vector<LocalPage> walk_remainder(const TraceCursor& cursor) {
  const std::unique_ptr<TraceCursor> c = cursor.clone();
  std::vector<LocalPage> out;
  while (!c->exhausted()) {
    out.push_back(c->current());
    c->next();
  }
  return out;
}

/// Walk `cursor` itself, in place, from position 0 (rewinding first).
std::vector<LocalPage> walk_all(TraceCursor& cursor) {
  cursor.rewind();
  std::vector<LocalPage> out;
  while (!cursor.exhausted()) {
    out.push_back(cursor.current());
    cursor.next();
  }
  return out;
}

std::vector<workloads::SyntheticOptions> all_synthetic_kinds() {
  workloads::SyntheticOptions base;
  base.num_pages = 32;
  base.length = 200;
  base.zipf_s = 0.9;
  base.stream_passes = 3;
  base.stride = 7;
  std::vector<workloads::SyntheticOptions> kinds;
  for (const auto kind :
       {workloads::SyntheticKind::kUniform, workloads::SyntheticKind::kZipf,
        workloads::SyntheticKind::kStream, workloads::SyntheticKind::kStrided}) {
    workloads::SyntheticOptions o = base;
    o.kind = kind;
    kinds.push_back(o);
  }
  return kinds;
}

// --- Sequence equality per backend -------------------------------------

TEST(TraceCursor, VectorCursorWalksItsTrace) {
  const auto trace = std::make_shared<Trace>(Trace({3, 1, 4, 1, 5, 9, 2, 6}));
  VectorTraceCursor cursor(trace);
  EXPECT_EQ(cursor.size(), trace->size());
  EXPECT_EQ(cursor.num_pages(), trace->num_pages());
  for (std::size_t i = 0; i < trace->size(); ++i) {
    ASSERT_FALSE(cursor.exhausted());
    EXPECT_EQ(cursor.pos(), i);
    EXPECT_EQ(cursor.current(), (*trace)[i]);
    EXPECT_EQ(cursor.current(), (*trace)[i]) << "current() must be repeatable";
    cursor.next();
  }
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.pos(), cursor.size());
}

TEST(TraceCursor, SyntheticCursorMatchesMaterializedMakers) {
  for (const workloads::SyntheticOptions& opts : all_synthetic_kinds()) {
    SCOPED_TRACE(static_cast<int>(opts.kind));
    const std::uint64_t seed = opts.kind == workloads::SyntheticKind::kUniform ||
                                       opts.kind == workloads::SyntheticKind::kZipf
                                   ? 77
                                   : 1;  // stream/strided makers fix seed = 1
    workloads::SyntheticCursor cursor(opts, seed);
    Trace expected;
    switch (opts.kind) {
      case workloads::SyntheticKind::kUniform:
        expected = workloads::make_uniform_trace(opts.num_pages, opts.length, seed);
        break;
      case workloads::SyntheticKind::kZipf:
        expected = workloads::make_zipf_trace(opts.num_pages, opts.length,
                                              opts.zipf_s, seed);
        break;
      case workloads::SyntheticKind::kStream:
        expected = workloads::make_stream_trace(opts.num_pages, opts.stream_passes);
        break;
      case workloads::SyntheticKind::kStrided:
        expected = workloads::make_strided_trace(opts.num_pages, opts.length,
                                                 opts.stride);
        break;
    }
    EXPECT_EQ(Trace(walk_all(cursor), cursor.num_pages()), expected);
  }
}

TEST(TraceCursor, CyclicCursorMatchesMaterializedMaker) {
  const workloads::AdversarialOptions opts{.unique_pages = 16, .repetitions = 5};
  workloads::CyclicCursor cursor(opts);
  const Trace expected = workloads::make_cyclic_trace(opts);
  EXPECT_EQ(Trace(walk_all(cursor), cursor.num_pages()), expected);
}

TEST(TraceCursor, SourcesHandOutIndependentEqualCursors) {
  workloads::SyntheticOptions opts = all_synthetic_kinds()[1];  // zipf
  const workloads::SyntheticSource source(opts, 5);
  const auto a = source.cursor();
  const auto b = source.cursor();
  // Interleave the walks: independent generator state, same sequence.
  while (!a->exhausted()) {
    ASSERT_FALSE(b->exhausted());
    EXPECT_EQ(a->current(), b->current());
    a->next();
    b->next();
  }
  EXPECT_TRUE(b->exhausted());
}

// --- Rewind and clone determinism --------------------------------------

TEST(TraceCursor, RewindReplaysIdenticalSequence) {
  for (const workloads::SyntheticOptions& opts : all_synthetic_kinds()) {
    SCOPED_TRACE(static_cast<int>(opts.kind));
    workloads::SyntheticCursor cursor(opts, 123);
    const std::vector<LocalPage> first = walk_all(cursor);
    // Leave the cursor mid-sequence before rewinding again.
    cursor.rewind();
    for (int i = 0; i < 17; ++i) {
      cursor.next();
    }
    EXPECT_EQ(walk_all(cursor), first);
  }
}

TEST(TraceCursor, CloneForksIndependentIdenticalSuffixes) {
  for (const workloads::SyntheticOptions& opts : all_synthetic_kinds()) {
    SCOPED_TRACE(static_cast<int>(opts.kind));
    workloads::SyntheticCursor cursor(opts, 9);
    for (int i = 0; i < 41; ++i) {
      cursor.next();
    }
    const std::unique_ptr<TraceCursor> fork = cursor.clone();
    EXPECT_EQ(fork->pos(), cursor.pos());
    EXPECT_EQ(fork->current(), cursor.current());
    // Drain the original first: the fork must be unaffected, then
    // reproduce the very same suffix.
    const std::vector<LocalPage> suffix = walk_remainder(cursor);
    while (!cursor.exhausted()) {
      cursor.next();
    }
    EXPECT_EQ(walk_remainder(*fork), suffix);
  }
}

TEST(TraceCursor, MaterializeCoversFullSequenceWithoutDisturbingCursor) {
  workloads::SyntheticOptions opts = all_synthetic_kinds()[0];  // uniform
  workloads::SyntheticCursor cursor(opts, 31);
  const std::vector<LocalPage> full = walk_all(cursor);
  cursor.rewind();
  for (int i = 0; i < 50; ++i) {
    cursor.next();
  }
  const std::uint64_t pos_before = cursor.pos();
  const LocalPage current_before = cursor.current();
  const Trace materialized = materialize(cursor);
  EXPECT_EQ(cursor.pos(), pos_before);
  EXPECT_EQ(cursor.current(), current_before);
  EXPECT_EQ(materialized, Trace(full, cursor.num_pages()));
}

// --- Exhaustion semantics ----------------------------------------------

TEST(TraceCursor, EmptyTraceIsBornExhausted) {
  VectorTraceCursor cursor(std::make_shared<Trace>());
  EXPECT_TRUE(cursor.empty());
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.pos(), 0u);
  cursor.rewind();  // rewinding an empty cursor is a no-op, not an error
  EXPECT_TRUE(cursor.exhausted());
}

TEST(TraceCursor, ExhaustedCursorRecoversViaRewind) {
  const workloads::AdversarialOptions opts{.unique_pages = 4, .repetitions = 2};
  workloads::CyclicCursor cursor(opts);
  const std::vector<LocalPage> first = walk_all(cursor);
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(walk_all(cursor), first);
}

// --- Streaming workloads under the simulator ---------------------------

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fingerprint(const RunMetrics& m) {
  std::uint64_t h = 0;
  h = mix64(h, m.makespan);
  h = mix64(h, m.total_refs);
  h = mix64(h, m.hits);
  h = mix64(h, m.misses);
  h = mix64(h, m.fetches);
  h = mix64(h, m.response.count());
  h = mix64(h, std::bit_cast<std::uint64_t>(m.response.mean()));
  h = mix64(h, std::bit_cast<std::uint64_t>(m.response.max()));
  for (const auto& pt : m.per_thread) {
    h = mix64(h, pt.refs);
    h = mix64(h, pt.hits);
    h = mix64(h, pt.completion_tick);
  }
  return h;
}

TEST(TraceCursor, StreamingWorkloadMatchesMaterializedAcrossSeedsAndThreads) {
  // Fuzz the equivalence over seeds × thread counts × kinds: the
  // simulator cannot tell a streaming workload from its materialized
  // twin, down to the full metrics fingerprint.
  for (const workloads::SyntheticKind kind :
       {workloads::SyntheticKind::kUniform, workloads::SyntheticKind::kZipf}) {
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
      for (const std::size_t threads : {1u, 2u, 5u, 9u}) {
        workloads::SyntheticOptions opts;
        opts.kind = kind;
        opts.num_pages = 48;
        opts.length = 300;
        opts.zipf_s = 0.9;
        opts.seed = seed;
        SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                     " seed=" + std::to_string(seed) +
                     " threads=" + std::to_string(threads));
        const Workload streaming = workloads::make_streaming_workload(threads, opts);
        const Workload materialized =
            workloads::make_synthetic_workload(threads, opts);
        EXPECT_TRUE(streaming.streaming());
        EXPECT_FALSE(materialized.streaming());
        SimConfig config = SimConfig::fifo(/*k=*/24, /*q=*/2);
        config.fetch_ticks = 2;
        EXPECT_EQ(fingerprint(simulate(streaming, config)),
                  fingerprint(simulate(materialized, config)));
      }
    }
  }
}

TEST(TraceCursor, TruncationLeavesStreamingAndMaterializedIdentical) {
  // max_ticks cuts the run mid-flight: cursors freeze mid-sequence, and
  // the truncated metrics must still match the materialized twin exactly.
  workloads::SyntheticOptions opts;
  opts.kind = workloads::SyntheticKind::kUniform;
  opts.num_pages = 256;  // >> k: heavy missing, deep backlog at the cut
  opts.length = 500;
  opts.seed = 13;
  const Workload streaming = workloads::make_streaming_workload(6, opts);
  const Workload materialized = workloads::make_synthetic_workload(6, opts);
  SimConfig config = SimConfig::fifo(/*k=*/16, /*q=*/2);
  config.fetch_ticks = 4;
  config.max_ticks = 120;
  const RunMetrics s = simulate(streaming, config);
  const RunMetrics m = simulate(materialized, config);
  ASSERT_TRUE(s.truncated);
  ASSERT_TRUE(m.truncated);
  EXPECT_EQ(fingerprint(s), fingerprint(m));
}

TEST(TraceCursor, StreamingWorkloadRefusesRandomAccess) {
  workloads::SyntheticOptions opts;
  opts.num_pages = 8;
  opts.length = 10;
  const Workload streaming = workloads::make_streaming_workload(2, opts);
  EXPECT_THROW((void)streaming.trace(0), Error);
  EXPECT_THROW((void)streaming.share(0), Error);
  // cursor() and source() are the streaming-safe accessors.
  EXPECT_EQ(streaming.cursor(0)->size(), 10u);
  EXPECT_EQ(streaming.source(1)->num_pages(), 8u);
}

}  // namespace
}  // namespace hbmsim
