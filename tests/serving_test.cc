// Tests for the open-system serving mode: arrival processes, the
// Simulator's injection/idle-advance surface, arrival conservation,
// admission control, truncation, priority-class mapping, and run-to-run
// determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "check/check.h"
#include "check/invariant_checker.h"
#include "core/simulator.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "serve/arrival.h"
#include "serve/serving.h"
#include "util/error.h"

namespace {

using namespace hbmsim;

// ---------------------------------------------------------------------------
// Arrival processes

serve::ArrivalSpec poisson(double rate) {
  serve::ArrivalSpec a;
  a.kind = serve::ArrivalKind::kPoisson;
  a.rate = rate;
  return a;
}

TEST(ArrivalProcess, PoissonStreamIsDeterministicAndMonotone) {
  serve::ArrivalProcess a(poisson(0.05), 42);
  serve::ArrivalProcess b(poisson(0.05), 42);
  Tick prev = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.peek().has_value());
    ASSERT_EQ(*a.peek(), *b.peek());
    ASSERT_GE(*a.peek(), prev);
    prev = *a.peek();
    a.pop();
    b.pop();
  }
}

TEST(ArrivalProcess, DistinctSeedsGiveDistinctStreams) {
  serve::ArrivalProcess a(poisson(0.05), 1);
  serve::ArrivalProcess b(poisson(0.05), 2);
  bool any_diff = false;
  for (int i = 0; i < 100 && !any_diff; ++i) {
    any_diff = *a.peek() != *b.peek();
    a.pop();
    b.pop();
  }
  EXPECT_TRUE(any_diff);
}

TEST(ArrivalProcess, PoissonRateMatchesTheMean) {
  const double rate = 0.1;
  const Tick horizon = 100'000;
  serve::ArrivalProcess a(poisson(rate), 7);
  std::uint64_t count = 0;
  while (a.peek() && *a.peek() < horizon) {
    ++count;
    a.pop();
  }
  const double expected = rate * static_cast<double>(horizon);
  EXPECT_GT(static_cast<double>(count), 0.9 * expected);
  EXPECT_LT(static_cast<double>(count), 1.1 * expected);
}

TEST(ArrivalProcess, OnOffArrivalsLandOnlyInOnPeriods) {
  serve::ArrivalSpec spec;
  spec.kind = serve::ArrivalKind::kOnOff;
  spec.rate = 0.2;
  spec.on_ticks = 100;
  spec.off_ticks = 900;
  serve::ArrivalProcess a(spec, 3);
  Tick prev = 0;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(a.peek().has_value());
    const Tick t = *a.peek();
    ASSERT_GE(t, prev);
    // Every arrival falls inside an on-period of the 1000-tick cycle.
    ASSERT_LT(t % 1000, 100u) << "arrival " << t << " in an off-period";
    prev = t;
    a.pop();
  }
}

TEST(ArrivalProcess, TraceScheduleReplaysExactlyThenEnds) {
  serve::ArrivalSpec spec;
  spec.kind = serve::ArrivalKind::kTrace;
  spec.schedule = {5, 5, 10, 42};
  serve::ArrivalProcess a(spec, 99);
  for (const Tick want : spec.schedule) {
    ASSERT_TRUE(a.peek().has_value());
    EXPECT_EQ(*a.peek(), want);
    a.pop();
  }
  EXPECT_FALSE(a.peek().has_value());
}

TEST(ArrivalSpec, ValidationCatchesBadStreams) {
  serve::ArrivalSpec a = poisson(0.0);
  EXPECT_FALSE(a.validation_error().empty());
  a.rate = -1.0;
  EXPECT_FALSE(a.validation_error().empty());
  a.rate = 0.5;
  EXPECT_TRUE(a.validation_error().empty());

  serve::ArrivalSpec onoff;
  onoff.kind = serve::ArrivalKind::kOnOff;
  onoff.on_ticks = 0;
  EXPECT_FALSE(onoff.validation_error().empty());

  serve::ArrivalSpec trace;
  trace.kind = serve::ArrivalKind::kTrace;
  trace.schedule = {10, 5};  // decreasing
  EXPECT_FALSE(trace.validation_error().empty());
}

TEST(ArrivalSpec, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(serve::parse_arrival("poisson"), serve::ArrivalKind::kPoisson);
  EXPECT_EQ(serve::parse_arrival("onoff"), serve::ArrivalKind::kOnOff);
  EXPECT_EQ(serve::parse_arrival("trace"), serve::ArrivalKind::kTrace);
  EXPECT_THROW((void)serve::parse_arrival("bursty"), ConfigError);
}

// ---------------------------------------------------------------------------
// Arrival conservation audit

TEST(ArrivalConservation, AcceptsABalancedLedger) {
  EXPECT_NO_THROW(check::audit_arrival_conservation(10, 2, 3, 4, 1));
  EXPECT_NO_THROW(check::audit_arrival_conservation(0, 0, 0, 0, 0));
}

TEST(ArrivalConservation, ThrowsWhenARequestIsLost) {
  EXPECT_THROW(check::audit_arrival_conservation(10, 2, 3, 4, 0),
               InvariantError);
  EXPECT_THROW(check::audit_arrival_conservation(3, 0, 0, 4, 0),
               InvariantError);
}

// ---------------------------------------------------------------------------
// Simulator open-system surface

Workload idle_workers(std::size_t n) {
  std::vector<std::shared_ptr<const Trace>> traces;
  for (std::size_t i = 0; i < n; ++i) {
    traces.push_back(std::make_shared<Trace>(std::vector<LocalPage>{}, 8));
  }
  return Workload(std::move(traces), "idle");
}

SimConfig open_machine() {
  SimConfig c = SimConfig::fifo(/*hbm_slots=*/64, /*num_channels=*/1);
  c.open_system = true;
  return c;
}

TEST(OpenSystem, InjectTraceRequiresOpenSystemMode) {
  SimConfig closed = SimConfig::fifo(64, 1);
  Simulator sim(idle_workers(1), closed);
  EXPECT_THROW(sim.inject_trace(
                   0, std::make_shared<Trace>(std::vector<LocalPage>{0, 1}, 8)),
               Error);
}

TEST(OpenSystem, AdvanceIdleRequiresOpenSystemMode) {
  SimConfig closed = SimConfig::fifo(64, 1);
  Simulator sim(idle_workers(1), closed);
  EXPECT_THROW(sim.advance_idle(10), Error);
}

TEST(OpenSystem, FastEngineIsRejectedByValidation) {
  // The capability registry drives the rejection: kFast does not
  // advertise open-system support, kEvent and kTick do, and kAuto
  // resolves (to the event engine) so it always validates.
  SimConfig c = open_machine();
  c.engine = EngineKind::kFast;
  EXPECT_FALSE(c.validation_error(1).empty());
  c.engine = EngineKind::kEvent;
  EXPECT_TRUE(c.validation_error(1).empty());
  c.engine = EngineKind::kAuto;
  EXPECT_TRUE(c.validation_error(1).empty());
}

TEST(OpenSystem, InjectedTraceRunsToCompletion) {
  Simulator sim(idle_workers(1), open_machine());
  ASSERT_TRUE(sim.finished());  // empty traces: born done
  sim.inject_trace(0,
                   std::make_shared<Trace>(std::vector<LocalPage>{0, 1, 0}, 8));
  EXPECT_FALSE(sim.finished());
  while (sim.step()) {
  }
  EXPECT_TRUE(sim.finished());
  EXPECT_EQ(sim.metrics().response.count(), 3u);
}

TEST(OpenSystem, InjectingOntoABusyWorkerIsRejected) {
  Simulator sim(idle_workers(1), open_machine());
  sim.inject_trace(0, std::make_shared<Trace>(std::vector<LocalPage>{0, 1}, 8));
  EXPECT_THROW(
      sim.inject_trace(0, std::make_shared<Trace>(std::vector<LocalPage>{2}, 8)),
      Error);
}

TEST(OpenSystem, AdvanceIdleJumpsTheClockAndClampsAtMaxTicks) {
  SimConfig c = open_machine();
  c.max_ticks = 1000;
  Simulator sim(idle_workers(1), c);
  sim.advance_idle(100);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.metrics().idle_ticks, 100u);
  EXPECT_FALSE(sim.metrics().truncated);
  sim.advance_idle(5000);
  EXPECT_EQ(sim.now(), 1000u);
  EXPECT_TRUE(sim.metrics().truncated);
}

// ---------------------------------------------------------------------------
// End-to-end serving runs

serve::ServingConfig small_serving() {
  serve::TenantSpec t;
  t.name = "t0";
  t.workers = 2;
  t.arrival = poisson(0.01);
  t.shape = serve::RequestShape{/*pages=*/16, /*refs=*/4, /*zipf_s=*/0.0};
  t.slo_ticks = 64;
  t.max_pending = 8;

  serve::ServingConfig cfg;
  cfg.tenants = {t};
  cfg.sim = SimConfig::fifo(/*hbm_slots=*/256, /*num_channels=*/1);
  cfg.sim.max_ticks = 100'000;
  cfg.duration = 5'000;
  cfg.seed = 11;
  return cfg;
}

TEST(Serving, UnderloadedRunCompletesEveryArrival) {
  const serve::ServingMetrics m = serve::serve(small_serving());
  ASSERT_EQ(m.per_tenant.size(), 1u);
  const serve::TenantMetrics& t = m.per_tenant[0];
  EXPECT_GT(t.arrivals, 0u);
  EXPECT_EQ(t.rejected, 0u);
  EXPECT_EQ(t.completed, t.arrivals);
  EXPECT_EQ(t.latency.count(), t.completed);
  EXPECT_EQ(static_cast<std::uint64_t>(t.latency_hist.total()), t.completed);
  EXPECT_FALSE(m.sim.truncated);
  // Each request has 4 references, so end-to-end latency is at least 4.
  EXPECT_GE(t.latency_hist.quantile(0.0), 4.0);
  EXPECT_GT(m.throughput(), 0.0);
}

TEST(Serving, OverloadRejectsOnceTheAdmissionQueueFills) {
  serve::ServingConfig cfg = small_serving();
  cfg.tenants[0].workers = 1;
  cfg.tenants[0].max_pending = 2;
  cfg.tenants[0].arrival = poisson(0.5);  // far beyond one worker's capacity
  cfg.sim.fetch_ticks = 4;
  const serve::ServingMetrics m = serve::serve(cfg);
  const serve::TenantMetrics& t = m.per_tenant[0];
  EXPECT_GT(t.rejected, 0u);
  EXPECT_EQ(t.arrivals, t.admitted + t.rejected);
  EXPECT_EQ(t.completed + t.rejected, t.arrivals)
      << "drained run must resolve every arrival";
}

TEST(Serving, TightTickBudgetTruncatesGracefully) {
  serve::ServingConfig cfg = small_serving();
  cfg.tenants[0].arrival = poisson(0.5);
  cfg.sim.max_ticks = 300;  // well inside the 5000-tick arrival horizon
  const serve::ServingMetrics m = serve::serve(cfg);
  EXPECT_TRUE(m.sim.truncated);
  EXPECT_EQ(m.horizon, 300u);
  // Conservation still holds at the cut: whatever was in flight stays
  // accounted as in-service, not silently dropped (the run() audit would
  // have thrown otherwise). Completions can only cover a prefix.
  const serve::TenantMetrics& t = m.per_tenant[0];
  EXPECT_LE(t.completed + t.rejected, t.arrivals);
}

TEST(Serving, SloViolationsAreCountedAgainstTheBudget) {
  serve::ServingConfig cfg = small_serving();
  cfg.tenants[0].slo_ticks = 1;  // every 4-reference request must violate
  const serve::ServingMetrics m = serve::serve(cfg);
  const serve::TenantMetrics& t = m.per_tenant[0];
  EXPECT_GT(t.completed, 0u);
  EXPECT_EQ(t.slo_violations, t.completed);
  EXPECT_DOUBLE_EQ(t.slo_violation_rate(), 1.0);
}

TEST(Serving, PriorityClassesMapToAscendingWorkerBlocks) {
  serve::ServingConfig cfg = small_serving();
  serve::TenantSpec critical = cfg.tenants[0];
  critical.name = "critical";
  critical.workers = 3;
  critical.priority_class = 0;
  cfg.tenants[0].name = "background";
  cfg.tenants[0].priority_class = 7;
  cfg.tenants.push_back(critical);  // listed after, but higher priority

  serve::ServingSimulator sim(cfg);
  // Lower thread ids outrank higher ones under the identity priority
  // map, so the class-0 tenant must own the lowest worker block even
  // though it is declared second.
  EXPECT_EQ(sim.worker_base(1), 0u);
  EXPECT_EQ(sim.worker_base(0), 3u);
}

TEST(Serving, RepeatRunsAreBitIdentical) {
  serve::ServingConfig cfg = small_serving();
  cfg.tenants.push_back(cfg.tenants[0]);
  cfg.tenants[1].name = "t1";
  cfg.tenants[1].priority_class = 1;
  cfg.tenants[1].arrival.kind = serve::ArrivalKind::kOnOff;
  cfg.tenants[1].arrival.rate = 0.05;
  cfg.tenants[1].arrival.on_ticks = 200;
  cfg.tenants[1].arrival.off_ticks = 300;
  const serve::ServingMetrics a = serve::serve(cfg);
  const serve::ServingMetrics b = serve::serve(cfg);
  EXPECT_EQ(serve::to_json(a), serve::to_json(b));
  EXPECT_EQ(a.sim.makespan, b.sim.makespan);
  EXPECT_EQ(a.horizon, b.horizon);
}

TEST(Serving, TickAndEventEnginesAreBitIdenticalOpenSystem) {
  // The whole serving stack — horizon publication, completion-buffer
  // harvest, latency accounting — must be invisible to the engine
  // choice: the reference tick engine and the batching event engine
  // land on byte-identical serialized metrics.
  serve::ServingConfig cfg = small_serving();
  cfg.tenants.push_back(cfg.tenants[0]);
  cfg.tenants[1].name = "t1";
  cfg.tenants[1].priority_class = 1;
  cfg.tenants[1].arrival = poisson(0.05);
  cfg.sim.fetch_ticks = 3;  // real in-flight gaps for the engine to batch

  serve::ServingConfig tick_cfg = cfg;
  tick_cfg.sim.engine = EngineKind::kTick;
  serve::ServingConfig event_cfg = cfg;
  event_cfg.sim.engine = EngineKind::kEvent;
  const serve::ServingMetrics tick = serve::serve(tick_cfg);
  const serve::ServingMetrics event = serve::serve(event_cfg);
  EXPECT_EQ(serve::to_json(tick), serve::to_json(event));
  EXPECT_EQ(tick.horizon, event.horizon);
  EXPECT_EQ(tick.sim.makespan, event.sim.makespan);
  EXPECT_EQ(tick.sim.idle_ticks, event.sim.idle_ticks);
  // The event engine must actually have batched (else this test proves
  // nothing); the tick engine by definition never skips.
  EXPECT_EQ(tick.sim.skipped_ticks, 0u);
  EXPECT_GT(event.sim.skipped_ticks, 0u);
}

TEST(Serving, OverloadTracksStarvationAndMaxWait) {
  // One slow worker, a deep admission queue, and a tight SLO: requests
  // queue for a long time, so the starvation tail and the max pending
  // wait must both register.
  serve::ServingConfig cfg = small_serving();
  cfg.tenants[0].workers = 1;
  cfg.tenants[0].max_pending = 32;
  cfg.tenants[0].arrival = poisson(0.5);
  cfg.tenants[0].slo_ticks = 8;
  cfg.tenants[0].starvation_multiplier = 2;
  cfg.sim.fetch_ticks = 4;
  const serve::ServingMetrics m = serve::serve(cfg);
  const serve::TenantMetrics& t = m.per_tenant[0];
  EXPECT_GT(t.completed, 0u);
  EXPECT_GT(t.slo_violations, 0u);
  EXPECT_GT(t.starved, 0u);
  EXPECT_LE(t.starved, t.slo_violations);
  EXPECT_GT(t.max_wait, 0u);
  // max_wait is queueing delay only, so it is bounded by the worst
  // end-to-end latency.
  EXPECT_LE(static_cast<double>(t.max_wait), t.latency.max());
  // Both fields ride along in the serialized record.
  const std::string json = serve::to_json(m);
  EXPECT_NE(json.find("\"starved\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_wait\":"), std::string::npos);
  // An underloaded run starves nothing and never queues.
  const serve::ServingMetrics calm = serve::serve(small_serving());
  EXPECT_EQ(calm.per_tenant[0].starved, 0u);
  EXPECT_EQ(calm.per_tenant[0].max_wait, 0u);
}

TEST(Serving, ValidationRejectsInconsistentConfigs) {
  serve::ServingConfig cfg = small_serving();
  cfg.tenants.clear();
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  cfg.sim.shared_pages = true;
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  cfg.sim.engine = EngineKind::kFast;
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  cfg.tenants[0].arrival.rate = 0.0;
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  cfg.tenants[0].starvation_multiplier = 0;
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  cfg.duration = 0;
  EXPECT_FALSE(cfg.validation_error().empty());

  cfg = small_serving();
  EXPECT_TRUE(cfg.validation_error().empty());
  EXPECT_NO_THROW(cfg.validate());
}

// ---------------------------------------------------------------------------
// Custom executors through the experiment runner

TEST(Serving, RunsThroughTheExperimentRunnerWithExtraJson) {
  const serve::ServingConfig cfg = small_serving();
  std::vector<exp::ExpPoint> points;
  for (int i = 0; i < 2; ++i) {
    exp::ExpPoint p;
    p.label = "serving-" + std::to_string(i);
    p.config = cfg.sim;
    p.execute = [cfg](std::string& extra) {
      const serve::ServingMetrics m = serve::serve(cfg);
      extra = serve::to_json(m);
      return m.sim;
    };
    points.push_back(std::move(p));
  }
  exp::RunnerOptions serial;
  serial.jobs = 1;
  exp::RunnerOptions parallel;
  parallel.jobs = 2;
  const auto rs = exp::run_points(points, serial);
  const auto rp = exp::run_points(points, parallel);
  ASSERT_EQ(rs.size(), 2u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].ok) << rs[i].error;
    ASSERT_TRUE(rp[i].ok) << rp[i].error;
    EXPECT_FALSE(rs[i].extra_json.empty());
    EXPECT_EQ(rs[i].extra_json, rp[i].extra_json)
        << "serving points must be bit-identical across --jobs";
    EXPECT_EQ(exp::to_json(rs[i].metrics), exp::to_json(rp[i].metrics));
    // The JSONL record embeds the executor's extra object verbatim.
    EXPECT_NE(exp::to_json(rs[i]).find("\"extra\":{"), std::string::npos);
  }
}

}  // namespace
