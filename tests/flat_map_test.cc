// Unit and property tests for FlatMap, the open-addressing map on the
// simulator's residency hot path. The property test drives it against
// std::unordered_map through long random operation sequences — backward-
// shift deletion is the classic source of subtle probe-chain bugs.
#include <gtest/gtest.h>

#include <unordered_map>

#include "util/flat_map.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  m.insert(42, 7);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7u);
  EXPECT_EQ(m.find(43), nullptr);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, InsertOverwrites) {
  FlatMap<std::uint32_t> m;
  m.insert(1, 10);
  m.insert(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(1), 20u);
}

TEST(FlatMap, GrowsPastInitialCapacity) {
  FlatMap<std::uint32_t> m(4);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    m.insert(k * 3 + 1, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_NE(m.find(k * 3 + 1), nullptr);
    ASSERT_EQ(*m.find(k * 3 + 1), static_cast<std::uint32_t>(k));
  }
}

TEST(FlatMap, ClearResets) {
  FlatMap<std::uint32_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) {
    m.insert(k, 1);
  }
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.insert(5, 2);
  EXPECT_EQ(*m.find(5), 2u);
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap<std::uint32_t> m;
  std::uint64_t expect_sum = 0;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    m.insert(k << 20, static_cast<std::uint32_t>(k));
    expect_sum += k;
  }
  std::uint64_t sum = 0;
  std::size_t count = 0;
  m.for_each([&](std::uint64_t, std::uint32_t v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(sum, expect_sum);
  EXPECT_EQ(count, 50u);
}

TEST(FlatMap, AdversarialCollisions) {
  // Keys crafted to collide under the multiplicative hash's low bits:
  // same high bits pattern via large strides.
  FlatMap<std::uint32_t> m(8);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 200; ++k) {
    keys.push_back(k << 48);  // hash mixes, but clusters still form
    m.insert(keys.back(), static_cast<std::uint32_t>(k));
  }
  // Delete every other key, then verify the rest survive probing shifts.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(m.erase(keys[i]));
  }
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_NE(m.find(keys[i]), nullptr) << "lost key after deletion shifts";
    EXPECT_EQ(*m.find(keys[i]), static_cast<std::uint32_t>(i));
  }
}

TEST(FlatMap, RandomOpsMatchUnorderedMap) {
  FlatMap<std::uint32_t> flat(4);
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  Xoshiro256StarStar rng(2024);
  for (int step = 0; step < 200'000; ++step) {
    const std::uint64_t key = rng.uniform(512);  // small key space → churn
    switch (rng.uniform(3)) {
      case 0: {
        const auto value = static_cast<std::uint32_t>(rng.uniform(1 << 20));
        flat.insert(key, value);
        ref[key] = value;
        break;
      }
      case 1: {
        const bool erased_flat = flat.erase(key);
        const bool erased_ref = ref.erase(key) > 0;
        ASSERT_EQ(erased_flat, erased_ref);
        break;
      }
      case 2: {
        const std::uint32_t* v = flat.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

// --- FlatSet (membership-only wrapper; simulator's in-flight page set) --

TEST(FlatSet, InsertContainsErase) {
  FlatSet set;
  EXPECT_TRUE(set.empty());
  set.insert(42);
  set.insert(7);
  set.insert(42);  // duplicate insert is a no-op
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.erase(42));
  EXPECT_FALSE(set.erase(42));
  EXPECT_FALSE(set.contains(42));
  EXPECT_EQ(set.size(), 1u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet, GrowsPastInitialCapacity) {
  FlatSet set(/*capacity_hint=*/2);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    set.insert(k * 977);
  }
  EXPECT_EQ(set.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_TRUE(set.contains(k * 977));
  }
  std::size_t visited = 0;
  set.for_each([&](std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 1000u);
}

}  // namespace
}  // namespace hbmsim
