// Unit and property tests for FlatMap, the open-addressing map on the
// simulator's residency hot path. The property test drives it against
// std::unordered_map through long random operation sequences — backward-
// shift deletion is the classic source of subtle probe-chain bugs.
#include <gtest/gtest.h>

#include <unordered_map>

#include "util/flat_map.h"
#include "util/rng.h"

namespace hbmsim {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  m.insert(42, 7);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7u);
  EXPECT_EQ(m.find(43), nullptr);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, InsertOverwrites) {
  FlatMap<std::uint32_t> m;
  m.insert(1, 10);
  m.insert(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(1), 20u);
}

TEST(FlatMap, GrowsPastInitialCapacity) {
  FlatMap<std::uint32_t> m(4);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    m.insert(k * 3 + 1, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_NE(m.find(k * 3 + 1), nullptr);
    ASSERT_EQ(*m.find(k * 3 + 1), static_cast<std::uint32_t>(k));
  }
}

TEST(FlatMap, ClearResets) {
  FlatMap<std::uint32_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) {
    m.insert(k, 1);
  }
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.insert(5, 2);
  EXPECT_EQ(*m.find(5), 2u);
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap<std::uint32_t> m;
  std::uint64_t expect_sum = 0;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    m.insert(k << 20, static_cast<std::uint32_t>(k));
    expect_sum += k;
  }
  std::uint64_t sum = 0;
  std::size_t count = 0;
  m.for_each([&](std::uint64_t, std::uint32_t v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(sum, expect_sum);
  EXPECT_EQ(count, 50u);
}

TEST(FlatMap, AdversarialCollisions) {
  // Keys crafted to collide under the multiplicative hash's low bits:
  // same high bits pattern via large strides.
  FlatMap<std::uint32_t> m(8);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 200; ++k) {
    keys.push_back(k << 48);  // hash mixes, but clusters still form
    m.insert(keys.back(), static_cast<std::uint32_t>(k));
  }
  // Delete every other key, then verify the rest survive probing shifts.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(m.erase(keys[i]));
  }
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_NE(m.find(keys[i]), nullptr) << "lost key after deletion shifts";
    EXPECT_EQ(*m.find(keys[i]), static_cast<std::uint32_t>(i));
  }
}

TEST(FlatMap, RandomOpsMatchUnorderedMap) {
  FlatMap<std::uint32_t> flat(4);
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  Xoshiro256StarStar rng(2024);
  for (int step = 0; step < 200'000; ++step) {
    const std::uint64_t key = rng.uniform(512);  // small key space → churn
    switch (rng.uniform(3)) {
      case 0: {
        const auto value = static_cast<std::uint32_t>(rng.uniform(1 << 20));
        flat.insert(key, value);
        ref[key] = value;
        break;
      }
      case 1: {
        const bool erased_flat = flat.erase(key);
        const bool erased_ref = ref.erase(key) > 0;
        ASSERT_EQ(erased_flat, erased_ref);
        break;
      }
      case 2: {
        const std::uint32_t* v = flat.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

// --- FlatSet (membership-only wrapper; simulator's in-flight page set) --

TEST(FlatSet, InsertContainsErase) {
  FlatSet set;
  EXPECT_TRUE(set.empty());
  set.insert(42);
  set.insert(7);
  set.insert(42);  // duplicate insert is a no-op
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.erase(42));
  EXPECT_FALSE(set.erase(42));
  EXPECT_FALSE(set.contains(42));
  EXPECT_EQ(set.size(), 1u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet, GrowsPastInitialCapacity) {
  FlatSet set(/*capacity_hint=*/2);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    set.insert(k * 977);
  }
  EXPECT_EQ(set.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_TRUE(set.contains(k * 977));
  }
  std::size_t visited = 0;
  set.for_each([&](std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 1000u);
}

// --- Steady-state storage contracts (the hot path relies on these) ------

TEST(FlatMap, EraseHeavyChurnMatchesUnorderedMapThroughGrowth) {
  // Interleave erases with the inserts that force rehashes, so deletions
  // land both before and after each growth step (backward-shift deletion
  // must survive table migration).
  FlatMap<std::uint64_t> flat(2);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256StarStar rng(77);
  for (std::uint64_t wave = 0; wave < 50; ++wave) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      const std::uint64_t key = wave * 64 + i;
      flat.insert(key, key * 3);
      ref[key] = key * 3;
      if (i % 2 == 0) {  // erase half of each wave as it grows
        const std::uint64_t victim = rng.uniform(key + 1);
        ASSERT_EQ(flat.erase(victim), ref.erase(victim) > 0);
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "wave " << wave;
  }
  for (const auto& [key, value] : ref) {
    const std::uint64_t* v = flat.find(key);
    ASSERT_NE(v, nullptr) << "key " << key;
    EXPECT_EQ(*v, value);
  }
}

TEST(FlatMap, ReserveThenClearReusesCapacity) {
  FlatMap<std::uint64_t> map;
  map.reserve(1000);
  const std::size_t reserved = map.capacity();
  EXPECT_GE(reserved, 2000u) << "reserve must keep the load factor sane";
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t k = 0; k < 1000; ++k) {
      map.insert(k, k);
    }
    EXPECT_EQ(map.capacity(), reserved)
        << "inserting within the reservation must not rehash";
    map.clear();
    EXPECT_EQ(map.capacity(), reserved) << "clear() must keep the storage";
  }
}

TEST(FlatMap, ChurnWithinReservationKeepsCapacityBounded) {
  // Backward-shift deletion leaves no tombstones, so erase/insert cycles
  // over a bounded key population must never grow the table.
  FlatMap<std::uint64_t> map;
  map.reserve(256);
  const std::size_t reserved = map.capacity();
  Xoshiro256StarStar rng(1234);
  for (int op = 0; op < 100'000; ++op) {
    const std::uint64_t key = rng.uniform(256);
    if (rng.uniform(2) == 0) {
      map.insert(key, key);
    } else {
      map.erase(key);
    }
  }
  EXPECT_EQ(map.capacity(), reserved)
      << "churn over <= 256 live keys must not rehash a 256-reserved table";
}

// --- Bitmap (rank occupancy for the bucketed priority queue) ------------

TEST(Bitmap, SetClearTestFindFirst) {
  Bitmap b(130);  // spans three 64-bit words
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.find_first(), Bitmap::npos);
  b.set(129);
  b.set(64);
  b.set(3);
  EXPECT_TRUE(b.any());
  EXPECT_EQ(b.find_first(), 3u);
  b.clear(3);
  EXPECT_EQ(b.find_first(), 64u) << "find_first must cross word boundaries";
  b.clear(64);
  EXPECT_EQ(b.find_first(), 129u);
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(0));
  b.clear_all();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.find_first(), Bitmap::npos);
}

TEST(Bitmap, FindFirstFromSkipsTheExcludedPrefix) {
  Bitmap b(200);
  b.set(5);
  b.set(70);
  b.set(131);
  EXPECT_EQ(b.find_first(0), 5u);
  EXPECT_EQ(b.find_first(5), 5u) << "`from` is inclusive";
  EXPECT_EQ(b.find_first(6), 70u) << "skips a set bit below `from`";
  EXPECT_EQ(b.find_first(64), 70u) << "exact word boundary";
  EXPECT_EQ(b.find_first(71), 131u);
  EXPECT_EQ(b.find_first(131), 131u);
  EXPECT_EQ(b.find_first(132), Bitmap::npos);
  EXPECT_EQ(b.find_first(199), Bitmap::npos);
  EXPECT_EQ(b.find_first(5000), Bitmap::npos) << "past-the-end is not an error";
}

TEST(Bitmap, ResizeClearsAllBits) {
  Bitmap b(10);
  b.set(9);
  b.resize(100);
  EXPECT_FALSE(b.any());
  b.set(99);
  EXPECT_EQ(b.find_first(), 99u);
}

// --- IndexPool (pooled nodes for the intrusive queues) -------------------

TEST(IndexPool, AcquireReleaseRecyclesSlots) {
  IndexPool<int> pool;
  const std::uint32_t a = pool.acquire();
  const std::uint32_t b = pool.acquire();
  EXPECT_NE(a, b);
  pool[a] = 10;
  pool[b] = 20;
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  const std::uint32_t c = pool.acquire();
  EXPECT_EQ(c, a) << "LIFO freelist reuses the hottest slot";
  EXPECT_EQ(pool.allocated(), 2u) << "no new slot while the freelist holds one";
  EXPECT_EQ(pool[b], 20);
}

TEST(IndexPool, ReservationBoundsTheSlabUnderChurn) {
  IndexPool<std::uint64_t> pool(64);
  std::vector<std::uint32_t> held;
  Xoshiro256StarStar rng(5);
  for (int op = 0; op < 50'000; ++op) {
    if (held.size() < 64 && (held.empty() || rng.uniform(2) == 0)) {
      held.push_back(pool.acquire());
    } else {
      const std::size_t pick = rng.uniform(held.size());
      pool.release(held[pick]);
      held[pick] = held.back();
      held.pop_back();
    }
  }
  EXPECT_LE(pool.allocated(), 64u)
      << "<= 64 concurrent handles must never outgrow the 64-slot reserve";
}

}  // namespace
}  // namespace hbmsim
